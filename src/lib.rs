#![warn(missing_docs)]

//! `codense` — dictionary code compression for embedded PowerPC programs.
//!
//! A production-quality reproduction of Lefurgy, Bird, Chen & Mudge,
//! *Improving Code Density Using Compression Techniques* (CSE-TR-342-97 /
//! MICRO-30, 1997): a post-compilation compressor that replaces repeated
//! instruction sequences with dictionary codewords, the modified
//! instruction-fetch path that executes the result, the paper's baselines
//! (CCRP, Liao's call-dictionary, Unix-compress LZW), and a synthetic
//! SPEC CINT95 stand-in benchmark suite.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`isa`] | `codense-isa` | the `Isa` trait: ISA-neutral compression contract |
//! | [`ppc`] | `codense-ppc` | PowerPC subset: encode/decode/disassemble/assemble |
//! | [`mips`] | `codense-mips` | MIPS-like subset: second backend behind the `Isa` trait |
//! | [`obj`] | `codense-obj` | object-module model, basic blocks |
//! | [`codegen`] | `codense-codegen` | synthetic SDTS compiler + benchmarks |
//! | [`core`] | `codense-core` | the compression pipeline (the contribution) |
//! | [`huffman`] | `codense-huffman` | canonical Huffman substrate |
//! | [`lzw`] | `codense-lzw` | Unix-compress-equivalent LZW |
//! | [`ccrp`] | `codense-ccrp` | compressed-cache-line baseline |
//! | [`liao`] | `codense-liao` | call-dictionary / mini-subroutine baseline |
//! | [`thumb`] | `codense-thumb` | Thumb/MIPS16-style subsetting baseline |
//! | [`vm`] | `codense-vm` | interpreter + compressed fetch path |
//! | [`cache`] | `codense-cache` | I-cache simulator + fetch tracing |
//! | [`profile`] | `codense-profile` | execution profiler, hybrid policy, cycle model |
//!
//! # Quickstart
//!
//! ```
//! use codense::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A benchmark program (deterministic synthetic stand-in for SPEC
//! // CINT95 `compress` compiled with GCC -O2 for PowerPC).
//! let module = codense::codegen::benchmark("compress").expect("known benchmark");
//!
//! // Compress with the paper's most aggressive scheme.
//! let compressed = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module)?;
//! verify(&module, &compressed)?;
//! assert!(compressed.compression_ratio() < 0.6); // 40+% smaller
//! # Ok(())
//! # }
//! ```

pub use codense_cache as cache;
pub use codense_ccrp as ccrp;
pub use codense_codegen as codegen;
pub use codense_core as core;
pub use codense_huffman as huffman;
pub use codense_isa as isa;
pub use codense_liao as liao;
pub use codense_lzw as lzw;
pub use codense_mips as mips;
pub use codense_obj as obj;
pub use codense_ppc as ppc;
pub use codense_profile as profile;
pub use codense_thumb as thumb;
pub use codense_vm as vm;

/// The most commonly used items in one import.
pub mod prelude {
    pub use codense_core::verify::verify;
    pub use codense_core::{
        CompressedProgram, CompressionConfig, Compressor, EncodingKind, SelectorKind,
    };
    pub use codense_isa::IsaRef;
    pub use codense_obj::ObjectModule;
    pub use codense_ppc::{decode, encode, Insn};
    pub use codense_vm::{CompressedFetcher, LinearFetcher, Machine};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let mut module = ObjectModule::new("t");
        module.code = vec![encode(&Insn::Sc); 4];
        let c = Compressor::new(CompressionConfig::baseline()).compress(&module).unwrap();
        verify(&module, &c).unwrap();
    }
}
