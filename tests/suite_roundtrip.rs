//! Cross-crate integration: compress real benchmark modules under every
//! encoding, verify the round trip, and check determinism.

use codense::prelude::*;

fn benchmarks() -> Vec<ObjectModule> {
    // The two smallest benchmarks keep debug-mode test time reasonable; the
    // full suite is exercised by the release-mode `repro` harness and
    // benches.
    ["compress", "li"].iter().map(|n| codense::codegen::benchmark(n).unwrap()).collect()
}

#[test]
fn all_encodings_roundtrip_on_real_benchmarks() {
    for module in benchmarks() {
        module.validate().unwrap();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(32),
            CompressionConfig::nibble_aligned(),
        ] {
            let c = Compressor::new(config.clone()).compress(&module).unwrap();
            verify(&module, &c).unwrap_or_else(|e| panic!("{} {config:?}: {e}", module.name));
            assert!(c.compression_ratio() < 1.0, "{} {config:?}", module.name);
        }
    }
}

#[test]
fn compression_is_deterministic() {
    let module = codense::codegen::benchmark("compress").unwrap();
    let compress = |m: &ObjectModule| {
        Compressor::new(CompressionConfig::nibble_aligned()).compress(m).unwrap()
    };
    let a = compress(&module);
    let b = compress(&module);
    assert_eq!(a.image, b.image);
    assert_eq!(a.dictionary, b.dictionary);
    assert_eq!(a.picks, b.picks);
}

#[test]
fn expansion_covers_every_instruction_once() {
    let module = codense::codegen::benchmark("li").unwrap();
    let c = Compressor::new(CompressionConfig::baseline()).compress(&module).unwrap();
    let expanded = c.expand();
    assert_eq!(expanded.len(), module.len());
    for (i, (orig, _)) in expanded.iter().enumerate() {
        assert_eq!(*orig, i);
    }
}

#[test]
fn ratio_bands_match_paper_regime() {
    // Coarse acceptance bands: the baseline lands around 60-70%, the nibble
    // scheme in the paper's 30-50% reduction band, and the 32-entry one-byte
    // scheme in between baseline and none.
    for module in benchmarks() {
        let base = Compressor::new(CompressionConfig::baseline())
            .compress(&module)
            .unwrap()
            .compression_ratio();
        let nib = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(&module)
            .unwrap()
            .compression_ratio();
        let small = Compressor::new(CompressionConfig::small_dictionary(32))
            .compress(&module)
            .unwrap()
            .compression_ratio();
        assert!((0.55..0.75).contains(&base), "{} baseline {base}", module.name);
        assert!((0.40..0.62).contains(&nib), "{} nibble {nib}", module.name);
        assert!(nib < base && base < small && small < 1.0, "{}", module.name);
    }
}

#[test]
fn jump_tables_patched_consistently() {
    let module = codense::codegen::benchmark("compress").unwrap();
    assert!(!module.jump_tables.is_empty(), "benchmark should contain switches");
    let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module).unwrap();
    assert_eq!(c.jump_tables.len(), module.jump_tables.len());
    for (orig_table, new_table) in module.jump_tables.iter().zip(&c.jump_tables) {
        assert_eq!(orig_table.targets.len(), new_table.len());
        for (&idx, &addr) in orig_table.targets.iter().zip(new_table) {
            assert_eq!(c.address_of_orig(idx), Some(addr));
        }
    }
}
