//! The paper's qualitative claims, asserted as executable checks on the
//! stand-in benchmarks. Each test cites the claim it reproduces.

use codense::core::analysis::encoding_profile;
use codense::core::sweep::{codeword_count_sweep, entry_len_sweep};
use codense::prelude::*;

fn module(name: &str) -> ObjectModule {
    codense::codegen::benchmark(name).unwrap()
}

/// §1.1: "less than 20% of the instructions in the benchmarks have bit
/// pattern encodings which are used exactly once in the program."
#[test]
fn under_20_percent_of_insns_are_unique() {
    for name in ["compress", "li", "m88ksim"] {
        let p = encoding_profile(&module(name));
        assert!(
            p.used_once_fraction() < 0.20,
            "{name}: {:.1}% unique",
            100.0 * p.used_once_fraction()
        );
    }
}

/// §4.1/Fig 5: "To achieve good compression, it is more important to
/// increase the number of codewords in the dictionary rather than increase
/// the length of the dictionary entries."
#[test]
fn codeword_count_matters_more_than_entry_length() {
    let m = module("li");
    // Gain from 256 -> 8192 codewords at entry length 4:
    let count_sweep = codeword_count_sweep(&m, 4, &[256, 8192]).unwrap();
    let count_gain = count_sweep[0].1 - count_sweep[1].1;
    // Gain from entry length 4 -> 8 at full codeword space:
    let len_sweep = entry_len_sweep(&m, &[4, 8]).unwrap();
    let len_gain = len_sweep[0].1 - len_sweep[1].1;
    assert!(
        count_gain > 4.0 * len_gain.max(0.0) && count_gain > 0.005,
        "count gain {count_gain:.4} vs len gain {len_gain:.4}"
    );
}

/// §4.1: "In general, dictionary entry sizes above 4 instructions do not
/// improve compression noticeably."
#[test]
fn entry_lengths_above_four_do_not_help_noticeably() {
    let m = module("compress");
    let sweep = entry_len_sweep(&m, &[4, 8]).unwrap();
    let delta = sweep[0].1 - sweep[1].1;
    assert!(delta.abs() < 0.01, "len 4 -> 8 moved ratio by {delta:.4}");
}

/// §4.1.3/Fig 11: "We obtain a code reduction of between 30% and 50%
/// depending on the benchmark."
#[test]
fn nibble_scheme_reaches_30_to_50_percent_reduction() {
    for name in ["compress", "li"] {
        let m = module(name);
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let reduction = 1.0 - c.compression_ratio();
        assert!((0.30..=0.60).contains(&reduction), "{name}: reduction {:.1}%", 100.0 * reduction);
    }
}

/// Fig 11: "Compress does indeed do better, but our compression ratio is
/// still within 5% for all benchmarks."
#[test]
fn nibble_scheme_within_a_few_points_of_lzw() {
    for name in ["compress", "li"] {
        let m = module(name);
        let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let lzw = codense::lzw::compressed_size(&m.text_image()) as f64 / m.text_bytes() as f64;
        let gap = c.compression_ratio() - lzw;
        assert!(gap > 0.0, "{name}: LZW should win ({gap:+.3})");
        assert!(gap < 0.06, "{name}: gap {:.1} points", 100.0 * gap);
    }
}

/// §2.4/Fig 7: Liao's word-sized codewords cannot compress single-instruction
/// patterns, which carry roughly half the dictionary scheme's savings — so
/// the paper's baseline must beat Liao's call-dictionary.
#[test]
fn dictionary_scheme_beats_liao() {
    let m = module("li");
    let base = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
    let hw = codense::liao::compress(&m, codense::liao::LiaoMethod::CallDictionary, 4);
    let sw = codense::liao::compress(&m, codense::liao::LiaoMethod::MiniSubroutine, 4);
    assert!(base.compression_ratio() < hw.compression_ratio());
    assert!(hw.compression_ratio() <= sw.compression_ratio());
}

/// Fig 6: "The number of dictionary entries with only a single instruction
/// ranges between 48% and 80%" (and grows with dictionary size).
#[test]
fn single_instruction_entries_dominate_large_dictionaries() {
    let m = module("m88ksim");
    let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
    let hist = c.dictionary.length_histogram(4);
    let total: usize = hist.iter().sum();
    let singles = hist[1] as f64 / total as f64;
    assert!(singles > 0.48, "singles {:.1}%", 100.0 * singles);
}

/// Fig 9: with the full codeword space, escape bytes are a significant
/// fraction of the compressed program — the waste the nibble scheme removes.
#[test]
fn escape_bytes_are_significant_overhead() {
    let m = module("compress");
    let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
    let f = c.composition().fractions();
    // f[1] = escape-byte share of the compressed program.
    assert!(f[1] > 0.15, "escape share {:.1}%", 100.0 * f[1]);
}

/// §4.1.2/Fig 8: a 512-byte dictionary is already worthwhile.
#[test]
fn small_dictionaries_still_save() {
    let m = module("compress");
    let c = Compressor::new(CompressionConfig::small_dictionary(32)).compress(&m).unwrap();
    assert!(c.dictionary_bytes() <= 512);
    assert!(
        c.compression_ratio() < 0.85,
        "512-byte dictionary should save >= 15%: {:.1}%",
        100.0 * c.compression_ratio()
    );
}

/// §2.1: statistical compression (here CCRP's Huffman) can beat nothing but
/// is handicapped by per-line padding and the LAT; the paper's scheme beats
/// it on total size while remaining randomly accessible.
#[test]
fn dictionary_scheme_beats_ccrp_model() {
    let m = module("li");
    let dict = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
    let ccrp = codense::ccrp::compress(&m, codense::ccrp::CcrpConfig::default());
    assert!(ccrp.compression_ratio() < 1.0);
    assert!(dict.compression_ratio() < ccrp.compression_ratio());
}

/// §2.2: the paper's ratios are "similar to that achieved by Thumb and
/// MIPS16" while keeping the full architecture reachable — measured: the
/// (generous) static-subsetting model lands near 30 % reduction and the
/// program-specific dictionary does strictly better.
#[test]
fn dictionary_beats_static_subsetting() {
    let m = module("compress");
    let thumb = codense::thumb::analyze(&m);
    assert!(
        (0.60..0.85).contains(&thumb.compression_ratio()),
        "thumb model ratio {:.2}",
        thumb.compression_ratio()
    );
    let dict = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
    assert!(dict.compression_ratio() < thumb.compression_ratio());
}

/// §4.1.3: per-program encoding tuning ("other programs may benefit from
/// different encodings") buys only marginal gains here — no candidate split
/// beats the shipped one by more than ~2.5 % of text size.
#[test]
fn shipped_nibble_split_is_near_optimal() {
    use codense::core::sweep::{text_nibbles_under_split, NibbleSplit};
    let m = module("li");
    let c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
    let shipped = text_nibbles_under_split(&c, NibbleSplit::SHIPPED).unwrap() as f64;
    for n4 in [2u32, 4, 6, 8, 10] {
        for n8 in [1u32, 3, 5, 7] {
            for n12 in 1..=3u32 {
                let used = n4 + n8 + n12;
                if used >= 15 {
                    continue;
                }
                let split = NibbleSplit { n4, n8, n12, n16: 15 - used };
                let candidate = text_nibbles_under_split(&c, split).unwrap() as f64;
                assert!(
                    candidate > shipped * 0.975,
                    "{split:?} beats shipped by {:.2}%",
                    100.0 * (1.0 - candidate / shipped)
                );
            }
        }
    }
}
