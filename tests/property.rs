//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use codense::core::encoding::{self, read_item, Item};
use codense::core::nibbles::{NibbleReader, NibbleWriter};
use codense::prelude::*;

/// Arbitrary instruction words biased toward the legal subset (pure random
/// u32s are mostly illegal, which still must round-trip).
fn word_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        any::<u32>(),
        // D-form-heavy region: opcodes 14/15/32..47 with random fields.
        (14u32..48, any::<u32>()).prop_map(|(op, rest)| (op << 26) | (rest & 0x03ff_ffff)),
        // Opcode-31 space.
        any::<u32>().prop_map(|r| (31 << 26) | (r & 0x03ff_ffff)),
    ]
}

proptest! {
    /// decode/encode is the identity on all 32-bit words.
    #[test]
    fn ppc_decode_encode_roundtrip(w in word_strategy()) {
        prop_assert_eq!(encode(&decode(w)), w);
    }

    /// The disassembler never panics.
    #[test]
    fn disassembler_total(w in any::<u32>(), addr in any::<u32>()) {
        let text = codense::ppc::disasm::disassemble(w, addr & !3);
        prop_assert!(!text.is_empty());
    }

    /// LZW round-trips arbitrary binary data.
    #[test]
    fn lzw_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let packed = codense::lzw::compress(&data);
        prop_assert_eq!(codense::lzw::decompress(&packed), Some(data));
    }

    /// Huffman round-trips arbitrary binary data.
    #[test]
    fn huffman_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let code = codense::huffman::HuffmanCode::from_frequencies(
            &codense::huffman::byte_frequencies(&data),
        );
        let bits = codense::huffman::encode(&code, &data);
        prop_assert_eq!(codense::huffman::decode(&code, &bits, data.len()), Some(data));
    }

    /// The nibble writer/reader round-trips arbitrary nibble sequences.
    #[test]
    fn nibble_stream_roundtrip(nibbles in proptest::collection::vec(0u8..16, 0..256)) {
        let mut w = NibbleWriter::new();
        for &n in &nibbles {
            w.push(n);
        }
        prop_assert_eq!(w.len(), nibbles.len() as u64);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        for &n in &nibbles {
            prop_assert_eq!(r.next(), Some(n));
        }
    }

    /// Mixed codeword/instruction streams parse back exactly in every
    /// encoding, regardless of rank distribution.
    #[test]
    fn codec_stream_roundtrip(
        items in proptest::collection::vec((any::<bool>(), any::<u32>()), 0..64),
    ) {
        for kind in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned] {
            let capacity = kind.capacity() as u32;
            let mut w = NibbleWriter::new();
            let expected: Vec<Item> = items
                .iter()
                .map(|&(is_cw, v)| {
                    if is_cw {
                        let rank = v % capacity;
                        encoding::write_codeword(kind, &mut w, rank);
                        Item::Codeword(rank)
                    } else {
                        // Instruction words must not collide with escape
                        // opcodes under the byte-level schemes.
                        let word = (14 << 26) | (v & 0x03ff_ffff);
                        encoding::write_insn(kind, &mut w, word);
                        Item::Insn(word)
                    }
                })
                .collect();
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            for want in &expected {
                let got = read_item(kind, &mut r);
                prop_assert_eq!(got.as_ref(), Some(want));
            }
        }
    }

    /// Compressing any straight-line program of subset instructions
    /// round-trips, and never grows the text+dictionary beyond the original
    /// plus the nibble scheme's worst-case escape overhead.
    #[test]
    fn compressor_roundtrip_random_programs(
        picks in proptest::collection::vec((0u8..6, 0u8..4, -64i16..64), 8..200),
    ) {
        use codense::ppc::reg::Gpr;
        let mut code = Vec::new();
        for (kind, reg, imm) in picks {
            let r = Gpr::new(3 + reg).unwrap();
            let insn = match kind {
                0 => Insn::Addi { rt: r, ra: r, si: imm },
                1 => Insn::Lwz { rt: r, ra: Gpr::new(1).unwrap(), d: imm & !3 },
                2 => Insn::Stw { rs: r, ra: Gpr::new(1).unwrap(), d: imm & !3 },
                3 => Insn::Add { rt: r, ra: r, rb: r, rc: false },
                4 => Insn::Ori { ra: r, rs: r, ui: imm as u16 },
                _ => Insn::Cmpwi { bf: codense::ppc::reg::CR0, ra: r, si: imm },
            };
            code.push(encode(&insn));
        }
        let mut module = ObjectModule::new("prop");
        module.code = code;
        for config in [CompressionConfig::baseline(), CompressionConfig::nibble_aligned()] {
            let c = Compressor::new(config).compress(&module).unwrap();
            verify(&module, &c).unwrap();
            let total = c.text_bytes() + c.dictionary_bytes();
            // Worst case: nothing compresses; nibble escapes add 1/8.
            prop_assert!(total as f64 <= module.text_bytes() as f64 * 1.13 + 2.0);
        }
    }

    /// Programs with branches: compression preserves every branch target.
    #[test]
    fn compressor_preserves_branches(
        body_len in 2usize..40,
        branch_pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..6),
    ) {
        use codense::ppc::asm::Assembler;
        use codense::ppc::reg::{CR0, R3};
        let mut a = Assembler::new();
        // Label every instruction so arbitrary targets are expressible.
        for i in 0..body_len {
            a.label(&format!("L{i}"));
            a.emit(Insn::Addi { rt: R3, ra: R3, si: (i % 7) as i16 });
        }
        a.label(&format!("L{body_len}"));
        for (j, &(_from, to)) in branch_pairs.iter().enumerate() {
            a.label(&format!("B{j}"));
            a.bne(CR0, &format!("L{}", to % (body_len + 1)));
        }
        a.emit(Insn::Sc);
        let mut module = ObjectModule::new("prop-br");
        module.code = a.finish().unwrap();
        prop_assert_eq!(module.validate(), Ok(()));
        for config in [CompressionConfig::baseline(), CompressionConfig::nibble_aligned()] {
            let c = Compressor::new(config).compress(&module).unwrap();
            prop_assert_eq!(verify(&module, &c), Ok(()));
        }
    }
}
