//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo deterministic generator ([`codense_codegen::Rng`])
//! with fixed seeds — no external property-testing crate, so the workspace
//! builds fully offline.

use codense::core::encoding::{self, read_item, Item};
use codense::core::nibbles::{NibbleReader, NibbleWriter};
use codense::prelude::*;
use codense_codegen::Rng;

const CASES: usize = 256;

/// Arbitrary instruction words biased toward the legal subset (pure random
/// u32s are mostly illegal, which still must round-trip).
fn random_word(rng: &mut Rng) -> u32 {
    match rng.below(3) {
        0 => rng.next_u64() as u32,
        // D-form-heavy region: opcodes 14/15/32..47 with random fields.
        1 => {
            let op = rng.range(14, 47) as u32;
            (op << 26) | (rng.next_u64() as u32 & 0x03ff_ffff)
        }
        // Opcode-31 space.
        _ => (31 << 26) | (rng.next_u64() as u32 & 0x03ff_ffff),
    }
}

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// decode/encode is the identity on all 32-bit words.
#[test]
fn ppc_decode_encode_roundtrip() {
    let mut rng = Rng::new(0x11AC_0001);
    for _ in 0..CASES * 8 {
        let w = random_word(&mut rng);
        assert_eq!(encode(&decode(w)), w, "word {w:#010x}");
    }
}

/// The disassembler never panics.
#[test]
fn disassembler_total() {
    let mut rng = Rng::new(0x11AC_0002);
    for _ in 0..CASES * 8 {
        let w = rng.next_u64() as u32;
        let addr = rng.next_u64() as u32 & !3;
        let text = codense::ppc::disasm::disassemble(w, addr);
        assert!(!text.is_empty());
    }
}

/// LZW round-trips arbitrary binary data.
#[test]
fn lzw_roundtrip() {
    let mut rng = Rng::new(0x11AC_0003);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 2047);
        let packed = codense::lzw::compress(&data);
        assert_eq!(codense::lzw::decompress(&packed), Some(data));
    }
}

/// Huffman round-trips arbitrary binary data.
#[test]
fn huffman_roundtrip() {
    let mut rng = Rng::new(0x11AC_0004);
    for _ in 0..CASES {
        let mut data = random_bytes(&mut rng, 2047);
        if data.is_empty() {
            data.push(rng.next_u64() as u8); // the original strategy was 1..2048
        }
        let code = codense::huffman::HuffmanCode::from_frequencies(
            &codense::huffman::byte_frequencies(&data),
        );
        let bits = codense::huffman::encode(&code, &data);
        assert_eq!(codense::huffman::decode(&code, &bits, data.len()), Some(data));
    }
}

/// The nibble writer/reader round-trips arbitrary nibble sequences.
#[test]
fn nibble_stream_roundtrip() {
    let mut rng = Rng::new(0x11AC_0005);
    for _ in 0..CASES {
        let nibbles: Vec<u8> = (0..rng.below(256)).map(|_| rng.below(16) as u8).collect();
        let mut w = NibbleWriter::new();
        for &n in &nibbles {
            w.push(n);
        }
        assert_eq!(w.len(), nibbles.len() as u64);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        for &n in &nibbles {
            assert_eq!(r.next(), Some(n));
        }
    }
}

/// Mixed codeword/instruction streams parse back exactly in every encoding,
/// regardless of rank distribution.
#[test]
fn codec_stream_roundtrip() {
    let mut rng = Rng::new(0x11AC_0006);
    for _ in 0..CASES {
        let items: Vec<(bool, u32)> =
            (0..rng.below(64)).map(|_| (rng.chance(0.5), rng.next_u64() as u32)).collect();
        for kind in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned] {
            let capacity = kind.capacity() as u32;
            let mut w = NibbleWriter::new();
            let expected: Vec<Item> = items
                .iter()
                .map(|&(is_cw, v)| {
                    if is_cw {
                        let rank = v % capacity;
                        encoding::write_codeword(kind, &mut w, rank);
                        Item::Codeword(rank)
                    } else {
                        // Instruction words must not collide with escape
                        // opcodes under the byte-level schemes.
                        let word = (14 << 26) | (v & 0x03ff_ffff);
                        encoding::write_insn(kind, &mut w, word);
                        Item::Insn(word)
                    }
                })
                .collect();
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            for want in &expected {
                let got = read_item(kind, &mut r);
                assert_eq!(got.as_ref(), Some(want));
            }
        }
    }
}

/// Compressing any straight-line program of subset instructions round-trips,
/// and never grows the text+dictionary beyond the original plus the nibble
/// scheme's worst-case escape overhead.
#[test]
fn compressor_roundtrip_random_programs() {
    use codense::ppc::reg::Gpr;
    let mut rng = Rng::new(0x11AC_0007);
    for _ in 0..CASES {
        let len = rng.range(8, 199);
        let mut code = Vec::with_capacity(len);
        for _ in 0..len {
            let r = Gpr::new(3 + rng.below(6) as u8).unwrap();
            let imm = rng.range(0, 127) as i16 - 64;
            let insn = match rng.below(6) {
                0 => Insn::Addi { rt: r, ra: r, si: imm },
                1 => Insn::Lwz { rt: r, ra: Gpr::new(1).unwrap(), d: imm & !3 },
                2 => Insn::Stw { rs: r, ra: Gpr::new(1).unwrap(), d: imm & !3 },
                3 => Insn::Add { rt: r, ra: r, rb: r, rc: false },
                4 => Insn::Ori { ra: r, rs: r, ui: imm as u16 },
                _ => Insn::Cmpwi { bf: codense::ppc::reg::CR0, ra: r, si: imm },
            };
            code.push(encode(&insn));
        }
        let mut module = ObjectModule::new("prop");
        module.code = code;
        for config in [CompressionConfig::baseline(), CompressionConfig::nibble_aligned()] {
            let c = Compressor::new(config).compress(&module).unwrap();
            verify(&module, &c).unwrap();
            let total = c.text_bytes() + c.dictionary_bytes();
            // Worst case: nothing compresses; nibble escapes add 1/8.
            assert!(total as f64 <= module.text_bytes() as f64 * 1.13 + 2.0);
        }
    }
}

/// Programs with branches: compression preserves every branch target.
#[test]
fn compressor_preserves_branches() {
    use codense::ppc::asm::Assembler;
    use codense::ppc::reg::{CR0, R3};
    let mut rng = Rng::new(0x11AC_0008);
    for _ in 0..CASES {
        let body_len = rng.range(2, 39);
        let branches = rng.range(1, 5);
        let mut a = Assembler::new();
        // Label every instruction so arbitrary targets are expressible.
        for i in 0..body_len {
            a.label(&format!("L{i}"));
            a.emit(Insn::Addi { rt: R3, ra: R3, si: (i % 7) as i16 });
        }
        a.label(&format!("L{body_len}"));
        for j in 0..branches {
            a.label(&format!("B{j}"));
            let to = rng.below(40) % (body_len + 1);
            a.bne(CR0, &format!("L{to}"));
        }
        a.emit(Insn::Sc);
        let mut module = ObjectModule::new("prop-br");
        module.code = a.finish().unwrap();
        assert_eq!(module.validate(), Ok(()));
        for config in [CompressionConfig::baseline(), CompressionConfig::nibble_aligned()] {
            let c = Compressor::new(config).compress(&module).unwrap();
            assert_eq!(verify(&module, &c), Ok(()));
        }
    }
}
