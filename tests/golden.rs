//! Golden-snapshot regression suite for the compression pipeline.
//!
//! Each test compresses the full deterministic synthetic benchmark suite
//! under one encoding and renders a snapshot record per benchmark:
//! compression ratio, Fig-9 composition fractions, dictionary size, and the
//! first entries of the dictionary in greedy pick order. The rendered JSON
//! is compared byte-for-byte against the checked-in golden under
//! `tests/golden/`.
//!
//! Any intentional change to the greedy selector, layout, or encodings will
//! show up here as a diff. To re-bless the goldens after such a change:
//!
//! ```text
//! CODENSE_BLESS=1 cargo test --test golden
//! git diff tests/golden/   # review every changed number before committing
//! ```
//!
//! A missing golden file fails with the same instruction, so the flow for a
//! new encoding is identical.

use codense::prelude::*;

/// Number of leading dictionary entries (in pick order) pinned per bench.
const PINNED_ENTRIES: usize = 8;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the checked-in golden, or rewrites the golden
/// when `CODENSE_BLESS=1` is set.
fn check_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var("CODENSE_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nmissing or unreadable golden; run `CODENSE_BLESS=1 cargo test --test \
             golden` to (re)generate it, then review the diff",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {file}; if the change is intentional, re-bless with \
         `CODENSE_BLESS=1 cargo test --test golden` and review `git diff tests/golden/`"
    );
}

/// Renders the snapshot record for one suite under one config. Floats are
/// formatted at fixed precision so the byte comparison is well-defined.
fn render_snapshot(encoding_name: &str, config: &CompressionConfig) -> String {
    render_snapshot_with(encoding_name, config, false)
}

/// [`render_snapshot`] for the MIPS suite: same record format, but the
/// compressor is pointed at the MIPS backend and the benchmarks come from
/// the MIPS lowering of the synthetic suite.
fn render_snapshot_mips(encoding_name: &str, config: &CompressionConfig) -> String {
    render_suite(encoding_name, config, false, codense::codegen::generate_suite_mips(), |c| {
        c.with_isa(IsaRef(&codense::mips::ISA))
    })
}

/// [`render_snapshot`], optionally routed through `compress_masked` with an
/// all-cold (nothing exempt) hotness mask — which must be indistinguishable
/// from the plain path.
fn render_snapshot_with(encoding_name: &str, config: &CompressionConfig, all_cold: bool) -> String {
    // The PPC path deliberately leaves the compressor at its default ISA so
    // these goldens also pin the default-construction behavior.
    render_suite(encoding_name, config, all_cold, codense::codegen::generate_suite(), |c| c)
}

fn render_suite(
    encoding_name: &str,
    config: &CompressionConfig,
    all_cold: bool,
    suite: Vec<ObjectModule>,
    bind_isa: impl Fn(Compressor) -> Compressor,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"encoding\": \"{encoding_name}\",\n"));
    out.push_str("  \"benches\": {\n");
    for (i, module) in suite.iter().enumerate() {
        let compressor = bind_isa(Compressor::new(config.clone()));
        let c = if all_cold {
            compressor.compress_masked(module, &vec![false; module.len()])
        } else {
            compressor.compress(module)
        }
        .unwrap_or_else(|e| panic!("{}: {e}", module.name));
        verify(module, &c).unwrap_or_else(|e| panic!("{}: {e}", module.name));
        let frac = c.composition().fractions();
        let entries: Vec<String> = c
            .dictionary
            .entries()
            .iter()
            .take(PINNED_ENTRIES)
            .map(|e| {
                let words: Vec<String> = e.words.iter().map(|w| format!("{w:08x}")).collect();
                format!("\"{}\"", words.join(" "))
            })
            .collect();
        out.push_str(&format!("    \"{}\": {{\n", module.name));
        out.push_str(&format!("      \"ratio\": \"{:.6}\",\n", c.compression_ratio()));
        out.push_str(&format!("      \"text_bytes\": {},\n", c.text_bytes()));
        out.push_str(&format!("      \"dictionary_entries\": {},\n", c.dictionary.len()));
        out.push_str(&format!("      \"dictionary_bytes\": {},\n", c.dictionary_bytes()));
        out.push_str(&format!("      \"overflow_slots\": {},\n", c.overflow_table.len()));
        out.push_str(&format!(
            "      \"composition\": [\"{:.6}\", \"{:.6}\", \"{:.6}\", \"{:.6}\"],\n",
            frac[0], frac[1], frac[2], frac[3]
        ));
        out.push_str(&format!("      \"first_picks\": [{}]\n", entries.join(", ")));
        out.push_str(&format!("    }}{}\n", if i + 1 < suite.len() { "," } else { "" }));
    }
    out.push_str("  }\n}\n");
    out
}

#[test]
fn golden_baseline() {
    check_golden("baseline.json", &render_snapshot("baseline", &CompressionConfig::baseline()));
}

#[test]
fn golden_onebyte() {
    check_golden(
        "onebyte.json",
        &render_snapshot("onebyte", &CompressionConfig::small_dictionary(256)),
    );
}

#[test]
fn golden_nibble() {
    check_golden("nibble.json", &render_snapshot("nibble", &CompressionConfig::nibble_aligned()));
}

#[test]
fn golden_huffman() {
    check_golden("huffman.json", &render_snapshot("huffman", &CompressionConfig::huffman()));
}

/// The refinement selector's output, pinned over the nibble encoding: any
/// change to the hill climb (trial order, acceptance rule, cost model)
/// shows up here as a reviewable diff.
#[test]
fn golden_refine() {
    let config = CompressionConfig::nibble_aligned();
    let snapshot =
        render_suite("nibble", &config, false, codense::codegen::generate_suite(), |c| {
            c.with_selector(SelectorKind::Refine)
        });
    check_golden("refine.json", &snapshot);
}

#[test]
fn golden_mips_baseline() {
    check_golden(
        "mips_baseline.json",
        &render_snapshot_mips("baseline", &CompressionConfig::baseline()),
    );
}

#[test]
fn golden_mips_onebyte() {
    check_golden(
        "mips_onebyte.json",
        &render_snapshot_mips("onebyte", &CompressionConfig::small_dictionary(256)),
    );
}

#[test]
fn golden_mips_nibble() {
    check_golden(
        "mips_nibble.json",
        &render_snapshot_mips("nibble", &CompressionConfig::nibble_aligned()),
    );
}

/// Binding the compressor explicitly to the PowerPC backend must be
/// byte-identical to the default construction — the multi-ISA refactor may
/// not perturb any PPC output.
#[test]
fn ppc_isa_binding_matches_default() {
    let config = CompressionConfig::nibble_aligned();
    let explicit =
        render_suite("nibble", &config, false, codense::codegen::generate_suite(), |c| {
            c.with_isa(IsaRef(&codense::ppc::ISA))
        });
    assert_eq!(explicit, render_snapshot("nibble", &config), "explicit PPC ISA drifted");
}

/// The hybrid all-cold edge case: `compress_masked` with nothing exempt is
/// pinned to its own golden AND must stay byte-identical to the plain
/// `compress` golden — the masked path may not perturb unmasked output.
#[test]
fn golden_hybrid_all_cold() {
    let snapshot = render_snapshot_with("nibble", &CompressionConfig::nibble_aligned(), true);
    check_golden("hybrid_all_cold.json", &snapshot);
    let plain = std::fs::read_to_string(golden_path("nibble.json")).unwrap();
    assert_eq!(snapshot, plain, "all-cold masked compression drifted from plain compression");
}
