#!/bin/sh
# Tier-1 verification gate: offline build, full test suite, formatting.
# Run from anywhere; operates on the repository containing this script.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --examples --release"
cargo build --examples --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> golden snapshot suite"
cargo test -q --test golden

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fuzz smoke (500 cases)"
./target/release/codense fuzz --cases 500 --seed 1

echo "==> metrics determinism smoke (repro, --jobs 1 vs --jobs 8)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/codense repro --jobs 1 --metrics "$tmp/j1.json" >/dev/null
./target/release/codense repro --jobs 8 --metrics "$tmp/j8.json" >/dev/null
# Compare only the counters section; timings are wall-clock and may differ.
sed -n '/"counters"/,/}/p' "$tmp/j1.json" > "$tmp/j1.counters"
sed -n '/"counters"/,/}/p' "$tmp/j8.json" > "$tmp/j8.counters"
diff -u "$tmp/j1.counters" "$tmp/j8.counters"

echo "verify: OK"
