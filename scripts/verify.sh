#!/bin/sh
# Tier-1 verification gate: offline build, full test suite, formatting.
# Run from anywhere; operates on the repository containing this script.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
