#!/bin/sh
# Tier-1 verification gate: offline build, full test suite, formatting.
# Run from anywhere; operates on the repository containing this script.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --examples --release"
cargo build --examples --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> golden snapshot suite"
cargo test -q --test golden

echo "==> serve protocol / concurrency / cache batteries"
cargo test -q -p codense-service --test protocol --test concurrency --test cache

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fuzz smoke (500 cases)"
./target/release/codense fuzz --cases 500 --seed 1

echo "==> cross-ISA fuzz smoke (mips, 500 cases)"
./target/release/codense fuzz --isa mips --cases 500 --seed 1

echo "==> metrics determinism smoke (repro, --jobs 1 vs --jobs 8)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/codense repro --jobs 1 --metrics "$tmp/j1.json" >/dev/null
./target/release/codense repro --jobs 8 --metrics "$tmp/j8.json" >/dev/null
# Compare only the counters section; timings are wall-clock and may differ.
sed -n '/"counters"/,/}/p' "$tmp/j1.json" > "$tmp/j1.counters"
sed -n '/"counters"/,/}/p' "$tmp/j8.json" > "$tmp/j8.counters"
diff -u "$tmp/j1.counters" "$tmp/j8.counters"

echo "==> per-ISA gate (mips repro + counters --jobs 1 vs --jobs 8)"
./target/release/codense repro --isa mips --jobs 1 --metrics "$tmp/m1.json" >/dev/null
./target/release/codense repro --isa mips --jobs 8 --metrics "$tmp/m8.json" >/dev/null
sed -n '/"counters"/,/}/p' "$tmp/m1.json" > "$tmp/m1.counters"
sed -n '/"counters"/,/}/p' "$tmp/m8.json" > "$tmp/m8.counters"
diff -u "$tmp/m1.counters" "$tmp/m8.counters"
# The checked-in BENCH_isa.json must match a fresh run of both backends.
./target/release/codense repro --isa both --out "$tmp/BENCH_isa.json" >/dev/null
diff -u BENCH_isa.json "$tmp/BENCH_isa.json"

echo "==> ratio gate (greedy/refine x nibble/huffman vs checked-in BENCH_ratio.json)"
# Compression is deterministic, so the per-bench ratio artifact must
# reproduce byte-for-byte; any selector or encoding drift shows up as a
# diff here. This also re-asserts the headline claim pinned in the
# artifact: refine+huffman beats greedy+nibble on both ISAs.
./target/release/codense repro --isa both --ratio-out "$tmp/BENCH_ratio.json" >/dev/null
diff -u BENCH_ratio.json "$tmp/BENCH_ratio.json"

echo "==> hybrid determinism gate (profile + hybrid, --jobs 1 vs --jobs 8)"
for j in 1 8; do
    ./target/release/codense --jobs "$j" --metrics "$tmp/hybrid-$j.metrics.json" \
        profile --bench quicksort --out "$tmp/profile-$j.json" >/dev/null
    ./target/release/codense --jobs "$j" hybrid --bench quicksort --coverage 0.5 \
        > "$tmp/hybrid-$j.out"
    sed -n '/"counters"/,/}/p' "$tmp/hybrid-$j.metrics.json" > "$tmp/hybrid-$j.counters"
done
# The profile artifact and the counters section are byte-identical at any
# --jobs; the hybrid report carries no wall-clock data, so it is too.
diff -u "$tmp/profile-1.json" "$tmp/profile-8.json"
diff -u "$tmp/hybrid-1.counters" "$tmp/hybrid-8.counters"
diff -u "$tmp/hybrid-1.out" "$tmp/hybrid-8.out"

echo "==> serve smoke (loadgen -c 1, zero failures, counters --jobs 1 vs --jobs 8)"
for j in 1 8; do
    log="$tmp/serve-$j.log"
    : > "$log"
    ./target/release/codense --jobs "$j" serve --addr 127.0.0.1:0 --queue-depth 8 \
        > "$log" 2>&1 &
    serve_pid=$!
    addr=""
    i=0
    while [ "$i" -lt 100 ]; do
        addr="$(sed -n 's/^serving on //p' "$log" || true)"
        if [ -n "$addr" ]; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "serve --jobs $j never reported its address" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    # loadgen byte-compares every response against the in-process result and
    # exits nonzero if any request failed, so set -e enforces zero failures.
    ./target/release/codense loadgen --addr "$addr" --requests 16 --connections 1 \
        --bench compress --encoding nibble --server-jobs "$j" --server-queue-depth 8 \
        --metrics-out "$tmp/serve-$j.metrics.json" \
        --out "$tmp/BENCH_serve-$j.json"
    # Huffman must be servable over the same connection settings: the
    # responses are byte-compared against an in-process huffman+refine
    # compression, covering the codec tag and the selector byte end-to-end.
    ./target/release/codense loadgen --addr "$addr" --requests 8 --connections 1 \
        --bench compress --encoding huffman --selector refine \
        --server-jobs "$j" --server-queue-depth 8 \
        --out "$tmp/BENCH_serve-huffman-$j.json" --shutdown
    wait "$serve_pid"
    # Counters only: the timings section carries wall-clock data.
    sed -n '/"counters"/,/}/p' "$tmp/serve-$j.metrics.json" > "$tmp/serve-$j.counters"
done
diff -u "$tmp/serve-1.counters" "$tmp/serve-8.counters"

echo "==> loadsweep smoke (open-loop pipelining + cache-hit ratio > 0.9)"
log="$tmp/serve-sweep.log"
: > "$log"
./target/release/codense --jobs 8 serve --addr 127.0.0.1:0 --queue-depth 32 \
    > "$log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ "$i" -lt 100 ]; do
    addr="$(sed -n 's/^serving on //p' "$log" || true)"
    if [ -n "$addr" ]; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve (loadsweep smoke) never reported its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# loadsweep byte-compares every open-loop and cache-sweep response and
# exits nonzero on any failure, so set -e enforces zero failures.
./target/release/codense loadsweep --addr "$addr" --rates 50,200,800 \
    --point-requests 32 --unique 1,4,16 --cache-requests 64 \
    --bench compress --encoding nibble \
    --out "$tmp/BENCH_load.json" --shutdown
wait "$serve_pid"
# The distinct=1 cache point must be nearly all hits: 64 requests for one
# module are 1 miss + 63 hits, a 0.98 ratio; gate at > 0.9.
awk -F'"hit_ratio": ' '/"distinct": 1,/ {
    split($2, a, ","); if (a[1] + 0 > 0.9) found = 1
} END { exit !found }' "$tmp/BENCH_load.json" || {
    echo "loadsweep: distinct=1 cache point hit ratio not > 0.9" >&2
    exit 1
}

echo "==> speed-regression smoke (interned matchfinder vs checked-in baseline)"
# Times only the interned engine (3 samples) and gates against the
# committed BENCH_speed.json with the default 3x floor: generous enough
# for any shared-runner wobble, tight enough to catch an order-of-
# magnitude regression of the matchfinder. Re-bless with
#   codense speed --samples 9 --out BENCH_speed.json
./target/release/codense speed --no-reference --samples 3 \
    --out "$tmp/BENCH_speed.json" --check BENCH_speed.json

echo "==> corpus smoke (100K insns: generate -> compress -> verify -> VM, counters --jobs 1 vs --jobs 8)"
# One deterministic SPEC-scale corpus point end to end: build the 100K-insn
# PPC program, compress and verify it under all four encodings, and run it
# to completion on both VM fetch paths (re-parsing and predecoded). The
# telemetry counters — matchfinder work, verify runs, VM fetch-path event
# counts — must be byte-identical at any --jobs, like every other artifact.
./target/release/codense --jobs 1 --metrics "$tmp/scale1.json" scale \
    --points 100k --isa ppc --trials 1 --out "$tmp/scale1.out.json" >/dev/null
./target/release/codense --jobs 8 --metrics "$tmp/scale8.json" scale \
    --points 100k --isa ppc --trials 1 --out "$tmp/scale8.out.json" >/dev/null
sed -n '/"counters"/,/}/p' "$tmp/scale1.json" > "$tmp/scale1.counters"
sed -n '/"counters"/,/}/p' "$tmp/scale8.json" > "$tmp/scale8.counters"
diff -u "$tmp/scale1.counters" "$tmp/scale8.counters"

echo "==> corpus speed floor (100K-insn compression vs checked-in BENCH_speed_corpus.json)"
# Same contract as the kernel speed gate, at SPEC scale: the interned
# matchfinder must stay within the default 3x floor of the blessed corpus
# throughput. Re-bless with
#   codense speed --corpus 100k --samples 5 --out BENCH_speed_corpus.json
./target/release/codense speed --corpus 100k --samples 3 \
    --out "$tmp/BENCH_speed_corpus.json" --check BENCH_speed_corpus.json

echo "verify: OK"
