#!/bin/sh
# Tier-1 verification gate: offline build, full test suite, formatting.
# Run from anywhere; operates on the repository containing this script.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fuzz smoke (500 cases)"
./target/release/codense fuzz --cases 500 --seed 1

echo "verify: OK"
