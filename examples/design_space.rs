//! Explore the compression design space programmatically: the sweep APIs
//! behind the paper's Figures 4–8 plus the encoding-split study, on one
//! benchmark.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```

use codense::core::sweep::{
    codeword_count_sweep, entry_len_sweep, small_dictionary_sweep, text_nibbles_under_split,
    NibbleSplit,
};
use codense::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88ksim".to_owned());
    let module =
        codense::codegen::benchmark(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    println!("design space for `{}` ({} bytes of text)\n", module.name, module.text_bytes());

    println!("dictionary entry length (baseline codewords):");
    for (len, ratio) in entry_len_sweep(&module, &[1, 2, 4, 8])? {
        println!("  entries <= {len} insns: {:.1}%", 100.0 * ratio);
    }

    println!("\nnumber of codewords (baseline, one greedy run, prefix-exact):");
    for (k, ratio) in codeword_count_sweep(&module, 4, &[16, 128, 1024, 8192])? {
        println!("  {k:5} codewords: {:.1}%", 100.0 * ratio);
    }

    println!("\nsmall dictionaries (1-byte codewords):");
    for (n, ratio) in small_dictionary_sweep(&module, &[8, 16, 32])? {
        println!("  {n:2} entries ({:3} B): {:.1}%", n * 16, 100.0 * ratio);
    }

    println!("\nnibble codeword-space splits (analytic, text nibbles):");
    let compressed = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module)?;
    verify(&module, &compressed)?;
    let base = text_nibbles_under_split(&compressed, NibbleSplit::SHIPPED)?;
    for (label, split) in [
        ("shipped  8/3/2/2", NibbleSplit::SHIPPED),
        ("balanced 6/4/3/2", NibbleSplit { n4: 6, n8: 4, n12: 3, n16: 2 }),
        ("mid      4/7/2/2", NibbleSplit { n4: 4, n8: 7, n12: 2, n16: 2 }),
    ] {
        let n = text_nibbles_under_split(&compressed, split)?;
        println!(
            "  {label}: {n} nibbles ({:+.2}% vs shipped)",
            100.0 * (n as f64 - base as f64) / base as f64
        );
    }

    println!(
        "\nchosen operating point (nibble, entries <= 4, full codeword space): {:.1}%",
        100.0 * compressed.compression_ratio()
    );
    Ok(())
}
