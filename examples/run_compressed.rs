//! Execute a compressed program on the compressed-program processor model
//! (the paper's Fig 3): fetch codewords from compressed instruction memory,
//! expand them through the dictionary, and issue the original instruction
//! stream — then prove the run is bit-identical to the uncompressed one.
//!
//! ```sh
//! cargo run --release --example run_compressed
//! ```

use codense::prelude::*;
use codense::vm::{kernels, run::run};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("kernel        encoding   exit     steps    bits/insn fetched");
    println!("-------------------------------------------------------------");
    for kernel in kernels::all() {
        // Reference: uncompressed execution.
        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = LinearFetcher::new(kernel.module.code.clone());
        let reference = run(&mut machine, &mut fetch, 0, 10_000_000)?;
        println!(
            "{:12}  {:9}  {:7}  {:7}  {:.2}",
            kernel.name,
            "none",
            reference.exit_code,
            reference.steps,
            reference.stats.bits_per_insn()
        );
        assert_eq!(reference.exit_code, kernel.expected);

        for (tag, config) in [
            ("baseline", CompressionConfig::baseline()),
            ("nibble", CompressionConfig::nibble_aligned()),
        ] {
            let compressed = Compressor::new(config).compress(&kernel.module)?;
            verify(&kernel.module, &compressed)?;

            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = CompressedFetcher::new(&compressed);
            let result = run(&mut machine, &mut fetch, 0, 10_000_000)?;
            assert_eq!(result.exit_code, reference.exit_code, "{} {tag}", kernel.name);
            assert_eq!(result.steps, reference.steps, "{} {tag}", kernel.name);
            println!(
                "{:12}  {:9}  {:7}  {:7}  {:.2}",
                "",
                tag,
                result.exit_code,
                result.steps,
                result.stats.bits_per_insn()
            );
        }
    }
    println!("\nall kernels executed identically under compression");
    Ok(())
}
