//! Compare every implemented code-compression method on one benchmark: the
//! paper's dictionary schemes against CCRP (Huffman-compressed cache lines),
//! Liao's call-dictionary / mini-subroutines, and Unix-compress LZW.
//!
//! ```sh
//! cargo run --release --example compare_methods [benchmark]
//! ```

use codense::ccrp::{self, CcrpConfig};
use codense::liao::{self, LiaoMethod};
use codense::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "go".to_owned());
    let module = codense::codegen::benchmark(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}` (try compress/gcc/go/…)"));
    println!("benchmark `{}`: {} bytes of text\n", module.name, module.text_bytes());
    println!("method                     ratio    notes");
    println!("--------------------------------------------------------------");

    let print = |method: &str, ratio: f64, notes: String| {
        println!("{method:25}  {:5.1}%   {notes}", 100.0 * ratio);
    };

    for (label, config) in [
        ("dictionary, 2-byte cw", CompressionConfig::baseline()),
        ("dictionary, 1-byte cw/32", CompressionConfig::small_dictionary(32)),
        ("dictionary, nibble cw", CompressionConfig::nibble_aligned()),
    ] {
        let c = Compressor::new(config).compress(&module)?;
        verify(&module, &c)?;
        print(
            label,
            c.compression_ratio(),
            format!("{} entries, {} B dictionary", c.dictionary.len(), c.dictionary_bytes()),
        );
    }

    let c = ccrp::compress(&module, CcrpConfig::default());
    assert_eq!(c.decompress_all().as_deref(), Some(&module.text_image()[..]));
    print(
        "CCRP (Huffman lines)",
        c.compression_ratio(),
        format!("{} lines, {} B LAT", c.line_count(), c.lat_bytes()),
    );

    let hw = liao::compress(&module, LiaoMethod::CallDictionary, 4);
    print(
        "Liao call-dictionary",
        hw.compression_ratio(),
        format!("{} sequences (>=2 insns each)", hw.dictionary.len()),
    );
    let sw = liao::compress(&module, LiaoMethod::MiniSubroutine, 4);
    print(
        "Liao mini-subroutines",
        sw.compression_ratio(),
        "software-only; call overhead at run time".to_owned(),
    );

    let image = module.text_image();
    let packed = codense::lzw::compress(&image);
    assert_eq!(codense::lzw::decompress(&packed).as_deref(), Some(&image[..]));
    print(
        "Unix compress (LZW)",
        packed.len() as f64 / image.len() as f64,
        "not executable in place; whole-image decompression".to_owned(),
    );

    println!(
        "\nthe nibble-aligned dictionary scheme keeps random access + in-place execution\n\
         while staying within a few points of LZW — the paper's headline result"
    );
    Ok(())
}
