//! Embedded-firmware scenario: a cost-constrained controller whose ROM
//! budget forces a *small* on-chip dictionary (the paper's §4.1.2: "some
//! implementations of a compressed code processor may be constrained to use
//! small dictionaries").
//!
//! This example builds a firmware-like control program with the synthetic
//! compiler, then explores the ROM/dictionary trade-off: how much instruction
//! ROM a 128/256/512-byte dictionary saves, and what the break-even
//! dictionary size is.
//!
//! ```sh
//! cargo run --release --example embedded_firmware
//! ```

use codense::codegen::BenchProfile;
use codense::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small control-oriented firmware: many tiny handler functions, heavy
    // byte I/O, dense switch dispatch — the "control oriented embedded
    // applications" of the paper's introduction.
    let profile = BenchProfile {
        name: "firmware",
        seed: 0xF1A3_0001,
        functions: 40,
        stmts: (4, 10),
        locals: (2, 6),
        expr_depth: 3,
        globals: 48,
        byte_ops: 0.6,
        stmt_weights: [10, 8, 3, 4, 4, 4, 6],
        cr1_bias: 0.3,
        else_prob: 0.35,
        switch_cases: (4, 10),
        giant_funcs: 0,
    };
    let module = codense::codegen::generate_module(&profile);
    println!(
        "firmware image: {} instructions = {} bytes of instruction ROM\n",
        module.len(),
        module.text_bytes()
    );

    println!("dictionary entries | dict ROM | text ROM | total | saved");
    println!("-------------------+----------+----------+-------+------");
    let mut best: Option<(usize, usize)> = None;
    for entries in [4usize, 8, 16, 32] {
        let compressed =
            Compressor::new(CompressionConfig::small_dictionary(entries)).compress(&module)?;
        verify(&module, &compressed)?;
        let total = compressed.text_bytes() + compressed.dictionary_bytes();
        let saved = module.text_bytes() as i64 - total as i64;
        println!(
            "{:18} | {:8} | {:8} | {:5} | {:5}",
            compressed.dictionary.len(),
            compressed.dictionary_bytes(),
            compressed.text_bytes(),
            total,
            saved,
        );
        if best.is_none_or(|(_, t)| total < t) {
            best = Some((entries, total));
        }
    }
    let (best_entries, best_total) = best.expect("at least one configuration");
    println!(
        "\nbest small-dictionary config: {best_entries} entries -> {best_total} bytes \
         ({:.1}% of the original ROM)",
        100.0 * best_total as f64 / module.text_bytes() as f64
    );

    // For contrast: what the unconstrained nibble-aligned scheme would do if
    // the decoder budget allowed it.
    let aggressive = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module)?;
    verify(&module, &aggressive)?;
    println!(
        "unconstrained nibble-aligned scheme: {:.1}% of original ROM ({} dictionary entries)",
        100.0 * aggressive.compression_ratio(),
        aggressive.dictionary.len(),
    );
    Ok(())
}
