//! Quickstart: compress a benchmark program, inspect the result, and verify
//! the round trip.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use codense::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic synthetic stand-in for SPEC CINT95 `ijpeg` compiled
    // with GCC -O2 for PowerPC (statically linked).
    let module = codense::codegen::benchmark("ijpeg").expect("known benchmark");
    println!(
        "program `{}`: {} instructions, {} bytes of text, {} functions",
        module.name,
        module.len(),
        module.text_bytes(),
        module.functions.len()
    );

    for (label, config) in [
        ("baseline (2-byte codewords)", CompressionConfig::baseline()),
        ("small dictionary (1-byte codewords)", CompressionConfig::small_dictionary(32)),
        ("nibble-aligned (4/8/12/16-bit codewords)", CompressionConfig::nibble_aligned()),
    ] {
        let compressed = Compressor::new(config).compress(&module)?;
        // Prove the compressed program expands back to the original.
        verify(&module, &compressed)?;
        println!(
            "\n{label}\n  text {} -> {} bytes, dictionary {} entries / {} bytes",
            module.text_bytes(),
            compressed.text_bytes(),
            compressed.dictionary.len(),
            compressed.dictionary_bytes(),
        );
        println!(
            "  compression ratio {:.1}% ({:.1}% smaller)",
            100.0 * compressed.compression_ratio(),
            100.0 * (1.0 - compressed.compression_ratio()),
        );
    }

    // Peek at the hottest dictionary entries of the aggressive scheme.
    let compressed = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module)?;
    println!("\nhottest dictionary entries (shortest codewords):");
    for rank in 0..5 {
        let entry = compressed.dictionary.entry_of_rank(rank);
        let e = compressed.dictionary.entry(entry);
        println!("  rank {rank} (replaced {} occurrences):", e.replaced);
        for &w in &e.words {
            println!("    {}", codense::ppc::disasm::disassemble(w, 0));
        }
    }
    Ok(())
}
