//! The structured instruction representation.

use crate::reg::{CrField, Gpr, Spr};

/// A decoded PowerPC instruction from the implemented subset.
///
/// Field names follow the PowerPC architecture books: `rt` target register,
/// `rs` source register, `ra`/`rb` operand registers, `d`/`si`/`ui`
/// displacement and immediates, `bf` compare result field, `bo`/`bi` branch
/// operation and condition bit, `rc` record bit (the trailing `.` in
/// mnemonics).
///
/// Branch displacements (`li`, `bd`) are stored as *byte* offsets relative to
/// the branch's own address (or absolute byte addresses when `aa` is set),
/// always a multiple of 4 in this representation; the encoder packs them into
/// the word-granular architected fields.
///
/// Words outside the subset decode to [`Insn::Illegal`], which re-encodes to
/// the identical word, so every 32-bit value round-trips losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names follow the architecture-book convention described above
pub enum Insn {
    // ---- D-form arithmetic -------------------------------------------------
    /// `addi rt,ra,si` (with `ra = r0` reads 0: the `li` idiom).
    Addi { rt: Gpr, ra: Gpr, si: i16 },
    /// `addis rt,ra,si` — add immediate shifted (the `lis` idiom with `ra = r0`).
    Addis { rt: Gpr, ra: Gpr, si: i16 },
    /// `addic rt,ra,si` — add immediate carrying.
    Addic { rt: Gpr, ra: Gpr, si: i16 },
    /// `addic. rt,ra,si` — add immediate carrying, record CR0.
    AddicRc { rt: Gpr, ra: Gpr, si: i16 },
    /// `subfic rt,ra,si` — subtract from immediate carrying.
    Subfic { rt: Gpr, ra: Gpr, si: i16 },
    /// `mulli rt,ra,si` — multiply low immediate.
    Mulli { rt: Gpr, ra: Gpr, si: i16 },

    // ---- D-form logical ----------------------------------------------------
    /// `ori ra,rs,ui` (`ori r0,r0,0` is the canonical `nop`).
    Ori { ra: Gpr, rs: Gpr, ui: u16 },
    /// `oris ra,rs,ui`.
    Oris { ra: Gpr, rs: Gpr, ui: u16 },
    /// `xori ra,rs,ui`.
    Xori { ra: Gpr, rs: Gpr, ui: u16 },
    /// `xoris ra,rs,ui`.
    Xoris { ra: Gpr, rs: Gpr, ui: u16 },
    /// `andi. ra,rs,ui` — always records CR0.
    AndiRc { ra: Gpr, rs: Gpr, ui: u16 },
    /// `andis. ra,rs,ui` — always records CR0.
    AndisRc { ra: Gpr, rs: Gpr, ui: u16 },

    // ---- compares ----------------------------------------------------------
    /// `cmpwi bf,ra,si` — signed compare with immediate.
    Cmpwi { bf: CrField, ra: Gpr, si: i16 },
    /// `cmplwi bf,ra,ui` — unsigned (logical) compare with immediate.
    Cmplwi { bf: CrField, ra: Gpr, ui: u16 },
    /// `cmpw bf,ra,rb` — signed register compare.
    Cmpw { bf: CrField, ra: Gpr, rb: Gpr },
    /// `cmplw bf,ra,rb` — unsigned register compare.
    Cmplw { bf: CrField, ra: Gpr, rb: Gpr },

    // ---- D-form loads and stores -------------------------------------------
    /// `lwz rt,d(ra)` — load word and zero.
    Lwz { rt: Gpr, ra: Gpr, d: i16 },
    /// `lwzu rt,d(ra)` — load word with update of `ra`.
    Lwzu { rt: Gpr, ra: Gpr, d: i16 },
    /// `lbz rt,d(ra)` — load byte and zero.
    Lbz { rt: Gpr, ra: Gpr, d: i16 },
    /// `lbzu rt,d(ra)`.
    Lbzu { rt: Gpr, ra: Gpr, d: i16 },
    /// `lhz rt,d(ra)` — load halfword and zero.
    Lhz { rt: Gpr, ra: Gpr, d: i16 },
    /// `lhzu rt,d(ra)`.
    Lhzu { rt: Gpr, ra: Gpr, d: i16 },
    /// `lha rt,d(ra)` — load halfword algebraic (sign-extending).
    Lha { rt: Gpr, ra: Gpr, d: i16 },
    /// `lhau rt,d(ra)`.
    Lhau { rt: Gpr, ra: Gpr, d: i16 },
    /// `stw rs,d(ra)` — store word.
    Stw { rs: Gpr, ra: Gpr, d: i16 },
    /// `stwu rs,d(ra)` — store word with update (frame allocation idiom).
    Stwu { rs: Gpr, ra: Gpr, d: i16 },
    /// `stb rs,d(ra)`.
    Stb { rs: Gpr, ra: Gpr, d: i16 },
    /// `stbu rs,d(ra)`.
    Stbu { rs: Gpr, ra: Gpr, d: i16 },
    /// `sth rs,d(ra)`.
    Sth { rs: Gpr, ra: Gpr, d: i16 },
    /// `sthu rs,d(ra)`.
    Sthu { rs: Gpr, ra: Gpr, d: i16 },
    /// `lmw rt,d(ra)` — load multiple words into `rt..=r31` (epilogue idiom).
    Lmw { rt: Gpr, ra: Gpr, d: i16 },
    /// `stmw rs,d(ra)` — store multiple words from `rs..=r31` (prologue idiom).
    Stmw { rs: Gpr, ra: Gpr, d: i16 },

    // ---- X-form indexed loads and stores -----------------------------------
    /// `lwzx rt,ra,rb`.
    Lwzx { rt: Gpr, ra: Gpr, rb: Gpr },
    /// `lbzx rt,ra,rb`.
    Lbzx { rt: Gpr, ra: Gpr, rb: Gpr },
    /// `lhzx rt,ra,rb`.
    Lhzx { rt: Gpr, ra: Gpr, rb: Gpr },
    /// `stwx rs,ra,rb`.
    Stwx { rs: Gpr, ra: Gpr, rb: Gpr },
    /// `stbx rs,ra,rb`.
    Stbx { rs: Gpr, ra: Gpr, rb: Gpr },
    /// `sthx rs,ra,rb`.
    Sthx { rs: Gpr, ra: Gpr, rb: Gpr },

    // ---- XO-form arithmetic ------------------------------------------------
    /// `add rt,ra,rb`.
    Add { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `subf rt,ra,rb` — computes `rb - ra`.
    Subf { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `mullw rt,ra,rb`.
    Mullw { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `mulhw rt,ra,rb` — high 32 bits of the signed product.
    Mulhw { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `divw rt,ra,rb` — signed divide.
    Divw { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `divwu rt,ra,rb` — unsigned divide.
    Divwu { rt: Gpr, ra: Gpr, rb: Gpr, rc: bool },
    /// `neg rt,ra`.
    Neg { rt: Gpr, ra: Gpr, rc: bool },

    // ---- X-form logical ----------------------------------------------------
    /// `and ra,rs,rb`.
    And { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `or ra,rs,rb` (`or ra,rs,rs` is the `mr` idiom).
    Or { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `xor ra,rs,rb`.
    Xor { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `nand ra,rs,rb`.
    Nand { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `nor ra,rs,rb` (`nor ra,rs,rs` is the `not` idiom).
    Nor { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `andc ra,rs,rb` — and with complement.
    Andc { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `orc ra,rs,rb` — or with complement.
    Orc { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `slw ra,rs,rb` — shift left word.
    Slw { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `srw ra,rs,rb` — shift right word (logical).
    Srw { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `sraw ra,rs,rb` — shift right algebraic word.
    Sraw { ra: Gpr, rs: Gpr, rb: Gpr, rc: bool },
    /// `srawi ra,rs,sh` — shift right algebraic immediate.
    Srawi { ra: Gpr, rs: Gpr, sh: u8, rc: bool },
    /// `extsb ra,rs` — sign-extend byte.
    Extsb { ra: Gpr, rs: Gpr, rc: bool },
    /// `extsh ra,rs` — sign-extend halfword.
    Extsh { ra: Gpr, rs: Gpr, rc: bool },
    /// `cntlzw ra,rs` — count leading zeros.
    Cntlzw { ra: Gpr, rs: Gpr, rc: bool },

    // ---- M-form rotates ----------------------------------------------------
    /// `rlwinm ra,rs,sh,mb,me` — rotate left and mask (covers the `clrlwi`,
    /// `slwi`, `srwi`, `extrwi` idioms).
    Rlwinm { ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool },
    /// `rlwimi ra,rs,sh,mb,me` — rotate left and insert under mask.
    Rlwimi { ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool },

    // ---- branches ----------------------------------------------------------
    /// `b`/`ba`/`bl`/`bla` — unconditional branch; `li` is a byte offset
    /// (or absolute byte address when `aa`), range ±32 MiB, multiple of 4.
    B { li: i32, aa: bool, lk: bool },
    /// `bc`/`bca`/`bcl`/`bcla` — conditional branch; `bd` is a byte offset,
    /// range ±32 KiB, multiple of 4.
    Bc { bo: u8, bi: u8, bd: i16, aa: bool, lk: bool },
    /// `bclr`/`bclrl` — branch conditional to link register (`blr` idiom).
    Bclr { bo: u8, bi: u8, lk: bool },
    /// `bcctr`/`bcctrl` — branch conditional to count register (`bctr` idiom).
    Bcctr { bo: u8, bi: u8, lk: bool },

    // ---- condition register and SPRs ---------------------------------------
    /// `crxor bt,ba,bb` (`crclr` idiom when all three are equal).
    Crxor { bt: u8, ba: u8, bb: u8 },
    /// `mfcr rt`.
    Mfcr { rt: Gpr },
    /// `mtcrf fxm,rs` — move to CR fields selected by the 8-bit mask.
    Mtcrf { fxm: u8, rs: Gpr },
    /// `mfspr rt,spr` (`mflr`, `mfctr` idioms).
    Mfspr { rt: Gpr, spr: Spr },
    /// `mtspr spr,rs` (`mtlr`, `mtctr` idioms).
    Mtspr { spr: Spr, rs: Gpr },

    // ---- traps and system --------------------------------------------------
    /// `twi to,ra,si` — trap word immediate (used for bounds checks).
    Twi { to: u8, ra: Gpr, si: i16 },
    /// `sc` — system call. The `codense` VM uses it as the halt/exit hook.
    Sc,

    /// Any word outside the implemented subset, kept verbatim.
    Illegal(u32),
}

/// Standard branch operation (`BO`) field values.
pub mod bo {
    /// Branch always.
    pub const ALWAYS: u8 = 20;
    /// Branch if the condition bit is true.
    pub const IF_TRUE: u8 = 12;
    /// Branch if the condition bit is false.
    pub const IF_FALSE: u8 = 4;
    /// Decrement CTR, branch if CTR != 0 (`bdnz`).
    pub const DNZ: u8 = 16;
    /// Decrement CTR, branch if CTR == 0 (`bdz`).
    pub const DZ: u8 = 18;
}

impl Insn {
    /// Returns `true` for PC-relative branches (`b`/`bc` with `aa = 0`),
    /// the instructions the paper's compressor never places in the
    /// dictionary because their offsets must be patched after relocation.
    pub fn is_relative_branch(&self) -> bool {
        matches!(self, Insn::B { aa: false, .. } | Insn::Bc { aa: false, .. })
    }

    /// Returns `true` for any control-transfer instruction.
    pub fn is_branch(&self) -> bool {
        matches!(self, Insn::B { .. } | Insn::Bc { .. } | Insn::Bclr { .. } | Insn::Bcctr { .. })
    }

    /// Returns `true` for indirect branches (target comes from LR/CTR).
    /// These *are* compressible: no offset field needs patching.
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, Insn::Bclr { .. } | Insn::Bcctr { .. })
    }

    /// Returns `true` if executing this instruction writes the link register.
    pub fn writes_lr(&self) -> bool {
        match self {
            Insn::B { lk, .. }
            | Insn::Bc { lk, .. }
            | Insn::Bclr { lk, .. }
            | Insn::Bcctr { lk, .. } => *lk,
            Insn::Mtspr { spr: Spr::Lr, .. } => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn branch_classification() {
        let b = Insn::B { li: 16, aa: false, lk: false };
        let bc = Insn::Bc { bo: bo::IF_TRUE, bi: CR1.eq_bit(), bd: -8, aa: false, lk: false };
        let blr = Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false };
        let add = Insn::Add { rt: R3, ra: R4, rb: R5, rc: false };

        assert!(b.is_relative_branch() && b.is_branch());
        assert!(bc.is_relative_branch());
        assert!(!blr.is_relative_branch() && blr.is_indirect_branch());
        assert!(!add.is_branch());
    }

    #[test]
    fn lr_writers() {
        assert!(Insn::B { li: 0, aa: false, lk: true }.writes_lr());
        assert!(!Insn::B { li: 0, aa: false, lk: false }.writes_lr());
        assert!(Insn::Mtspr { spr: Spr::Lr, rs: R0 }.writes_lr());
        assert!(!Insn::Mtspr { spr: Spr::Ctr, rs: R0 }.writes_lr());
    }
}
