//! Instruction encoding: [`Insn`] → 32-bit word.

use crate::insn::Insn;
use crate::opcode::{primary as op, xo19, xo31};
use crate::reg::{CrField, Gpr, Spr};

fn d_form(opcd: u32, rt: Gpr, ra: Gpr, imm: u16) -> u32 {
    (opcd << 26) | (rt.field() << 21) | (ra.field() << 16) | imm as u32
}

fn x_form(rt: Gpr, ra: Gpr, rb: Gpr, xo: u32, rc: bool) -> u32 {
    (op::X31 << 26)
        | (rt.field() << 21)
        | (ra.field() << 16)
        | (rb.field() << 11)
        | (xo << 1)
        | rc as u32
}

fn cmp_form(opcd: u32, bf: CrField, ra: Gpr, rest: u32) -> u32 {
    (opcd << 26) | (bf.field() << 23) | (ra.field() << 16) | rest
}

fn spr_split(spr: Spr) -> u32 {
    let n = spr.number();
    ((n & 0x1f) << 5) | ((n >> 5) & 0x1f)
}

/// Encodes an instruction into its 32-bit PowerPC word.
///
/// [`Insn::Illegal`] re-encodes to the stored word verbatim, so
/// `encode(decode(w)) == w` for every `w`.
///
/// # Panics
///
/// Panics if a branch displacement is misaligned (not a multiple of 4) or out
/// of range for its field (`bd` beyond ±32 KiB, `li` beyond ±32 MiB), or if a
/// shift/mask/bit field exceeds 31.
pub fn encode(insn: &Insn) -> u32 {
    use Insn::*;
    match *insn {
        Addi { rt, ra, si } => d_form(op::ADDI, rt, ra, si as u16),
        Addis { rt, ra, si } => d_form(op::ADDIS, rt, ra, si as u16),
        Addic { rt, ra, si } => d_form(op::ADDIC, rt, ra, si as u16),
        AddicRc { rt, ra, si } => d_form(op::ADDIC_RC, rt, ra, si as u16),
        Subfic { rt, ra, si } => d_form(op::SUBFIC, rt, ra, si as u16),
        Mulli { rt, ra, si } => d_form(op::MULLI, rt, ra, si as u16),

        Ori { ra, rs, ui } => d_form(op::ORI, rs, ra, ui),
        Oris { ra, rs, ui } => d_form(op::ORIS, rs, ra, ui),
        Xori { ra, rs, ui } => d_form(op::XORI, rs, ra, ui),
        Xoris { ra, rs, ui } => d_form(op::XORIS, rs, ra, ui),
        AndiRc { ra, rs, ui } => d_form(op::ANDI_RC, rs, ra, ui),
        AndisRc { ra, rs, ui } => d_form(op::ANDIS_RC, rs, ra, ui),

        Cmpwi { bf, ra, si } => cmp_form(op::CMPWI, bf, ra, si as u16 as u32),
        Cmplwi { bf, ra, ui } => cmp_form(op::CMPLWI, bf, ra, ui as u32),
        Cmpw { bf, ra, rb } => cmp_form(op::X31, bf, ra, (rb.field() << 11) | (xo31::CMPW << 1)),
        Cmplw { bf, ra, rb } => cmp_form(op::X31, bf, ra, (rb.field() << 11) | (xo31::CMPLW << 1)),

        Lwz { rt, ra, d } => d_form(op::LWZ, rt, ra, d as u16),
        Lwzu { rt, ra, d } => d_form(op::LWZU, rt, ra, d as u16),
        Lbz { rt, ra, d } => d_form(op::LBZ, rt, ra, d as u16),
        Lbzu { rt, ra, d } => d_form(op::LBZU, rt, ra, d as u16),
        Lhz { rt, ra, d } => d_form(op::LHZ, rt, ra, d as u16),
        Lhzu { rt, ra, d } => d_form(op::LHZU, rt, ra, d as u16),
        Lha { rt, ra, d } => d_form(op::LHA, rt, ra, d as u16),
        Lhau { rt, ra, d } => d_form(op::LHAU, rt, ra, d as u16),
        Stw { rs, ra, d } => d_form(op::STW, rs, ra, d as u16),
        Stwu { rs, ra, d } => d_form(op::STWU, rs, ra, d as u16),
        Stb { rs, ra, d } => d_form(op::STB, rs, ra, d as u16),
        Stbu { rs, ra, d } => d_form(op::STBU, rs, ra, d as u16),
        Sth { rs, ra, d } => d_form(op::STH, rs, ra, d as u16),
        Sthu { rs, ra, d } => d_form(op::STHU, rs, ra, d as u16),
        Lmw { rt, ra, d } => d_form(op::LMW, rt, ra, d as u16),
        Stmw { rs, ra, d } => d_form(op::STMW, rs, ra, d as u16),

        Lwzx { rt, ra, rb } => x_form(rt, ra, rb, xo31::LWZX, false),
        Lbzx { rt, ra, rb } => x_form(rt, ra, rb, xo31::LBZX, false),
        Lhzx { rt, ra, rb } => x_form(rt, ra, rb, xo31::LHZX, false),
        Stwx { rs, ra, rb } => x_form(rs, ra, rb, xo31::STWX, false),
        Stbx { rs, ra, rb } => x_form(rs, ra, rb, xo31::STBX, false),
        Sthx { rs, ra, rb } => x_form(rs, ra, rb, xo31::STHX, false),

        Add { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::ADD, rc),
        Subf { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::SUBF, rc),
        Mullw { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::MULLW, rc),
        Mulhw { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::MULHW, rc),
        Divw { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::DIVW, rc),
        Divwu { rt, ra, rb, rc } => x_form(rt, ra, rb, xo31::DIVWU, rc),
        Neg { rt, ra, rc } => x_form(rt, ra, crate::reg::R0, xo31::NEG, rc),

        And { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::AND, rc),
        Or { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::OR, rc),
        Xor { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::XOR, rc),
        Nand { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::NAND, rc),
        Nor { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::NOR, rc),
        Andc { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::ANDC, rc),
        Orc { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::ORC, rc),
        Slw { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::SLW, rc),
        Srw { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::SRW, rc),
        Sraw { ra, rs, rb, rc } => x_form(rs, ra, rb, xo31::SRAW, rc),
        Srawi { ra, rs, sh, rc } => {
            assert!(sh < 32, "srawi shift must be 0..32");
            (op::X31 << 26)
                | (rs.field() << 21)
                | (ra.field() << 16)
                | ((sh as u32) << 11)
                | (xo31::SRAWI << 1)
                | rc as u32
        }
        Extsb { ra, rs, rc } => x_form(rs, ra, crate::reg::R0, xo31::EXTSB, rc),
        Extsh { ra, rs, rc } => x_form(rs, ra, crate::reg::R0, xo31::EXTSH, rc),
        Cntlzw { ra, rs, rc } => x_form(rs, ra, crate::reg::R0, xo31::CNTLZW, rc),

        Rlwinm { ra, rs, sh, mb, me, rc } => m_form(op::RLWINM, ra, rs, sh, mb, me, rc),
        Rlwimi { ra, rs, sh, mb, me, rc } => m_form(op::RLWIMI, ra, rs, sh, mb, me, rc),

        B { li, aa, lk } => {
            assert!(li % 4 == 0, "branch displacement must be word aligned");
            assert!(
                (-0x0200_0000..0x0200_0000).contains(&li),
                "b displacement out of 26-bit range: {li}"
            );
            (op::B << 26) | ((li as u32) & 0x03ff_fffc) | ((aa as u32) << 1) | lk as u32
        }
        Bc { bo, bi, bd, aa, lk } => {
            assert!(bd % 4 == 0, "branch displacement must be word aligned");
            assert!(bo < 32 && bi < 32, "bo/bi fields are 5 bits");
            (op::BC << 26)
                | ((bo as u32) << 21)
                | ((bi as u32) << 16)
                | ((bd as u16 as u32) & 0xfffc)
                | ((aa as u32) << 1)
                | lk as u32
        }
        Bclr { bo, bi, lk } => xl_branch(bo, bi, xo19::BCLR, lk),
        Bcctr { bo, bi, lk } => xl_branch(bo, bi, xo19::BCCTR, lk),

        Crxor { bt, ba, bb } => {
            assert!(bt < 32 && ba < 32 && bb < 32, "cr bit fields are 5 bits");
            (op::XL << 26)
                | ((bt as u32) << 21)
                | ((ba as u32) << 16)
                | ((bb as u32) << 11)
                | (xo19::CRXOR << 1)
        }
        Mfcr { rt } => (op::X31 << 26) | (rt.field() << 21) | (xo31::MFCR << 1),
        Mtcrf { fxm, rs } => {
            (op::X31 << 26) | (rs.field() << 21) | ((fxm as u32) << 12) | (xo31::MTCRF << 1)
        }
        Mfspr { rt, spr } => {
            (op::X31 << 26) | (rt.field() << 21) | (spr_split(spr) << 11) | (xo31::MFSPR << 1)
        }
        Mtspr { spr, rs } => {
            (op::X31 << 26) | (rs.field() << 21) | (spr_split(spr) << 11) | (xo31::MTSPR << 1)
        }

        Twi { to, ra, si } => {
            assert!(to < 32, "trap condition field is 5 bits");
            (op::TWI << 26) | ((to as u32) << 21) | (ra.field() << 16) | (si as u16 as u32)
        }
        Sc => (op::SC << 26) | 2,

        Illegal(word) => word,
    }
}

fn m_form(opcd: u32, ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool) -> u32 {
    assert!(sh < 32 && mb < 32 && me < 32, "rotate fields are 5 bits");
    (opcd << 26)
        | (rs.field() << 21)
        | (ra.field() << 16)
        | ((sh as u32) << 11)
        | ((mb as u32) << 6)
        | ((me as u32) << 1)
        | rc as u32
}

fn xl_branch(bo: u8, bi: u8, xo: u32, lk: bool) -> u32 {
    assert!(bo < 32 && bi < 32, "bo/bi fields are 5 bits");
    (op::XL << 26) | ((bo as u32) << 21) | ((bi as u32) << 16) | (xo << 1) | lk as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::bo;
    use crate::reg::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against GNU as output for PowerPC.
        assert_eq!(encode(&Insn::Addi { rt: R3, ra: R0, si: 1 }), 0x3860_0001); // li r3,1
        assert_eq!(
            encode(&Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false }),
            0x4e80_0020 // blr
        );
        assert_eq!(
            encode(&Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: false }),
            0x4e80_0420 // bctr
        );
        assert_eq!(encode(&Insn::Ori { ra: R0, rs: R0, ui: 0 }), 0x6000_0000); // nop
        assert_eq!(encode(&Insn::Sc), 0x4400_0002);
        assert_eq!(encode(&Insn::Lwz { rt: R9, ra: R1, d: 8 }), 0x8121_0008);
        assert_eq!(encode(&Insn::Stwu { rs: R1, ra: R1, d: -32 }), 0x9421_ffe0);
        assert_eq!(encode(&Insn::Add { rt: R3, ra: R3, rb: R4, rc: false }), 0x7c63_2214);
        assert_eq!(
            encode(&Insn::Mfspr { rt: R0, spr: Spr::Lr }),
            0x7c08_02a6 // mflr r0
        );
        assert_eq!(
            encode(&Insn::Mtspr { spr: Spr::Lr, rs: R0 }),
            0x7c08_03a6 // mtlr r0
        );
        assert_eq!(
            encode(&Insn::Or { ra: R4, rs: R3, rb: R3, rc: false }),
            0x7c64_1b78 // mr r4,r3
        );
    }

    #[test]
    fn branch_offsets_pack() {
        assert_eq!(encode(&Insn::B { li: 8, aa: false, lk: false }), 0x4800_0008);
        assert_eq!(encode(&Insn::B { li: -4, aa: false, lk: true }), 0x4bff_fffd);
        assert_eq!(
            encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 2, bd: -8, aa: false, lk: false }),
            0x4182_fff8 // beq cr0, .-8
        );
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_branch_panics() {
        encode(&Insn::B { li: 2, aa: false, lk: false });
    }

    #[test]
    #[should_panic(expected = "26-bit range")]
    fn oversized_branch_panics() {
        encode(&Insn::B { li: 0x0200_0000, aa: false, lk: false });
    }
}
