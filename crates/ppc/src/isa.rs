//! The [`codense_isa::Isa`] implementation for the PowerPC backend.
//!
//! Everything here delegates to the crate's own modules ([`crate::branch`],
//! [`crate::opcode`], [`crate::disasm`], [`crate::machine`]); this file only
//! adapts their PowerPC-typed signatures to the ISA-neutral trait. The
//! branch-form discriminants are stable: `0` = I-form (`b`/`bl`, 24-bit
//! field), `1` = B-form (`bc`, 14-bit field).

use codense_isa::{Core, Isa, RelBranch, OVERFLOW_TABLE_HI};

use crate::branch::{self, RelBranchKind};
use crate::insn::{bo, Insn};
use crate::machine::Machine;
use crate::reg::{R0, R12};
use crate::Spr;

/// Discriminant for I-form branches in [`RelBranch::kind`].
pub const KIND_IFORM: u8 = 0;
/// Discriminant for B-form branches in [`RelBranch::kind`].
pub const KIND_BFORM: u8 = 1;

/// The 32 escape bytes, in escape-index order: each illegal primary opcode
/// `op` contributes the four byte values `op << 2 | 0 ..= op << 2 | 3`
/// (the next two opcode bits spill into the top byte). Mirrors
/// [`crate::opcode::escape_bytes`] as a static table.
pub static ESCAPE_BYTES: [u8; 32] = [
    0x00, 0x01, 0x02, 0x03, // primary 0
    0x04, 0x05, 0x06, 0x07, // primary 1
    0x10, 0x11, 0x12, 0x13, // primary 4
    0x14, 0x15, 0x16, 0x17, // primary 5
    0x18, 0x19, 0x1a, 0x1b, // primary 6
    0x24, 0x25, 0x26, 0x27, // primary 9
    0x58, 0x59, 0x5a, 0x5b, // primary 22
    0x78, 0x79, 0x7a, 0x7b, // primary 30
];

fn kind_of(kind: u8) -> RelBranchKind {
    match kind {
        KIND_IFORM => RelBranchKind::IForm,
        KIND_BFORM => RelBranchKind::BForm,
        _ => panic!("unknown ppc branch kind {kind}"),
    }
}

fn kind_code(kind: RelBranchKind) -> u8 {
    match kind {
        RelBranchKind::IForm => KIND_IFORM,
        RelBranchKind::BForm => KIND_BFORM,
    }
}

/// The PowerPC backend, exposed as [`ISA`].
#[derive(Debug)]
pub struct PpcIsa;

/// The one [`PpcIsa`] instance; reference it as `IsaRef(&codense_ppc::ISA)`.
pub static ISA: PpcIsa = PpcIsa;

impl Isa for PpcIsa {
    fn name(&self) -> &'static str {
        "ppc"
    }

    fn rel_branch_info(&self, word: u32) -> Option<RelBranch> {
        branch::rel_branch_info(word).map(|i| RelBranch {
            kind: kind_code(i.kind),
            offset: i.offset,
            lk: i.lk,
        })
    }

    fn branch_field_bits(&self, kind: u8) -> u32 {
        kind_of(kind).field_bits()
    }

    fn patch_offset_units(&self, word: u32, kind: u8, units: i32) -> u32 {
        branch::patch_offset_units(word, kind_of(kind), units)
    }

    fn read_offset_units(&self, word: u32, kind: u8) -> i32 {
        branch::read_offset_units(word, kind_of(kind))
    }

    fn escape_bytes(&self) -> &'static [u8] {
        &ESCAPE_BYTES
    }

    fn ends_block(&self, word: u32) -> bool {
        let insn = crate::decode(word);
        insn.is_branch() || matches!(insn, Insn::Sc)
    }

    fn overflow_expansion(
        &self,
        word: u32,
        slot: u32,
        granule_nibbles: u32,
        insn_nibbles: u32,
    ) -> Option<Vec<u32>> {
        let info = branch::rel_branch_info(word)?;
        let mut out = Vec::with_capacity(5);
        let dispatch_len = 4u32;
        if let Insn::Bc { bo: b, bi, .. } = crate::decode(word) {
            if b & 0b00100 == 0 {
                // CTR-decrementing forms cannot be inverted into a simple
                // skip (the decrement must happen exactly once either way).
                return None;
            }
            if b != bo::ALWAYS {
                let inverted = b ^ 0b01000;
                let skip_nibbles = (1 + dispatch_len) * insn_nibbles;
                let units = (skip_nibbles / granule_nibbles) as i32;
                let skip =
                    crate::encode(&Insn::Bc { bo: inverted, bi, bd: 0, aa: false, lk: false });
                out.push(branch::patch_offset_units(skip, RelBranchKind::BForm, units));
            }
        }
        out.push(crate::encode(&Insn::Addis { rt: R12, ra: R0, si: OVERFLOW_TABLE_HI }));
        out.push(crate::encode(&Insn::Lwz { rt: R12, ra: R12, d: (slot * 4) as i16 }));
        out.push(crate::encode(&Insn::Mtspr { spr: Spr::Ctr, rs: R12 }));
        out.push(crate::encode(&Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: info.lk }));
        Some(out)
    }

    fn disassemble(&self, word: u32, addr: u32) -> String {
        crate::disasm::disassemble(word, addr)
    }

    fn new_core(&self, mem_bytes: usize) -> Box<dyn Core> {
        Box::new(Machine::new(mem_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_isa::IsaRef;

    #[test]
    fn escape_table_matches_opcode_module() {
        assert_eq!(ESCAPE_BYTES.to_vec(), crate::opcode::escape_bytes());
        let isa = IsaRef(&ISA);
        for (i, &b) in ESCAPE_BYTES.iter().enumerate() {
            assert_eq!(isa.escape_index(b), Some(i as u32));
        }
        assert_eq!(isa.escape_index(0x48), None); // `b` opcode byte
                                                  // Escape-set membership of a word's top byte is exactly primary-
                                                  // opcode illegality.
        for top in 0u32..=255 {
            let word = top << 24;
            assert_eq!(
                isa.escape_index(top as u8).is_some(),
                crate::opcode::is_illegal_primary(word >> 26),
            );
        }
    }

    #[test]
    fn trait_delegates_to_branch_module() {
        let isa = IsaRef(&ISA);
        let b = crate::encode(&Insn::B { li: -64, aa: false, lk: true });
        let info = isa.rel_branch_info(b).unwrap();
        assert_eq!((info.kind, info.offset, info.lk), (KIND_IFORM, -64, true));
        assert_eq!(isa.branch_field_bits(KIND_IFORM), 24);
        assert_eq!(isa.branch_field_bits(KIND_BFORM), 14);

        let bc = crate::encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 6, bd: 0, aa: false, lk: false });
        for units in [-8192, -1, 0, 1, 8191] {
            let p = isa.patch_offset_units(bc, KIND_BFORM, units);
            assert_eq!(p, branch::patch_offset_units(bc, RelBranchKind::BForm, units));
            assert_eq!(isa.read_offset_units(p, KIND_BFORM), units);
        }

        assert!(isa.offset_expressible(KIND_BFORM, 40960, 8));
        assert!(!isa.offset_expressible(KIND_BFORM, 40960, 4));
        assert!(!isa.offset_expressible(KIND_BFORM, 7, 2));
    }

    #[test]
    fn ends_block_matches_decode() {
        let isa = IsaRef(&ISA);
        assert!(isa.ends_block(crate::encode(&Insn::B { li: 8, aa: false, lk: false })));
        assert!(isa.ends_block(crate::encode(&Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false })));
        assert!(isa.ends_block(crate::encode(&Insn::Sc)));
        assert!(!isa.ends_block(crate::encode(&Insn::Addi { rt: crate::reg::R3, ra: R0, si: 1 })));
    }

    #[test]
    fn overflow_expansion_shapes() {
        let isa = IsaRef(&ISA);
        // Unconditional branch: 4-word trampoline, no skip.
        let b = crate::encode(&Insn::B { li: 0, aa: false, lk: false });
        let seq = isa.overflow_expansion(b, 3, 4, 8).unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(crate::decode(seq[0]), Insn::Addis { rt: R12, ra: R0, si: OVERFLOW_TABLE_HI });
        assert_eq!(crate::decode(seq[1]), Insn::Lwz { rt: R12, ra: R12, d: 12 });
        assert_eq!(crate::decode(seq[3]), Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: false });

        // Conditional branch: inverted-condition skip prepended.
        let bc = crate::encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 2, bd: 0, aa: false, lk: false });
        let seq = isa.overflow_expansion(bc, 0, 4, 8).unwrap();
        assert_eq!(seq.len(), 5);
        match crate::decode(seq[0]) {
            Insn::Bc { bo: b, bi, .. } => {
                assert_eq!(b, bo::IF_FALSE);
                assert_eq!(bi, 2);
            }
            other => panic!("expected skip bc, got {other:?}"),
        }
        // Skip distance: (1 + 4) insns × 8 nibbles ÷ 4-nibble granule.
        assert_eq!(isa.read_offset_units(seq[0], KIND_BFORM), 10);

        // CTR-decrementing conditionals cannot be expanded.
        let bdnz = crate::encode(&Insn::Bc { bo: bo::DNZ, bi: 0, bd: 0, aa: false, lk: false });
        assert_eq!(isa.overflow_expansion(bdnz, 0, 4, 8), None);
    }

    #[test]
    fn new_core_runs_ppc_semantics() {
        let isa = IsaRef(&ISA);
        let mut core = isa.new_core(4096);
        let li = crate::encode(&Insn::Addi { rt: crate::reg::R3, ra: R0, si: 42 });
        core.step_word(li, 0, 8, 8).unwrap();
        assert_eq!(core.gpr(3), 42);
        assert_eq!(core.exit_code(), 42);
        let sc = crate::encode(&Insn::Sc);
        assert_eq!(core.step_word(sc, 8, 16, 8).unwrap(), codense_isa::Outcome::Halt);
    }
}
