//! Primary and extended opcode constants for the implemented subset, and the
//! illegal primary opcodes used for compression escape bytes.

/// Primary (6-bit, bits 0–5) opcodes of the implemented subset.
#[allow(missing_docs)] // each constant is named for its mnemonic
pub mod primary {
    pub const TWI: u32 = 3;
    pub const MULLI: u32 = 7;
    pub const SUBFIC: u32 = 8;
    pub const CMPLWI: u32 = 10;
    pub const CMPWI: u32 = 11;
    pub const ADDIC: u32 = 12;
    pub const ADDIC_RC: u32 = 13;
    pub const ADDI: u32 = 14;
    pub const ADDIS: u32 = 15;
    pub const BC: u32 = 16;
    pub const SC: u32 = 17;
    pub const B: u32 = 18;
    pub const XL: u32 = 19;
    pub const RLWIMI: u32 = 20;
    pub const RLWINM: u32 = 21;
    pub const ORI: u32 = 24;
    pub const ORIS: u32 = 25;
    pub const XORI: u32 = 26;
    pub const XORIS: u32 = 27;
    pub const ANDI_RC: u32 = 28;
    pub const ANDIS_RC: u32 = 29;
    pub const X31: u32 = 31;
    pub const LWZ: u32 = 32;
    pub const LWZU: u32 = 33;
    pub const LBZ: u32 = 34;
    pub const LBZU: u32 = 35;
    pub const STW: u32 = 36;
    pub const STWU: u32 = 37;
    pub const STB: u32 = 38;
    pub const STBU: u32 = 39;
    pub const LHZ: u32 = 40;
    pub const LHZU: u32 = 41;
    pub const LHA: u32 = 42;
    pub const LHAU: u32 = 43;
    pub const STH: u32 = 44;
    pub const STHU: u32 = 45;
    pub const LMW: u32 = 46;
    pub const STMW: u32 = 47;
}

/// Extended (10-bit, bits 21–30) opcodes under primary opcode 31.
#[allow(missing_docs)] // each constant is named for its mnemonic
pub mod xo31 {
    pub const CMPW: u32 = 0;
    pub const SUBF: u32 = 40;
    pub const CMPLW: u32 = 32;
    pub const LWZX: u32 = 23;
    pub const SLW: u32 = 24;
    pub const CNTLZW: u32 = 26;
    pub const AND: u32 = 28;
    pub const ANDC: u32 = 60;
    pub const MULHW: u32 = 75;
    pub const LBZX: u32 = 87;
    pub const NEG: u32 = 104;
    pub const NOR: u32 = 124;
    pub const MTCRF: u32 = 144;
    pub const STWX: u32 = 151;
    pub const STBX: u32 = 215;
    pub const MULLW: u32 = 235;
    pub const ADD: u32 = 266;
    pub const LHZX: u32 = 279;
    pub const XOR: u32 = 316;
    pub const MFSPR: u32 = 339;
    pub const STHX: u32 = 407;
    pub const ORC: u32 = 412;
    pub const OR: u32 = 444;
    pub const DIVWU: u32 = 459;
    pub const MTSPR: u32 = 467;
    pub const NAND: u32 = 476;
    pub const DIVW: u32 = 491;
    pub const SRW: u32 = 536;
    pub const SRAW: u32 = 792;
    pub const SRAWI: u32 = 824;
    pub const EXTSH: u32 = 922;
    pub const EXTSB: u32 = 954;
    pub const MFCR: u32 = 19;
}

/// Extended (10-bit) opcodes under primary opcode 19 (XL form).
#[allow(missing_docs)] // each constant is named for its mnemonic
pub mod xo19 {
    pub const BCLR: u32 = 16;
    pub const CRXOR: u32 = 193;
    pub const BCCTR: u32 = 528;
}

/// The eight illegal 6-bit primary opcodes reserved for compression escapes.
///
/// The paper (§4.1): "PowerPC has 8 illegal 6-bit opcodes. By using all 8
/// illegal opcodes and all possible patterns of the remaining 2 bits in the
/// byte, we can have up to 32 different escape bytes." On 32-bit PowerPC the
/// unallocated / 64-bit-only primary opcodes include 0, 1, 2, 4, 5, 6, 9, 22,
/// 30, 56–62; we reserve the following eight.
pub const ILLEGAL_PRIMARY: [u32; 8] = [0, 1, 4, 5, 6, 9, 22, 30];

/// Returns `true` if `op` is one of the eight reserved illegal primary opcodes.
pub fn is_illegal_primary(op: u32) -> bool {
    ILLEGAL_PRIMARY.contains(&(op & 0x3f))
}

/// The 32 escape bytes available to the baseline compression scheme: every
/// byte whose top 6 bits form an illegal primary opcode.
///
/// Each illegal opcode contributes 4 bytes (the 2 remaining low bits are
/// free), for 8 × 4 = 32 escape bytes, enough to index 32 × 256 = 8192
/// codewords with 2-byte codewords.
pub fn escape_bytes() -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    for &op in &ILLEGAL_PRIMARY {
        for low in 0..4u8 {
            out.push(((op as u8) << 2) | low);
        }
    }
    out
}

/// Extracts the primary opcode (bits 0–5, i.e. the top 6 bits) of a word.
pub const fn primary_of(word: u32) -> u32 {
    word >> 26
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_bytes_are_32_distinct_and_illegal() {
        let e = escape_bytes();
        assert_eq!(e.len(), 32);
        let mut sorted = e.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        for b in e {
            assert!(is_illegal_primary((b as u32) >> 2));
        }
    }

    #[test]
    fn legal_opcodes_are_not_escapes() {
        for op in [primary::ADDI, primary::B, primary::LWZ, primary::X31] {
            assert!(!is_illegal_primary(op));
        }
    }

    #[test]
    fn primary_extraction() {
        assert_eq!(primary_of(0x3860_0001), 14); // addi
        assert_eq!(primary_of(0x4e80_0020), 19); // blr
    }
}
