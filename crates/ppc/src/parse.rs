//! Assembly-text parsing: the inverse of [`crate::disasm`].
//!
//! Accepts the disassembler's output syntax — canonical mnemonics and the
//! simplified forms (`li`, `mr`, `nop`, `blr`, `clrlwi`, `slwi`, `srwi`,
//! `beq cr1,LABEL`, …) — so text can round-trip:
//! `parse(disassemble(w)) == decode(w)`.
//!
//! Branch targets are parsed as *absolute byte addresses* (as the
//! disassembler prints them) and require the instruction's own address to
//! recover the relative displacement, hence [`parse_insn`] takes `addr`.

use crate::insn::{bo, Insn};
use crate::reg::{CrField, Gpr, Spr};

/// Parse errors, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

fn parse_gpr(s: &str) -> Result<Gpr, ParseError> {
    let n: u8 = s
        .strip_prefix('r')
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError { message: format!("bad register `{s}`") })?;
    Gpr::new(n).ok_or(ParseError { message: format!("register out of range `{s}`") })
}

fn parse_crf(s: &str) -> Result<CrField, ParseError> {
    let n: u8 = s
        .strip_prefix("cr")
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError { message: format!("bad CR field `{s}`") })?;
    CrField::new(n).ok_or(ParseError { message: format!("CR field out of range `{s}`") })
}

fn parse_int(s: &str) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| ParseError { message: format!("bad integer `{s}`") })?;
    Ok(if neg { -v } else { v })
}

fn parse_i16(s: &str) -> Result<i16, ParseError> {
    let v = parse_int(s)?;
    i16::try_from(v).map_err(|_| ParseError { message: format!("immediate out of range `{s}`") })
}

fn parse_u16(s: &str) -> Result<u16, ParseError> {
    let v = parse_int(s)?;
    u16::try_from(v).map_err(|_| ParseError { message: format!("immediate out of range `{s}`") })
}

fn parse_u8_field(s: &str, max: u8) -> Result<u8, ParseError> {
    let v = parse_int(s)?;
    match u8::try_from(v) {
        Ok(v) if v < max => Ok(v),
        _ => err(format!("field out of range `{s}`")),
    }
}

/// Splits `d(ra)` into (d, ra).
fn parse_mem(s: &str) -> Result<(i16, Gpr), ParseError> {
    let open = s.find('(').ok_or(ParseError { message: format!("bad memory operand `{s}`") })?;
    let close = s.len() - 1;
    if !s.ends_with(')') || close <= open {
        return err(format!("bad memory operand `{s}`"));
    }
    Ok((parse_i16(&s[..open])?, parse_gpr(&s[open + 1..close])?))
}

/// Branch target as printed by the disassembler: an 8-digit (or any) hex
/// address without `0x`.
fn parse_target(s: &str, addr: u32) -> Result<i32, ParseError> {
    let target = u32::from_str_radix(s, 16)
        .map_err(|_| ParseError { message: format!("bad branch target `{s}`") })?;
    Ok(target.wrapping_sub(addr) as i32)
}

/// Parses one instruction of disassembly text located at byte address
/// `addr`.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown mnemonics, malformed operands, or
/// out-of-range fields.
pub fn parse_insn(text: &str, addr: u32) -> Result<Insn, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let ops: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.trim().split(',').map(str::trim).collect()
    };
    let n = |k: usize| -> Result<(), ParseError> {
        if ops.len() == k {
            Ok(())
        } else {
            err(format!("`{mnemonic}` expects {k} operands, got {}", ops.len()))
        }
    };

    // Record-form suffix.
    let (base, rc) = match mnemonic.strip_suffix('.') {
        Some(b) => (b, true),
        None => (mnemonic, false),
    };

    macro_rules! d_arith {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                rt: parse_gpr(ops[0])?,
                ra: parse_gpr(ops[1])?,
                si: parse_i16(ops[2])?,
            })
        }};
    }
    macro_rules! d_logic {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                ui: parse_u16(ops[2])?,
            })
        }};
    }
    macro_rules! mem_load {
        ($variant:ident) => {{
            n(2)?;
            let (d, ra) = parse_mem(ops[1])?;
            Ok(Insn::$variant { rt: parse_gpr(ops[0])?, ra, d })
        }};
    }
    macro_rules! mem_store {
        ($variant:ident) => {{
            n(2)?;
            let (d, ra) = parse_mem(ops[1])?;
            Ok(Insn::$variant { rs: parse_gpr(ops[0])?, ra, d })
        }};
    }
    macro_rules! x_load {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                rt: parse_gpr(ops[0])?,
                ra: parse_gpr(ops[1])?,
                rb: parse_gpr(ops[2])?,
            })
        }};
    }
    macro_rules! x_store {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                rs: parse_gpr(ops[0])?,
                ra: parse_gpr(ops[1])?,
                rb: parse_gpr(ops[2])?,
            })
        }};
    }
    macro_rules! xo_arith {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                rt: parse_gpr(ops[0])?,
                ra: parse_gpr(ops[1])?,
                rb: parse_gpr(ops[2])?,
                rc,
            })
        }};
    }
    macro_rules! x_logic {
        ($variant:ident) => {{
            n(3)?;
            Ok(Insn::$variant {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                rb: parse_gpr(ops[2])?,
                rc,
            })
        }};
    }

    // Conditional-branch helper: `beq[l] [crN,]TARGET`-style. The link bit
    // comes from the mnemonic's trailing `l` (none of the condition names
    // themselves end in `l`).
    let cond_branch =
        |op: &str, bit_fn: fn(CrField) -> u8, sense: u8| -> Result<Insn, ParseError> {
            let (crf, target) = match ops.len() {
                1 => (CrField::new(0).unwrap(), ops[0]),
                2 => (parse_crf(ops[0])?, ops[1]),
                _ => return err(format!("`{op}` expects 1–2 operands")),
            };
            let bd = parse_target(target, addr)?;
            let bd = i16::try_from(bd).map_err(|_| ParseError {
                message: format!("conditional branch target out of range `{target}`"),
            })?;
            Ok(Insn::Bc { bo: sense, bi: bit_fn(crf), bd, aa: false, lk: op.ends_with('l') })
        };

    match base {
        "li" => {
            n(2)?;
            Ok(Insn::Addi {
                rt: parse_gpr(ops[0])?,
                ra: Gpr::new(0).unwrap(),
                si: parse_i16(ops[1])?,
            })
        }
        "lis" => {
            n(2)?;
            Ok(Insn::Addis {
                rt: parse_gpr(ops[0])?,
                ra: Gpr::new(0).unwrap(),
                si: parse_i16(ops[1])?,
            })
        }
        "subi" => {
            n(3)?;
            let v = parse_int(ops[2])?;
            let si =
                i16::try_from(-v).map_err(|_| ParseError { message: "subi immediate".into() })?;
            Ok(Insn::Addi { rt: parse_gpr(ops[0])?, ra: parse_gpr(ops[1])?, si })
        }
        "addi" => d_arith!(Addi),
        "addis" => d_arith!(Addis),
        "addic" if !rc => d_arith!(Addic),
        "addic" => d_arith!(AddicRc),
        "subfic" => d_arith!(Subfic),
        "mulli" => d_arith!(Mulli),
        "nop" => {
            n(0)?;
            let r0 = Gpr::new(0).unwrap();
            Ok(Insn::Ori { ra: r0, rs: r0, ui: 0 })
        }
        "ori" => d_logic!(Ori),
        "oris" => d_logic!(Oris),
        "xori" => d_logic!(Xori),
        "xoris" => d_logic!(Xoris),
        "andi" => d_logic!(AndiRc),
        "andis" => d_logic!(AndisRc),

        "cmpwi" | "cmplwi" | "cmpw" | "cmplw" => {
            let (bf, rest_ops): (CrField, &[&str]) =
                if ops.first().is_some_and(|o| o.starts_with("cr")) {
                    (parse_crf(ops[0])?, &ops[1..])
                } else {
                    (CrField::new(0).unwrap(), &ops[..])
                };
            if rest_ops.len() != 2 {
                return err(format!("`{base}` expects 2 operands after the CR field"));
            }
            let ra = parse_gpr(rest_ops[0])?;
            match base {
                "cmpwi" => Ok(Insn::Cmpwi { bf, ra, si: parse_i16(rest_ops[1])? }),
                "cmplwi" => Ok(Insn::Cmplwi { bf, ra, ui: parse_u16(rest_ops[1])? }),
                "cmpw" => Ok(Insn::Cmpw { bf, ra, rb: parse_gpr(rest_ops[1])? }),
                _ => Ok(Insn::Cmplw { bf, ra, rb: parse_gpr(rest_ops[1])? }),
            }
        }

        "lwz" => mem_load!(Lwz),
        "lwzu" => mem_load!(Lwzu),
        "lbz" => mem_load!(Lbz),
        "lbzu" => mem_load!(Lbzu),
        "lhz" => mem_load!(Lhz),
        "lhzu" => mem_load!(Lhzu),
        "lha" => mem_load!(Lha),
        "lhau" => mem_load!(Lhau),
        "lmw" => mem_load!(Lmw),
        "stw" => mem_store!(Stw),
        "stwu" => mem_store!(Stwu),
        "stb" => mem_store!(Stb),
        "stbu" => mem_store!(Stbu),
        "sth" => mem_store!(Sth),
        "sthu" => mem_store!(Sthu),
        "stmw" => mem_store!(Stmw),
        "lwzx" => x_load!(Lwzx),
        "lbzx" => x_load!(Lbzx),
        "lhzx" => x_load!(Lhzx),
        "stwx" => x_store!(Stwx),
        "stbx" => x_store!(Stbx),
        "sthx" => x_store!(Sthx),

        "add" => xo_arith!(Add),
        "subf" => xo_arith!(Subf),
        "mullw" => xo_arith!(Mullw),
        "mulhw" => xo_arith!(Mulhw),
        "divw" => xo_arith!(Divw),
        "divwu" => xo_arith!(Divwu),
        "neg" => {
            n(2)?;
            Ok(Insn::Neg { rt: parse_gpr(ops[0])?, ra: parse_gpr(ops[1])?, rc })
        }
        "and" => x_logic!(And),
        "or" => x_logic!(Or),
        "xor" => x_logic!(Xor),
        "nand" => x_logic!(Nand),
        "nor" => x_logic!(Nor),
        "andc" => x_logic!(Andc),
        "orc" => x_logic!(Orc),
        "slw" => x_logic!(Slw),
        "srw" => x_logic!(Srw),
        "sraw" => x_logic!(Sraw),
        "mr" => {
            n(2)?;
            let rs = parse_gpr(ops[1])?;
            Ok(Insn::Or { ra: parse_gpr(ops[0])?, rs, rb: rs, rc })
        }
        "not" => {
            n(2)?;
            let rs = parse_gpr(ops[1])?;
            Ok(Insn::Nor { ra: parse_gpr(ops[0])?, rs, rb: rs, rc })
        }
        "srawi" => {
            n(3)?;
            Ok(Insn::Srawi {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                sh: parse_u8_field(ops[2], 32)?,
                rc,
            })
        }
        "extsb" => {
            n(2)?;
            Ok(Insn::Extsb { ra: parse_gpr(ops[0])?, rs: parse_gpr(ops[1])?, rc })
        }
        "extsh" => {
            n(2)?;
            Ok(Insn::Extsh { ra: parse_gpr(ops[0])?, rs: parse_gpr(ops[1])?, rc })
        }
        "cntlzw" => {
            n(2)?;
            Ok(Insn::Cntlzw { ra: parse_gpr(ops[0])?, rs: parse_gpr(ops[1])?, rc })
        }

        "rlwinm" | "rlwimi" => {
            n(5)?;
            let (ra, rs) = (parse_gpr(ops[0])?, parse_gpr(ops[1])?);
            let sh = parse_u8_field(ops[2], 32)?;
            let mb = parse_u8_field(ops[3], 32)?;
            let me = parse_u8_field(ops[4], 32)?;
            if base == "rlwinm" {
                Ok(Insn::Rlwinm { ra, rs, sh, mb, me, rc })
            } else {
                Ok(Insn::Rlwimi { ra, rs, sh, mb, me, rc })
            }
        }
        "clrlwi" => {
            n(3)?;
            Ok(Insn::Rlwinm {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                sh: 0,
                mb: parse_u8_field(ops[2], 32)?,
                me: 31,
                rc,
            })
        }
        "slwi" => {
            n(3)?;
            let sh = parse_u8_field(ops[2], 32)?;
            Ok(Insn::Rlwinm {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                sh,
                mb: 0,
                me: 31 - sh,
                rc,
            })
        }
        "srwi" => {
            n(3)?;
            let nbits = parse_u8_field(ops[2], 32)?;
            Ok(Insn::Rlwinm {
                ra: parse_gpr(ops[0])?,
                rs: parse_gpr(ops[1])?,
                sh: (32 - nbits) % 32,
                mb: nbits,
                me: 31,
                rc,
            })
        }

        "b" | "bl" | "ba" | "bla" => {
            n(1)?;
            let aa = base == "ba" || base == "bla";
            let lk = base == "bl" || base == "bla";
            let li = if aa {
                u32::from_str_radix(ops[0], 16)
                    .map_err(|_| ParseError { message: format!("bad target `{}`", ops[0]) })?
                    as i32
            } else {
                parse_target(ops[0], addr)?
            };
            Ok(Insn::B { li, aa, lk })
        }
        "beq" | "beql" => cond_branch(base, CrField::eq_bit, bo::IF_TRUE),
        "bne" | "bnel" => cond_branch(base, CrField::eq_bit, bo::IF_FALSE),
        "blt" | "bltl" => cond_branch(base, CrField::lt_bit, bo::IF_TRUE),
        "bge" | "bgel" => cond_branch(base, CrField::lt_bit, bo::IF_FALSE),
        "bgt" | "bgtl" => cond_branch(base, CrField::gt_bit, bo::IF_TRUE),
        "ble" | "blel" => cond_branch(base, CrField::gt_bit, bo::IF_FALSE),
        "bso" | "bsol" => cond_branch(base, CrField::so_bit, bo::IF_TRUE),
        "bns" | "bnsl" => cond_branch(base, CrField::so_bit, bo::IF_FALSE),
        "bdnz" | "bdz" | "bdnzl" | "bdzl" => {
            n(1)?;
            let bd = parse_target(ops[0], addr)?;
            let bd = i16::try_from(bd)
                .map_err(|_| ParseError { message: "bdnz/bdz target out of range".into() })?;
            let b = if base.starts_with("bdnz") { bo::DNZ } else { bo::DZ };
            Ok(Insn::Bc { bo: b, bi: 0, bd, aa: false, lk: base.ends_with('l') })
        }
        "bc" | "bcl" => {
            n(3)?;
            let bd = parse_target(ops[2], addr)?;
            Ok(Insn::Bc {
                bo: parse_u8_field(ops[0], 32)?,
                bi: parse_u8_field(ops[1], 32)?,
                bd: i16::try_from(bd)
                    .map_err(|_| ParseError { message: "bc target out of range".into() })?,
                aa: false,
                lk: base == "bcl",
            })
        }
        "bca" | "bcla" => {
            n(3)?;
            // The disassembler prints the raw (sign-extended) displacement as
            // an absolute hex address.
            let target = u32::from_str_radix(ops[2], 16)
                .map_err(|_| ParseError { message: format!("bad branch target `{}`", ops[2]) })?;
            let bd = i16::try_from(target as i32)
                .map_err(|_| ParseError { message: "bca target out of range".into() })?;
            Ok(Insn::Bc {
                bo: parse_u8_field(ops[0], 32)?,
                bi: parse_u8_field(ops[1], 32)?,
                bd,
                aa: true,
                lk: base == "bcla",
            })
        }
        "blr" => Ok(Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false }),
        "blrl" => Ok(Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: true }),
        "bctr" => Ok(Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: false }),
        "bctrl" => Ok(Insn::Bcctr { bo: bo::ALWAYS, bi: 0, lk: true }),
        "beqlr" | "bnelr" | "bltlr" | "bgelr" | "bgtlr" | "blelr" | "bsolr" | "bnslr"
        | "beqlrl" | "bnelrl" | "bltlrl" | "bgelrl" | "bgtlrl" | "blelrl" | "bsolrl" | "bnslrl"
        | "beqctr" | "bnectr" | "bltctr" | "bgectr" | "bgtctr" | "blectr" | "bsoctr" | "bnsctr"
        | "beqctrl" | "bnectrl" | "bltctrl" | "bgectrl" | "bgtctrl" | "blectrl" | "bsoctrl"
        | "bnsctrl" => {
            let crf = if ops.len() == 1 { parse_crf(ops[0])? } else { CrField::new(0).unwrap() };
            let (bit, sense) = match &base[1..3] {
                "eq" => (crf.eq_bit(), bo::IF_TRUE),
                "ne" => (crf.eq_bit(), bo::IF_FALSE),
                "lt" => (crf.lt_bit(), bo::IF_TRUE),
                "ge" => (crf.lt_bit(), bo::IF_FALSE),
                "gt" => (crf.gt_bit(), bo::IF_TRUE),
                "so" => (crf.so_bit(), bo::IF_TRUE),
                "ns" => (crf.so_bit(), bo::IF_FALSE),
                _ => (crf.gt_bit(), bo::IF_FALSE),
            };
            let rest = &base[3..]; // "lr", "lrl", "ctr" or "ctrl"
            let lk = rest.ends_with("rl");
            if rest.starts_with("ctr") {
                Ok(Insn::Bcctr { bo: sense, bi: bit, lk })
            } else {
                Ok(Insn::Bclr { bo: sense, bi: bit, lk })
            }
        }
        "bclr" | "bclrl" | "bcctr" | "bcctrl" => {
            n(2)?;
            let b = parse_u8_field(ops[0], 32)?;
            let bi = parse_u8_field(ops[1], 32)?;
            let lk = base.ends_with('l');
            if base.starts_with("bclr") {
                Ok(Insn::Bclr { bo: b, bi, lk })
            } else {
                Ok(Insn::Bcctr { bo: b, bi, lk })
            }
        }

        "crclr" => {
            n(1)?;
            let bit = parse_u8_field(ops[0], 32)?;
            Ok(Insn::Crxor { bt: bit, ba: bit, bb: bit })
        }
        "crxor" => {
            n(3)?;
            Ok(Insn::Crxor {
                bt: parse_u8_field(ops[0], 32)?,
                ba: parse_u8_field(ops[1], 32)?,
                bb: parse_u8_field(ops[2], 32)?,
            })
        }
        "mfcr" => {
            n(1)?;
            Ok(Insn::Mfcr { rt: parse_gpr(ops[0])? })
        }
        "mtcrf" => {
            n(2)?;
            // fxm is a full 8-bit field mask; 255 (all fields) is valid.
            let fxm = u8::try_from(parse_int(ops[0])?)
                .map_err(|_| ParseError { message: format!("fxm out of range `{}`", ops[0]) })?;
            Ok(Insn::Mtcrf { fxm, rs: parse_gpr(ops[1])? })
        }
        "mflr" | "mfctr" | "mfxer" => {
            n(1)?;
            let spr = match base {
                "mflr" => Spr::Lr,
                "mfctr" => Spr::Ctr,
                _ => Spr::Xer,
            };
            Ok(Insn::Mfspr { rt: parse_gpr(ops[0])?, spr })
        }
        "mtlr" | "mtctr" | "mtxer" => {
            n(1)?;
            let spr = match base {
                "mtlr" => Spr::Lr,
                "mtctr" => Spr::Ctr,
                _ => Spr::Xer,
            };
            Ok(Insn::Mtspr { spr, rs: parse_gpr(ops[0])? })
        }
        "twi" => {
            n(3)?;
            Ok(Insn::Twi {
                to: parse_u8_field(ops[0], 32)?,
                ra: parse_gpr(ops[1])?,
                si: parse_i16(ops[2])?,
            })
        }
        "sc" => {
            n(0)?;
            Ok(Insn::Sc)
        }
        ".long" => {
            n(1)?;
            let w = parse_int(ops[0])?;
            Ok(Insn::Illegal(w as u32))
        }
        other => err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::encode;
    use crate::reg::*;

    #[test]
    fn parses_paper_example_lines() {
        assert_eq!(parse_insn("lbz r9,0(r28)", 0).unwrap(), Insn::Lbz { rt: R9, ra: R28, d: 0 });
        assert_eq!(
            parse_insn("clrlwi r11,r9,24", 0).unwrap(),
            Insn::Rlwinm { ra: R11, rs: R9, sh: 0, mb: 24, me: 31, rc: false }
        );
        assert_eq!(
            parse_insn("cmplwi cr1,r0,8", 0).unwrap(),
            Insn::Cmplwi { bf: CR1, ra: R0, ui: 8 }
        );
        assert_eq!(
            parse_insn("ble cr1,000401c8", 0x0004_0000).unwrap(),
            Insn::Bc { bo: bo::IF_FALSE, bi: CR1.gt_bit(), bd: 0x1c8, aa: false, lk: false }
        );
        assert_eq!(
            parse_insn("b 00041d38", 0x41d00).unwrap(),
            Insn::B { li: 0x38, aa: false, lk: false }
        );
    }

    #[test]
    fn idioms_parse() {
        assert_eq!(parse_insn("nop", 0).unwrap(), Insn::Ori { ra: R0, rs: R0, ui: 0 });
        assert_eq!(parse_insn("li r3,7", 0).unwrap(), Insn::Addi { rt: R3, ra: R0, si: 7 });
        assert_eq!(
            parse_insn("mr r4,r3", 0).unwrap(),
            Insn::Or { ra: R4, rs: R3, rb: R3, rc: false }
        );
        assert_eq!(parse_insn("blr", 0).unwrap(), Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false });
        assert_eq!(parse_insn("mflr r0", 0).unwrap(), Insn::Mfspr { rt: R0, spr: Spr::Lr });
        assert_eq!(parse_insn(".long 0x12345678", 0).unwrap(), Insn::Illegal(0x1234_5678));
    }

    #[test]
    fn record_forms_parse() {
        assert_eq!(
            parse_insn("add. r3,r4,r5", 0).unwrap(),
            Insn::Add { rt: R3, ra: R4, rb: R5, rc: true }
        );
        assert_eq!(
            parse_insn("andi. r3,r4,255", 0).unwrap(),
            Insn::AndiRc { ra: R3, rs: R4, ui: 255 }
        );
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_insn("frobnicate r1,r2", 0).is_err());
        assert!(parse_insn("addi r3,r4", 0).is_err());
        assert!(parse_insn("lwz r3,8[r1]", 0).is_err());
        assert!(parse_insn("addi r99,r0,1", 0).is_err());
        assert!(parse_insn("addi r3,r0,99999", 0).is_err());
    }

    /// Full-circle: every instruction the generator/kernels can produce
    /// survives disassemble → parse → encode.
    #[test]
    fn text_roundtrip_over_benchmark_code() {
        // A spread of encodings from the real instruction space.
        let mut words: Vec<u32> = Vec::new();
        for i in 0..6000u32 {
            // Mix opcodes and fields deterministically.
            let op = [14, 15, 24, 31, 32, 36, 34, 38, 40, 44, 46, 47, 21, 11, 10, 16, 18, 19]
                [(i % 18) as usize];
            let w = (op << 26) | (i.wrapping_mul(0x9e37_79b9) & 0x03ff_fffc);
            words.push(w);
        }
        let mut checked = 0;
        for (idx, &w) in words.iter().enumerate() {
            let insn = crate::decode(w);
            if matches!(insn, Insn::Illegal(_)) {
                continue;
            }
            let addr = (idx as u32) * 4;
            let text = disassemble(w, addr);
            let parsed =
                parse_insn(&text, addr).unwrap_or_else(|e| panic!("`{text}` ({w:#010x}): {e}"));
            assert_eq!(encode(&parsed), w, "`{text}`");
            checked += 1;
        }
        assert!(checked > 2000, "only {checked} words exercised");
    }
}
