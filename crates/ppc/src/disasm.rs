//! Disassembly to paper-style assembly text (`lbz r9,0(r28)`,
//! `ble cr1,000401c8`, `clrlwi r11,r9,24`, …).
//!
//! Simplified mnemonics (`li`, `mr`, `nop`, `blr`, `clrlwi`, `slwi`, `srwi`,
//! `beq`/`bne`/…) are produced where the operands match the idiom, mirroring
//! how GNU `objdump` renders PowerPC and how the paper prints its examples.

use crate::insn::{bo, Insn};
use crate::reg::{CrField, Gpr, Spr};

/// Disassembles an instruction word located at byte address `addr`.
///
/// Branch targets are rendered as absolute 8-digit hex addresses computed
/// from `addr`, matching the paper's figures.
///
/// ```
/// use codense_ppc::disasm::disassemble;
/// assert_eq!(disassemble(0x8921_001c, 0), "lbz r9,28(r1)");
/// assert_eq!(disassemble(0x4e80_0020, 0), "blr");
/// ```
pub fn disassemble(word: u32, addr: u32) -> String {
    disassemble_insn(&crate::decode(word), addr)
}

/// Disassembles a decoded instruction located at byte address `addr`.
pub fn disassemble_insn(insn: &Insn, addr: u32) -> String {
    use Insn::*;
    match *insn {
        Addi { rt, ra, si } if ra.number() == 0 => format!("li {rt},{si}"),
        Addi { rt, ra, si } if si < 0 => format!("subi {rt},{ra},{}", -(si as i32)),
        Addi { rt, ra, si } => format!("addi {rt},{ra},{si}"),
        Addis { rt, ra, si } if ra.number() == 0 => format!("lis {rt},{si}"),
        Addis { rt, ra, si } => format!("addis {rt},{ra},{si}"),
        Addic { rt, ra, si } => format!("addic {rt},{ra},{si}"),
        AddicRc { rt, ra, si } => format!("addic. {rt},{ra},{si}"),
        Subfic { rt, ra, si } => format!("subfic {rt},{ra},{si}"),
        Mulli { rt, ra, si } => format!("mulli {rt},{ra},{si}"),

        Ori { ra, rs, ui } if ra.number() == 0 && rs.number() == 0 && ui == 0 => "nop".into(),
        Ori { ra, rs, ui } => format!("ori {ra},{rs},{ui}"),
        Oris { ra, rs, ui } => format!("oris {ra},{rs},{ui}"),
        Xori { ra, rs, ui } => format!("xori {ra},{rs},{ui}"),
        Xoris { ra, rs, ui } => format!("xoris {ra},{rs},{ui}"),
        AndiRc { ra, rs, ui } => format!("andi. {ra},{rs},{ui}"),
        AndisRc { ra, rs, ui } => format!("andis. {ra},{rs},{ui}"),

        Cmpwi { bf, ra, si } => format!("cmpwi {}{ra},{si}", cr_prefix(bf)),
        Cmplwi { bf, ra, ui } => format!("cmplwi {}{ra},{ui}", cr_prefix(bf)),
        Cmpw { bf, ra, rb } => format!("cmpw {}{ra},{rb}", cr_prefix(bf)),
        Cmplw { bf, ra, rb } => format!("cmplw {}{ra},{rb}", cr_prefix(bf)),

        Lwz { rt, ra, d } => mem("lwz", rt, ra, d),
        Lwzu { rt, ra, d } => mem("lwzu", rt, ra, d),
        Lbz { rt, ra, d } => mem("lbz", rt, ra, d),
        Lbzu { rt, ra, d } => mem("lbzu", rt, ra, d),
        Lhz { rt, ra, d } => mem("lhz", rt, ra, d),
        Lhzu { rt, ra, d } => mem("lhzu", rt, ra, d),
        Lha { rt, ra, d } => mem("lha", rt, ra, d),
        Lhau { rt, ra, d } => mem("lhau", rt, ra, d),
        Stw { rs, ra, d } => mem("stw", rs, ra, d),
        Stwu { rs, ra, d } => mem("stwu", rs, ra, d),
        Stb { rs, ra, d } => mem("stb", rs, ra, d),
        Stbu { rs, ra, d } => mem("stbu", rs, ra, d),
        Sth { rs, ra, d } => mem("sth", rs, ra, d),
        Sthu { rs, ra, d } => mem("sthu", rs, ra, d),
        Lmw { rt, ra, d } => mem("lmw", rt, ra, d),
        Stmw { rs, ra, d } => mem("stmw", rs, ra, d),

        Lwzx { rt, ra, rb } => format!("lwzx {rt},{ra},{rb}"),
        Lbzx { rt, ra, rb } => format!("lbzx {rt},{ra},{rb}"),
        Lhzx { rt, ra, rb } => format!("lhzx {rt},{ra},{rb}"),
        Stwx { rs, ra, rb } => format!("stwx {rs},{ra},{rb}"),
        Stbx { rs, ra, rb } => format!("stbx {rs},{ra},{rb}"),
        Sthx { rs, ra, rb } => format!("sthx {rs},{ra},{rb}"),

        Add { rt, ra, rb, rc } => rrr("add", rt, ra, rb, rc),
        Subf { rt, ra, rb, rc } => rrr("subf", rt, ra, rb, rc),
        Mullw { rt, ra, rb, rc } => rrr("mullw", rt, ra, rb, rc),
        Mulhw { rt, ra, rb, rc } => rrr("mulhw", rt, ra, rb, rc),
        Divw { rt, ra, rb, rc } => rrr("divw", rt, ra, rb, rc),
        Divwu { rt, ra, rb, rc } => rrr("divwu", rt, ra, rb, rc),
        Neg { rt, ra, rc } => format!("neg{} {rt},{ra}", dot(rc)),

        Or { ra, rs, rb, rc } if rs == rb => format!("mr{} {ra},{rs}", dot(rc)),
        Nor { ra, rs, rb, rc } if rs == rb => format!("not{} {ra},{rs}", dot(rc)),
        And { ra, rs, rb, rc } => rrr("and", ra, rs, rb, rc),
        Or { ra, rs, rb, rc } => rrr("or", ra, rs, rb, rc),
        Xor { ra, rs, rb, rc } => rrr("xor", ra, rs, rb, rc),
        Nand { ra, rs, rb, rc } => rrr("nand", ra, rs, rb, rc),
        Nor { ra, rs, rb, rc } => rrr("nor", ra, rs, rb, rc),
        Andc { ra, rs, rb, rc } => rrr("andc", ra, rs, rb, rc),
        Orc { ra, rs, rb, rc } => rrr("orc", ra, rs, rb, rc),
        Slw { ra, rs, rb, rc } => rrr("slw", ra, rs, rb, rc),
        Srw { ra, rs, rb, rc } => rrr("srw", ra, rs, rb, rc),
        Sraw { ra, rs, rb, rc } => rrr("sraw", ra, rs, rb, rc),
        Srawi { ra, rs, sh, rc } => format!("srawi{} {ra},{rs},{sh}", dot(rc)),
        Extsb { ra, rs, rc } => format!("extsb{} {ra},{rs}", dot(rc)),
        Extsh { ra, rs, rc } => format!("extsh{} {ra},{rs}", dot(rc)),
        Cntlzw { ra, rs, rc } => format!("cntlzw{} {ra},{rs}", dot(rc)),

        Rlwinm { ra, rs, sh, mb, me, rc } => rlwinm_alias(ra, rs, sh, mb, me, rc),
        Rlwimi { ra, rs, sh, mb, me, rc } => {
            format!("rlwimi{} {ra},{rs},{sh},{mb},{me}", dot(rc))
        }

        B { li, aa, lk } => {
            let m = match (aa, lk) {
                (false, false) => "b",
                (false, true) => "bl",
                (true, false) => "ba",
                (true, true) => "bla",
            };
            let target = if aa { li as u32 } else { addr.wrapping_add(li as u32) };
            format!("{m} {target:08x}")
        }
        Bc { bo: b, bi, bd, aa: true, lk } => {
            // Absolute conditional branches keep the generic form: the `a`
            // suffix is the only thing that preserves the AA bit in text.
            let m = if lk { "bcla" } else { "bca" };
            format!("{m} {b},{bi},{:08x}", bd as u32)
        }
        Bc { bo: b, bi, bd, aa: false, lk } => {
            let target = addr.wrapping_add(bd as i32 as u32);
            cond_branch(b, bi, lk, &format!("{target:08x}"))
        }
        Bclr { bo: b, bi, lk } => match (b, bi, lk) {
            (bo::ALWAYS, 0, false) => "blr".into(),
            (bo::ALWAYS, 0, true) => "blrl".into(),
            _ => cond_branch(b, bi, lk, "lr"),
        },
        Bcctr { bo: b, bi, lk } => match (b, bi, lk) {
            (bo::ALWAYS, 0, false) => "bctr".into(),
            (bo::ALWAYS, 0, true) => "bctrl".into(),
            _ => cond_branch(b, bi, lk, "ctr"),
        },

        Crxor { bt, ba, bb } if bt == ba && ba == bb => format!("crclr {bt}"),
        Crxor { bt, ba, bb } => format!("crxor {bt},{ba},{bb}"),
        Mfcr { rt } => format!("mfcr {rt}"),
        Mtcrf { fxm, rs } => format!("mtcrf {fxm},{rs}"),
        Mfspr { rt, spr } => match spr {
            Spr::Lr => format!("mflr {rt}"),
            Spr::Ctr => format!("mfctr {rt}"),
            Spr::Xer => format!("mfxer {rt}"),
        },
        Mtspr { spr, rs } => match spr {
            Spr::Lr => format!("mtlr {rs}"),
            Spr::Ctr => format!("mtctr {rs}"),
            Spr::Xer => format!("mtxer {rs}"),
        },

        Twi { to, ra, si } => format!("twi {to},{ra},{si}"),
        Sc => "sc".into(),
        Illegal(w) => format!(".long 0x{w:08x}"),
    }
}

/// Disassembles a contiguous code region starting at `base`, one line per
/// instruction: `ADDR:  WORD  MNEMONIC ...`.
pub fn dump(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u32;
        out.push_str(&format!("{addr:08x}:  {w:08x}  {}\n", disassemble(w, addr)));
    }
    out
}

fn dot(rc: bool) -> &'static str {
    if rc {
        "."
    } else {
        ""
    }
}

fn mem(m: &str, r: Gpr, ra: Gpr, d: i16) -> String {
    format!("{m} {r},{d}({ra})")
}

fn rrr(m: &str, a: Gpr, b: Gpr, c: Gpr, rc: bool) -> String {
    format!("{m}{} {a},{b},{c}", dot(rc))
}

fn cr_prefix(bf: CrField) -> String {
    if bf.number() == 0 {
        String::new()
    } else {
        format!("{bf},")
    }
}

fn rlwinm_alias(ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool) -> String {
    let d = dot(rc);
    if sh == 0 && me == 31 {
        format!("clrlwi{d} {ra},{rs},{mb}")
    } else if mb == 0 && me == 31 - sh && sh != 0 {
        format!("slwi{d} {ra},{rs},{sh}")
    } else if me == 31 && sh != 0 && mb == 32 - sh {
        format!("srwi{d} {ra},{rs},{mb}")
    } else {
        format!("rlwinm{d} {ra},{rs},{sh},{mb},{me}")
    }
}

fn cond_branch(b: u8, bi: u8, lk: bool, target: &str) -> String {
    let crf = bi / 4;
    let bit = bi % 4;
    let l = if lk { "l" } else { "" };
    let name = match (b, bit) {
        (bo::IF_TRUE, 0) => Some("blt"),
        (bo::IF_TRUE, 1) => Some("bgt"),
        (bo::IF_TRUE, 2) => Some("beq"),
        (bo::IF_TRUE, 3) => Some("bso"),
        (bo::IF_FALSE, 0) => Some("bge"),
        (bo::IF_FALSE, 1) => Some("ble"),
        (bo::IF_FALSE, 2) => Some("bne"),
        (bo::IF_FALSE, 3) => Some("bns"),
        _ => None,
    };
    match name {
        Some(n) => {
            let suffix = match target {
                "lr" => "lr",
                "ctr" => "ctr",
                _ => "",
            };
            let cr = if crf == 0 { String::new() } else { format!("cr{crf},") };
            if suffix.is_empty() {
                format!("{n}{l} {cr}{target}")
            } else if crf == 0 {
                format!("{n}{suffix}{l}")
            } else {
                format!("{n}{suffix}{l} cr{crf}")
            }
        }
        // `bdnz lr` would not round-trip, so register-indirect branches with
        // a non-pretty BO always take the generic bclr/bcctr form.
        None => match (target, b, bi) {
            ("lr", _, _) => format!("bclr{l} {b},{bi}"),
            ("ctr", _, _) => format!("bcctr{l} {b},{bi}"),
            (_, bo::DNZ, 0) => format!("bdnz{l} {target}"),
            (_, bo::DZ, 0) => format!("bdz{l} {target}"),
            _ => format!("bc{l} {b},{bi},{target}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::*;

    fn dis(i: &Insn, addr: u32) -> String {
        disassemble(encode(i), addr)
    }

    #[test]
    fn paper_figure_two_style() {
        // The exact sequence from Figure 2 of the paper.
        assert_eq!(dis(&Insn::Lbz { rt: R9, ra: R28, d: 0 }, 0), "lbz r9,0(r28)");
        assert_eq!(
            dis(&Insn::Rlwinm { ra: R11, rs: R9, sh: 0, mb: 24, me: 31, rc: false }, 0),
            "clrlwi r11,r9,24"
        );
        assert_eq!(dis(&Insn::Addi { rt: R0, ra: R11, si: 1 }, 0), "addi r0,r11,1");
        assert_eq!(dis(&Insn::Cmplwi { bf: CR1, ra: R0, ui: 8 }, 0), "cmplwi cr1,r0,8");
        assert_eq!(
            dis(
                &Insn::Bc {
                    bo: crate::insn::bo::IF_FALSE,
                    bi: CR1.gt_bit(),
                    bd: 0x1c8,
                    aa: false,
                    lk: false
                },
                0x0004_0000
            ),
            "ble cr1,000401c8"
        );
    }

    #[test]
    fn idioms() {
        assert_eq!(dis(&Insn::Addi { rt: R3, ra: R0, si: 7 }, 0), "li r3,7");
        assert_eq!(dis(&Insn::Ori { ra: R0, rs: R0, ui: 0 }, 0), "nop");
        assert_eq!(dis(&Insn::Or { ra: R4, rs: R3, rb: R3, rc: false }, 0), "mr r4,r3");
        assert_eq!(
            dis(&Insn::Rlwinm { ra: R3, rs: R3, sh: 2, mb: 0, me: 29, rc: false }, 0),
            "slwi r3,r3,2"
        );
        assert_eq!(
            dis(&Insn::Rlwinm { ra: R3, rs: R3, sh: 24, mb: 8, me: 31, rc: false }, 0),
            "srwi r3,r3,8"
        );
        assert_eq!(dis(&Insn::Bclr { bo: crate::insn::bo::ALWAYS, bi: 0, lk: false }, 0), "blr");
        assert_eq!(dis(&Insn::Mfspr { rt: R0, spr: Spr::Lr }, 0), "mflr r0");
        assert_eq!(dis(&Insn::Illegal(0x0123_4567), 0), ".long 0x01234567");
    }

    #[test]
    fn branch_targets_absolute() {
        assert_eq!(dis(&Insn::B { li: 0x38, aa: false, lk: false }, 0x41d00), "b 00041d38");
        assert_eq!(dis(&Insn::B { li: -8, aa: false, lk: true }, 0x100), "bl 000000f8");
    }

    #[test]
    fn dump_formats_lines() {
        let words = [encode(&Insn::Addi { rt: R3, ra: R0, si: 1 }), encode(&Insn::Sc)];
        let text = dump(&words, 0x1000);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("00001000:"));
        assert!(lines[0].ends_with("li r3,1"));
        assert!(lines[1].contains("sc"));
    }
}
