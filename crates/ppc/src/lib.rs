#![warn(missing_docs)]

//! A 32-bit PowerPC instruction-set subset: encoding, decoding, disassembly,
//! and a label-resolving assembler.
//!
//! This crate is the instruction-level substrate for the `codense` code
//! compression system, which reproduces Lefurgy, Bird, Chen & Mudge,
//! *Improving Code Density Using Compression Techniques* (1997). The paper
//! applies dictionary compression to PowerPC programs, so everything above
//! this crate manipulates 32-bit PowerPC instruction words:
//!
//! * [`Insn`] is the structured form of an instruction. [`decode`] and
//!   [`encode`] round-trip between `Insn` and raw `u32` words.
//! * [`branch::branch_info`] classifies branch instructions and exposes their
//!   offset fields so the compressor can patch them after relocation.
//! * [`opcode::ILLEGAL_PRIMARY`] lists the eight illegal 6-bit primary
//!   opcodes the paper uses to build 32 escape bytes for codewords.
//! * [`asm::Assembler`] builds runnable programs with symbolic labels.
//! * [`disasm::disassemble`] renders paper-style assembly text.
//!
//! # Example
//!
//! ```
//! use codense_ppc::{decode, encode, Insn, reg::{R9, R28}};
//!
//! let insn = Insn::Lbz { rt: R9, ra: R28, d: 0 };
//! let word = encode(&insn);
//! assert_eq!(decode(word), insn);
//! assert_eq!(codense_ppc::disasm::disassemble(word, 0), "lbz r9,0(r28)");
//! ```

pub mod asm;
pub mod branch;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod isa;
pub mod machine;
pub mod opcode;
pub mod parse;
pub mod reg;

pub use decode::decode;
pub use encode::encode;
pub use insn::Insn;
pub use isa::ISA;
pub use machine::Machine;
pub use reg::{CrField, Gpr, Spr};

/// Size of one (uncompressed) PowerPC instruction in bytes.
pub const INSN_BYTES: u32 = 4;

/// Serializes a slice of instruction words to big-endian bytes, the memory
/// image layout of a PowerPC `.text` section.
///
/// ```
/// let bytes = codense_ppc::words_to_bytes(&[0x3860_0001]);
/// assert_eq!(bytes, [0x38, 0x60, 0x00, 0x01]);
/// ```
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_be_bytes());
    }
    out
}

/// Reassembles big-endian bytes into instruction words.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of 4.
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u32> {
    assert!(bytes.len().is_multiple_of(4), "text image must be word aligned");
    bytes.chunks_exact(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_byte_roundtrip() {
        let words = vec![0x3860_0001, 0x4e80_0020, 0xdead_beef];
        assert_eq!(bytes_to_words(&words_to_bytes(&words)), words);
    }
}
