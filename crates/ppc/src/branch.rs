//! PC-relative branch field extraction and patching.
//!
//! The compressor never compresses PC-relative branches; instead it rewrites
//! their displacement fields after layout (§3.2 of the paper). Compressed
//! programs reinterpret the displacement field at the alignment of the
//! smallest codeword — e.g. with 8-bit codewords a 14-bit `bc` field that
//! used to address ±32 KiB of 4-byte-aligned targets addresses ±8 KiB of
//! byte-aligned targets. This module exposes the fields and the reduced-
//! resolution fitting/patching arithmetic.

use crate::insn::Insn;

/// Which relative-branch form a word is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelBranchKind {
    /// I-form `b`/`bl`: 24-bit displacement field.
    IForm,
    /// B-form `bc` (conditional): 14-bit displacement field.
    BForm,
}

impl RelBranchKind {
    /// Width in bits of the signed displacement field (sign bit included).
    pub const fn field_bits(self) -> u32 {
        match self {
            RelBranchKind::IForm => 24,
            RelBranchKind::BForm => 14,
        }
    }
}

/// A decoded PC-relative branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelBranch {
    /// Encoding form (determines the displacement field width).
    pub kind: RelBranchKind,
    /// Byte displacement from the branch's own address (multiple of 4 in an
    /// uncompressed program).
    pub offset: i32,
    /// Whether the branch sets the link register (a call).
    pub lk: bool,
}

/// Extracts relative-branch information from an instruction word.
///
/// Returns `None` for absolute branches (`aa = 1`), indirect branches, and
/// non-branches.
///
/// ```
/// use codense_ppc::branch::{rel_branch_info, RelBranchKind};
/// let info = rel_branch_info(0x4800_0008).unwrap(); // b .+8
/// assert_eq!(info.kind, RelBranchKind::IForm);
/// assert_eq!(info.offset, 8);
/// ```
pub fn rel_branch_info(word: u32) -> Option<RelBranch> {
    match crate::decode(word) {
        Insn::B { li, aa: false, lk } => {
            Some(RelBranch { kind: RelBranchKind::IForm, offset: li, lk })
        }
        Insn::Bc { bd, aa: false, lk, .. } => {
            Some(RelBranch { kind: RelBranchKind::BForm, offset: bd as i32, lk })
        }
        _ => None,
    }
}

/// Returns `true` if `value` fits a signed two's-complement field of
/// `bits` bits.
pub const fn fits_signed(value: i64, bits: u32) -> bool {
    let half = 1i64 << (bits - 1);
    value >= -half && value < half
}

/// Can a displacement of `offset_nibbles` (4-bit units) be expressed by this
/// branch form when the field is interpreted in `granule_nibbles` units?
///
/// The uncompressed ISA uses `granule_nibbles = 8` (4-byte units); the
/// paper's schemes use 4 (2-byte codewords), 2 (1-byte codewords) and
/// 1 (nibble-aligned codewords).
pub fn offset_expressible(kind: RelBranchKind, offset_nibbles: i64, granule_nibbles: u32) -> bool {
    debug_assert!(granule_nibbles > 0);
    let g = granule_nibbles as i64;
    offset_nibbles % g == 0 && fits_signed(offset_nibbles / g, kind.field_bits())
}

/// Rewrites the displacement field of a relative branch with a new raw field
/// value (already divided down to the target granularity). All other fields
/// (`bo`, `bi`, `aa`, `lk`, opcode) are preserved.
///
/// # Panics
///
/// Panics if `word` is not a relative branch of the given `kind`, or if
/// `units` does not fit the field.
pub fn patch_offset_units(word: u32, kind: RelBranchKind, units: i32) -> u32 {
    assert!(
        fits_signed(units as i64, kind.field_bits()),
        "patched displacement {units} does not fit a {}-bit field",
        kind.field_bits()
    );
    match kind {
        RelBranchKind::IForm => {
            assert_eq!(word >> 26, crate::opcode::primary::B, "not an I-form branch");
            (word & !0x03ff_fffc) | (((units as u32) & 0x00ff_ffff) << 2)
        }
        RelBranchKind::BForm => {
            assert_eq!(word >> 26, crate::opcode::primary::BC, "not a B-form branch");
            (word & !0x0000_fffc) | (((units as u32) & 0x3fff) << 2)
        }
    }
}

/// Reads back the raw displacement field of a patched branch, sign-extended,
/// in field units (the inverse of [`patch_offset_units`]).
pub fn read_offset_units(word: u32, kind: RelBranchKind) -> i32 {
    match kind {
        RelBranchKind::IForm => {
            let v = (word >> 2) & 0x00ff_ffff;
            ((v << 8) as i32) >> 8
        }
        RelBranchKind::BForm => {
            let v = (word >> 2) & 0x3fff;
            ((v << 18) as i32) >> 18
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::insn::bo;

    #[test]
    fn info_for_forms() {
        let b = encode(&Insn::B { li: -64, aa: false, lk: true });
        let i = rel_branch_info(b).unwrap();
        assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::IForm, -64, true));

        let bc = encode(&Insn::Bc { bo: bo::IF_FALSE, bi: 0, bd: 128, aa: false, lk: false });
        let i = rel_branch_info(bc).unwrap();
        assert_eq!((i.kind, i.offset, i.lk), (RelBranchKind::BForm, 128, false));

        let blr = encode(&Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false });
        assert_eq!(rel_branch_info(blr), None);
        let abs = encode(&Insn::B { li: 4096, aa: true, lk: false });
        assert_eq!(rel_branch_info(abs), None);
    }

    #[test]
    fn fits_signed_bounds() {
        assert!(fits_signed(8191, 14));
        assert!(!fits_signed(8192, 14));
        assert!(fits_signed(-8192, 14));
        assert!(!fits_signed(-8193, 14));
    }

    #[test]
    fn expressibility_at_granularities() {
        // 20 KiB displacement = 40960 nibbles.
        let d = 40960i64;
        // 4-byte granule: 40960/8 = 5120 fits 14 bits.
        assert!(offset_expressible(RelBranchKind::BForm, d, 8));
        // 2-byte granule: 10240 does not fit 14 bits signed.
        assert!(!offset_expressible(RelBranchKind::BForm, d, 4));
        // I-form fits everywhere at these sizes.
        assert!(offset_expressible(RelBranchKind::IForm, d, 1));
        // Misaligned displacement is inexpressible.
        assert!(!offset_expressible(RelBranchKind::BForm, 7, 2));
    }

    #[test]
    fn patch_and_read_roundtrip() {
        let word = encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 6, bd: 0, aa: false, lk: false });
        for units in [-8192, -1, 0, 1, 8191] {
            let p = patch_offset_units(word, RelBranchKind::BForm, units);
            assert_eq!(read_offset_units(p, RelBranchKind::BForm), units);
            // bo/bi preserved:
            assert_eq!(p >> 16, word >> 16);
        }
        let word = encode(&Insn::B { li: 0, aa: false, lk: true });
        for units in [-(1 << 23), -3, 0, 5, (1 << 23) - 1] {
            let p = patch_offset_units(word, RelBranchKind::IForm, units);
            assert_eq!(read_offset_units(p, RelBranchKind::IForm), units);
            assert_eq!(p & 3, word & 3);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn patch_overflow_panics() {
        let word = encode(&Insn::Bc { bo: bo::ALWAYS, bi: 0, bd: 0, aa: false, lk: false });
        patch_offset_units(word, RelBranchKind::BForm, 8192);
    }
}
