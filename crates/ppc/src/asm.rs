//! A small label-resolving assembler for building runnable programs.
//!
//! Instructions are appended through [`Assembler::emit`] or the branch
//! helpers; [`Assembler::finish`] resolves label fixups into PC-relative
//! displacements and returns the final instruction words.
//!
//! ```
//! use codense_ppc::asm::Assembler;
//! use codense_ppc::insn::Insn;
//! use codense_ppc::reg::{R3, R0, CR0};
//!
//! # fn main() -> Result<(), codense_ppc::asm::AsmError> {
//! let mut a = Assembler::new();
//! a.emit(Insn::Addi { rt: R3, ra: R0, si: 10 });
//! a.label("loop");
//! a.emit(Insn::AddicRc { rt: R3, ra: R3, si: -1 });
//! a.bne(CR0, "loop");
//! a.emit(Insn::Sc);
//! let words = a.finish()?;
//! assert_eq!(words.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::insn::{bo, Insn};
use crate::reg::CrField;

/// Errors produced by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A resolved branch displacement does not fit its field.
    OffsetOutOfRange {
        /// The referenced label.
        label: String,
        /// Index of the branch instruction.
        at: usize,
        /// The displacement in bytes that failed to fit.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::OffsetOutOfRange { label, at, offset } => write!(
                f,
                "branch at instruction {at} to `{label}`: displacement {offset} out of range"
            ),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum FixKind {
    IForm { lk: bool },
    BForm { bo: u8, bi: u8, lk: bool },
}

#[derive(Debug, Clone)]
struct Fixup {
    at: usize,
    label: String,
    kind: FixKind,
}

/// An incremental program builder with symbolic branch labels.
///
/// See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct Assembler {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// The index (instruction count so far) the next instruction will get.
    pub fn here(&self) -> usize {
        self.insns.len()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// caller, not an input condition).
    pub fn label(&mut self, name: &str) -> &mut Assembler {
        let prev = self.labels.insert(name.to_owned(), self.insns.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// Returns the position of a defined label, if any.
    pub fn label_pos(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Appends an instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Assembler {
        self.insns.push(insn);
        self
    }

    /// Appends raw pre-encoded words.
    pub fn emit_words(&mut self, words: &[u32]) -> &mut Assembler {
        self.insns.extend(words.iter().map(|&w| crate::decode(w)));
        self
    }

    /// Unconditional branch to `label`.
    pub fn b(&mut self, label: &str) -> &mut Assembler {
        self.branch_fixup(label, FixKind::IForm { lk: false })
    }

    /// Branch-and-link (call) to `label`.
    pub fn bl(&mut self, label: &str) -> &mut Assembler {
        self.branch_fixup(label, FixKind::IForm { lk: true })
    }

    /// Generic conditional branch to `label`.
    pub fn bc(&mut self, bo_field: u8, bi: u8, label: &str) -> &mut Assembler {
        self.branch_fixup(label, FixKind::BForm { bo: bo_field, bi, lk: false })
    }

    /// Branch if EQ bit of `cr` is set.
    pub fn beq(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_TRUE, cr.eq_bit(), label)
    }

    /// Branch if EQ bit of `cr` is clear.
    pub fn bne(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_FALSE, cr.eq_bit(), label)
    }

    /// Branch if LT bit of `cr` is set.
    pub fn blt(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_TRUE, cr.lt_bit(), label)
    }

    /// Branch if LT bit of `cr` is clear (≥).
    pub fn bge(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_FALSE, cr.lt_bit(), label)
    }

    /// Branch if GT bit of `cr` is set.
    pub fn bgt(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_TRUE, cr.gt_bit(), label)
    }

    /// Branch if GT bit of `cr` is clear (≤).
    pub fn ble(&mut self, cr: CrField, label: &str) -> &mut Assembler {
        self.bc(bo::IF_FALSE, cr.gt_bit(), label)
    }

    /// Decrement CTR and branch if nonzero.
    pub fn bdnz(&mut self, label: &str) -> &mut Assembler {
        self.bc(bo::DNZ, 0, label)
    }

    /// Return through the link register (`blr`).
    pub fn blr(&mut self) -> &mut Assembler {
        self.emit(Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false })
    }

    fn branch_fixup(&mut self, label: &str, kind: FixKind) -> &mut Assembler {
        self.fixups.push(Fixup { at: self.insns.len(), label: label.to_owned(), kind });
        // Placeholder; patched in finish().
        self.insns.push(Insn::B { li: 0, aa: false, lk: false });
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Resolves all fixups and returns the encoded instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch references an unknown
    /// label, or [`AsmError::OffsetOutOfRange`] if a resolved displacement
    /// does not fit its field (±32 KiB for conditional, ±32 MiB for
    /// unconditional branches).
    pub fn finish(mut self) -> Result<Vec<u32>, AsmError> {
        for fix in &self.fixups {
            let &target = self
                .labels
                .get(&fix.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fix.label.clone()))?;
            let offset = (target as i64 - fix.at as i64) * 4;
            let out_of_range = |off| AsmError::OffsetOutOfRange {
                label: fix.label.clone(),
                at: fix.at,
                offset: off,
            };
            self.insns[fix.at] = match fix.kind {
                FixKind::IForm { lk } => {
                    if !crate::branch::fits_signed(offset, 26) {
                        return Err(out_of_range(offset));
                    }
                    Insn::B { li: offset as i32, aa: false, lk }
                }
                FixKind::BForm { bo, bi, lk } => {
                    if !crate::branch::fits_signed(offset, 16) {
                        return Err(out_of_range(offset));
                    }
                    Insn::Bc { bo, bi, bd: offset as i16, aa: false, lk }
                }
            };
        }
        Ok(self.insns.iter().map(encode).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::rel_branch_info;
    use crate::reg::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.b("end");
        a.label("loop");
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
        a.bne(CR0, "loop");
        a.label("end");
        a.emit(Insn::Sc);
        let words = a.finish().unwrap();
        assert_eq!(rel_branch_info(words[0]).unwrap().offset, 12);
        assert_eq!(rel_branch_info(words[2]).unwrap().offset, -4);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.b("nowhere");
        assert_eq!(a.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn conditional_out_of_range_errors() {
        let mut a = Assembler::new();
        a.bne(CR0, "far");
        for _ in 0..9000 {
            a.emit(Insn::Ori { ra: R0, rs: R0, ui: 0 });
        }
        a.label("far");
        a.emit(Insn::Sc);
        match a.finish() {
            Err(AsmError::OffsetOutOfRange { offset, .. }) => assert_eq!(offset, 9001 * 4),
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x").label("x");
    }

    #[test]
    fn call_sets_lk() {
        let mut a = Assembler::new();
        a.bl("f");
        a.label("f");
        a.blr();
        let words = a.finish().unwrap();
        assert!(rel_branch_info(words[0]).unwrap().lk);
    }
}
