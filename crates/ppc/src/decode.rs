//! Instruction decoding: 32-bit word → [`Insn`].

use crate::insn::Insn;
use crate::opcode::{primary as op, xo19, xo31};
use crate::reg::{CrField, Gpr, Spr};

#[inline]
fn rt(w: u32) -> Gpr {
    Gpr::from_field(w >> 21)
}
#[inline]
fn ra(w: u32) -> Gpr {
    Gpr::from_field(w >> 16)
}
#[inline]
fn rb(w: u32) -> Gpr {
    Gpr::from_field(w >> 11)
}
#[inline]
fn si(w: u32) -> i16 {
    w as u16 as i16
}
#[inline]
fn ui(w: u32) -> u16 {
    w as u16
}
#[inline]
fn rc(w: u32) -> bool {
    w & 1 != 0
}

/// Decodes a 32-bit word into an [`Insn`].
///
/// This is a total function: any word outside the implemented subset —
/// including the reserved escape opcodes and any word with nonzero
/// must-be-zero fields — decodes to [`Insn::Illegal`], which re-encodes to
/// the identical word. Hence `encode(&decode(w)) == w` for all `w`.
///
/// ```
/// use codense_ppc::{decode, encode};
/// for w in [0x3860_0001u32, 0x4e80_0020, 0x0000_0000, 0xffff_ffff] {
///     assert_eq!(encode(&decode(w)), w);
/// }
/// ```
pub fn decode(w: u32) -> Insn {
    use Insn::*;
    match w >> 26 {
        op::TWI => Twi { to: ((w >> 21) & 31) as u8, ra: ra(w), si: si(w) },
        op::MULLI => Mulli { rt: rt(w), ra: ra(w), si: si(w) },
        op::SUBFIC => Subfic { rt: rt(w), ra: ra(w), si: si(w) },
        op::CMPLWI if cmp_reserved_ok(w) => {
            Cmplwi { bf: CrField::from_field(w >> 23), ra: ra(w), ui: ui(w) }
        }
        op::CMPWI if cmp_reserved_ok(w) => {
            Cmpwi { bf: CrField::from_field(w >> 23), ra: ra(w), si: si(w) }
        }
        op::ADDIC => Addic { rt: rt(w), ra: ra(w), si: si(w) },
        op::ADDIC_RC => AddicRc { rt: rt(w), ra: ra(w), si: si(w) },
        op::ADDI => Addi { rt: rt(w), ra: ra(w), si: si(w) },
        op::ADDIS => Addis { rt: rt(w), ra: ra(w), si: si(w) },
        op::BC => Bc {
            bo: ((w >> 21) & 31) as u8,
            bi: ((w >> 16) & 31) as u8,
            bd: (w & 0xfffc) as u16 as i16,
            aa: w & 2 != 0,
            lk: w & 1 != 0,
        },
        op::SC if w == (op::SC << 26) | 2 => Sc,
        op::B => {
            let mut li = (w & 0x03ff_fffc) as i32;
            if li & 0x0200_0000 != 0 {
                li |= !0x03ff_ffff;
            }
            B { li, aa: w & 2 != 0, lk: w & 1 != 0 }
        }
        op::XL => decode_xl(w),
        op::RLWIMI => Rlwimi {
            ra: ra(w),
            rs: rt(w),
            sh: ((w >> 11) & 31) as u8,
            mb: ((w >> 6) & 31) as u8,
            me: ((w >> 1) & 31) as u8,
            rc: rc(w),
        },
        op::RLWINM => Rlwinm {
            ra: ra(w),
            rs: rt(w),
            sh: ((w >> 11) & 31) as u8,
            mb: ((w >> 6) & 31) as u8,
            me: ((w >> 1) & 31) as u8,
            rc: rc(w),
        },
        op::ORI => Ori { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::ORIS => Oris { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::XORI => Xori { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::XORIS => Xoris { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::ANDI_RC => AndiRc { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::ANDIS_RC => AndisRc { ra: ra(w), rs: rt(w), ui: ui(w) },
        op::X31 => decode_x31(w),
        op::LWZ => Lwz { rt: rt(w), ra: ra(w), d: si(w) },
        op::LWZU => Lwzu { rt: rt(w), ra: ra(w), d: si(w) },
        op::LBZ => Lbz { rt: rt(w), ra: ra(w), d: si(w) },
        op::LBZU => Lbzu { rt: rt(w), ra: ra(w), d: si(w) },
        op::STW => Stw { rs: rt(w), ra: ra(w), d: si(w) },
        op::STWU => Stwu { rs: rt(w), ra: ra(w), d: si(w) },
        op::STB => Stb { rs: rt(w), ra: ra(w), d: si(w) },
        op::STBU => Stbu { rs: rt(w), ra: ra(w), d: si(w) },
        op::LHZ => Lhz { rt: rt(w), ra: ra(w), d: si(w) },
        op::LHZU => Lhzu { rt: rt(w), ra: ra(w), d: si(w) },
        op::LHA => Lha { rt: rt(w), ra: ra(w), d: si(w) },
        op::LHAU => Lhau { rt: rt(w), ra: ra(w), d: si(w) },
        op::STH => Sth { rs: rt(w), ra: ra(w), d: si(w) },
        op::STHU => Sthu { rs: rt(w), ra: ra(w), d: si(w) },
        op::LMW => Lmw { rt: rt(w), ra: ra(w), d: si(w) },
        op::STMW => Stmw { rs: rt(w), ra: ra(w), d: si(w) },
        _ => Illegal(w),
    }
}

/// Compare instructions require the reserved "/" and L bits (22, 21) clear.
fn cmp_reserved_ok(w: u32) -> bool {
    w & 0x0060_0000 == 0
}

fn decode_xl(w: u32) -> Insn {
    use Insn::*;
    let bo = ((w >> 21) & 31) as u8;
    let bi = ((w >> 16) & 31) as u8;
    match (w >> 1) & 0x3ff {
        xo19::BCLR if (w >> 11) & 31 == 0 => Bclr { bo, bi, lk: rc(w) },
        xo19::BCCTR if (w >> 11) & 31 == 0 => Bcctr { bo, bi, lk: rc(w) },
        xo19::CRXOR if w & 1 == 0 => Crxor { bt: bo, ba: bi, bb: ((w >> 11) & 31) as u8 },
        _ => Illegal(w),
    }
}

fn decode_x31(w: u32) -> Insn {
    use Insn::*;
    let xo = (w >> 1) & 0x3ff;
    match xo {
        xo31::CMPW if cmp_reserved_ok(w) && w & 1 == 0 => {
            Cmpw { bf: CrField::from_field(w >> 23), ra: ra(w), rb: rb(w) }
        }
        xo31::CMPLW if cmp_reserved_ok(w) && w & 1 == 0 => {
            Cmplw { bf: CrField::from_field(w >> 23), ra: ra(w), rb: rb(w) }
        }
        xo31::LWZX if w & 1 == 0 => Lwzx { rt: rt(w), ra: ra(w), rb: rb(w) },
        xo31::LBZX if w & 1 == 0 => Lbzx { rt: rt(w), ra: ra(w), rb: rb(w) },
        xo31::LHZX if w & 1 == 0 => Lhzx { rt: rt(w), ra: ra(w), rb: rb(w) },
        xo31::STWX if w & 1 == 0 => Stwx { rs: rt(w), ra: ra(w), rb: rb(w) },
        xo31::STBX if w & 1 == 0 => Stbx { rs: rt(w), ra: ra(w), rb: rb(w) },
        xo31::STHX if w & 1 == 0 => Sthx { rs: rt(w), ra: ra(w), rb: rb(w) },

        xo31::ADD => Add { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::SUBF => Subf { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::MULLW => Mullw { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::MULHW => Mulhw { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::DIVW => Divw { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::DIVWU => Divwu { rt: rt(w), ra: ra(w), rb: rb(w), rc: rc(w) },
        xo31::NEG if (w >> 11) & 31 == 0 => Neg { rt: rt(w), ra: ra(w), rc: rc(w) },

        xo31::AND => And { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::OR => Or { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::XOR => Xor { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::NAND => Nand { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::NOR => Nor { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::ANDC => Andc { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::ORC => Orc { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::SLW => Slw { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::SRW => Srw { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::SRAW => Sraw { ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) },
        xo31::SRAWI => Srawi { ra: ra(w), rs: rt(w), sh: ((w >> 11) & 31) as u8, rc: rc(w) },
        xo31::EXTSB if (w >> 11) & 31 == 0 => Extsb { ra: ra(w), rs: rt(w), rc: rc(w) },
        xo31::EXTSH if (w >> 11) & 31 == 0 => Extsh { ra: ra(w), rs: rt(w), rc: rc(w) },
        xo31::CNTLZW if (w >> 11) & 31 == 0 => Cntlzw { ra: ra(w), rs: rt(w), rc: rc(w) },

        xo31::MFCR if w & 0x001f_f801 == 0 => Mfcr { rt: rt(w) },
        xo31::MTCRF if w & 0x0010_0801 == 0 => Mtcrf { fxm: ((w >> 12) & 0xff) as u8, rs: rt(w) },
        xo31::MFSPR | xo31::MTSPR if w & 1 == 0 => {
            let split = (w >> 11) & 0x3ff;
            let n = ((split & 0x1f) << 5) | (split >> 5);
            match Spr::from_number(n) {
                Some(spr) if xo == xo31::MFSPR => Mfspr { rt: rt(w), spr },
                Some(spr) => Mtspr { spr, rs: rt(w) },
                None => Illegal(w),
            }
        }
        _ => Illegal(w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::insn::bo;
    use crate::reg::*;

    #[test]
    fn decode_known_words() {
        assert_eq!(decode(0x3860_0001), Insn::Addi { rt: R3, ra: R0, si: 1 });
        assert_eq!(decode(0x4e80_0020), Insn::Bclr { bo: bo::ALWAYS, bi: 0, lk: false });
        assert_eq!(decode(0x7c08_02a6), Insn::Mfspr { rt: R0, spr: Spr::Lr });
        assert_eq!(decode(0x6000_0000), Insn::Ori { ra: R0, rs: R0, ui: 0 });
        assert_eq!(decode(0x4400_0002), Insn::Sc);
    }

    #[test]
    fn escape_words_decode_illegal() {
        for b in crate::opcode::escape_bytes() {
            let w = (b as u32) << 24 | 0x0012_3456;
            assert!(matches!(decode(w), Insn::Illegal(_)), "escape byte {b:#x}");
        }
    }

    #[test]
    fn negative_branch_displacement() {
        let w = encode(&Insn::B { li: -1024, aa: false, lk: false });
        assert_eq!(decode(w), Insn::B { li: -1024, aa: false, lk: false });
    }

    #[test]
    fn reserved_bits_reject() {
        // cmpwi with L bit set must not decode as Cmpwi.
        let w = encode(&Insn::Cmpwi { bf: CR1, ra: R3, si: 5 }) | (1 << 21);
        assert!(matches!(decode(w), Insn::Illegal(_)));
    }

    /// Exhaustive-ish roundtrip: every instruction constructor over a spread
    /// of field values must satisfy decode(encode(i)) == i.
    #[test]
    fn constructed_roundtrip() {
        let regs = [R0, R1, R3, R9, R15, R28, R31];
        let imms: [i16; 5] = [0, 1, -1, 32767, -32768];
        let mut insns: Vec<Insn> = Vec::new();
        for &a in &regs {
            for &b in &regs {
                for &i in &imms {
                    insns.push(Insn::Addi { rt: a, ra: b, si: i });
                    insns.push(Insn::Lwz { rt: a, ra: b, d: i });
                    insns.push(Insn::Stmw { rs: a, ra: b, d: i });
                    insns.push(Insn::Ori { ra: a, rs: b, ui: i as u16 });
                }
                for &c in &regs {
                    insns.push(Insn::Add { rt: a, ra: b, rb: c, rc: false });
                    insns.push(Insn::Subf { rt: a, ra: b, rb: c, rc: true });
                    insns.push(Insn::Or { ra: a, rs: b, rb: c, rc: false });
                    insns.push(Insn::Lwzx { rt: a, ra: b, rb: c });
                }
            }
        }
        for sh in [0u8, 1, 17, 31] {
            insns.push(Insn::Rlwinm { ra: R9, rs: R11, sh, mb: 24, me: 31, rc: false });
            insns.push(Insn::Srawi { ra: R3, rs: R3, sh, rc: true });
        }
        for spr in [Spr::Lr, Spr::Ctr, Spr::Xer] {
            insns.push(Insn::Mfspr { rt: R0, spr });
            insns.push(Insn::Mtspr { spr, rs: R0 });
        }
        insns.push(Insn::Mfcr { rt: R12 });
        insns.push(Insn::Mtcrf { fxm: 0xff, rs: R12 });
        insns.push(Insn::Crxor { bt: 6, ba: 6, bb: 6 });
        insns.push(Insn::Twi { to: 31, ra: R3, si: 16 });
        for &insn in &insns {
            assert_eq!(decode(encode(&insn)), insn, "{insn:?}");
        }
    }
}
