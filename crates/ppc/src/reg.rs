//! Register and special-purpose-register newtypes.
//!
//! Field values are validated at construction ([`Gpr::new`], [`CrField::new`])
//! so encoded instructions are well-formed by construction.

use std::fmt;

/// A general-purpose register, `r0`–`r31`.
///
/// ```
/// use codense_ppc::reg::Gpr;
/// let r = Gpr::new(3).unwrap();
/// assert_eq!(r.number(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// Creates a GPR from its number. Returns `None` if `n > 31`.
    pub const fn new(n: u8) -> Option<Gpr> {
        if n < 32 {
            Some(Gpr(n))
        } else {
            None
        }
    }

    /// Creates a GPR from the low 5 bits of an encoded field.
    pub(crate) const fn from_field(bits: u32) -> Gpr {
        Gpr((bits & 0x1f) as u8)
    }

    /// The register number, `0..=31`.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The register number as an encodable field value.
    pub(crate) const fn field(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

macro_rules! gpr_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        $(
            #[doc = concat!("GPR `r", stringify!($n), "`.")]
            pub const $name: Gpr = Gpr($n);
        )*
    };
}

gpr_consts! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
}

/// The stack pointer by PowerPC SVR4 convention (`r1`).
pub const SP: Gpr = R1;

/// A condition-register field, `cr0`–`cr7`.
///
/// Compare instructions write a 4-bit LT/GT/EQ/SO group into one of eight
/// fields; conditional branches test one bit of one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrField(u8);

impl CrField {
    /// Creates a CR field from its number. Returns `None` if `n > 7`.
    pub const fn new(n: u8) -> Option<CrField> {
        if n < 8 {
            Some(CrField(n))
        } else {
            None
        }
    }

    pub(crate) const fn from_field(bits: u32) -> CrField {
        CrField((bits & 0x7) as u8)
    }

    /// The field number, `0..=7`.
    pub const fn number(self) -> u8 {
        self.0
    }

    pub(crate) const fn field(self) -> u32 {
        self.0 as u32
    }

    /// CR bit index of this field's LT bit (bit `4*n`).
    pub const fn lt_bit(self) -> u8 {
        self.0 * 4
    }
    /// CR bit index of this field's GT bit.
    pub const fn gt_bit(self) -> u8 {
        self.0 * 4 + 1
    }
    /// CR bit index of this field's EQ bit.
    pub const fn eq_bit(self) -> u8 {
        self.0 * 4 + 2
    }
    /// CR bit index of this field's SO (summary overflow) bit.
    pub const fn so_bit(self) -> u8 {
        self.0 * 4 + 3
    }
}

impl fmt::Display for CrField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cr{}", self.0)
    }
}

/// CR field `cr0` (implicitly set by record-form instructions).
pub const CR0: CrField = CrField(0);
/// CR field `cr1`.
pub const CR1: CrField = CrField(1);
/// CR field `cr2`.
pub const CR2: CrField = CrField(2);
/// CR field `cr3`.
pub const CR3: CrField = CrField(3);
/// CR field `cr4`.
pub const CR4: CrField = CrField(4);
/// CR field `cr5`.
pub const CR5: CrField = CrField(5);
/// CR field `cr6`.
pub const CR6: CrField = CrField(6);
/// CR field `cr7`.
pub const CR7: CrField = CrField(7);

/// A special-purpose register reachable through `mfspr`/`mtspr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Spr {
    /// Integer exception register (SPR 1).
    Xer,
    /// Link register (SPR 8).
    Lr,
    /// Count register (SPR 9).
    Ctr,
}

impl Spr {
    /// The architected SPR number.
    pub const fn number(self) -> u32 {
        match self {
            Spr::Xer => 1,
            Spr::Lr => 8,
            Spr::Ctr => 9,
        }
    }

    /// Decodes an SPR number. Returns `None` for SPRs outside the subset.
    pub const fn from_number(n: u32) -> Option<Spr> {
        match n {
            1 => Some(Spr::Xer),
            8 => Some(Spr::Lr),
            9 => Some(Spr::Ctr),
            _ => None,
        }
    }
}

impl fmt::Display for Spr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Spr::Xer => "xer",
            Spr::Lr => "lr",
            Spr::Ctr => "ctr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_bounds() {
        assert_eq!(Gpr::new(31), Some(R31));
        assert_eq!(Gpr::new(32), None);
        assert_eq!(R17.number(), 17);
    }

    #[test]
    fn cr_field_bits() {
        assert_eq!(CR0.lt_bit(), 0);
        assert_eq!(CR1.eq_bit(), 6);
        assert_eq!(CR7.so_bit(), 31);
        assert_eq!(CrField::new(8), None);
    }

    #[test]
    fn spr_numbers_roundtrip() {
        for spr in [Spr::Xer, Spr::Lr, Spr::Ctr] {
            assert_eq!(Spr::from_number(spr.number()), Some(spr));
        }
        assert_eq!(Spr::from_number(268), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SP.to_string(), "r1");
        assert_eq!(CR1.to_string(), "cr1");
        assert_eq!(Spr::Lr.to_string(), "lr");
    }
}
