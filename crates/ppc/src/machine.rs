//! Architectural state and instruction semantics for the PowerPC subset.
//!
//! The machine is deliberately PC-less: the program counter lives in the
//! fetch engine (`codense-vm`), because a compressed-program processor's PC
//! is nibble-granular while an ordinary one is word-granular. All code
//! addresses the machine ever sees (LR, CTR, branch targets) are in the
//! *fetch domain* — nibble addresses — so the same semantics run both
//! program forms.

pub use codense_isa::{MachineError, Outcome};

use crate::insn::Insn;
use crate::reg::{CrField, Gpr, Spr};

/// Architectural state: GPRs, LR/CTR/CR/CA, and a flat big-endian data
/// memory.
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers.
    pub gpr: [u32; 32],
    /// Link register (fetch-domain address).
    pub lr: u32,
    /// Count register.
    pub ctr: u32,
    /// Condition register (bit 0 = CR0's LT, numbered big-endian as in the
    /// architecture books; bit *i* is `0x8000_0000 >> i`).
    pub cr: u32,
    /// Carry bit (XER[CA]).
    pub ca: bool,
    /// Data memory, byte-addressed, big-endian multi-byte accesses.
    pub mem: Vec<u8>,
}

impl Machine {
    /// Creates a machine with the given data-memory size in bytes, with the
    /// stack pointer (`r1`) parked near the top of memory.
    pub fn new(mem_bytes: usize) -> Machine {
        let mut m =
            Machine { gpr: [0; 32], lr: 0, ctr: 0, cr: 0, ca: false, mem: vec![0; mem_bytes] };
        m.gpr[1] = (mem_bytes as u32).saturating_sub(64) & !15;
        m
    }

    #[inline(always)]
    fn reg(&self, r: Gpr) -> u32 {
        // The mask restates `Gpr`'s `< 32` invariant where the optimizer
        // can see it, so hot register accesses carry no bounds check.
        self.gpr[(r.number() & 31) as usize]
    }

    #[inline(always)]
    fn set_reg(&mut self, r: Gpr, v: u32) {
        self.gpr[(r.number() & 31) as usize] = v;
    }

    /// Reads a CR bit (0 = CR0's LT … 31 = CR7's SO).
    pub fn cr_bit(&self, bit: u8) -> bool {
        self.cr & (0x8000_0000u32 >> bit) != 0
    }

    fn set_cr_bit(&mut self, bit: u8, v: bool) {
        let mask = 0x8000_0000u32 >> bit;
        if v {
            self.cr |= mask;
        } else {
            self.cr &= !mask;
        }
    }

    fn set_cr_field(&mut self, bf: CrField, lt: bool, gt: bool, eq: bool) {
        self.set_cr_bit(bf.lt_bit(), lt);
        self.set_cr_bit(bf.gt_bit(), gt);
        self.set_cr_bit(bf.eq_bit(), eq);
        self.set_cr_bit(bf.so_bit(), false);
    }

    fn record(&mut self, value: u32) {
        let v = value as i32;
        self.set_cr_field(crate::reg::CR0, v < 0, v > 0, v == 0);
    }

    fn record_if(&mut self, rc: bool, value: u32) -> u32 {
        if rc {
            self.record(value);
        }
        value
    }

    // ---- memory -----------------------------------------------------------

    #[inline(always)]
    fn check(&self, addr: u32, len: u32) -> Result<usize, MachineError> {
        let end = addr as u64 + len as u64;
        if end <= self.mem.len() as u64 {
            Ok(addr as usize)
        } else {
            Err(MachineError::MemoryFault { addr })
        }
    }

    /// Reads a big-endian 32-bit word.
    #[inline]
    pub fn load32(&self, addr: u32) -> Result<u32, MachineError> {
        let i = self.check(addr, 4)?;
        // Slice-then-convert compiles to one 4-byte load + byte swap; the
        // element-wise form is four separate byte loads.
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.mem[i..i + 4]);
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a big-endian 16-bit halfword.
    pub fn load16(&self, addr: u32) -> Result<u16, MachineError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_be_bytes([self.mem[i], self.mem[i + 1]]))
    }

    /// Reads a byte.
    pub fn load8(&self, addr: u32) -> Result<u8, MachineError> {
        let i = self.check(addr, 1)?;
        Ok(self.mem[i])
    }

    /// Writes a big-endian 32-bit word.
    #[inline]
    pub fn store32(&mut self, addr: u32, v: u32) -> Result<(), MachineError> {
        let i = self.check(addr, 4)?;
        self.mem[i..i + 4].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Writes a big-endian 16-bit halfword.
    pub fn store16(&mut self, addr: u32, v: u16) -> Result<(), MachineError> {
        let i = self.check(addr, 2)?;
        self.mem[i..i + 2].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Writes a byte.
    pub fn store8(&mut self, addr: u32, v: u8) -> Result<(), MachineError> {
        let i = self.check(addr, 1)?;
        self.mem[i] = v;
        Ok(())
    }

    fn ea(&self, ra: Gpr, d: i16) -> u32 {
        let base = if ra.number() == 0 { 0 } else { self.reg(ra) };
        base.wrapping_add(d as i32 as u32)
    }

    fn ea_x(&self, ra: Gpr, rb: Gpr) -> u32 {
        let base = if ra.number() == 0 { 0 } else { self.reg(ra) };
        base.wrapping_add(self.reg(rb))
    }

    // ---- branches ---------------------------------------------------------

    /// Evaluates the BO/BI condition, decrementing CTR as the BO field
    /// dictates. Returns whether the branch is taken.
    fn branch_taken(&mut self, bo: u8, bi: u8) -> bool {
        if bo & 0b00100 == 0 {
            self.ctr = self.ctr.wrapping_sub(1);
        }
        let ctr_ok = bo & 0b00100 != 0 || ((self.ctr != 0) ^ (bo & 0b00010 != 0));
        let cond_ok = bo & 0b10000 != 0 || (self.cr_bit(bi) == (bo & 0b01000 != 0));
        ctr_ok && cond_ok
    }

    // ---- shared op bodies ----------------------------------------------
    // The forms that dominate compiled code (§ D/X-form ALU, word
    // loads/stores, conditional branches) live in `#[inline(always)]`
    // helpers so the full interpreter ([`step`]) and the predecoded hot
    // dispatch ([`codense_isa::PredecodeCore::step_insn`]) execute the
    // same body — one inlined into the VM's threaded loop, one behind the
    // interpreter's match.

    #[inline(always)]
    fn op_addi(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        let base = if ra.number() == 0 { 0 } else { self.reg(ra) };
        self.set_reg(rt, base.wrapping_add(si as i32 as u32));
    }

    #[inline(always)]
    fn op_addis(&mut self, rt: Gpr, ra: Gpr, si: i16) {
        let base = if ra.number() == 0 { 0 } else { self.reg(ra) };
        self.set_reg(rt, base.wrapping_add((si as i32 as u32) << 16));
    }

    #[inline(always)]
    fn op_cmpwi(&mut self, bf: CrField, ra: Gpr, si: i16) {
        let a = self.reg(ra) as i32;
        let b = si as i32;
        self.set_cr_field(bf, a < b, a > b, a == b);
    }

    #[inline(always)]
    fn op_cmplwi(&mut self, bf: CrField, ra: Gpr, ui: u16) {
        let a = self.reg(ra);
        let b = ui as u32;
        self.set_cr_field(bf, a < b, a > b, a == b);
    }

    #[inline(always)]
    fn op_cmpw(&mut self, bf: CrField, ra: Gpr, rb: Gpr) {
        let a = self.reg(ra) as i32;
        let b = self.reg(rb) as i32;
        self.set_cr_field(bf, a < b, a > b, a == b);
    }

    #[inline(always)]
    fn op_cmplw(&mut self, bf: CrField, ra: Gpr, rb: Gpr) {
        let a = self.reg(ra);
        let b = self.reg(rb);
        self.set_cr_field(bf, a < b, a > b, a == b);
    }

    #[inline(always)]
    fn op_lwz(&mut self, rt: Gpr, ra: Gpr, d: i16) -> Result<(), MachineError> {
        let v = self.load32(self.ea(ra, d))?;
        self.set_reg(rt, v);
        Ok(())
    }

    #[inline(always)]
    fn op_stw(&mut self, rs: Gpr, ra: Gpr, d: i16) -> Result<(), MachineError> {
        self.store32(self.ea(ra, d), self.reg(rs))
    }

    #[inline(always)]
    fn op_stwu(&mut self, rs: Gpr, ra: Gpr, d: i16) -> Result<(), MachineError> {
        let ea = self.ea(ra, d);
        self.store32(ea, self.reg(rs))?;
        self.set_reg(ra, ea);
        Ok(())
    }

    #[inline(always)]
    fn op_add(&mut self, rt: Gpr, ra: Gpr, rb: Gpr, rc: bool) {
        let v = self.reg(ra).wrapping_add(self.reg(rb));
        let v = self.record_if(rc, v);
        self.set_reg(rt, v);
    }

    #[inline(always)]
    fn op_subf(&mut self, rt: Gpr, ra: Gpr, rb: Gpr, rc: bool) {
        let v = self.reg(rb).wrapping_sub(self.reg(ra));
        let v = self.record_if(rc, v);
        self.set_reg(rt, v);
    }

    #[inline(always)]
    fn op_and(&mut self, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool) {
        let v = self.reg(rs) & self.reg(rb);
        let v = self.record_if(rc, v);
        self.set_reg(ra, v);
    }

    #[inline(always)]
    fn op_or(&mut self, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool) {
        let v = self.reg(rs) | self.reg(rb);
        let v = self.record_if(rc, v);
        self.set_reg(ra, v);
    }

    #[inline(always)]
    fn op_xor(&mut self, ra: Gpr, rs: Gpr, rb: Gpr, rc: bool) {
        let v = self.reg(rs) ^ self.reg(rb);
        let v = self.record_if(rc, v);
        self.set_reg(ra, v);
    }

    #[inline(always)]
    fn op_rlwinm(&mut self, ra: Gpr, rs: Gpr, sh: u8, mb: u8, me: u8, rc: bool) {
        let rotated = self.reg(rs).rotate_left(sh as u32);
        let v = rotated & mask32(mb, me);
        let v = self.record_if(rc, v);
        self.set_reg(ra, v);
    }

    #[inline(always)]
    fn op_b(&mut self, li: i32, aa: bool, lk: bool, cur_pc: u64, next_pc: u64, g: i64) -> Outcome {
        if lk {
            self.lr = next_pc as u32;
        }
        let units = (li / 4) as i64;
        let target = if aa { units * g } else { cur_pc as i64 + units * g };
        Outcome::Branch(target as u64)
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn op_bc(
        &mut self,
        bo: u8,
        bi: u8,
        bd: i16,
        aa: bool,
        lk: bool,
        cur_pc: u64,
        next_pc: u64,
        g: i64,
    ) -> Outcome {
        if lk {
            self.lr = next_pc as u32;
        }
        if self.branch_taken(bo, bi) {
            let units = (bd / 4) as i64;
            let target = if aa { units * g } else { cur_pc as i64 + units * g };
            Outcome::Branch(target as u64)
        } else {
            Outcome::Next
        }
    }

    #[inline(always)]
    fn op_bclr(&mut self, bo: u8, bi: u8, lk: bool, next_pc: u64) -> Outcome {
        let target = self.lr;
        if lk {
            self.lr = next_pc as u32;
        }
        if self.branch_taken(bo, bi) {
            Outcome::Branch(target as u64)
        } else {
            Outcome::Next
        }
    }

    /// Executes one instruction.
    ///
    /// `cur_pc`/`next_pc` are the instruction's own and successor addresses
    /// in the fetch domain; `granule` is the fetch domain's branch-offset
    /// unit in nibbles (8 uncompressed, 4/2/1 compressed). Branch offset
    /// fields are interpreted as raw units scaled by `granule`, exactly as
    /// the paper's modified control unit does (§3.2.2).
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on faults; the machine state reflects the
    /// partial execution (registers already written stay written).
    pub fn step(
        &mut self,
        insn: &Insn,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        use Insn::*;
        let g = granule as i64;
        match *insn {
            // ---- D-form arithmetic ---------------------------------------
            Addi { rt, ra, si } => self.op_addi(rt, ra, si),
            Addis { rt, ra, si } => self.op_addis(rt, ra, si),
            Addic { rt, ra, si } | AddicRc { rt, ra, si } => {
                let (v, c) = self.reg(ra).overflowing_add(si as i32 as u32);
                self.ca = c;
                self.set_reg(rt, v);
                if matches!(insn, AddicRc { .. }) {
                    self.record(v);
                }
            }
            Subfic { rt, ra, si } => {
                let (v, borrow) = (si as i32 as u32).overflowing_sub(self.reg(ra));
                self.ca = !borrow;
                self.set_reg(rt, v);
            }
            Mulli { rt, ra, si } => {
                self.set_reg(rt, self.reg(ra).wrapping_mul(si as i32 as u32));
            }

            // ---- D-form logical ------------------------------------------
            Ori { ra, rs, ui } => self.set_reg(ra, self.reg(rs) | ui as u32),
            Oris { ra, rs, ui } => self.set_reg(ra, self.reg(rs) | ((ui as u32) << 16)),
            Xori { ra, rs, ui } => self.set_reg(ra, self.reg(rs) ^ ui as u32),
            Xoris { ra, rs, ui } => self.set_reg(ra, self.reg(rs) ^ ((ui as u32) << 16)),
            AndiRc { ra, rs, ui } => {
                let v = self.reg(rs) & ui as u32;
                self.set_reg(ra, v);
                self.record(v);
            }
            AndisRc { ra, rs, ui } => {
                let v = self.reg(rs) & ((ui as u32) << 16);
                self.set_reg(ra, v);
                self.record(v);
            }

            // ---- compares ------------------------------------------------
            Cmpwi { bf, ra, si } => self.op_cmpwi(bf, ra, si),
            Cmplwi { bf, ra, ui } => self.op_cmplwi(bf, ra, ui),
            Cmpw { bf, ra, rb } => self.op_cmpw(bf, ra, rb),
            Cmplw { bf, ra, rb } => self.op_cmplw(bf, ra, rb),

            // ---- loads and stores ----------------------------------------
            Lwz { rt, ra, d } => self.op_lwz(rt, ra, d)?,
            Lwzu { rt, ra, d } => {
                let ea = self.ea(ra, d);
                let v = self.load32(ea)?;
                self.set_reg(rt, v);
                self.set_reg(ra, ea);
            }
            Lbz { rt, ra, d } => {
                let v = self.load8(self.ea(ra, d))?;
                self.set_reg(rt, v as u32);
            }
            Lbzu { rt, ra, d } => {
                let ea = self.ea(ra, d);
                let v = self.load8(ea)?;
                self.set_reg(rt, v as u32);
                self.set_reg(ra, ea);
            }
            Lhz { rt, ra, d } => {
                let v = self.load16(self.ea(ra, d))?;
                self.set_reg(rt, v as u32);
            }
            Lhzu { rt, ra, d } => {
                let ea = self.ea(ra, d);
                let v = self.load16(ea)?;
                self.set_reg(rt, v as u32);
                self.set_reg(ra, ea);
            }
            Lha { rt, ra, d } => {
                let v = self.load16(self.ea(ra, d))? as i16;
                self.set_reg(rt, v as i32 as u32);
            }
            Lhau { rt, ra, d } => {
                let ea = self.ea(ra, d);
                let v = self.load16(ea)? as i16;
                self.set_reg(rt, v as i32 as u32);
                self.set_reg(ra, ea);
            }
            Stw { rs, ra, d } => self.op_stw(rs, ra, d)?,
            Stwu { rs, ra, d } => self.op_stwu(rs, ra, d)?,
            Stb { rs, ra, d } => self.store8(self.ea(ra, d), self.reg(rs) as u8)?,
            Stbu { rs, ra, d } => {
                let ea = self.ea(ra, d);
                self.store8(ea, self.reg(rs) as u8)?;
                self.set_reg(ra, ea);
            }
            Sth { rs, ra, d } => self.store16(self.ea(ra, d), self.reg(rs) as u16)?,
            Sthu { rs, ra, d } => {
                let ea = self.ea(ra, d);
                self.store16(ea, self.reg(rs) as u16)?;
                self.set_reg(ra, ea);
            }
            Lmw { rt, ra, d } => {
                let mut ea = self.ea(ra, d);
                for r in rt.number()..32 {
                    let v = self.load32(ea)?;
                    self.gpr[r as usize] = v;
                    ea = ea.wrapping_add(4);
                }
            }
            Stmw { rs, ra, d } => {
                let mut ea = self.ea(ra, d);
                for r in rs.number()..32 {
                    self.store32(ea, self.gpr[r as usize])?;
                    ea = ea.wrapping_add(4);
                }
            }
            Lwzx { rt, ra, rb } => {
                let v = self.load32(self.ea_x(ra, rb))?;
                self.set_reg(rt, v);
            }
            Lbzx { rt, ra, rb } => {
                let v = self.load8(self.ea_x(ra, rb))?;
                self.set_reg(rt, v as u32);
            }
            Lhzx { rt, ra, rb } => {
                let v = self.load16(self.ea_x(ra, rb))?;
                self.set_reg(rt, v as u32);
            }
            Stwx { rs, ra, rb } => self.store32(self.ea_x(ra, rb), self.reg(rs))?,
            Stbx { rs, ra, rb } => self.store8(self.ea_x(ra, rb), self.reg(rs) as u8)?,
            Sthx { rs, ra, rb } => self.store16(self.ea_x(ra, rb), self.reg(rs) as u16)?,

            // ---- XO-form arithmetic --------------------------------------
            Add { rt, ra, rb, rc } => self.op_add(rt, ra, rb, rc),
            Subf { rt, ra, rb, rc } => self.op_subf(rt, ra, rb, rc),
            Mullw { rt, ra, rb, rc } => {
                let v = self.reg(ra).wrapping_mul(self.reg(rb));
                let v = self.record_if(rc, v);
                self.set_reg(rt, v);
            }
            Mulhw { rt, ra, rb, rc } => {
                let v = ((self.reg(ra) as i32 as i64 * self.reg(rb) as i32 as i64) >> 32) as u32;
                let v = self.record_if(rc, v);
                self.set_reg(rt, v);
            }
            Divw { rt, ra, rb, rc } => {
                let a = self.reg(ra) as i32;
                let b = self.reg(rb) as i32;
                // Architecturally undefined for /0 and MIN/-1; we define 0.
                let v = if b == 0 || (a == i32::MIN && b == -1) { 0 } else { a / b } as u32;
                let v = self.record_if(rc, v);
                self.set_reg(rt, v);
            }
            Divwu { rt, ra, rb, rc } => {
                let b = self.reg(rb);
                let v = self.reg(ra).checked_div(b).unwrap_or(0);
                let v = self.record_if(rc, v);
                self.set_reg(rt, v);
            }
            Neg { rt, ra, rc } => {
                let v = (self.reg(ra) as i32).wrapping_neg() as u32;
                let v = self.record_if(rc, v);
                self.set_reg(rt, v);
            }

            // ---- X-form logical ------------------------------------------
            And { ra, rs, rb, rc } => self.op_and(ra, rs, rb, rc),
            Or { ra, rs, rb, rc } => self.op_or(ra, rs, rb, rc),
            Xor { ra, rs, rb, rc } => self.op_xor(ra, rs, rb, rc),
            Nand { ra, rs, rb, rc } => {
                let v = !(self.reg(rs) & self.reg(rb));
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Nor { ra, rs, rb, rc } => {
                let v = !(self.reg(rs) | self.reg(rb));
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Andc { ra, rs, rb, rc } => {
                let v = self.reg(rs) & !self.reg(rb);
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Orc { ra, rs, rb, rc } => {
                let v = self.reg(rs) | !self.reg(rb);
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Slw { ra, rs, rb, rc } => {
                let sh = self.reg(rb) & 0x3f;
                let v = if sh > 31 { 0 } else { self.reg(rs) << sh };
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Srw { ra, rs, rb, rc } => {
                let sh = self.reg(rb) & 0x3f;
                let v = if sh > 31 { 0 } else { self.reg(rs) >> sh };
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Sraw { ra, rs, rb, rc } => {
                let sh = self.reg(rb) & 0x3f;
                let s = self.reg(rs) as i32;
                let v = if sh > 31 { (s >> 31) as u32 } else { (s >> sh) as u32 };
                self.ca = s < 0 && (sh > 31 || (s as u32) << (32 - sh.max(1)) != 0) && sh != 0;
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Srawi { ra, rs, sh, rc } => {
                let s = self.reg(rs) as i32;
                let v = (s >> sh) as u32;
                self.ca = s < 0 && sh != 0 && (s as u32) << (32 - sh as u32) != 0;
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Extsb { ra, rs, rc } => {
                let v = self.reg(rs) as u8 as i8 as i32 as u32;
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Extsh { ra, rs, rc } => {
                let v = self.reg(rs) as u16 as i16 as i32 as u32;
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }
            Cntlzw { ra, rs, rc } => {
                let v = self.reg(rs).leading_zeros();
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }

            // ---- rotates -------------------------------------------------
            Rlwinm { ra, rs, sh, mb, me, rc } => self.op_rlwinm(ra, rs, sh, mb, me, rc),
            Rlwimi { ra, rs, sh, mb, me, rc } => {
                let m = mask32(mb, me);
                let rotated = self.reg(rs).rotate_left(sh as u32);
                let v = (rotated & m) | (self.reg(ra) & !m);
                let v = self.record_if(rc, v);
                self.set_reg(ra, v);
            }

            // ---- branches ------------------------------------------------
            B { li, aa, lk } => return Ok(self.op_b(li, aa, lk, cur_pc, next_pc, g)),
            Bc { bo, bi, bd, aa, lk } => {
                return Ok(self.op_bc(bo, bi, bd, aa, lk, cur_pc, next_pc, g))
            }
            Bclr { bo, bi, lk } => return Ok(self.op_bclr(bo, bi, lk, next_pc)),
            Bcctr { bo, bi, lk } => {
                if lk {
                    self.lr = next_pc as u32;
                }
                // CTR-decrementing forms are invalid for bcctr; treat BO
                // literally but never decrement (as hardware does).
                let cond_ok = bo & 0b10000 != 0 || (self.cr_bit(bi) == (bo & 0b01000 != 0));
                if cond_ok {
                    return Ok(Outcome::Branch(self.ctr as u64));
                }
            }

            // ---- CR and SPRs ---------------------------------------------
            Crxor { bt, ba, bb } => {
                let v = self.cr_bit(ba) ^ self.cr_bit(bb);
                self.set_cr_bit(bt, v);
            }
            Mfcr { rt } => self.set_reg(rt, self.cr),
            Mtcrf { fxm, rs } => {
                let v = self.reg(rs);
                for field in 0..8 {
                    if fxm & (0x80 >> field) != 0 {
                        let mask = 0xf000_0000u32 >> (4 * field);
                        self.cr = (self.cr & !mask) | (v & mask);
                    }
                }
            }
            Mfspr { rt, spr } => {
                let v = match spr {
                    Spr::Lr => self.lr,
                    Spr::Ctr => self.ctr,
                    Spr::Xer => u32::from(self.ca) << 29,
                };
                self.set_reg(rt, v);
            }
            Mtspr { spr, rs } => {
                let v = self.reg(rs);
                match spr {
                    Spr::Lr => self.lr = v,
                    Spr::Ctr => self.ctr = v,
                    Spr::Xer => self.ca = v & (1 << 29) != 0,
                }
            }

            // ---- traps and system ----------------------------------------
            Twi { to, ra, si } => {
                let a = self.reg(ra) as i32;
                let b = si as i32;
                let fire = (to & 0b10000 != 0 && a < b)
                    || (to & 0b01000 != 0 && a > b)
                    || (to & 0b00100 != 0 && a == b)
                    || (to & 0b00010 != 0 && (a as u32) < (b as u32))
                    || (to & 0b00001 != 0 && (a as u32) > (b as u32));
                if fire {
                    return Err(MachineError::Trap);
                }
            }
            Sc => return Ok(Outcome::Halt),
            Illegal(word) => return Err(MachineError::IllegalInstruction { word }),
        }
        Ok(Outcome::Next)
    }
}

impl codense_isa::Core for Machine {
    fn step_word(
        &mut self,
        word: u32,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        self.step(&crate::decode(word), cur_pc, next_pc, granule)
    }

    fn gpr(&self, r: usize) -> u32 {
        self.gpr[r]
    }

    fn set_gpr(&mut self, r: usize, v: u32) {
        self.gpr[r] = v;
    }

    fn write32(&mut self, addr: u32, v: u32) -> Result<(), MachineError> {
        self.store32(addr, v)
    }

    fn mem_bytes(&self) -> &[u8] {
        &self.mem
    }

    fn exit_code(&self) -> u32 {
        self.gpr[3]
    }

    fn flags(&self) -> u64 {
        self.cr as u64 | (u64::from(self.ca) << 32)
    }
}

impl codense_isa::PredecodeCore for Machine {
    type Insn = Insn;

    fn predecode(word: u32) -> Insn {
        crate::decode(word)
    }

    #[inline(always)]
    fn step_insn(
        &mut self,
        insn: &Insn,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError> {
        use Insn::*;
        // Hot dispatch: the forms dominating compiled code run through the
        // shared `op_*` bodies inlined into the caller's loop; everything
        // else falls back to the full interpreter.
        match *insn {
            Addi { rt, ra, si } => self.op_addi(rt, ra, si),
            Addis { rt, ra, si } => self.op_addis(rt, ra, si),
            Cmpwi { bf, ra, si } => self.op_cmpwi(bf, ra, si),
            Cmplwi { bf, ra, ui } => self.op_cmplwi(bf, ra, ui),
            Cmpw { bf, ra, rb } => self.op_cmpw(bf, ra, rb),
            Cmplw { bf, ra, rb } => self.op_cmplw(bf, ra, rb),
            Lwz { rt, ra, d } => self.op_lwz(rt, ra, d)?,
            Stw { rs, ra, d } => self.op_stw(rs, ra, d)?,
            Stwu { rs, ra, d } => self.op_stwu(rs, ra, d)?,
            Add { rt, ra, rb, rc } => self.op_add(rt, ra, rb, rc),
            Subf { rt, ra, rb, rc } => self.op_subf(rt, ra, rb, rc),
            And { ra, rs, rb, rc } => self.op_and(ra, rs, rb, rc),
            Or { ra, rs, rb, rc } => self.op_or(ra, rs, rb, rc),
            Xor { ra, rs, rb, rc } => self.op_xor(ra, rs, rb, rc),
            Rlwinm { ra, rs, sh, mb, me, rc } => self.op_rlwinm(ra, rs, sh, mb, me, rc),
            B { li, aa, lk } => return Ok(self.op_b(li, aa, lk, cur_pc, next_pc, granule as i64)),
            Bc { bo, bi, bd, aa, lk } => {
                return Ok(self.op_bc(bo, bi, bd, aa, lk, cur_pc, next_pc, granule as i64))
            }
            Bclr { bo, bi, lk } => return Ok(self.op_bclr(bo, bi, lk, next_pc)),
            _ => return self.step(insn, cur_pc, next_pc, granule),
        }
        Ok(Outcome::Next)
    }
}

/// PowerPC rotate mask: bits `mb..=me` set (big-endian bit numbering), with
/// the wrap-around case when `mb > me`.
fn mask32(mb: u8, me: u8) -> u32 {
    let mb = mb as u32;
    let me = me as u32;
    let x = 0xffff_ffffu32;
    if mb <= me {
        (x >> mb) & (x << (31 - me))
    } else {
        (x >> mb) | (x << (31 - me))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    fn m() -> Machine {
        Machine::new(64 * 1024)
    }

    fn exec(mach: &mut Machine, insn: Insn) -> Outcome {
        mach.step(&insn, 0, 8, 8).unwrap()
    }

    #[test]
    fn arithmetic_basics() {
        let mut mach = m();
        exec(&mut mach, Insn::Addi { rt: R3, ra: R0, si: -5 });
        assert_eq!(mach.gpr[3], (-5i32) as u32);
        exec(&mut mach, Insn::Addis { rt: R4, ra: R0, si: 1 });
        assert_eq!(mach.gpr[4], 0x0001_0000);
        exec(&mut mach, Insn::Add { rt: R5, ra: R3, rb: R4, rc: false });
        assert_eq!(mach.gpr[5], 0x0000_fffb);
        exec(&mut mach, Insn::Neg { rt: R6, ra: R3, rc: false });
        assert_eq!(mach.gpr[6], 5);
    }

    #[test]
    fn record_forms_set_cr0() {
        let mut mach = m();
        exec(&mut mach, Insn::Addi { rt: R3, ra: R0, si: -1 });
        exec(&mut mach, Insn::Add { rt: R4, ra: R3, rb: R3, rc: true });
        assert!(mach.cr_bit(CR0.lt_bit()));
        assert!(!mach.cr_bit(CR0.eq_bit()));
        exec(&mut mach, Insn::Subf { rt: R5, ra: R3, rb: R3, rc: true });
        assert!(mach.cr_bit(CR0.eq_bit()));
    }

    #[test]
    fn compare_signed_vs_unsigned() {
        let mut mach = m();
        exec(&mut mach, Insn::Addi { rt: R3, ra: R0, si: -1 });
        exec(&mut mach, Insn::Cmpwi { bf: CR1, ra: R3, si: 0 });
        assert!(mach.cr_bit(CR1.lt_bit()));
        exec(&mut mach, Insn::Cmplwi { bf: CR2, ra: R3, ui: 0 });
        assert!(mach.cr_bit(CR2.gt_bit())); // 0xffffffff unsigned-> huge
    }

    #[test]
    fn memory_roundtrip_and_endianness() {
        let mut mach = m();
        mach.gpr[9] = 0x100;
        mach.gpr[3] = 0xdead_beef;
        exec(&mut mach, Insn::Stw { rs: R3, ra: R9, d: 4 });
        assert_eq!(&mach.mem[0x104..0x108], &[0xde, 0xad, 0xbe, 0xef]);
        exec(&mut mach, Insn::Lbz { rt: R4, ra: R9, d: 5 });
        assert_eq!(mach.gpr[4], 0xad);
        exec(&mut mach, Insn::Lhz { rt: R5, ra: R9, d: 6 });
        assert_eq!(mach.gpr[5], 0xbeef);
        exec(&mut mach, Insn::Lha { rt: R6, ra: R9, d: 6 });
        assert_eq!(mach.gpr[6], 0xffff_beef);
    }

    #[test]
    fn stmw_lmw_roundtrip() {
        let mut mach = m();
        for r in 29..32 {
            mach.gpr[r] = 0x1000 + r as u32;
        }
        mach.gpr[1] = 0x200;
        exec(&mut mach, Insn::Stmw { rs: R29, ra: R1, d: 16 });
        for r in 29..32 {
            mach.gpr[r] = 0;
        }
        exec(&mut mach, Insn::Lmw { rt: R29, ra: R1, d: 16 });
        for r in 29..32 {
            assert_eq!(mach.gpr[r], 0x1000 + r as u32);
        }
    }

    #[test]
    fn memory_fault_detected() {
        let mut mach = m();
        mach.gpr[9] = mach.mem.len() as u32;
        let err = mach.step(&Insn::Lwz { rt: R3, ra: R9, d: 0 }, 0, 8, 8).unwrap_err();
        assert!(matches!(err, MachineError::MemoryFault { .. }));
    }

    #[test]
    fn rotates_and_shifts() {
        let mut mach = m();
        mach.gpr[3] = 0x0000_01ff;
        // clrlwi r4,r3,24 keeps the low byte.
        exec(&mut mach, Insn::Rlwinm { ra: R4, rs: R3, sh: 0, mb: 24, me: 31, rc: false });
        assert_eq!(mach.gpr[4], 0xff);
        // slwi r5,r3,4
        exec(&mut mach, Insn::Rlwinm { ra: R5, rs: R3, sh: 4, mb: 0, me: 27, rc: false });
        assert_eq!(mach.gpr[5], 0x1ff0);
        mach.gpr[6] = 0x8000_0000;
        exec(&mut mach, Insn::Srawi { ra: R7, rs: R6, sh: 4, rc: false });
        assert_eq!(mach.gpr[7], 0xf800_0000);
        assert!(!mach.ca); // no 1-bits shifted out
        mach.gpr[6] = 0x8000_0001;
        exec(&mut mach, Insn::Srawi { ra: R7, rs: R6, sh: 1, rc: false });
        assert!(mach.ca);
    }

    #[test]
    fn branch_granule_scaling() {
        let mut mach = m();
        // b .+16 bytes = 4 units. At granule 8 (uncompressed): +32 nibbles.
        let out = mach.step(&Insn::B { li: 16, aa: false, lk: false }, 100, 108, 8).unwrap();
        assert_eq!(out, Outcome::Branch(100 + 4 * 8));
        // Same instruction in a nibble-compressed program (granule 1).
        let out = mach.step(&Insn::B { li: 16, aa: false, lk: false }, 100, 109, 1).unwrap();
        assert_eq!(out, Outcome::Branch(104));
    }

    #[test]
    fn call_and_return() {
        let mut mach = m();
        let out = mach.step(&Insn::B { li: 40, aa: false, lk: true }, 64, 72, 8).unwrap();
        assert_eq!(out, Outcome::Branch(64 + 10 * 8));
        assert_eq!(mach.lr, 72);
        let out = mach
            .step(&Insn::Bclr { bo: crate::insn::bo::ALWAYS, bi: 0, lk: false }, 200, 208, 8)
            .unwrap();
        assert_eq!(out, Outcome::Branch(72));
    }

    #[test]
    fn bdnz_decrements_ctr() {
        let mut mach = m();
        mach.ctr = 2;
        let taken = |mach: &mut Machine| {
            mach.step(
                &Insn::Bc { bo: crate::insn::bo::DNZ, bi: 0, bd: -8, aa: false, lk: false },
                100,
                108,
                8,
            )
            .unwrap()
        };
        assert_eq!(taken(&mut mach), Outcome::Branch(100 - 2 * 8));
        assert_eq!(mach.ctr, 1);
        assert_eq!(taken(&mut mach), Outcome::Next);
        assert_eq!(mach.ctr, 0);
    }

    #[test]
    fn trap_and_halt() {
        let mut mach = m();
        mach.gpr[3] = 5;
        // twi eq, r3, 5 fires.
        let err = mach.step(&Insn::Twi { to: 0b00100, ra: R3, si: 5 }, 0, 8, 8).unwrap_err();
        assert_eq!(err, MachineError::Trap);
        assert_eq!(exec(&mut mach, Insn::Sc), Outcome::Halt);
    }

    #[test]
    fn mask32_wraparound() {
        assert_eq!(mask32(24, 31), 0xff);
        assert_eq!(mask32(0, 31), 0xffff_ffff);
        assert_eq!(mask32(0, 7), 0xff00_0000);
        // Wrap: mb=30, me=1 → bits 30,31,0,1.
        assert_eq!(mask32(30, 1), 0xc000_0003);
    }
}

#[cfg(test)]
mod semantics_edge_tests {
    use super::*;
    use crate::insn::Insn;
    use crate::reg::*;

    fn m() -> Machine {
        Machine::new(4096)
    }

    fn exec(mach: &mut Machine, insn: Insn) {
        mach.step(&insn, 0, 8, 8).unwrap();
    }

    #[test]
    fn addic_carry_semantics() {
        let mut mach = m();
        mach.gpr[4] = 0xffff_ffff;
        exec(&mut mach, Insn::Addic { rt: R3, ra: R4, si: 1 });
        assert_eq!(mach.gpr[3], 0);
        assert!(mach.ca, "wraparound sets CA");
        mach.gpr[4] = 5;
        exec(&mut mach, Insn::Addic { rt: R3, ra: R4, si: 1 });
        assert!(!mach.ca, "no carry clears CA");
    }

    #[test]
    fn subfic_borrow_semantics() {
        let mut mach = m();
        mach.gpr[4] = 3;
        exec(&mut mach, Insn::Subfic { rt: R3, ra: R4, si: 10 });
        assert_eq!(mach.gpr[3], 7);
        assert!(mach.ca, "no borrow sets CA");
        mach.gpr[4] = 10;
        exec(&mut mach, Insn::Subfic { rt: R3, ra: R4, si: 3 });
        assert_eq!(mach.gpr[3], (-7i32) as u32);
        assert!(!mach.ca, "borrow clears CA");
    }

    #[test]
    fn division_edge_cases_defined() {
        let mut mach = m();
        mach.gpr[4] = 7;
        mach.gpr[5] = 0;
        exec(&mut mach, Insn::Divw { rt: R3, ra: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0, "divide by zero yields 0 in this model");
        mach.gpr[4] = 0x8000_0000;
        mach.gpr[5] = 0xffff_ffff;
        exec(&mut mach, Insn::Divw { rt: R3, ra: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0, "MIN / -1 yields 0 in this model");
        mach.gpr[4] = 100;
        mach.gpr[5] = 7;
        exec(&mut mach, Insn::Divwu { rt: R3, ra: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 14);
    }

    #[test]
    fn mulhw_high_bits() {
        let mut mach = m();
        mach.gpr[4] = 0x4000_0000;
        mach.gpr[5] = 4;
        exec(&mut mach, Insn::Mulhw { rt: R3, ra: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 1); // 2^30 * 4 = 2^32
        mach.gpr[4] = (-3i32) as u32;
        mach.gpr[5] = 2;
        exec(&mut mach, Insn::Mulhw { rt: R3, ra: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0xffff_ffff, "signed high half");
    }

    #[test]
    fn shift_amounts_beyond_31() {
        let mut mach = m();
        mach.gpr[4] = 0xdead_beef;
        mach.gpr[5] = 32;
        exec(&mut mach, Insn::Slw { ra: R3, rs: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0);
        exec(&mut mach, Insn::Srw { ra: R3, rs: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0);
        exec(&mut mach, Insn::Sraw { ra: R3, rs: R4, rb: R5, rc: false });
        assert_eq!(mach.gpr[3], 0xffff_ffff, "algebraic fills with sign");
    }

    #[test]
    fn cntlzw_and_extends() {
        let mut mach = m();
        mach.gpr[4] = 0;
        exec(&mut mach, Insn::Cntlzw { ra: R3, rs: R4, rc: false });
        assert_eq!(mach.gpr[3], 32);
        mach.gpr[4] = 0x0000_8000;
        exec(&mut mach, Insn::Cntlzw { ra: R3, rs: R4, rc: false });
        assert_eq!(mach.gpr[3], 16);
        mach.gpr[4] = 0x80;
        exec(&mut mach, Insn::Extsb { ra: R3, rs: R4, rc: false });
        assert_eq!(mach.gpr[3], 0xffff_ff80);
        mach.gpr[4] = 0x8000;
        exec(&mut mach, Insn::Extsh { ra: R3, rs: R4, rc: false });
        assert_eq!(mach.gpr[3], 0xffff_8000);
    }

    #[test]
    fn rlwimi_inserts_under_mask() {
        let mut mach = m();
        mach.gpr[3] = 0xaaaa_aaaa; // destination keeps bits outside mask
        mach.gpr[4] = 0x0000_00ff;
        exec(&mut mach, Insn::Rlwimi { ra: R3, rs: R4, sh: 8, mb: 16, me: 23, rc: false });
        // rs rotated left 8 = 0x0000ff00; mask bits 16..=23 = 0x0000ff00.
        assert_eq!(mach.gpr[3], 0xaaaa_ffaa);
    }

    #[test]
    fn mtcrf_partial_update() {
        let mut mach = m();
        mach.cr = 0xffff_ffff;
        mach.gpr[4] = 0;
        // Update only CR field 0 (mask bit 0x80).
        exec(&mut mach, Insn::Mtcrf { fxm: 0x80, rs: R4 });
        assert_eq!(mach.cr, 0x0fff_ffff);
        // And only field 7.
        mach.cr = 0;
        mach.gpr[4] = 0xffff_ffff;
        exec(&mut mach, Insn::Mtcrf { fxm: 0x01, rs: R4 });
        assert_eq!(mach.cr, 0x0000_000f);
    }

    #[test]
    fn ea_with_r0_base_reads_zero() {
        let mut mach = m();
        mach.gpr[0] = 0xdead_0000; // must be ignored as a base
        mach.store32(0x40, 0x1234_5678).unwrap();
        exec(&mut mach, Insn::Lwz { rt: R3, ra: R0, d: 0x40 });
        assert_eq!(mach.gpr[3], 0x1234_5678);
    }
}
