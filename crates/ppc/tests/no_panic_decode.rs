//! Decoder robustness over a deterministic sample of the 32-bit space.
//!
//! The no-panic decoder policy: `decode` must accept *any* word — returning
//! `Insn::Illegal` for everything outside the subset — and the textual
//! pipeline (`disassemble` → `parse_insn` → `encode`) must round-trip every
//! decodable word exactly. The sample is seeded SplitMix64, so failures
//! reproduce bit-for-bit.

use codense_ppc::{decode, encode, Insn};

/// SplitMix64 (same stream as `codense_codegen::Rng`, inlined to keep this
/// crate's dev-dependencies closed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const SAMPLE: usize = 1_000_000;
const SEED: u64 = 0x5EED_DEC0_DE00_0001;

/// Deterministic word sample: uniform random words, plus every word biased
/// toward in-subset primary opcodes (so the interesting decode arms see
/// dense coverage of their modifier bits, not just 1-in-64 of the space).
fn sample_words() -> Vec<u32> {
    let mut rng = Rng(SEED);
    let mut words = Vec::with_capacity(SAMPLE);
    for i in 0..SAMPLE {
        let w = rng.next() as u32;
        words.push(match i % 4 {
            // Raw random word.
            0 => w,
            // Random word under a known primary opcode (14 = addi family
            // start; cycling 0..64 covers every primary including illegal).
            1 => (w & 0x03FF_FFFF) | (((i / 4) as u32 % 64) << 26),
            // Primary 31 (the big X/XO-form space) with random XO bits.
            2 => (w & 0x03FF_FFFF) | (31 << 26),
            // Primary 19 (CR ops / bclr / bcctr) with random XO bits.
            _ => (w & 0x03FF_FFFF) | (19 << 26),
        });
    }
    words
}

#[test]
fn decode_never_panics_over_one_million_words() {
    let mut legal = 0u64;
    let mut illegal = 0u64;
    for w in sample_words() {
        match decode(w) {
            Insn::Illegal(word) => {
                assert_eq!(word, w, "Illegal must carry the original word");
                illegal += 1;
            }
            _ => legal += 1,
        }
    }
    // Sanity on the sample composition: both arms are well exercised.
    assert!(legal > 10_000, "sample decoded almost nothing legal: {legal}");
    assert!(illegal > 10_000, "sample decoded almost nothing illegal: {illegal}");
}

#[test]
fn decode_encode_fixpoint_on_decodable_words() {
    // `decode` may normalize don't-care bits, so `encode(decode(w))` is not
    // necessarily `w` — but it must be a fixpoint: decoding the re-encoded
    // word yields the same instruction, and re-encoding is then stable.
    for w in sample_words() {
        let insn = decode(w);
        if matches!(insn, Insn::Illegal(_)) {
            continue;
        }
        let w2 = encode(&insn);
        let insn2 = decode(w2);
        assert_eq!(insn2, insn, "decode/encode not a fixpoint for {w:#010x} -> {w2:#010x}");
        assert_eq!(encode(&insn2), w2, "encode unstable for {w:#010x}");
    }
}

#[test]
fn disasm_parse_encode_roundtrip_on_decodable_words() {
    // Every decodable sampled word must survive the textual pipeline:
    // disassemble it, parse the text back, and get the same instruction.
    // The address matters for PC-relative branches (disasm prints resolved
    // targets), so use a fixed mid-range one.
    let addr = 0x0010_0000;
    let mut checked = 0u64;
    for w in sample_words() {
        let insn = decode(w);
        if matches!(insn, Insn::Illegal(_)) {
            continue;
        }
        let text = codense_ppc::disasm::disassemble_insn(&insn, addr);
        let parsed = codense_ppc::parse::parse_insn(&text, addr)
            .unwrap_or_else(|e| panic!("{w:#010x}: cannot re-parse `{text}`: {e}"));
        assert_eq!(parsed, insn, "{w:#010x}: `{text}` re-parsed to a different instruction");
        checked += 1;
    }
    assert!(checked > 10_000, "round-trip exercised too few words: {checked}");
}
