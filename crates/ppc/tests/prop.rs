//! Property tests for the ISA layer.

use proptest::prelude::*;

use codense_ppc::branch::{
    patch_offset_units, read_offset_units, rel_branch_info, RelBranchKind,
};
use codense_ppc::{decode, encode};

proptest! {
    /// Total decode/encode identity over the full 32-bit space.
    #[test]
    fn decode_encode_identity(w in any::<u32>()) {
        prop_assert_eq!(encode(&decode(w)), w);
    }

    /// Branch-field patching round-trips and preserves all other bits.
    #[test]
    fn patch_roundtrip_bform(bo in 0u8..32, bi in 0u8..32, units in -8192i32..8192) {
        let word = encode(&codense_ppc::Insn::Bc { bo, bi, bd: 0, aa: false, lk: false });
        let patched = patch_offset_units(word, RelBranchKind::BForm, units);
        prop_assert_eq!(read_offset_units(patched, RelBranchKind::BForm), units);
        prop_assert_eq!(patched & !0x0000_fffc, word & !0x0000_fffc);
    }

    /// Same for the I form.
    #[test]
    fn patch_roundtrip_iform(lk in any::<bool>(), units in -(1i32 << 23)..(1 << 23)) {
        let word = encode(&codense_ppc::Insn::B { li: 0, aa: false, lk });
        let patched = patch_offset_units(word, RelBranchKind::IForm, units);
        prop_assert_eq!(read_offset_units(patched, RelBranchKind::IForm), units);
        prop_assert_eq!(patched & 3, word & 3);
    }

    /// rel_branch_info agrees with the decoder.
    #[test]
    fn branch_info_consistent(w in any::<u32>()) {
        let info = rel_branch_info(w);
        match decode(w) {
            codense_ppc::Insn::B { li, aa: false, lk } => {
                let i = info.expect("relative b");
                prop_assert_eq!(i.offset, li);
                prop_assert_eq!(i.lk, lk);
            }
            codense_ppc::Insn::Bc { bd, aa: false, lk, .. } => {
                let i = info.expect("relative bc");
                prop_assert_eq!(i.offset, bd as i32);
                prop_assert_eq!(i.lk, lk);
            }
            _ => prop_assert!(info.is_none()),
        }
    }

    /// The assembler resolves arbitrary in-range label graphs correctly.
    #[test]
    fn assembler_resolves_random_branch_graphs(
        targets in proptest::collection::vec(0usize..50, 1..12),
    ) {
        use codense_ppc::asm::Assembler;
        use codense_ppc::insn::Insn;
        use codense_ppc::reg::{CR0, R3};
        let body = 50usize;
        let mut a = Assembler::new();
        for i in 0..body {
            a.label(&format!("L{i}"));
            a.emit(Insn::Addi { rt: R3, ra: R3, si: i as i16 });
        }
        let branch_base = a.here();
        for &t in &targets {
            a.bne(CR0, &format!("L{t}"));
        }
        let words = a.finish().unwrap();
        for (j, &t) in targets.iter().enumerate() {
            let at = branch_base + j;
            let info = rel_branch_info(words[at]).expect("branch");
            prop_assert_eq!(at as i64 + (info.offset / 4) as i64, t as i64);
        }
    }
}
