//! Property tests for the ISA layer, driven by the in-repo deterministic
//! generator ([`codense_codegen::Rng`]) with fixed seeds — no external
//! property-testing crate, so the workspace builds fully offline.

use codense_codegen::Rng;
use codense_ppc::branch::{patch_offset_units, read_offset_units, rel_branch_info, RelBranchKind};
use codense_ppc::{decode, encode};

const CASES: usize = 512;

/// Total decode/encode identity over the full 32-bit space.
#[test]
fn decode_encode_identity() {
    let mut rng = Rng::new(0x5050_0001);
    for _ in 0..CASES * 8 {
        let w = rng.next_u64() as u32;
        assert_eq!(encode(&decode(w)), w, "word {w:#010x}");
    }
    // Boundary words the uniform stream is unlikely to hit.
    for w in [0u32, u32::MAX, 1 << 26, 0x8000_0000, 0x7fff_ffff] {
        assert_eq!(encode(&decode(w)), w, "word {w:#010x}");
    }
}

/// Branch-field patching round-trips and preserves all other bits.
#[test]
fn patch_roundtrip_bform() {
    let mut rng = Rng::new(0x5050_0002);
    for _ in 0..CASES {
        let bo = rng.below(32) as u8;
        let bi = rng.below(32) as u8;
        let units = rng.range(0, 16383) as i32 - 8192;
        let word = encode(&codense_ppc::Insn::Bc { bo, bi, bd: 0, aa: false, lk: false });
        let patched = patch_offset_units(word, RelBranchKind::BForm, units);
        assert_eq!(read_offset_units(patched, RelBranchKind::BForm), units);
        assert_eq!(patched & !0x0000_fffc, word & !0x0000_fffc);
    }
}

/// Same for the I form.
#[test]
fn patch_roundtrip_iform() {
    let mut rng = Rng::new(0x5050_0003);
    for _ in 0..CASES {
        let lk = rng.chance(0.5);
        let units = rng.range(0, (1 << 24) - 1) as i32 - (1 << 23);
        let word = encode(&codense_ppc::Insn::B { li: 0, aa: false, lk });
        let patched = patch_offset_units(word, RelBranchKind::IForm, units);
        assert_eq!(read_offset_units(patched, RelBranchKind::IForm), units);
        assert_eq!(patched & 3, word & 3);
    }
}

/// rel_branch_info agrees with the decoder.
#[test]
fn branch_info_consistent() {
    let mut rng = Rng::new(0x5050_0004);
    for case in 0..CASES * 8 {
        // Half the cases land in the branch opcodes so the Some arms are
        // exercised heavily, not just the None fallthrough.
        let w = if case % 2 == 0 {
            let op = if rng.chance(0.5) { 18u32 } else { 16 };
            (op << 26) | (rng.next_u64() as u32 & 0x03ff_ffff)
        } else {
            rng.next_u64() as u32
        };
        let info = rel_branch_info(w);
        match decode(w) {
            codense_ppc::Insn::B { li, aa: false, lk } => {
                let i = info.expect("relative b");
                assert_eq!(i.offset, li);
                assert_eq!(i.lk, lk);
            }
            codense_ppc::Insn::Bc { bd, aa: false, lk, .. } => {
                let i = info.expect("relative bc");
                assert_eq!(i.offset, bd as i32);
                assert_eq!(i.lk, lk);
            }
            _ => assert!(info.is_none(), "unexpected branch info for {w:#010x}"),
        }
    }
}

/// The assembler resolves arbitrary in-range label graphs correctly.
#[test]
fn assembler_resolves_random_branch_graphs() {
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::{CR0, R3};
    let mut rng = Rng::new(0x5050_0005);
    for _ in 0..CASES {
        let targets: Vec<usize> = (0..rng.range(1, 11)).map(|_| rng.below(50)).collect();
        let body = 50usize;
        let mut a = Assembler::new();
        for i in 0..body {
            a.label(&format!("L{i}"));
            a.emit(Insn::Addi { rt: R3, ra: R3, si: i as i16 });
        }
        let branch_base = a.here();
        for &t in &targets {
            a.bne(CR0, &format!("L{t}"));
        }
        let words = a.finish().unwrap();
        for (j, &t) in targets.iter().enumerate() {
            let at = branch_base + j;
            let info = rel_branch_info(words[at]).expect("branch");
            assert_eq!(at as i64 + (info.offset / 4) as i64, t as i64);
        }
    }
}
