//! One function per table/figure of the paper, each printing the measured
//! reproduction of that exhibit.

use codense_core::analysis::{
    branch_offset_usage, encoding_profile, prologue_epilogue, top_encoding_coverage,
};
use codense_core::sweep::{
    codeword_count_sweep, dict_composition_sweep, entry_len_sweep, savings_by_length_sweep,
    small_dictionary_sweep,
};
use codense_core::{verify::verify, CompressedProgram, CompressionConfig, Compressor};
use codense_obj::ObjectModule;

use crate::report::{pct, Table};

/// Shared state: the suite plus a lazily computed full baseline run per
/// benchmark (reused by Fig 5, Table 2 and Fig 9).
pub struct Ctx {
    /// The eight stand-in benchmarks.
    pub suite: Vec<ObjectModule>,
    baseline_full: Option<Vec<CompressedProgram>>,
}

impl Ctx {
    /// Loads the benchmark suite.
    pub fn new() -> Ctx {
        Ctx { suite: crate::suite::load(), baseline_full: None }
    }

    /// Full baseline compression (8192 codewords, entries ≤ 4) of every
    /// benchmark, verified, computed once.
    pub fn baseline_full(&mut self) -> &[CompressedProgram] {
        if self.baseline_full.is_none() {
            let compressor = Compressor::new(CompressionConfig::baseline());
            let runs = codense_core::parallel::par_map(self.suite.iter().collect(), |_, m| {
                let c = compressor.compress(m).expect("baseline compression");
                verify(m, &c).expect("baseline verification");
                c
            });
            self.baseline_full = Some(runs);
        }
        self.baseline_full.as_deref().unwrap()
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// Figure 1: distinct instruction encodings as a percentage of each program.
pub fn fig1(ctx: &mut Ctx) {
    println!("Figure 1: Distinct instruction encodings as % of entire program");
    println!("(paper: on average < 20% of instructions have encodings used only once)\n");
    let mut t = Table::new(["bench", "insns", "distinct", "used-once %", "used-multi %"]);
    let mut once_sum = 0.0;
    for m in &ctx.suite {
        let p = encoding_profile(m);
        once_sum += p.used_once_fraction();
        t.row([
            m.name.clone(),
            p.total_insns.to_string(),
            p.distinct.to_string(),
            pct(p.used_once_fraction()),
            pct(p.used_multiple_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!("average used-once fraction: {}", pct(once_sum / ctx.suite.len() as f64));
    let go = ctx.suite.iter().find(|m| m.name == "go").expect("go present");
    println!(
        "go: top 1% of encodings cover {} of the program; top 10% cover {} (paper: 30% / 66%)\n",
        pct(top_encoding_coverage(go, 0.01)),
        pct(top_encoding_coverage(go, 0.10)),
    );
}

/// Table 1: usage of bits in branch offset fields.
pub fn table1(ctx: &mut Ctx) {
    println!("Table 1: Usage of bits in branch offset field");
    println!("(branches whose field is too narrow at finer target resolutions)\n");
    let mut t = Table::new([
        "bench",
        "PC-rel branches",
        "2-byte #",
        "2-byte %",
        "1-byte #",
        "1-byte %",
        "4-bit #",
        "4-bit %",
    ]);
    for m in &ctx.suite {
        let u = branch_offset_usage(m);
        let p = u.percentages();
        t.row([
            m.name.clone(),
            u.total.to_string(),
            u.too_narrow_2byte.to_string(),
            format!("{:.2}%", p[0]),
            u.too_narrow_1byte.to_string(),
            format!("{:.2}%", p[1]),
            u.too_narrow_4bit.to_string(),
            format!("{:.2}%", p[2]),
        ]);
    }
    println!("{}", t.render());
}

/// Figure 2: a worked compression example (original vs compressed stream
/// plus the dictionary), rendered from the `compress` benchmark.
pub fn fig2(ctx: &mut Ctx) {
    println!("Figure 2: Example of compression (from the `compress` stand-in)\n");
    let idx = ctx.suite.iter().position(|m| m.name == "compress").expect("compress present");
    let c = ctx.baseline_full()[idx].clone();
    let module = &ctx.suite[idx];

    // Find a window of atoms around the first multi-instruction codeword.
    let pos = c
        .atoms
        .iter()
        .position(|a| matches!(a, codense_core::Atom::Codeword { len, .. } if *len >= 3))
        .expect("some multi-instruction codeword exists");
    let window = &c.atoms[pos.saturating_sub(2)..(pos + 4).min(c.atoms.len())];

    println!("{:34}  Compressed code", "Uncompressed code");
    let mut used_entries = Vec::new();
    for atom in window {
        match *atom {
            codense_core::Atom::Insn { word, orig } => {
                let text = codense_ppc::disasm::disassemble(module.code[orig], orig as u32 * 4);
                let _ = word;
                println!("{text:34}  {text}");
            }
            codense_core::Atom::Codeword { entry, orig, len } => {
                if !used_entries.contains(&entry) {
                    used_entries.push(entry);
                }
                let tag = format!(
                    "CODEWORD #{}",
                    used_entries.iter().position(|&e| e == entry).unwrap() + 1
                );
                for k in 0..len {
                    let text = codense_ppc::disasm::disassemble(
                        module.code[orig + k],
                        (orig + k) as u32 * 4,
                    );
                    if k == 0 {
                        println!("{text:34}  {tag}");
                    } else {
                        println!("{text:34}");
                    }
                }
            }
            codense_core::Atom::ViaTable { orig, .. } => {
                let text = codense_ppc::disasm::disassemble(module.code[orig], orig as u32 * 4);
                println!("{text:34}  <branch via table>");
            }
        }
    }
    println!("\nDictionary");
    for (i, &entry) in used_entries.iter().enumerate() {
        for (k, &w) in c.dictionary.entry(entry).words.iter().enumerate() {
            let text = codense_ppc::disasm::disassemble(w, 0);
            if k == 0 {
                println!("#{} {text}", i + 1);
            } else {
                println!("   {text}");
            }
        }
    }
    println!();
}

/// Figure 4: compression ratio vs maximum dictionary entry length.
pub fn fig4(ctx: &mut Ctx) {
    println!("Figure 4: Effect of dictionary entry size on compression ratio");
    println!("(baseline 2-byte codewords, 8192-codeword space; paper: little gain past 4,");
    println!(" slight degradation at 8 from greedy overlap destruction)\n");
    let lens = [1usize, 2, 3, 4, 6, 8];
    let mut t = Table::new(
        std::iter::once("bench".to_string()).chain(lens.iter().map(|l| format!("len≤{l}"))),
    );
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        (m.name.clone(), entry_len_sweep(m, &lens).expect("sweep"))
    });
    for (name, sweep) in rows {
        t.row(std::iter::once(name).chain(sweep.iter().map(|&(_, r)| pct(r))));
    }
    println!("{}", t.render());
}

/// Figure 5: compression ratio vs number of codewords.
pub fn fig5(ctx: &mut Ctx) {
    println!("Figure 5: Effect of number of codewords on compression ratio");
    println!("(baseline, entries ≤ 4; monotone improvement, flattening at the top)\n");
    let points = [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];
    let mut t = Table::new(
        std::iter::once("bench".to_string()).chain(points.iter().map(|p| p.to_string())),
    );
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        (m.name.clone(), codeword_count_sweep(m, 4, &points).expect("sweep"))
    });
    for (name, sweep) in rows {
        t.row(std::iter::once(name).chain(sweep.iter().map(|&(_, r)| pct(r))));
    }
    println!("{}", t.render());
}

/// Table 2: maximum number of codewords used per benchmark.
pub fn table2(ctx: &mut Ctx) {
    println!("Table 2: Maximum number of codewords used (baseline, entries ≤ 4)");
    println!("(paper: compress 647 … gcc 7927; ordering should match program size/diversity)\n");
    let names: Vec<String> = ctx.suite.iter().map(|m| m.name.clone()).collect();
    let mut t = Table::new(["bench", "max codewords used"]);
    for (name, c) in names.iter().zip(ctx.baseline_full()) {
        t.row([name.clone(), c.dictionary.len().to_string()]);
    }
    println!("{}", t.render());
}

/// Figure 6: composition of the dictionary by entry length (ijpeg).
pub fn fig6(ctx: &mut Ctx) {
    println!("Figure 6: Composition of dictionary for ijpeg (entries ≤ 8 instructions)");
    println!("(paper: 1-instruction entries are 48–80% of the dictionary, more as it grows)\n");
    let m = ctx.suite.iter().find(|m| m.name == "ijpeg").expect("ijpeg present");
    let sizes = [16usize, 64, 256, 1024, 8192];
    let comp = dict_composition_sweep(m, 8, &sizes).expect("sweep");
    let mut t =
        Table::new(["dict size", "entries", "len1 %", "len2 %", "len3 %", "len4 %", "len5-8 %"]);
    for (size, hist) in comp {
        let total: usize = hist.iter().sum();
        if total == 0 {
            continue;
        }
        let p = |n: usize| format!("{:.1}%", 100.0 * n as f64 / total as f64);
        t.row([
            size.to_string(),
            total.to_string(),
            p(hist[1]),
            p(hist[2]),
            p(hist[3]),
            p(hist[4]),
            p(hist[5..].iter().sum()),
        ]);
    }
    println!("{}", t.render());
}

/// Figure 7: program bytes removed, by dictionary entry length (ijpeg).
pub fn fig7(ctx: &mut Ctx) {
    println!("Figure 7: Bytes saved in compression of ijpeg by entry length");
    println!("(paper: 1-instruction entries contribute ~half the savings)\n");
    let m = ctx.suite.iter().find(|m| m.name == "ijpeg").expect("ijpeg present");
    let sizes = [16usize, 64, 256, 1024, 8192];
    let sav = savings_by_length_sweep(m, 8, &sizes).expect("sweep");
    let mut t =
        Table::new(["dict size", "total %", "len1 %", "len2 %", "len3 %", "len4 %", "len5-8 %"]);
    for (size, by_len) in sav {
        let total: f64 = by_len.iter().sum();
        let p = |x: f64| format!("{:.1}%", 100.0 * x);
        t.row([
            size.to_string(),
            p(total),
            p(by_len[1]),
            p(by_len[2]),
            p(by_len[3]),
            p(by_len[4]),
            p(by_len[5..].iter().sum()),
        ]);
    }
    println!("{}", t.render());
}

/// Figure 8: compression with small dictionaries (1-byte codewords).
pub fn fig8(ctx: &mut Ctx) {
    println!("Figure 8: Compression ratio for 1-byte codewords, entries ≤ 4");
    println!("(paper: a 512-byte dictionary already gives ~15% code reduction)\n");
    let counts = [8usize, 16, 32];
    let mut t = Table::new(["bench", "8 (128B dict)", "16 (256B dict)", "32 (512B dict)"]);
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        (m.name.clone(), small_dictionary_sweep(m, &counts).expect("sweep"))
    });
    for (name, sweep) in rows {
        t.row([name, pct(sweep[0].1), pct(sweep[1].1), pct(sweep[2].1)]);
    }
    println!("{}", t.render());
}

/// Figure 9: composition of the compressed program (baseline, 8192 cw).
pub fn fig9(ctx: &mut Ctx) {
    println!("Figure 9: Composition of compressed program (8192 2-byte codewords)");
    println!("(paper: codeword bytes dominate; escape bytes alone are ~20% of the result)\n");
    let names: Vec<String> = ctx.suite.iter().map(|m| m.name.clone()).collect();
    let mut t = Table::new([
        "bench",
        "uncompressed insns",
        "codeword index bytes",
        "codeword escape bytes",
        "dictionary",
    ]);
    for (name, c) in names.iter().zip(ctx.baseline_full()) {
        let comp = c.composition();
        let f = comp.fractions();
        t.row([name.clone(), pct(f[0]), pct(f[2]), pct(f[1]), pct(f[3])]);
    }
    println!("{}", t.render());
}

/// Figure 10: the nibble-aligned encoding format.
pub fn fig10(_ctx: &mut Ctx) {
    use codense_core::encoding::nibble::*;
    println!("Figure 10: Nibble-aligned encoding");
    println!("(first nibble classifies the item; escape nibble 0xF prefixes a 36-bit");
    println!(" uncompressed instruction)\n");
    let mut t = Table::new(["first nibble", "item", "codewords"]);
    t.row(["0-7", "4-bit codeword", &N4.to_string()]);
    t.row(["8-10", "8-bit codeword", &N8.to_string()]);
    t.row(["11-12", "12-bit codeword", &N12.to_string()]);
    t.row(["13-14", "16-bit codeword", &N16.to_string()]);
    t.row(["15", "escape + 32-bit instruction", "-"]);
    println!("{}", t.render());
    println!("total codeword space: {CAPACITY}\n");
}

/// Figure 11: nibble-aligned compression vs Unix Compress (LZW).
pub fn fig11(ctx: &mut Ctx) {
    println!("Figure 11: Nibble-aligned compression vs Unix Compress");
    println!("(paper: 30–50% reduction; Compress better but within ~5% on all benchmarks)\n");
    let mut t = Table::new(["bench", "nibble ratio", "lzw ratio", "gap (pts)"]);
    let compressor = Compressor::new(CompressionConfig::nibble_aligned());
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        let c = compressor.compress(m).expect("nibble compression");
        verify(m, &c).expect("nibble verification");
        let nib = c.compression_ratio();
        let lzw = codense_lzw::compressed_size(&m.text_image()) as f64 / m.text_bytes() as f64;
        (m.name.clone(), nib, lzw)
    });
    for (name, nib, lzw) in rows {
        t.row([name, pct(nib), pct(lzw), format!("{:+.1}", 100.0 * (nib - lzw))]);
    }
    println!("{}", t.render());
}

/// Table 3: prologue and epilogue code in the benchmarks.
pub fn table3(ctx: &mut Ctx) {
    println!("Table 3: Prologue and epilogue code in benchmarks");
    println!("(paper: prologue+epilogue together ≈ 12% of the program)\n");
    let mut t = Table::new(["bench", "prologue %", "epilogue %", "combined %"]);
    for m in &ctx.suite {
        let pe = prologue_epilogue(m);
        t.row([
            m.name.clone(),
            format!("{:.1}%", pe.prologue_pct()),
            format!("{:.1}%", pe.epilogue_pct()),
            format!("{:.1}%", pe.prologue_pct() + pe.epilogue_pct()),
        ]);
    }
    println!("{}", t.render());
}

/// Extension: related-work comparison across all implemented methods.
pub fn methods(ctx: &mut Ctx) {
    println!("Extension: all methods side by side (compressed/original, lower is better)\n");
    let mut t =
        Table::new(["bench", "baseline", "nibble", "1B/32", "ccrp", "liao-hw", "liao-sw", "lzw"]);
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        let base = Compressor::new(CompressionConfig::baseline()).compress(m).unwrap();
        let nib = Compressor::new(CompressionConfig::nibble_aligned()).compress(m).unwrap();
        let small = Compressor::new(CompressionConfig::small_dictionary(32)).compress(m).unwrap();
        let ccrp = codense_ccrp::compress(m, codense_ccrp::CcrpConfig::default());
        let hw = codense_liao::compress(m, codense_liao::LiaoMethod::CallDictionary, 4);
        let sw = codense_liao::compress(m, codense_liao::LiaoMethod::MiniSubroutine, 4);
        let lzw = codense_lzw::compressed_size(&m.text_image()) as f64 / m.text_bytes() as f64;
        [
            m.name.clone(),
            pct(base.compression_ratio()),
            pct(nib.compression_ratio()),
            pct(small.compression_ratio()),
            pct(ccrp.compression_ratio()),
            pct(hw.compression_ratio()),
            pct(sw.compression_ratio()),
            pct(lzw),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
}

/// Extension: fetch-bandwidth effect measured on the runnable kernels.
pub fn bandwidth(_ctx: &mut Ctx) {
    use codense_vm::{
        fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher,
    };
    println!("Extension: program-memory bits fetched per executed instruction");
    println!("(compressed fetch amortizes codeword bits over expanded instructions)\n");
    let mut t = Table::new(["kernel", "uncompressed b/insn", "nibble b/insn", "exit ok"]);
    for k in kernels::all() {
        let mut m1 = Machine::new(1 << 20);
        k.apply_init(&mut m1);
        let mut lf = LinearFetcher::new(k.module.code.clone());
        let r1 = run(&mut m1, &mut lf, 0, 10_000_000).expect("uncompressed run");

        let c = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(&k.module)
            .expect("compress kernel");
        let mut m2 = Machine::new(1 << 20);
        k.apply_init(&mut m2);
        let mut cf = CompressedFetcher::new(&c);
        let r2 = run(&mut m2, &mut cf, 0, 10_000_000).expect("compressed run");

        t.row([
            k.name.to_string(),
            format!("{:.2}", r1.stats.bits_per_insn()),
            format!("{:.2}", r2.stats.bits_per_insn()),
            (r1.exit_code == r2.exit_code && r1.exit_code == k.expected).to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Extension (§2.2): Thumb/MIPS16-style static subsetting vs the paper's
/// program-specific dictionary.
pub fn thumb(ctx: &mut Ctx) {
    println!("Extension: Thumb/MIPS16-style 16-bit re-encoding model vs dictionary");
    println!("(paper: Thumb ~30% / MIPS16 ~40% smaller; the dictionary method matches");
    println!(" that while keeping every register and instruction reachable)\n");
    let mut t = Table::new(["bench", "16-bit coverage", "thumb-model ratio", "nibble dict ratio"]);
    let rows = codense_core::parallel::par_map(ctx.suite.iter().collect(), |_, m| {
        let report = codense_thumb::analyze(m);
        let dict = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(m)
            .expect("nibble compression");
        [
            m.name.clone(),
            pct(report.coverage()),
            pct(report.compression_ratio()),
            pct(dict.compression_ratio()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
}

/// Extension (§1/§5, [Chen97b]): I-cache misses, compressed vs uncompressed.
pub fn cache(_ctx: &mut Ctx) {
    use codense_cache::{Cache, CacheConfig, TracingFetch};
    use codense_vm::{
        fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher,
    };
    println!("Extension: I-cache misses executing kernels (16B lines, direct-mapped)");
    println!("(compression shrinks the code working set; [Chen97b]'s premise)\n");
    let sizes = [64usize, 128, 256, 512];
    let mut t = Table::new(
        std::iter::once("kernel".to_string())
            .chain(sizes.iter().map(|s| format!("{s}B plain/nibble"))),
    );
    for kernel in kernels::all() {
        let compressed = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(&kernel.module)
            .expect("compress kernel");
        let mut row = vec![kernel.name.to_string()];
        for &size in &sizes {
            let config = CacheConfig { size_bytes: size, line_bytes: 16, ways: 1 };
            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut plain = TracingFetch::new(LinearFetcher::new(kernel.module.code.clone()));
            run(&mut machine, &mut plain, 0, 10_000_000).expect("plain run");
            let mut c1 = Cache::new(config);
            plain.replay(&mut c1);

            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut comp = TracingFetch::new(CompressedFetcher::new(&compressed));
            run(&mut machine, &mut comp, 0, 10_000_000).expect("compressed run");
            let mut c2 = Cache::new(config);
            comp.replay(&mut c2);

            row.push(format!("{}/{}", c1.stats().misses, c2.stats().misses));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

/// Extension (§5): standardized prologues/epilogues — bigger uncompressed
/// code that compresses better.
pub fn prologue(ctx: &mut Ctx) {
    use codense_codegen::{spec_profiles, LowerOptions};
    println!("Extension: standardized prologues (paper §5 future work)");
    println!("(save all registers always: uncompressed code grows, compressed shrinks)\n");
    let mut t = Table::new([
        "bench",
        "plain bytes",
        "std bytes",
        "plain nibble ratio",
        "std nibble ratio",
        "std compressed vs plain compressed",
    ]);
    for profile in spec_profiles().iter().take(4) {
        let plain = codense_codegen::generate_module(profile);
        let std = codense_codegen::generate_module_with(
            profile,
            LowerOptions { standardize_prologues: true, ..LowerOptions::default() },
        );
        let comp = Compressor::new(CompressionConfig::nibble_aligned());
        let c_plain = comp.compress(&plain).expect("plain");
        let c_std = comp.compress(&std).expect("std");
        let plain_total = c_plain.text_bytes() + c_plain.dictionary_bytes();
        let std_total = c_std.text_bytes() + c_std.dictionary_bytes();
        t.row([
            profile.name.to_string(),
            plain.text_bytes().to_string(),
            std.text_bytes().to_string(),
            pct(c_plain.compression_ratio()),
            pct(c_std.compression_ratio()),
            format!("{:+.1}%", 100.0 * (std_total as f64 / plain_total as f64 - 1.0)),
        ]);
    }
    println!("{}", t.render());
    let _ = ctx;
}

/// Extension (§5): partitioning a fixed on-chip memory budget between the
/// dictionary and the program.
pub fn partition(ctx: &mut Ctx) {
    println!("Extension: on-chip memory partitioning (paper §5: \"trade-offs in");
    println!(" partitioning the on-chip memory for the dictionary and program\")\n");
    let names: Vec<String> = ctx.suite.iter().map(|m| m.name.clone()).collect();
    let mut t =
        Table::new(["bench", "best dict entries", "dict bytes", "text bytes", "total / original"]);
    for (name, c) in names.iter().zip(ctx.baseline_full()) {
        // From the pick log: total memory (text+dictionary) after k picks;
        // find the k minimizing it.
        let mut best = (0usize, f64::INFINITY);
        for k in 0..=c.picks.len() {
            let ratio = codense_core::sweep::ratio_at_prefix(c, k);
            if ratio < best.1 {
                best = (k, ratio);
            }
        }
        let dict_bytes: usize = c.picks.iter().take(best.0).map(|p| 4 * p.len).sum();
        let orig = c.original_text_bytes;
        t.row([
            name.clone(),
            best.0.to_string(),
            dict_bytes.to_string(),
            format!("{:.0}", best.1 * orig as f64 - dict_bytes as f64),
            pct(best.1),
        ]);
    }
    println!("{}", t.render());
}

/// Extension (§3.3): on-demand dictionary cache instead of a fully on-chip
/// dictionary.
pub fn dictcache(_ctx: &mut Ctx) {
    use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run};
    println!("Extension: dictionary kept in data memory, cached on chip (paper §3.3)");
    println!("(hit rate and load traffic per dictionary-cache size, nibble scheme)\n");
    let sizes = [2usize, 4, 8, 16];
    let mut t = Table::new(
        std::iter::once("kernel".to_string())
            .chain(sizes.iter().map(|s| format!("{s}-entry hit%/loadB"))),
    );
    for kernel in kernels::all() {
        let compressed = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(&kernel.module)
            .expect("compress kernel");
        let mut row = vec![kernel.name.to_string()];
        for &size in &sizes {
            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = CompressedFetcher::new(&compressed).with_dict_cache(size);
            let stats = run(&mut machine, &mut fetch, 0, 10_000_000).expect("run").stats;
            let total = stats.dict_hits + stats.dict_misses;
            let hit =
                if total == 0 { 100.0 } else { 100.0 * stats.dict_hits as f64 / total as f64 };
            row.push(format!("{hit:.0}%/{}", stats.dict_bytes_loaded));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

/// Extension (§4.1.3): alternative nibble codeword-space splits, evaluated
/// analytically on each benchmark's dictionary usage.
pub fn splits(ctx: &mut Ctx) {
    use codense_core::sweep::{text_nibbles_under_split, NibbleSplit};
    println!("Extension: nibble codeword-space splits (paper §4.1.3: \"other programs");
    println!(" may benefit from different encodings\") — text nibbles vs the shipped split\n");
    let candidates = [
        ("shipped 8/3/2/2", NibbleSplit::SHIPPED),
        ("short-heavy 11/2/1/1", NibbleSplit { n4: 11, n8: 2, n12: 1, n16: 1 }),
        ("mid-heavy 4/7/2/2", NibbleSplit { n4: 4, n8: 7, n12: 2, n16: 2 }),
        ("long-heavy 2/2/3/8", NibbleSplit { n4: 2, n8: 2, n12: 3, n16: 8 }),
        ("balanced 6/4/3/2", NibbleSplit { n4: 6, n8: 4, n12: 3, n16: 2 }),
    ];
    let mut t = Table::new(
        std::iter::once("bench".to_string()).chain(candidates.iter().map(|(n, _)| n.to_string())),
    );
    let compressor = Compressor::new(CompressionConfig::nibble_aligned());
    for m in &ctx.suite {
        let c = compressor.compress(m).expect("compress");
        let base = text_nibbles_under_split(&c, NibbleSplit::SHIPPED).expect("rank space") as f64;
        t.row(std::iter::once(m.name.clone()).chain(candidates.iter().map(|&(_, s)| {
            let n = text_nibbles_under_split(&c, s).expect("rank space") as f64;
            format!("{:+.2}%", 100.0 * (n - base) / base)
        })));
    }
    println!("{}", t.render());
    println!("(positive = bigger than the shipped split)\n");
}

/// Extension: static instruction-class mix (realism check of the stand-ins).
pub fn mix(ctx: &mut Ctx) {
    use codense_core::analysis::instruction_mix;
    println!("Extension: static instruction mix of the stand-in benchmarks");
    println!("(compiled RISC integer code: ~20-35% memory, ~15-20% branches)\n");
    let mut t = Table::new(["bench", "loads", "stores", "branches", "compares", "alu"]);
    for m in &ctx.suite {
        let f = instruction_mix(m).fractions();
        t.row([m.name.clone(), pct(f[0]), pct(f[1]), pct(f[2]), pct(f[3]), pct(f[4])]);
    }
    println!("{}", t.render());
}

/// Extension (§5): profile-guided hybrid compression — size vs modeled
/// cycles at a few hotness-coverage points per runnable kernel.
pub fn hybrid(_ctx: &mut Ctx) {
    use codense_profile::{hybrid_sweep, HybridOptions};
    println!("Extension: profile-guided hybrid compression (paper §5 future work)");
    println!("(exempting the hottest blocks recovers expansion cycles while keeping");
    println!(" most of the size reduction; cost model in DESIGN.md §11)\n");
    let options =
        HybridOptions { coverages: vec![0.0, 0.25, 0.50, 0.75, 1.0], ..HybridOptions::default() };
    let results = hybrid_sweep(&options).expect("hybrid sweep");
    let mut t = Table::new([
        "kernel",
        "full ratio",
        "full cyc",
        "cov",
        "hybrid ratio",
        "hybrid cyc",
        "recovered",
        "retained",
    ]);
    for r in &results {
        // Pick the mid-range point that recovers the most cycles.
        let best = r
            .points
            .iter()
            .filter(|p| p.coverage > 0.0 && p.coverage < 1.0)
            .max_by(|a, b| a.recovered_pct.partial_cmp(&b.recovered_pct).unwrap())
            .expect("mid-range point");
        t.row([
            r.bench.clone(),
            format!("{:.3}", r.full_ratio),
            r.full_cycles.to_string(),
            format!("{:.2}", best.coverage),
            format!("{:.3}", best.ratio),
            best.cycles.to_string(),
            format!("{:.1}%", best.recovered_pct),
            format!("{:.1}%", best.retained_pct),
        ]);
    }
    println!("{}", t.render());
}
