//! Minimal aligned-text table rendering for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value cells start at the same column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.123_45), "12.3%");
    }
}
