//! `repro` — regenerates every table and figure of *Improving Code Density
//! Using Compression Techniques* (Lefurgy et al., 1997) on the synthetic
//! benchmark suite.
//!
//! ```text
//! repro all            # everything, in paper order
//! repro fig5 table2    # specific exhibits
//! repro methods        # extension: all baselines side by side
//! repro bandwidth      # extension: fetch-bandwidth on runnable kernels
//! ```

mod figures;
mod report;
mod suite;

use figures::Ctx;

type Runner = fn(&mut Ctx);

const EXPERIMENTS: &[(&str, Runner)] = &[
    ("fig1", figures::fig1),
    ("table1", figures::table1),
    ("fig2", figures::fig2),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("table2", figures::table2),
    ("fig6", figures::fig6),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("table3", figures::table3),
    ("methods", figures::methods),
    ("bandwidth", figures::bandwidth),
    ("thumb", figures::thumb),
    ("cache", figures::cache),
    ("prologue", figures::prologue),
    ("partition", figures::partition),
    ("dictcache", figures::dictcache),
    ("splits", figures::splits),
    ("mix", figures::mix),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|&(n, _)| n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for name in &requested {
        if !EXPERIMENTS.iter().any(|&(n, _)| n == *name) {
            eprintln!("unknown experiment `{name}`; available:");
            for (n, _) in EXPERIMENTS {
                eprintln!("  {n}");
            }
            std::process::exit(2);
        }
    }

    let mut ctx = Ctx::new();
    println!(
        "benchmark suite: {} programs, {} total instructions\n",
        ctx.suite.len(),
        ctx.suite.iter().map(|m| m.len()).sum::<usize>(),
    );
    for name in requested {
        let (_, runner) = EXPERIMENTS.iter().find(|&&(n, _)| n == name).expect("validated");
        let t0 = std::time::Instant::now();
        runner(&mut ctx);
        eprintln!("[{name} done in {:.1?}]\n", t0.elapsed());
    }
}
