//! `repro` — regenerates every table and figure of *Improving Code Density
//! Using Compression Techniques* (Lefurgy et al., 1997) on the synthetic
//! benchmark suite.
//!
//! ```text
//! repro all            # everything, in paper order
//! repro fig5 table2    # specific exhibits
//! repro methods        # extension: all baselines side by side
//! repro bandwidth      # extension: fetch-bandwidth on runnable kernels
//! repro --jobs 4 all   # run sweeps/suite phases on 4 worker threads
//! ```
//!
//! `--jobs N` sets the worker-pool width for every parallel phase (suite
//! generation, per-benchmark sweeps, baseline compression). `--jobs 1` is
//! the exact sequential reference; the default is the machine's available
//! parallelism. Output is bit-identical at any width.
//!
//! `--metrics OUT.json` writes the telemetry report (same schema as the
//! `codense` CLI flag) after all requested exhibits have run. The
//! `counters` section is byte-identical at any `--jobs` value.

mod figures;
mod report;
mod suite;

use std::time::{Duration, Instant};

use figures::Ctx;

type Runner = fn(&mut Ctx);

const EXPERIMENTS: &[(&str, Runner)] = &[
    ("fig1", figures::fig1),
    ("table1", figures::table1),
    ("fig2", figures::fig2),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("table2", figures::table2),
    ("fig6", figures::fig6),
    ("fig7", figures::fig7),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("table3", figures::table3),
    ("methods", figures::methods),
    ("bandwidth", figures::bandwidth),
    ("thumb", figures::thumb),
    ("cache", figures::cache),
    ("prologue", figures::prologue),
    ("partition", figures::partition),
    ("dictcache", figures::dictcache),
    ("splits", figures::splits),
    ("mix", figures::mix),
    ("hybrid", figures::hybrid),
];

/// Extracts `--jobs N` / `--jobs=N` from `args` and applies it to the
/// worker pool. Exits with a usage error on a malformed value.
fn take_jobs(args: &mut Vec<String>) {
    let mut i = 0;
    while i < args.len() {
        let jobs: Option<String> = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                eprintln!("--jobs requires a value");
                std::process::exit(2);
            }
            let v = args[i + 1].clone();
            args.drain(i..i + 2);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = jobs {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => codense_core::parallel::set_jobs(n),
                _ => {
                    eprintln!("invalid --jobs value `{v}` (expected an integer >= 1)");
                    std::process::exit(2);
                }
            }
        }
    }
}

/// Extracts `--metrics PATH` / `--metrics=PATH`; the telemetry report is
/// written there after the run.
fn take_metrics(args: &mut Vec<String>) -> Option<String> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            if i + 1 >= args.len() {
                eprintln!("--metrics requires a file path");
                std::process::exit(2);
            }
            path = Some(args[i + 1].clone());
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--metrics=") {
            path = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    path
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_jobs(&mut args);
    let metrics_path = take_metrics(&mut args);
    let requested: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|&(n, _)| n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for name in &requested {
        if !EXPERIMENTS.iter().any(|&(n, _)| n == *name) {
            eprintln!("unknown experiment `{name}`; available:");
            for (n, _) in EXPERIMENTS {
                eprintln!("  {n}");
            }
            std::process::exit(2);
        }
    }

    let wall = Instant::now();
    let t0 = Instant::now();
    let mut ctx = Ctx::new();
    let mut timings: Vec<(&str, Duration)> = vec![("suite-gen", t0.elapsed())];
    let suite_insns: usize = ctx.suite.iter().map(|m| m.len()).sum();
    println!("benchmark suite: {} programs, {} total instructions\n", ctx.suite.len(), suite_insns,);
    for name in requested {
        let (_, runner) = EXPERIMENTS.iter().find(|&&(n, _)| n == name).expect("validated");
        let t0 = Instant::now();
        runner(&mut ctx);
        let elapsed = t0.elapsed();
        timings.push((name, elapsed));
        eprintln!("[{name} done in {elapsed:.1?}]\n");
    }

    let total = wall.elapsed();
    eprintln!("--- timing (jobs = {}) ---", codense_core::parallel::jobs());
    for (name, elapsed) in &timings {
        // Throughput is phase-relative: the whole suite passes through each
        // phase, so insns/s compares phases (and job counts) directly.
        let per_s = suite_insns as f64 / elapsed.as_secs_f64().max(1e-9);
        eprintln!("{name:<12} {:>9.1?}  ({per_s:>12.0} suite insns/s)", elapsed);
    }
    eprintln!("{:<12} {total:>9.1?}", "total");

    if let Some(path) = metrics_path {
        let json = codense_core::telemetry::metrics_json("repro");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
        eprint!("{}", codense_core::telemetry::render_summary());
    }
}
