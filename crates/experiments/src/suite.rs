//! Benchmark-suite loading shared by all experiments.

use codense_obj::ObjectModule;

/// The eight CINT95 stand-in modules, generated once, in the paper's order.
pub fn load() -> Vec<ObjectModule> {
    codense_codegen::generate_suite()
}
