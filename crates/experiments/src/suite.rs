//! Benchmark-suite loading shared by all experiments.

use codense_obj::ObjectModule;

/// The eight CINT95 stand-in modules, generated once, in the paper's order.
///
/// Each module is generated from its own seeded profile, so generation is
/// independent per benchmark and runs on the worker pool; the output order
/// (and content — every profile carries its own RNG seed) is identical to
/// the sequential `generate_suite`.
pub fn load() -> Vec<ObjectModule> {
    codense_core::parallel::par_map(codense_codegen::spec_profiles(), |_, profile| {
        codense_codegen::generate_module(&profile)
    })
}
