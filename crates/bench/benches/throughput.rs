//! Throughput benchmarks: compression, expansion, fetch-path execution, and
//! the baseline compressors, reported in bytes/second of original text.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use codense_core::{CompressionConfig, Compressor};
use codense_obj::ObjectModule;
use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher};

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

fn bench_compression_throughput(c: &mut Criterion) {
    let m = module();
    let mut g = c.benchmark_group("compress_throughput");
    g.throughput(Throughput::Bytes(m.text_bytes() as u64));
    g.sample_size(10);
    for (tag, config) in [
        ("baseline", CompressionConfig::baseline()),
        ("one_byte_32", CompressionConfig::small_dictionary(32)),
        ("nibble", CompressionConfig::nibble_aligned()),
    ] {
        g.bench_function(tag, |b| {
            let compressor = Compressor::new(config.clone());
            b.iter(|| black_box(compressor.compress(black_box(m)).unwrap()))
        });
    }
    g.finish();
}

fn bench_expansion_throughput(c: &mut Criterion) {
    let m = module();
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(m).unwrap();
    let mut g = c.benchmark_group("expand_throughput");
    g.throughput(Throughput::Bytes(m.text_bytes() as u64));
    g.bench_function("logical_expand", |b| {
        b.iter(|| black_box(compressed.expand()))
    });
    g.bench_function("fetch_path_walk", |b| {
        // Walk the packed image through the hardware-model fetch path.
        b.iter(|| {
            let mut fetch = CompressedFetcher::new(&compressed);
            let mut pc = 0u64;
            let mut n = 0usize;
            use codense_vm::Fetch;
            while let Ok(f) = fetch.fetch(pc) {
                pc = f.next_pc;
                n += 1;
                if n >= m.len() {
                    break;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_baseline_compressors(c: &mut Criterion) {
    let m = module();
    let image = m.text_image();
    let mut g = c.benchmark_group("baseline_compressors");
    g.throughput(Throughput::Bytes(image.len() as u64));
    g.sample_size(10);
    g.bench_function("lzw", |b| b.iter(|| black_box(codense_lzw::compress(black_box(&image)))));
    g.bench_function("ccrp_huffman_lines", |b| {
        b.iter(|| black_box(codense_ccrp::compress(black_box(m), codense_ccrp::CcrpConfig::default())))
    });
    g.bench_function("liao_call_dictionary", |b| {
        b.iter(|| {
            black_box(codense_liao::compress(
                black_box(m),
                codense_liao::LiaoMethod::CallDictionary,
                4,
            ))
        })
    });
    g.finish();
}

fn bench_execution_overhead(c: &mut Criterion) {
    // Dynamic overhead of the compressed fetch path on a real workload.
    let kernel = kernels::bubble_sort();
    let compressed =
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();
    let mut g = c.benchmark_group("execution");
    g.bench_function("uncompressed", |b| {
        b.iter(|| {
            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = LinearFetcher::new(kernel.module.code.clone());
            black_box(run(&mut machine, &mut fetch, 0, 10_000_000).unwrap())
        })
    });
    g.bench_function("compressed_nibble", |b| {
        b.iter(|| {
            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = CompressedFetcher::new(&compressed);
            black_box(run(&mut machine, &mut fetch, 0, 10_000_000).unwrap())
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("codegen");
    g.sample_size(10);
    g.bench_function("generate_compress_benchmark", |b| {
        b.iter(|| black_box(codense_codegen::benchmark("compress").unwrap()))
    });
    g.finish();
}

criterion_group!(
    throughput,
    bench_compression_throughput,
    bench_expansion_throughput,
    bench_baseline_compressors,
    bench_execution_overhead,
    bench_generation,
);
criterion_main!(throughput);
