//! Throughput benchmarks: compression, expansion, fetch-path execution, and
//! the baseline compressors.

use std::sync::OnceLock;

use codense_bench::{black_box, Harness};
use codense_core::{CompressionConfig, Compressor};
use codense_obj::ObjectModule;
use codense_vm::{fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher};

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

fn main() {
    let h = Harness::new("throughput");
    let m = module();

    for (tag, config) in [
        ("compress_throughput/baseline", CompressionConfig::baseline()),
        ("compress_throughput/one_byte_32", CompressionConfig::small_dictionary(32)),
        ("compress_throughput/nibble", CompressionConfig::nibble_aligned()),
    ] {
        let compressor = Compressor::new(config);
        h.bench(tag, || black_box(compressor.compress(black_box(m)).unwrap()));
    }

    let compressed = Compressor::new(CompressionConfig::nibble_aligned()).compress(m).unwrap();
    h.bench("expand_throughput/logical_expand", || black_box(compressed.expand()));
    h.bench("expand_throughput/fetch_path_walk", || {
        // Walk the packed image through the hardware-model fetch path.
        let mut fetch = CompressedFetcher::new(&compressed);
        let mut pc = 0u64;
        let mut n = 0usize;
        use codense_vm::Fetch;
        while let Ok(f) = fetch.fetch(pc) {
            pc = f.next_pc;
            n += 1;
            if n >= m.len() {
                break;
            }
        }
        black_box(n)
    });

    let image = m.text_image();
    h.bench("baseline_compressors/lzw", || black_box(codense_lzw::compress(black_box(&image))));
    h.bench("baseline_compressors/ccrp_huffman_lines", || {
        black_box(codense_ccrp::compress(black_box(m), codense_ccrp::CcrpConfig::default()))
    });
    h.bench("baseline_compressors/liao_call_dictionary", || {
        black_box(codense_liao::compress(black_box(m), codense_liao::LiaoMethod::CallDictionary, 4))
    });

    // Dynamic overhead of the compressed fetch path on a real workload.
    let kernel = kernels::bubble_sort();
    let kc = Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();
    h.bench("execution/uncompressed", || {
        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = LinearFetcher::new(kernel.module.code.clone());
        black_box(run(&mut machine, &mut fetch, 0, 10_000_000).unwrap())
    });
    h.bench("execution/compressed_nibble", || {
        let mut machine = Machine::new(1 << 20);
        kernel.apply_init(&mut machine);
        let mut fetch = CompressedFetcher::new(&kc);
        black_box(run(&mut machine, &mut fetch, 0, 10_000_000).unwrap())
    });

    h.bench("codegen/generate_compress_benchmark", || {
        black_box(codense_codegen::benchmark("compress").unwrap())
    });
}
