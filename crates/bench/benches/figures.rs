//! One benchmark per table/figure of the paper: each runs the computation
//! that regenerates that exhibit (on the `compress` stand-in, the smallest
//! benchmark, to keep wall time reasonable — the full-suite numbers come
//! from the `repro` binary).

use std::sync::OnceLock;

use codense_bench::{black_box, Harness};
use codense_core::analysis::{branch_offset_usage, encoding_profile, prologue_epilogue};
use codense_core::sweep::{
    codeword_count_sweep, dict_composition_sweep, entry_len_sweep, savings_by_length_sweep,
    small_dictionary_sweep,
};
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

fn baseline() -> &'static codense_core::CompressedProgram {
    static C: OnceLock<codense_core::CompressedProgram> = OnceLock::new();
    C.get_or_init(|| {
        Compressor::new(CompressionConfig::baseline()).compress(module()).expect("compress")
    })
}

fn main() {
    let h = Harness::new("figures");

    h.bench("fig1_encoding_profile", || black_box(encoding_profile(black_box(module()))));
    h.bench("table1_branch_offsets", || black_box(branch_offset_usage(black_box(module()))));
    h.bench("fig4_entry_len/sweep_1_4_8", || {
        black_box(entry_len_sweep(black_box(module()), &[1, 4, 8]).unwrap())
    });
    h.bench("fig5_codewords/sweep_to_8192", || {
        black_box(codeword_count_sweep(black_box(module()), 4, &[16, 256, 8192]).unwrap())
    });
    h.bench("table2_max_codewords/baseline_to_exhaustion", || {
        let compressed =
            Compressor::new(CompressionConfig::baseline()).compress(black_box(module())).unwrap();
        black_box(compressed.dictionary.len())
    });
    h.bench("fig6_dict_composition/entries_le_8", || {
        black_box(dict_composition_sweep(black_box(module()), 8, &[16, 256, 8192]).unwrap())
    });
    h.bench("fig7_savings_by_len/entries_le_8", || {
        black_box(savings_by_length_sweep(black_box(module()), 8, &[16, 8192]).unwrap())
    });
    h.bench("fig8_small_dict/one_byte_8_16_32", || {
        black_box(small_dictionary_sweep(black_box(module()), &[8, 16, 32]).unwrap())
    });
    h.bench("fig9_composition", || black_box(baseline().composition()));
    h.bench("fig10_nibble_codec", || {
        // The encoding format itself: serialize + parse the full codeword
        // space.
        use codense_core::encoding::{nibble, read_item, write_codeword};
        use codense_core::nibbles::{NibbleReader, NibbleWriter};
        let mut w = NibbleWriter::new();
        for rank in (0..nibble::CAPACITY as u32).step_by(7) {
            write_codeword(EncodingKind::NibbleAligned, &mut w, rank);
        }
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        let mut n = 0u32;
        while let Some(item) = read_item(EncodingKind::NibbleAligned, &mut r) {
            n += matches!(item, codense_core::encoding::Item::Codeword(_)) as u32;
        }
        black_box(n)
    });
    h.bench("fig11_nibble_vs_lzw/nibble", || {
        let compressed = Compressor::new(CompressionConfig::nibble_aligned())
            .compress(black_box(module()))
            .unwrap();
        black_box(compressed.compression_ratio())
    });
    h.bench("fig11_nibble_vs_lzw/unix_compress", || {
        let image = module().text_image();
        black_box(codense_lzw::compressed_size(black_box(&image)))
    });
    h.bench("table3_prologue_epilogue", || black_box(prologue_epilogue(black_box(module()))));
}
