//! One Criterion group per table/figure of the paper: each benchmark runs
//! the computation that regenerates that exhibit (on the `compress`
//! stand-in, the smallest benchmark, to keep wall time reasonable — the
//! full-suite numbers come from the `repro` binary).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use codense_core::analysis::{branch_offset_usage, encoding_profile, prologue_epilogue};
use codense_core::sweep::{
    codeword_count_sweep, dict_composition_sweep, entry_len_sweep, savings_by_length_sweep,
    small_dictionary_sweep,
};
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

fn baseline() -> &'static codense_core::CompressedProgram {
    static C: OnceLock<codense_core::CompressedProgram> = OnceLock::new();
    C.get_or_init(|| {
        Compressor::new(CompressionConfig::baseline()).compress(module()).expect("compress")
    })
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_encoding_profile", |b| {
        b.iter(|| black_box(encoding_profile(black_box(module()))))
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_branch_offsets", |b| {
        b.iter(|| black_box(branch_offset_usage(black_box(module()))))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_entry_len");
    g.sample_size(10);
    g.bench_function("sweep_1_4_8", |b| {
        b.iter(|| black_box(entry_len_sweep(black_box(module()), &[1, 4, 8]).unwrap()))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_codewords");
    g.sample_size(10);
    g.bench_function("sweep_to_8192", |b| {
        b.iter(|| {
            black_box(
                codeword_count_sweep(black_box(module()), 4, &[16, 256, 8192]).unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_max_codewords");
    g.sample_size(10);
    g.bench_function("baseline_to_exhaustion", |b| {
        b.iter(|| {
            let compressed = Compressor::new(CompressionConfig::baseline())
                .compress(black_box(module()))
                .unwrap();
            black_box(compressed.dictionary.len())
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_dict_composition");
    g.sample_size(10);
    g.bench_function("entries_le_8", |b| {
        b.iter(|| {
            black_box(dict_composition_sweep(black_box(module()), 8, &[16, 256, 8192]).unwrap())
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_savings_by_len");
    g.sample_size(10);
    g.bench_function("entries_le_8", |b| {
        b.iter(|| {
            black_box(savings_by_length_sweep(black_box(module()), 8, &[16, 8192]).unwrap())
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_small_dict");
    g.sample_size(10);
    g.bench_function("one_byte_8_16_32", |b| {
        b.iter(|| black_box(small_dictionary_sweep(black_box(module()), &[8, 16, 32]).unwrap()))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_composition", |b| {
        b.iter(|| black_box(baseline().composition()))
    });
}

fn bench_fig10(c: &mut Criterion) {
    // The encoding format itself: serialize + parse the full codeword space.
    use codense_core::encoding::{nibble, read_item, write_codeword};
    use codense_core::nibbles::{NibbleReader, NibbleWriter};
    c.bench_function("fig10_nibble_codec", |b| {
        b.iter(|| {
            let mut w = NibbleWriter::new();
            for rank in (0..nibble::CAPACITY as u32).step_by(7) {
                write_codeword(EncodingKind::NibbleAligned, &mut w, rank);
            }
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            let mut n = 0u32;
            while let Some(item) = read_item(EncodingKind::NibbleAligned, &mut r) {
                n += matches!(item, codense_core::encoding::Item::Codeword(_)) as u32;
            }
            black_box(n)
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_nibble_vs_lzw");
    g.sample_size(10);
    g.bench_function("nibble", |b| {
        b.iter(|| {
            let compressed = Compressor::new(CompressionConfig::nibble_aligned())
                .compress(black_box(module()))
                .unwrap();
            black_box(compressed.compression_ratio())
        })
    });
    g.bench_function("unix_compress", |b| {
        let image = module().text_image();
        b.iter(|| black_box(codense_lzw::compressed_size(black_box(&image))))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_prologue_epilogue", |b| {
        b.iter(|| black_box(prologue_epilogue(black_box(module()))))
    });
}

criterion_group!(
    figures,
    bench_fig1,
    bench_table1,
    bench_fig4,
    bench_fig5,
    bench_table2,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_table3,
);
criterion_main!(figures);
