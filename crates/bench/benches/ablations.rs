//! Ablation benches for the design choices DESIGN.md calls out: greedy
//! selection cost models, codeword-space splits, and the incremental
//! occurrence index's scaling.

use std::sync::OnceLock;

use codense_bench::{black_box, Harness};
use codense_core::dict::Dictionary;
use codense_core::greedy::{run_greedy, CostModel, GreedyParams};
use codense_core::model::ProgramModel;
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

/// A branch-neutralized prefix of the `compress` benchmark (truncation
/// severs branches whose targets fall past the cut).
fn prefix(frac: usize) -> ObjectModule {
    let m = module();
    let take = m.code.len() / frac;
    let mut sub = ObjectModule::new("sub");
    sub.code = m.code[..take].to_vec();
    let nop = codense_ppc::encode(&codense_ppc::Insn::Ori {
        ra: codense_ppc::reg::R0,
        rs: codense_ppc::reg::R0,
        ui: 0,
    });
    for i in 0..sub.code.len() {
        if let Some(info) = codense_ppc::branch::rel_branch_info(sub.code[i]) {
            let target = i as i64 + (info.offset / 4) as i64;
            if target < 0 || target >= take as i64 {
                sub.code[i] = nop;
            }
        }
    }
    sub
}

fn main() {
    let h = Harness::new("ablations");

    // How does greedy cost scale with program size? (The incremental index
    // should be roughly linear in text size, not quadratic like the naive
    // rescan.)
    for frac in [4usize, 2, 1] {
        let sub = prefix(frac);
        let name = format!("greedy_scaling/{}", sub.code.len());
        h.bench(&name, || {
            let mut model = ProgramModel::build(&sub);
            let mut dict = Dictionary::new();
            black_box(
                run_greedy(
                    &mut model,
                    &mut dict,
                    GreedyParams {
                        max_entry_len: 4,
                        max_codewords: 8192,
                        cost: CostModel {
                            insn_bits: 32,
                            codeword_bits: 16,
                            dict_word_bits: 32,
                            dict_entry_fixed_bits: 0,
                        },
                    },
                )
                .unwrap(),
            )
        });
    }

    // Entry-length cap ablation: full compression at caps 1/2/4/8.
    for len in [1usize, 2, 4, 8] {
        let compressor = Compressor::new(CompressionConfig {
            max_entry_len: len,
            max_codewords: 8192,
            encoding: EncodingKind::Baseline,
        });
        h.bench(&format!("ablation_entry_len/{len}"), || {
            black_box(compressor.compress(module()).unwrap())
        });
    }

    // Codeword-budget ablation: selection stops early with small
    // dictionaries.
    for cap in [64usize, 1024, 8192] {
        let compressor = Compressor::new(CompressionConfig {
            max_entry_len: 4,
            max_codewords: cap,
            encoding: EncodingKind::Baseline,
        });
        h.bench(&format!("ablation_codeword_budget/{cap}"), || {
            black_box(compressor.compress(module()).unwrap())
        });
    }
}
