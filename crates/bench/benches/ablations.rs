//! Ablation benches for the design choices DESIGN.md calls out: greedy
//! selection cost models, codeword-space splits, and the incremental
//! occurrence index's scaling.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use codense_core::dict::Dictionary;
use codense_core::greedy::{run_greedy, CostModel, GreedyParams};
use codense_core::model::ProgramModel;
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;

fn module() -> &'static ObjectModule {
    static M: OnceLock<ObjectModule> = OnceLock::new();
    M.get_or_init(|| codense_codegen::benchmark("compress").expect("compress benchmark"))
}

/// How does greedy cost scale with program size? (The incremental index
/// should be roughly linear in text size, not quadratic like the naive
/// rescan.)
fn bench_greedy_scaling(c: &mut Criterion) {
    let m = module();
    let mut g = c.benchmark_group("greedy_scaling");
    g.sample_size(10);
    for frac in [4usize, 2, 1] {
        let take = m.code.len() / frac;
        let mut sub = ObjectModule::new("sub");
        sub.code = m.code[..take].to_vec();
        // Truncation severs branches whose targets fall past the cut;
        // neutralize them so the prefix is a valid program.
        let nop = codense_ppc::encode(&codense_ppc::Insn::Ori {
            ra: codense_ppc::reg::R0,
            rs: codense_ppc::reg::R0,
            ui: 0,
        });
        for i in 0..sub.code.len() {
            if let Some(info) = codense_ppc::branch::rel_branch_info(sub.code[i]) {
                let target = i as i64 + (info.offset / 4) as i64;
                if target < 0 || target >= take as i64 {
                    sub.code[i] = nop;
                }
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(take), &sub, |b, sub| {
            b.iter(|| {
                let mut model = ProgramModel::build(sub);
                let mut dict = Dictionary::new();
                black_box(run_greedy(
                    &mut model,
                    &mut dict,
                    GreedyParams {
                        max_entry_len: 4,
                        max_codewords: 8192,
                        cost: CostModel {
                            insn_bits: 32,
                            codeword_bits: 16,
                            dict_word_bits: 32,
                            dict_entry_fixed_bits: 0,
                        },
                    },
                ))
            })
        });
    }
    g.finish();
}

/// Entry-length cap ablation: full compression at caps 1/2/4/8.
fn bench_entry_len_ablation(c: &mut Criterion) {
    let m = module();
    let mut g = c.benchmark_group("ablation_entry_len");
    g.sample_size(10);
    for len in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let config = CompressionConfig {
                max_entry_len: len,
                max_codewords: 8192,
                encoding: EncodingKind::Baseline,
            };
            let compressor = Compressor::new(config);
            b.iter(|| black_box(compressor.compress(m).unwrap()))
        });
    }
    g.finish();
}

/// Codeword-budget ablation: selection stops early with small dictionaries.
fn bench_codeword_budget_ablation(c: &mut Criterion) {
    let m = module();
    let mut g = c.benchmark_group("ablation_codeword_budget");
    g.sample_size(10);
    for cap in [64usize, 1024, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let config = CompressionConfig {
                max_entry_len: 4,
                max_codewords: cap,
                encoding: EncodingKind::Baseline,
            };
            let compressor = Compressor::new(config);
            b.iter(|| black_box(compressor.compress(m).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_greedy_scaling,
    bench_entry_len_ablation,
    bench_codeword_budget_ablation,
);
criterion_main!(ablations);
