//! Criterion benchmark crate; see `benches/` for the benchmark targets:
//! `figures` (one group per paper table/figure), `throughput`, `ablations`.
