//! Dependency-free benchmark harness (the workspace builds offline, so no
//! Criterion): median-of-N wall-clock timing over `std::time::Instant`.
//!
//! The `benches/` targets (`figures`, `throughput`, `ablations`) all declare
//! `harness = false` and drive a [`Harness`] from their `main`, so
//! `cargo bench` works with zero external crates. Each benchmark reports
//!
//! ```text
//! figures/fig5_codewords/sweep_to_8192   median 12,345,678 ns/iter  (9 samples x 1 iters)
//! ```
//!
//! Environment knobs:
//!
//! * `CODENSE_BENCH_SAMPLES` — samples per benchmark (default 9).
//! * `CODENSE_BENCH_TARGET_MS` — target wall-clock per sample used to pick
//!   the iteration count (default 20 ms).
//!
//! A positional command-line argument filters benchmarks by substring
//! (`cargo bench --bench figures -- fig5`).

use std::time::Instant;

pub use std::hint::black_box;

/// One bench-binary run: group name, sample policy, and name filter.
pub struct Harness {
    group: String,
    samples: usize,
    target_ms: u64,
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness for the named group, reading the environment knobs
    /// and the command-line filter (flags such as `--bench` are ignored —
    /// cargo passes them to bench binaries).
    pub fn new(group: &str) -> Harness {
        let env_usize =
            |k: &str, d: usize| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            group: group.to_string(),
            samples: env_usize("CODENSE_BENCH_SAMPLES", 9).max(1),
            target_ms: env_usize("CODENSE_BENCH_TARGET_MS", 20) as u64,
            filter,
        }
    }

    /// Times `f`, reporting the median ns/iter over the configured samples.
    /// The iteration count per sample is calibrated so one sample takes
    /// roughly `CODENSE_BENCH_TARGET_MS` (slow functions run once per
    /// sample).
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{name}", self.group);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration run (also warms caches).
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let target_ns = self.target_ms as u128 * 1_000_000;
        let iters = (target_ns / once_ns).clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() / iters as u128
            })
            .collect();
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "{full:56} median {} ns/iter  ({} samples x {iters} iters)",
            group_digits(median),
            self.samples,
        );
    }
}

/// Times one call of `f` per sample and returns the median wall-clock
/// nanoseconds over `samples` runs, after one discarded warm-up call.
///
/// This is the measurement primitive behind `codense speed` (the
/// `BENCH_speed.json` artifact): whole-run timing, no iteration
/// calibration, median so a stray scheduler hiccup cannot skew the figure.
pub fn median_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm-up, discarded
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Formats an integer with thousands separators (`12345678` → `12,345,678`).
fn group_digits(n: u128) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(12_345_678), "12,345,678");
    }

    #[test]
    fn bench_runs_and_reports() {
        let h = Harness { group: "test".into(), samples: 3, target_ms: 1, filter: None };
        let mut n = 0u64;
        h.bench("noop", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(n > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Harness {
            group: "test".into(),
            samples: 1,
            target_ms: 1,
            filter: Some("does-not-match-anything".into()),
        };
        let mut ran = false;
        h.bench("skipped", || ran = true);
        assert!(!ran);
    }
}
