#![warn(missing_docs)]

//! Liao et al. baseline (§2.4 of the reproduced paper): mini-subroutine
//! extraction and the `call-dictionary` instruction.
//!
//! Liao's two methods replace common instruction sequences with *calls*:
//!
//! * **Software mini-subroutines** — each common sequence is hoisted into
//!   the text once, terminated with a return; every occurrence becomes a
//!   plain `bl`. No hardware support, but call/return overhead at run time,
//!   and sequences that touch the link register cannot be extracted.
//! * **Hardware `call-dictionary`** — a one-word instruction carrying
//!   (location, length); the processor executes `length` instructions from
//!   the dictionary then implicitly returns. Sequences live in a dictionary
//!   as in the reproduced paper, but the codeword is a full instruction
//!   word, so sequences of one instruction can never profit — the exact
//!   limitation ("since single instructions are the most frequently
//!   occurring patterns, it is important to use a scheme that can compress
//!   them") that motivates the paper's sub-instruction codewords.
//!
//! Both are implemented on the same greedy selector as the main scheme
//! (`codense_core::greedy`) with the appropriate cost model, so comparisons
//! isolate the *encoding* difference rather than selector quality.

use codense_core::dict::Dictionary;
use codense_core::greedy::{run_greedy, CostModel, GreedyParams};
use codense_core::model::ProgramModel;
use codense_obj::ObjectModule;
use codense_ppc::{decode, Insn};

/// Which of Liao's methods to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiaoMethod {
    /// Software-only mini-subroutines (`bl` + stored sequence + `blr`).
    MiniSubroutine,
    /// Hardware `call-dictionary` with a 1-word codeword.
    CallDictionary,
}

/// Result of a Liao-style compression.
#[derive(Debug, Clone)]
pub struct LiaoCompressed {
    /// Method used.
    pub method: LiaoMethod,
    /// Extracted sequences.
    pub dictionary: Dictionary,
    /// Original text bytes.
    pub original_text_bytes: usize,
    /// Compressed text bytes (replaced occurrences become one word each).
    pub text_bytes: usize,
    /// Dictionary/mini-subroutine storage bytes.
    pub dictionary_bytes: usize,
}

impl LiaoCompressed {
    /// Compression ratio (compressed / original), dictionary included.
    pub fn compression_ratio(&self) -> f64 {
        (self.text_bytes + self.dictionary_bytes) as f64 / self.original_text_bytes as f64
    }
}

/// Maximum dictionary entries: Liao's call-dictionary carries a location
/// field inside one instruction word; we allow up to 2^14 sequences, far
/// more than the greedy ever selects.
const MAX_ENTRIES: usize = 1 << 14;

/// Compresses a module with the chosen Liao method and entry-length cap.
///
/// Sequences must span at least 2 instructions to profit (the codeword is a
/// full word); the cost model enforces this automatically — a 1-instruction
/// candidate can never have positive savings.
pub fn compress(module: &ObjectModule, method: LiaoMethod, max_entry_len: usize) -> LiaoCompressed {
    let mut model = match method {
        // Mini-subroutines execute via call/return, so sequences must not
        // use the link register (the call clobbers it).
        LiaoMethod::MiniSubroutine => ProgramModel::build_with(module, |w| {
            let insn = decode(w);
            !insn.writes_lr()
                && !matches!(
                    insn,
                    Insn::Mfspr { spr: codense_ppc::Spr::Lr, .. } | Insn::Bclr { .. }
                )
        }),
        LiaoMethod::CallDictionary => ProgramModel::build(module),
    };
    let fixed_bits = match method {
        // Stored sequence carries a trailing return instruction.
        LiaoMethod::MiniSubroutine => 32,
        LiaoMethod::CallDictionary => 0,
    };
    let mut dictionary = Dictionary::new();
    run_greedy(
        &mut model,
        &mut dictionary,
        GreedyParams {
            max_entry_len,
            max_codewords: MAX_ENTRIES,
            cost: CostModel {
                insn_bits: 32,
                codeword_bits: 32,
                dict_word_bits: 32,
                dict_entry_fixed_bits: fixed_bits,
            },
        },
    )
    .expect("matchfinder position space exceeds any real embedded program");

    // Sizes: every atom in the rewritten model is one word (codeword call
    // or uncompressed instruction).
    let atoms = model.atoms().count();
    let dict_words: usize = dictionary.entries().iter().map(|e| e.len()).sum();
    let extra_returns = match method {
        LiaoMethod::MiniSubroutine => dictionary.len(),
        LiaoMethod::CallDictionary => 0,
    };
    LiaoCompressed {
        method,
        dictionary,
        original_text_bytes: module.text_bytes(),
        text_bytes: atoms * 4,
        dictionary_bytes: (dict_words + extra_returns) * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode as enc;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn redundant_module() -> ObjectModule {
        let mut m = ObjectModule::new("t");
        for _ in 0..40 {
            m.code.push(enc(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            m.code.push(enc(&Insn::Addi { rt: R4, ra: R4, si: 2 }));
            m.code.push(enc(&Insn::Addi { rt: R5, ra: R5, si: 3 }));
        }
        m
    }

    #[test]
    fn call_dictionary_compresses_multi_insn_sequences() {
        let m = redundant_module();
        let c = compress(&m, LiaoMethod::CallDictionary, 4);
        assert!(c.compression_ratio() < 0.6, "ratio {}", c.compression_ratio());
        for e in c.dictionary.entries() {
            assert!(e.len() >= 2, "single-instruction entry cannot profit");
        }
    }

    #[test]
    fn single_instruction_patterns_not_compressible() {
        // A program of one repeated instruction: the paper's key criticism —
        // Liao's word-sized codeword cannot compress it at all.
        let mut m = ObjectModule::new("t");
        m.code = vec![enc(&Insn::Addi { rt: R3, ra: R3, si: 1 }); 64];
        // Basic block = one run of 64 identical instructions; entries of
        // length >= 2 DO profit here (pairs repeat). Restrict entry length
        // to 1 to isolate the single-instruction case.
        let c = compress(&m, LiaoMethod::CallDictionary, 1);
        assert_eq!(c.dictionary.len(), 0);
        assert!((c.compression_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mini_subroutines_pay_return_overhead() {
        let m = redundant_module();
        let hw = compress(&m, LiaoMethod::CallDictionary, 4);
        let sw = compress(&m, LiaoMethod::MiniSubroutine, 4);
        assert!(sw.compression_ratio() >= hw.compression_ratio());
    }

    #[test]
    fn mini_subroutines_skip_lr_users() {
        let mut m = ObjectModule::new("t");
        for _ in 0..30 {
            m.code.push(enc(&Insn::Mfspr { rt: R0, spr: Spr::Lr }));
            m.code.push(enc(&Insn::Stw { rs: R0, ra: R1, d: 8 }));
        }
        let sw = compress(&m, LiaoMethod::MiniSubroutine, 4);
        for e in sw.dictionary.entries() {
            for &w in &e.words {
                assert!(!matches!(decode(w), Insn::Mfspr { spr: Spr::Lr, .. }));
            }
        }
        // The hardware method can extract these.
        let hw = compress(&m, LiaoMethod::CallDictionary, 4);
        assert!(hw.compression_ratio() < sw.compression_ratio());
    }
}
