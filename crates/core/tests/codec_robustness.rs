//! Robustness: the stream parser and verifier must never panic on garbage —
//! corrupt flash images should yield clean errors, not UB or aborts.
//!
//! Randomized cases are driven by the in-repo deterministic generator
//! ([`codense_codegen::Rng`]) with fixed seeds.

use codense_codegen::Rng;
use codense_core::encoding::read_item;
use codense_core::nibbles::NibbleReader;
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::*;

const CASES: usize = 256;

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Parsing arbitrary bytes never panics in any encoding; it either yields
/// items or ends with None.
#[test]
fn read_item_total_on_garbage() {
    let mut rng = Rng::new(0xC0DE_0001);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 255);
        for kind in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned] {
            let mut r = NibbleReader::new(&bytes);
            let mut guard = 0;
            while read_item(kind, &mut r).is_some() {
                guard += 1;
                assert!(guard <= 2 * bytes.len() + 2, "parser failed to progress");
            }
        }
    }
}

/// Verification of a bit-flipped compressed program either fails cleanly or
/// the flip landed in dead padding — never a panic.
#[test]
fn verify_survives_bit_flips() {
    let mut m = ObjectModule::new("t");
    for i in 0..100 {
        m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: (i % 7) as i16 }));
    }
    let clean = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
    if clean.image.is_empty() {
        return;
    }
    let mut rng = Rng::new(0xC0DE_0002);
    for _ in 0..CASES {
        let mut c = clean.clone();
        let at = rng.below(c.image.len());
        let bit = rng.below(8) as u8;
        c.image[at] ^= 1 << bit;
        let _ = codense_core::verify::verify(&m, &c); // must not panic
    }
}

/// Container deserialization never panics on arbitrary bytes.
#[test]
fn container_deserialize_total() {
    let mut rng = Rng::new(0xC0DE_0003);
    for _ in 0..CASES {
        let bytes = random_bytes(&mut rng, 511);
        let _ = codense_core::container::deserialize(&bytes);
    }
}

#[test]
fn fetcher_faults_cleanly_on_corrupt_image() {
    let mut m = ObjectModule::new("t");
    for i in 0..50 {
        m.code.push(encode(&Insn::Addi { rt: R4, ra: R4, si: i as i16 }));
    }
    let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
    // Seek to every nibble offset and parse one item: misaligned starts may
    // misparse but must not panic.
    for pos in 0..c.total_nibbles {
        let mut r = NibbleReader::new(&c.image);
        r.seek(pos);
        let _ = read_item(c.encoding, &mut r);
    }
}
