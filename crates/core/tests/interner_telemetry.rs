//! Proof (via the telemetry plane) that the interned matchfinder's removal
//! and lookup paths never allocate: `greedy.removal_allocs` counts every
//! boxed lookup key the reference index builds, and the interned index must
//! leave it untouched.
//!
//! This lives in its own integration-test binary so no other test's
//! reference-engine run can pollute the process-global counter.

use codense_core::greedy::MatchfinderKind;
use codense_core::{telemetry, CompressionConfig, Compressor};
use codense_obj::ObjectModule;
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::{R3, R4};

fn module() -> ObjectModule {
    let mut words = Vec::new();
    for i in 0..60 {
        for _ in 0..(60 - i) / 10 + 1 {
            words.push(encode(&Insn::Addi { rt: R3, ra: R3, si: (i % 7) as i16 }));
            words.push(encode(&Insn::Addi { rt: R4, ra: R4, si: (i % 5) as i16 }));
        }
    }
    let mut m = ObjectModule::new("t");
    m.code = words;
    m
}

#[test]
fn interned_matchfinder_makes_zero_removal_allocations() {
    let m = module();

    // The interned engine: many picks, zero removal-path allocations.
    let before = telemetry::GREEDY_REMOVAL_ALLOCS.get();
    let c = Compressor::new(CompressionConfig::baseline())
        .with_matchfinder(MatchfinderKind::Interned)
        .compress(&m)
        .unwrap();
    assert!(!c.picks.is_empty(), "test input must drive replacements");
    assert_eq!(
        telemetry::GREEDY_REMOVAL_ALLOCS.get(),
        before,
        "interned matchfinder touched the removal-allocation path"
    );
    // It also mines through the interner (the arena counters fire) and
    // never walks the reference window-remove path: windows die lazily.
    assert!(telemetry::GREEDY_INTERNED_SEQS.get() > 0);
    assert!(telemetry::GREEDY_INTERNED_WORDS.get() >= telemetry::GREEDY_INTERNED_SEQS.get());

    // The reference engine on the same input pays an allocation per removal
    // lookup — the counter is live, so the zero above is meaningful.
    let before = telemetry::GREEDY_REMOVAL_ALLOCS.get();
    Compressor::new(CompressionConfig::baseline())
        .with_matchfinder(MatchfinderKind::Reference)
        .compress(&m)
        .unwrap();
    assert!(
        telemetry::GREEDY_REMOVAL_ALLOCS.get() > before,
        "reference engine should count removal-path allocations"
    );
}
