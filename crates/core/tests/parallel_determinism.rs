//! Parallel execution must be invisible in the output: `--jobs 1` (the
//! exact sequential reference) and `--jobs 8` have to produce byte-identical
//! compressed programs and identical sweep results.
//!
//! The worker count is a process-wide setting, so every test here holds
//! `JOBS_LOCK` while it changes it and restores the default before
//! releasing — tests in this binary run on separate threads.

use std::sync::Mutex;

use codense_core::parallel::set_jobs;
use codense_core::sweep::{codeword_count_sweep, entry_len_sweep, small_dictionary_sweep};
use codense_core::{CompressedProgram, CompressionConfig, Compressor};
use codense_obj::ObjectModule;

static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn module() -> ObjectModule {
    codense_codegen::benchmark("compress").expect("compress benchmark")
}

/// Runs `f` under the given worker count, restoring the default after.
fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    set_jobs(jobs);
    let r = f();
    set_jobs(0);
    r
}

fn assert_identical(a: &CompressedProgram, b: &CompressedProgram) {
    assert_eq!(a.picks, b.picks, "pick logs differ");
    assert_eq!(a.dictionary, b.dictionary, "dictionaries differ");
    assert_eq!(a.atoms, b.atoms, "atom streams differ");
    assert_eq!(a.image, b.image, "packed images differ");
    assert_eq!(a.total_nibbles, b.total_nibbles, "stream lengths differ");
    // Full structural sweep over every remaining field.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn compression_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let m = module();
    for config in [
        CompressionConfig::baseline(),
        CompressionConfig::nibble_aligned(),
        CompressionConfig::small_dictionary(32),
        CompressionConfig::huffman(),
    ] {
        let serial = with_jobs(1, || Compressor::new(config.clone()).compress(&m).unwrap());
        let parallel = with_jobs(8, || Compressor::new(config).compress(&m).unwrap());
        assert_identical(&serial, &parallel);
    }
}

/// The refinement selector's hill climb must be as worker-count-blind as
/// the greedy path: identical containers at `--jobs 1` and `--jobs 8` for
/// every encoding it can drive.
#[test]
fn refinement_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let m = module();
    for config in [
        CompressionConfig::baseline(),
        CompressionConfig::nibble_aligned(),
        CompressionConfig::huffman(),
    ] {
        let refine = |jobs| {
            with_jobs(jobs, || {
                Compressor::new(config.clone())
                    .with_selector(codense_core::SelectorKind::Refine)
                    .compress(&m)
                    .unwrap()
            })
        };
        assert_identical(&refine(1), &refine(8));
    }
}

#[test]
fn entry_len_sweep_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let m = module();
    let lens = [1usize, 2, 4, 8];
    let serial = with_jobs(1, || entry_len_sweep(&m, &lens).unwrap());
    let parallel = with_jobs(8, || entry_len_sweep(&m, &lens).unwrap());
    assert_eq!(serial, parallel);
}

#[test]
fn small_dictionary_sweep_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let m = module();
    let counts = [8usize, 16, 32];
    let serial = with_jobs(1, || small_dictionary_sweep(&m, &counts).unwrap());
    let parallel = with_jobs(8, || small_dictionary_sweep(&m, &counts).unwrap());
    assert_eq!(serial, parallel);
}

#[test]
fn codeword_count_sweep_is_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let m = module();
    let points = [16usize, 64, 256, 1024, 8192];
    let serial = with_jobs(1, || codeword_count_sweep(&m, 4, &points).unwrap());
    let parallel = with_jobs(8, || codeword_count_sweep(&m, 4, &points).unwrap());
    assert_eq!(serial, parallel);
}
