//! Edge cases of the hybrid exemption mask in `Compressor::compress_masked`:
//! all-hot, all-cold, and hot-in-one-function/cold-in-another partitions.

use codense_core::compressor::Atom;
use codense_core::verify::verify;
use codense_core::{CompressionConfig, Compressor};
use codense_obj::{FunctionInfo, ObjectModule};
use codense_ppc::asm::Assembler;
use codense_ppc::insn::Insn;
use codense_ppc::reg::*;

fn configs() -> Vec<CompressionConfig> {
    vec![
        CompressionConfig::baseline(),
        CompressionConfig::small_dictionary(32),
        CompressionConfig::nibble_aligned(),
    ]
}

/// A highly repetitive sequence the greedy compressor loves.
fn body(a: &mut Assembler) {
    for _ in 0..8 {
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
        a.emit(Insn::Add { rt: R4, ra: R4, rb: R3, rc: false });
        a.emit(Insn::Or { ra: R5, rs: R4, rb: R3, rc: false });
        a.emit(Insn::Rlwinm { ra: R6, rs: R5, sh: 2, mb: 0, me: 31, rc: false });
    }
}

fn repetitive_module() -> ObjectModule {
    let mut a = Assembler::new();
    body(&mut a);
    a.emit(Insn::Sc);
    let mut m = ObjectModule::new("hybrid-policy");
    m.code = a.finish().unwrap();
    m.validate().unwrap();
    m
}

#[test]
fn all_hot_mask_disables_the_dictionary() {
    let m = repetitive_module();
    for config in configs() {
        let c = Compressor::new(config).compress_masked(&m, &vec![true; m.len()]).unwrap();
        verify(&m, &c).unwrap();
        assert!(c.dictionary.is_empty(), "{:?}: no entry may form from exempt code", c.encoding);
        assert!(
            c.atoms.iter().all(|a| matches!(a, Atom::Insn { .. } | Atom::ViaTable { .. })),
            "{:?}: every atom must stay an escaped instruction",
            c.encoding
        );
        // An all-hot image never beats the original: byte-for-byte identical
        // size under the opcode-space encodings, strictly larger under
        // nibble (every instruction pays the ESCAPE prefix).
        if c.encoding == codense_core::EncodingKind::NibbleAligned {
            assert!(c.compression_ratio() > 1.0, "{:?}", c.encoding);
        } else {
            assert!((c.compression_ratio() - 1.0).abs() < 1e-9, "{:?}", c.encoding);
        }
    }
}

/// An all-cold (empty-hot) mask must be indistinguishable from the unmasked
/// path, down to the packed image bytes — `compress` is defined as
/// `compress_masked` with nothing exempt.
#[test]
fn all_cold_mask_is_byte_identical_to_plain_compression() {
    let m = codense_codegen::benchmark("compress").unwrap();
    for config in configs() {
        let plain = Compressor::new(config.clone()).compress(&m).unwrap();
        for mask in [vec![], vec![false; m.len()]] {
            let masked = Compressor::new(config.clone()).compress_masked(&m, &mask).unwrap();
            assert_eq!(plain.image, masked.image, "{:?}: packed image", config.encoding);
            assert_eq!(plain.atoms, masked.atoms, "{:?}: atom stream", config.encoding);
            assert_eq!(plain.dictionary, masked.dictionary, "{:?}: dictionary", config.encoding);
            assert_eq!(plain.total_nibbles, masked.total_nibbles, "{:?}", config.encoding);
        }
    }
}

/// Two functions with identical bodies; the first is hot (exempt), the
/// second cold. Occurrences must be counted only in the cold copy: the
/// dictionary still forms (from the cold function alone), no codeword ever
/// covers a hot instruction, and the cold copy still compresses.
#[test]
fn hot_function_exempt_cold_twin_still_compresses() {
    let mut a = Assembler::new();
    body(&mut a); // hot copy: insns 0..33
    a.blr();
    body(&mut a); // cold copy: insns 34..67
    a.emit(Insn::Sc);
    let mut m = ObjectModule::new("twin");
    m.code = a.finish().unwrap();
    let half = 33; // body + blr
    m.functions = vec![
        FunctionInfo {
            name: "hot".into(),
            start: 0,
            end: half,
            prologue_len: 0,
            epilogues: vec![],
        },
        FunctionInfo {
            name: "cold".into(),
            start: half,
            end: m.code.len(),
            prologue_len: 0,
            epilogues: vec![],
        },
    ];
    m.validate().unwrap();

    let mut exempt = vec![false; m.len()];
    exempt[..half].iter_mut().for_each(|e| *e = true);

    for config in configs() {
        let c = Compressor::new(config).compress_masked(&m, &exempt).unwrap();
        verify(&m, &c).unwrap();
        assert!(
            !c.dictionary.is_empty(),
            "{:?}: the cold twin alone must still feed the dictionary",
            c.encoding
        );
        let mut hot_covered = 0usize;
        let mut cold_covered = 0usize;
        for atom in &c.atoms {
            if let Atom::Codeword { orig, len, .. } = *atom {
                assert!(
                    orig >= half && orig + len <= m.len(),
                    "{:?}: codeword at {orig} (+{len}) covers hot code",
                    c.encoding
                );
                cold_covered += len;
            } else if atom.orig() < half {
                hot_covered += 1;
            }
        }
        assert_eq!(hot_covered, half, "{:?}: hot copy fully escaped", c.encoding);
        assert!(cold_covered > 0, "{:?}: cold copy never compressed", c.encoding);
    }
}

/// Mask length must match the module or be empty — anything else is a bug
/// in the caller and must not be silently accepted.
#[test]
#[should_panic(expected = "exemption mask length")]
fn wrong_length_mask_panics() {
    let m = repetitive_module();
    let _ = Compressor::new(CompressionConfig::baseline()).compress_masked(&m, &[true; 3]);
}
