//! The pick-log prefix property that the sweep engine relies on
//! (`crates/core/src/sweep.rs`): the greedy choice at step *k* is made from
//! the program state after *k−1* picks and does not depend on the
//! dictionary-size cap, so the state after *k* picks of an uncapped run
//! equals a full run capped at *k* codewords.
//!
//! Checked over seeded random programs: the capped run's pick log and
//! dictionary must be exactly the uncapped run's prefix, and the
//! reconstructed prefix ratio ([`codense_core::sweep::ratio_at_prefix`])
//! must match an actual capped compression.

use codense_codegen::Rng;
use codense_core::dict::Dictionary;
use codense_core::greedy::{run_greedy, CostModel, GreedyParams};
use codense_core::model::ProgramModel;
use codense_core::sweep::ratio_at_prefix;
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_obj::ObjectModule;
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::Gpr;

const CASES: usize = 128;

const COST: CostModel =
    CostModel { insn_bits: 32, codeword_bits: 16, dict_word_bits: 32, dict_entry_fixed_bits: 0 };

/// A random straight-line module drawn from a small alphabet so that
/// repeats (and therefore picks) are plentiful.
fn random_module(rng: &mut Rng) -> ObjectModule {
    let len = rng.range(8, 150);
    let mut m = ObjectModule::new("prefix");
    m.code = (0..len)
        .map(|_| {
            let reg = Gpr::new(3 + rng.below(5) as u8).unwrap();
            encode(&Insn::Addi { rt: reg, ra: reg, si: rng.below(4) as i16 })
        })
        .collect();
    m
}

fn greedy_with_cap(
    m: &ObjectModule,
    cap: usize,
) -> (Vec<codense_core::greedy::PickRecord>, Dictionary) {
    let mut model = ProgramModel::build(m);
    let mut dict = Dictionary::new();
    let log = run_greedy(
        &mut model,
        &mut dict,
        GreedyParams { max_entry_len: 4, max_codewords: cap, cost: COST },
    )
    .unwrap();
    (log, dict)
}

/// A run capped at `k` codewords reproduces the first `k` entries of the
/// uncapped run's pick log and dictionary, entry for entry.
#[test]
fn capped_run_is_a_prefix_of_the_full_run() {
    let mut rng = Rng::new(0x9E1C_0001);
    for _ in 0..CASES {
        let m = random_module(&mut rng);
        let (full_log, full_dict) = greedy_with_cap(&m, 10_000);
        if full_log.is_empty() {
            continue;
        }
        let k = rng.below(full_log.len() + 1);
        let (capped_log, capped_dict) = greedy_with_cap(&m, k);
        assert_eq!(capped_log.len(), k, "cap not saturated");
        assert_eq!(&full_log[..k], &capped_log[..], "pick log diverged under cap {k}");
        assert_eq!(capped_dict.len(), k);
        for (a, b) in capped_dict.entries().iter().zip(full_dict.entries()) {
            assert_eq!(a.words, b.words, "dictionary words diverged under cap {k}");
            assert_eq!(a.replaced, b.replaced, "replacement counts diverged under cap {k}");
        }
    }
}

/// The sweep engine's reconstructed ratio at prefix `k` equals an actual
/// baseline compression capped at `k` codewords. Straight-line programs
/// have no branches, so there is no overflow-rewrite slack: equality is
/// exact up to float rounding.
#[test]
fn prefix_ratio_matches_capped_compression() {
    let mut rng = Rng::new(0x9E1C_0002);
    for _ in 0..CASES {
        let m = random_module(&mut rng);
        let full = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        if full.picks.is_empty() {
            continue;
        }
        let k = rng.below(full.picks.len() + 1);
        let capped = Compressor::new(CompressionConfig {
            max_entry_len: 4,
            max_codewords: k,
            encoding: EncodingKind::Baseline,
        })
        .compress(&m)
        .unwrap();
        let reconstructed = ratio_at_prefix(&full, k);
        let actual = capped.compression_ratio();
        assert!(
            (reconstructed - actual).abs() < 1e-9,
            "k={k}: reconstructed {reconstructed} vs actual {actual}"
        );
    }
}
