//! The interned matchfinder's contract: **byte-identical output** to the
//! original `Box<[u32]>`-keyed occurrence index
//! (`codense_core::greedy::reference`), across every encoding and under
//! random hotness masks.
//!
//! 256 seeded cases (the in-repo deterministic generator, fixed seeds), each
//! compressed by both engines under all three encodings: the pick log, the
//! dictionary (words, counts, rank permutation), the packed image, the atom
//! stream, and the addresses must all match exactly.

use codense_codegen::Rng;
use codense_core::greedy::MatchfinderKind;
use codense_core::{CompressionConfig, Compressor};
use codense_obj::ObjectModule;
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::Gpr;

const CASES: usize = 256;

/// A random module with enough repetition to drive many picks: straight-line
/// blocks drawn from a small alphabet, with occasional branches to fragment
/// the block structure.
fn random_module(rng: &mut Rng) -> ObjectModule {
    let len = rng.range(8, 180);
    let mut m = ObjectModule::new("equiv");
    m.code = (0..len)
        .map(|_| {
            let reg = Gpr::new(3 + rng.below(5) as u8).unwrap();
            encode(&Insn::Addi { rt: reg, ra: reg, si: rng.below(4) as i16 })
        })
        .collect();
    // A few backward branches with in-range targets split the program into
    // blocks (and stay incompressible themselves).
    for _ in 0..rng.below(4) {
        let at = rng.below(len);
        let target = rng.below(at + 1);
        let offset = ((target as i64 - at as i64) * 4) as i32;
        m.code[at] = encode(&Insn::B { li: offset, aa: false, lk: false });
    }
    m
}

/// A random hotness mask: empty (no exemptions) half the time, otherwise
/// each instruction is hot with probability ~1/4.
fn random_mask(rng: &mut Rng, len: usize) -> Vec<bool> {
    if rng.below(2) == 0 {
        return Vec::new();
    }
    (0..len).map(|_| rng.below(4) == 0).collect()
}

#[test]
fn interned_matches_reference_across_encodings_and_masks() {
    let mut rng = Rng::new(0x1AC4_F00D);
    let configs = [
        CompressionConfig::baseline(),
        CompressionConfig::small_dictionary(32),
        CompressionConfig::nibble_aligned(),
    ];
    for case in 0..CASES {
        let m = random_module(&mut rng);
        let mask = random_mask(&mut rng, m.code.len());
        for config in &configs {
            let interned = Compressor::new(config.clone())
                .with_matchfinder(MatchfinderKind::Interned)
                .compress_masked(&m, &mask);
            let reference = Compressor::new(config.clone())
                .with_matchfinder(MatchfinderKind::Reference)
                .compress_masked(&m, &mask);
            let (a, b) = match (interned, reference) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "case {case}: engines rejected differently");
                    continue;
                }
                (a, b) => panic!("case {case}: one engine failed: {a:?} vs {b:?}"),
            };
            let ctx = format!("case {case}, encoding {:?}, mask {}", config.encoding, mask.len());
            assert_eq!(a.picks, b.picks, "{ctx}: pick log diverged");
            assert_eq!(a.dictionary, b.dictionary, "{ctx}: dictionary diverged");
            assert_eq!(a.atoms, b.atoms, "{ctx}: atom stream diverged");
            assert_eq!(a.addresses, b.addresses, "{ctx}: layout diverged");
            assert_eq!(a.image, b.image, "{ctx}: packed image diverged");
            assert_eq!(a.total_nibbles, b.total_nibbles, "{ctx}: stream length diverged");
            assert_eq!(a.overflow_table, b.overflow_table, "{ctx}: overflow table diverged");
        }
    }
}
