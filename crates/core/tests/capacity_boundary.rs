//! Regression tests for the codeword-space capacity boundary.
//!
//! `nibble::codeword_nibbles` used to panic on `rank >= CAPACITY`, and the
//! panic was reachable from safe library code via a dictionary larger than
//! the encoding's codeword space. These tests pin the typed-error behaviour
//! at the exact boundary for all three encodings, and that the compressor
//! clamps oversized `max_codewords` instead of ever reaching the boundary.

use codense_core::encoding::{self, nibble, read_item, try_write_codeword, Item};
use codense_core::nibbles::{NibbleReader, NibbleWriter};
use codense_core::verify::verify;
use codense_core::{CompressError, CompressionConfig, Compressor, EncodingKind};

const ALL: [EncodingKind; 3] =
    [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned];

#[test]
fn nibble_try_codeword_nibbles_boundary() {
    assert_eq!(nibble::try_codeword_nibbles(nibble::CAPACITY as u32 - 1), Some(4));
    assert_eq!(nibble::try_codeword_nibbles(nibble::CAPACITY as u32), None);
    assert_eq!(nibble::try_codeword_nibbles(u32::MAX), None);
}

#[test]
fn try_write_codeword_at_exact_capacity_boundary() {
    for kind in ALL {
        let capacity = kind.capacity();

        // Last valid rank: writes, and parses back to the same rank.
        let mut w = NibbleWriter::new();
        let last = capacity as u32 - 1;
        try_write_codeword(kind, &mut w, last).unwrap();
        assert_eq!(w.len(), encoding::try_codeword_nibbles(kind, last).unwrap() as u64);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(read_item(kind, &mut r), Some(Item::Codeword(last)), "{kind:?}");

        // First invalid rank: typed error, nothing written.
        let mut w = NibbleWriter::new();
        let err = try_write_codeword(kind, &mut w, capacity as u32).unwrap_err();
        assert_eq!(err, CompressError::CodewordSpaceExhausted { rank: capacity as u32, capacity });
        assert_eq!(w.len(), 0, "{kind:?} must not write on error");
        assert_eq!(encoding::try_codeword_nibbles(kind, capacity as u32), None);
    }
}

/// A module with far more profitable distinct sequences than the one-byte
/// encoding's 32-codeword space: every pair is `addi`-family (no escape
/// collisions) and repeats three times, so an unclamped greedy run would
/// assign well over 32 codewords.
fn wide_module() -> codense_obj::ObjectModule {
    let mut m = codense_obj::ObjectModule::new("capacity-boundary");
    let mut code = Vec::new();
    for i in 0..64u32 {
        for _ in 0..3 {
            code.push(0x3860_0000 | i); // li r3, i
            code.push(0x3880_0100 | i); // li r4, 256+i
        }
    }
    m.code = code;
    m
}

#[test]
fn compressor_clamps_oversized_max_codewords() {
    let m = wide_module();
    for kind in ALL {
        let config =
            CompressionConfig { max_entry_len: 4, max_codewords: usize::MAX, encoding: kind };
        assert_eq!(config.effective_max_codewords(), kind.capacity());
        let c = Compressor::new(config)
            .compress(&m)
            .unwrap_or_else(|e| panic!("{kind:?}: clamped compression must succeed, got {e}"));
        assert!(
            c.dictionary.len() <= kind.capacity(),
            "{kind:?}: dictionary {} exceeds capacity {}",
            c.dictionary.len(),
            kind.capacity()
        );
        verify(&m, &c).unwrap();
    }
}

#[test]
fn one_byte_dictionary_saturates_at_capacity() {
    // The input offers > 32 profitable entries; the clamped one-byte run
    // must stop at exactly its 32-codeword space.
    let m = wide_module();
    let config = CompressionConfig {
        max_entry_len: 2,
        max_codewords: usize::MAX,
        encoding: EncodingKind::OneByte,
    };
    let c = Compressor::new(config).compress(&m).unwrap();
    assert_eq!(c.dictionary.len(), EncodingKind::OneByte.capacity());
    verify(&m, &c).unwrap();
}
