//! Whole-algorithm invariants of the greedy selector, checked by brute
//! force on small inputs: after a run terminates (below the codeword cap),
//! *no* remaining candidate sequence can have positive savings — i.e. the
//! incremental index + lazy heap computed exactly what a naive full rescan
//! would.
//!
//! Randomized cases are driven by the in-repo deterministic generator
//! ([`codense_codegen::Rng`]) with fixed seeds.

use codense_codegen::Rng;
use codense_core::dict::Dictionary;
use codense_core::greedy::{run_greedy, CostModel, GreedyParams};
use codense_core::model::{Cell, ProgramModel};
use codense_obj::ObjectModule;
use codense_ppc::encode;
use codense_ppc::insn::Insn;
use codense_ppc::reg::Gpr;

const CASES: usize = 256;

const COST: CostModel =
    CostModel { insn_bits: 32, codeword_bits: 16, dict_word_bits: 32, dict_entry_fixed_bits: 0 };

/// All candidate windows of the post-greedy model, with greedy
/// non-overlapping counts, computed naively.
fn best_remaining_savings(model: &ProgramModel, max_len: usize) -> i64 {
    use std::collections::HashMap;
    let mut occ: HashMap<Vec<u32>, Vec<(usize, usize)>> = HashMap::new();
    for (b, block) in model.blocks.iter().enumerate() {
        // Runs of compressible instruction cells.
        let cells = &block.cells;
        let mut start = None;
        for i in 0..=cells.len() {
            let live = i < cells.len() && cells[i].compressible_word().is_some();
            if live && start.is_none() {
                start = Some(i);
            }
            if !live {
                if let Some(s) = start.take() {
                    for w0 in s..i {
                        for l in 1..=max_len.min(i - w0) {
                            let seq: Vec<u32> = (w0..w0 + l)
                                .map(|k| cells[k].compressible_word().unwrap())
                                .collect();
                            occ.entry(seq).or_default().push((b, w0));
                        }
                    }
                }
            }
        }
    }
    occ.iter()
        .map(|(seq, positions)| {
            let len = seq.len();
            let mut n = 0i64;
            let mut last: Option<(usize, usize)> = None;
            for &(b, p) in positions {
                if let Some((lb, end)) = last {
                    if lb == b && p < end {
                        continue;
                    }
                }
                n += 1;
                last = Some((b, p + len));
            }
            COST.savings_bits(len, n as usize)
        })
        .max()
        .unwrap_or(i64::MIN)
}

/// A random straight-line module of 4..120 instructions drawn from a small
/// alphabet (6 registers × 5 immediates), mirroring the original proptest
/// strategy `vec((0u8..6, 0i16..5), 4..120)`.
fn random_module(rng: &mut Rng) -> ObjectModule {
    let len = rng.range(4, 119);
    let mut m = ObjectModule::new("prop");
    m.code = (0..len)
        .map(|_| {
            let reg = Gpr::new(3 + rng.below(6) as u8).unwrap();
            encode(&Insn::Addi { rt: reg, ra: reg, si: rng.below(5) as i16 })
        })
        .collect();
    m
}

/// Greedy-to-exhaustion leaves no profitable candidate behind.
#[test]
fn no_positive_savings_remain() {
    let mut rng = Rng::new(0x6EED_0001);
    for _ in 0..CASES {
        let m = random_module(&mut rng);
        let mut model = ProgramModel::build(&m);
        let mut dict = Dictionary::new();
        run_greedy(
            &mut model,
            &mut dict,
            GreedyParams { max_entry_len: 4, max_codewords: 10_000, cost: COST },
        )
        .unwrap();
        let best = best_remaining_savings(&model, 4);
        assert!(best <= 0, "remaining candidate with savings {best}");
    }
}

/// Each pick's recorded savings is non-increasing along the run (greedy
/// always takes the current maximum, and replacements only remove
/// opportunities).
#[test]
fn pick_savings_monotone_nonincreasing() {
    let mut rng = Rng::new(0x6EED_0002);
    for _ in 0..CASES {
        let m = random_module(&mut rng);
        let mut model = ProgramModel::build(&m);
        let mut dict = Dictionary::new();
        let log = run_greedy(
            &mut model,
            &mut dict,
            GreedyParams { max_entry_len: 4, max_codewords: 10_000, cost: COST },
        )
        .unwrap();
        for pair in log.windows(2) {
            assert!(pair[1].savings_bits <= pair[0].savings_bits, "savings increased: {pair:?}");
        }
    }
}

/// Dictionary entries and model state are consistent: every codeword cell's
/// entry expands to the words the original program held there.
#[test]
fn model_dictionary_consistency() {
    let mut rng = Rng::new(0x6EED_0003);
    for _ in 0..CASES {
        let m = random_module(&mut rng);
        let mut model = ProgramModel::build(&m);
        let mut dict = Dictionary::new();
        run_greedy(
            &mut model,
            &mut dict,
            GreedyParams { max_entry_len: 4, max_codewords: 10_000, cost: COST },
        )
        .unwrap();
        let mut covered = 0usize;
        for block in &model.blocks {
            for cell in &block.cells {
                match *cell {
                    Cell::Code { entry, orig, len } => {
                        let words = &dict.entry(entry).words;
                        assert_eq!(words.len(), len);
                        for (k, &w) in words.iter().enumerate() {
                            assert_eq!(w, m.code[orig + k]);
                        }
                        covered += len;
                    }
                    Cell::Insn { .. } => covered += 1,
                    Cell::Dead => {}
                }
            }
        }
        assert_eq!(covered, m.code.len());
    }
}

mod nibble_split {
    use codense_core::sweep::{text_nibbles_under_split, NibbleSplit};
    use codense_core::{CompressionConfig, Compressor};
    use codense_obj::ObjectModule;
    use codense_ppc::{encode, Insn};

    fn compressed() -> codense_core::CompressedProgram {
        let mut m = ObjectModule::new("t");
        for i in 0..200 {
            let r = codense_ppc::Gpr::new(3 + (i % 5) as u8).unwrap();
            m.code.push(encode(&Insn::Addi { rt: r, ra: r, si: (i % 9) as i16 }));
        }
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap()
    }

    #[test]
    fn shipped_split_matches_actual_stream() {
        // The analytic model under the shipped split must equal the real
        // packed stream's nibble count (it models the same thing).
        let c = compressed();
        assert_eq!(text_nibbles_under_split(&c, NibbleSplit::SHIPPED).unwrap(), c.total_nibbles);
    }

    #[test]
    fn split_geometry() {
        assert!(NibbleSplit::SHIPPED.is_valid());
        assert_eq!(NibbleSplit::SHIPPED.capacity(), 8760);
        let s = NibbleSplit { n4: 11, n8: 2, n12: 1, n16: 1 };
        assert!(s.is_valid());
        assert_eq!(s.codeword_nibbles(0), Some(1));
        assert_eq!(s.codeword_nibbles(10), Some(1));
        assert_eq!(s.codeword_nibbles(11), Some(2));
        assert_eq!(s.codeword_nibbles(s.capacity()), None);
        assert!(!NibbleSplit { n4: 8, n8: 8, n12: 0, n16: 0 }.is_valid());
    }

    #[test]
    #[should_panic(expected = "exactly 15")]
    fn invalid_split_rejected() {
        let c = compressed();
        let _ = text_nibbles_under_split(&c, NibbleSplit { n4: 1, n8: 1, n12: 1, n16: 1 });
    }
}
