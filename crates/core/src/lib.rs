#![warn(missing_docs)]

//! Dictionary code compression for embedded PowerPC programs — a full
//! reproduction of Lefurgy, Bird, Chen & Mudge, *Improving Code Density
//! Using Compression Techniques* (CSE-TR-342-97 / MICRO-30, 1997).
//!
//! A post-compilation [`Compressor`] finds instruction sequences repeated
//! throughout a program and replaces each occurrence with a short codeword
//! indexing an expansion [`dict::Dictionary`]. Four codeword encodings are
//! implemented ([`EncodingKind`]): the 2-byte escape-byte baseline, a 1-byte
//! scheme for ≤512-byte dictionaries, the nibble-aligned variable-length
//! scheme that achieves the paper's headline 30–50 % size reduction, and a
//! frequency-driven Huffman scheme ([`huffcode`]) that assigns codeword
//! lengths from each program's actual dictionary-entry usage. Dictionary
//! *selection* is pluggable too ([`selector`]): the greedy fast path, or an
//! iterative-refinement hill climb re-scored with the exact layout cost.
//!
//! # Pipeline
//!
//! 1. [`model::ProgramModel`] partitions the text into basic blocks and
//!    marks PC-relative branches incompressible (§3.1.1).
//! 2. [`greedy`] selects dictionary entries by maximum immediate savings,
//!    with an incremental occurrence index and a lazy max-heap.
//! 3. [`dict::Dictionary::assign_ranks_by_use`] gives the most-used entries
//!    the shortest codewords (§4.1.3).
//! 4. The layout pass assigns nibble-granular addresses, re-encodes every
//!    branch offset at the smallest codeword's alignment (§3.2.2), rewrites
//!    offset-overflowing branches through an overflow jump table, patches
//!    jump tables, and packs the image ([`encoding`], [`nibbles`]).
//! 5. [`verify::verify`] proves the result expands back to the original.
//!
//! # Example
//!
//! ```
//! use codense_core::{Compressor, CompressionConfig, verify::verify};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = codense_obj::ObjectModule::new("demo");
//! module.code = vec![0x3863_0001; 100];
//! let compressed = Compressor::new(CompressionConfig::nibble_aligned()).compress(&module)?;
//! verify(&module, &compressed)?;
//! assert!(compressed.compression_ratio() < 0.2);
//! # Ok(())
//! # }
//! ```
//!
//! The [`analysis`] module computes the paper's motivating measurements
//! (encoding redundancy, branch-offset usage, prologue/epilogue weight), and
//! [`sweep`] regenerates its parameter studies.

pub mod analysis;
pub mod compressor;
pub mod config;
pub mod container;
pub mod dict;
pub mod encoding;
pub mod error;
pub mod greedy;
pub mod huffcode;
pub mod intern;
pub mod model;
pub mod nibbles;
pub mod parallel;
pub mod selector;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod verify;

pub use compressor::{Atom, CompressedProgram, Compressor};
pub use config::{CompressionConfig, EncodingKind};
pub use container::{ContainerError, ProgramImage};
pub use dict::Dictionary;
pub use error::{CompressError, VerifyError};
pub use greedy::{CandidateIndex, MatchfinderKind, PickRecord};
pub use huffcode::HuffCode;
pub use selector::SelectorKind;
pub use stats::Composition;
