//! A binary container format for compressed programs — what a firmware
//! build system would actually flash: the packed text image, the expansion
//! dictionary (in codeword-rank order, ready for the decoder's on-chip
//! table), patched jump tables, and the overflow table, all integrity-
//! checked.
//!
//! Layout (all multi-byte fields big-endian, like the PowerPC target):
//!
//! ```text
//! "CDNS"            magic
//! u16               format version (1)
//! u8                encoding (0 = baseline, 1 = one-byte, 2 = nibble,
//!                             3 = huffman)
//! u8                reserved (0)
//! u32               original text bytes
//! u64               stream length in nibbles
//! u32               dictionary entry count          (rank order)
//!   per entry: u8 length, u32 × length words
//! [encoding 3 only]
//! u32               huffman symbol count, then one nibble-length byte per
//!                   symbol (rank order, escape last) — the decoder rebuilds
//!                   the canonical code from lengths alone
//! u32               image byte length, then the image
//! u32               jump table count
//!   per table: u32 entry count, u32 × count nibble addresses
//! u32               overflow table entry count, u32 × count nibble addresses
//! u32               CRC-32 (IEEE) of everything above
//! ```

use crate::compressor::CompressedProgram;
use crate::config::EncodingKind;

/// Magic bytes at offset 0.
pub const MAGIC: [u8; 4] = *b"CDNS";
/// Current format version.
pub const VERSION: u16 = 1;

/// A deserialized, execution-ready compressed program: exactly the state the
/// paper's hardware needs (Fig 3) — no compression-time bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramImage {
    /// Codeword encoding scheme.
    pub encoding: EncodingKind,
    /// Dictionary entries in codeword-rank order.
    pub dictionary_by_rank: Vec<Vec<u32>>,
    /// Huffman codeword nibble lengths, rank order with the escape symbol
    /// last (empty unless `encoding` is [`EncodingKind::Huffman`]). The
    /// canonical code — and the decoder's table — is fully determined by
    /// these lengths ([`crate::huffcode::HuffCode::from_nibble_lengths`]).
    pub huffman_lengths: Vec<u8>,
    /// The packed nibble stream.
    pub image: Vec<u8>,
    /// Stream length in nibbles.
    pub total_nibbles: u64,
    /// Patched jump tables (nibble addresses).
    pub jump_tables: Vec<Vec<u32>>,
    /// Overflow jump table (nibble addresses).
    pub overflow_table: Vec<u32>,
    /// Original text size (for ratio reporting).
    pub original_text_bytes: u32,
}

impl ProgramImage {
    /// Total flash footprint: image + dictionary + overflow table (+ jump
    /// tables, which existed in the uncompressed program too).
    pub fn footprint_bytes(&self) -> usize {
        self.image.len()
            + self.dictionary_by_rank.iter().map(|e| 4 * e.len()).sum::<usize>()
            + 4 * self.overflow_table.len()
            + self.huffman_lengths.len().div_ceil(2)
    }
}

/// Container errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown encoding discriminant.
    BadEncoding(u8),
    /// The container is shorter than its fields claim.
    Truncated,
    /// The CRC does not match the payload.
    ChecksumMismatch,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not a codense container (bad magic)"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::BadEncoding(e) => write!(f, "unknown encoding discriminant {e}"),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::ChecksumMismatch => write!(f, "container checksum mismatch"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// CRC-32 (IEEE 802.3, reflected). Delegates to the table/hardware
/// implementation in [`codense_obj::crc32`] (the bitwise reference lives
/// there too, pinned equal by its check-value suite).
pub fn crc32(data: &[u8]) -> u32 {
    codense_obj::crc32::crc32(data)
}

fn encoding_tag(kind: EncodingKind) -> u8 {
    match kind {
        EncodingKind::Baseline => 0,
        EncodingKind::OneByte => 1,
        EncodingKind::NibbleAligned => 2,
        EncodingKind::Huffman => 3,
    }
}

fn encoding_from_tag(tag: u8) -> Option<EncodingKind> {
    match tag {
        0 => Some(EncodingKind::Baseline),
        1 => Some(EncodingKind::OneByte),
        2 => Some(EncodingKind::NibbleAligned),
        3 => Some(EncodingKind::Huffman),
        _ => None,
    }
}

/// Serializes a compressed program into the container format.
pub fn serialize(program: &CompressedProgram) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.push(encoding_tag(program.encoding));
    out.push(0);
    out.extend_from_slice(&(program.original_text_bytes as u32).to_be_bytes());
    out.extend_from_slice(&program.total_nibbles.to_be_bytes());

    out.extend_from_slice(&(program.dictionary.len() as u32).to_be_bytes());
    for rank in 0..program.dictionary.len() as u32 {
        let entry = program.dictionary.entry(program.dictionary.entry_of_rank(rank));
        out.push(entry.words.len() as u8);
        for &w in &entry.words {
            out.extend_from_slice(&w.to_be_bytes());
        }
    }

    if program.encoding == EncodingKind::Huffman {
        let lengths = program.huffman.as_ref().map(|h| h.nibble_lengths()).unwrap_or_default();
        out.extend_from_slice(&(lengths.len() as u32).to_be_bytes());
        out.extend_from_slice(lengths);
    }

    out.extend_from_slice(&(program.image.len() as u32).to_be_bytes());
    out.extend_from_slice(&program.image);

    out.extend_from_slice(&(program.jump_tables.len() as u32).to_be_bytes());
    for table in &program.jump_tables {
        out.extend_from_slice(&(table.len() as u32).to_be_bytes());
        for &addr in table {
            out.extend_from_slice(&(addr as u32).to_be_bytes());
        }
    }

    out.extend_from_slice(&(program.overflow_table.len() as u32).to_be_bytes());
    for &addr in &program.overflow_table {
        out.extend_from_slice(&(addr as u32).to_be_bytes());
    }

    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        let end = self.pos.checked_add(n).ok_or(ContainerError::Truncated)?;
        if end > self.data.len() {
            return Err(ContainerError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ContainerError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ContainerError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Deserializes and integrity-checks a container.
///
/// # Errors
///
/// Any structural or checksum failure yields a [`ContainerError`]; no
/// partially constructed image is ever returned.
pub fn deserialize(data: &[u8]) -> Result<ProgramImage, ContainerError> {
    if data.len() < 4 + 2 + 2 + 4 {
        return Err(ContainerError::Truncated);
    }
    // Verify the trailing CRC first.
    let (payload, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(payload) != stored {
        return Err(ContainerError::ChecksumMismatch);
    }

    let mut r = Reader { data: payload, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let enc_tag = r.u8()?;
    let encoding = encoding_from_tag(enc_tag).ok_or(ContainerError::BadEncoding(enc_tag))?;
    let _reserved = r.u8()?;
    let original_text_bytes = r.u32()?;
    let total_nibbles = r.u64()?;

    let dict_count = r.u32()? as usize;
    let mut dictionary_by_rank = Vec::with_capacity(dict_count.min(1 << 16));
    for _ in 0..dict_count {
        let len = r.u8()? as usize;
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            words.push(r.u32()?);
        }
        dictionary_by_rank.push(words);
    }

    let huffman_lengths = if encoding == EncodingKind::Huffman {
        let n = r.u32()? as usize;
        r.take(n)?.to_vec()
    } else {
        Vec::new()
    };

    let image_len = r.u32()? as usize;
    let image = r.take(image_len)?.to_vec();

    let table_count = r.u32()? as usize;
    let mut jump_tables = Vec::with_capacity(table_count.min(1 << 16));
    for _ in 0..table_count {
        let n = r.u32()? as usize;
        let mut t = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            t.push(r.u32()?);
        }
        jump_tables.push(t);
    }

    let overflow_count = r.u32()? as usize;
    let mut overflow_table = Vec::with_capacity(overflow_count.min(1 << 16));
    for _ in 0..overflow_count {
        overflow_table.push(r.u32()?);
    }

    Ok(ProgramImage {
        encoding,
        dictionary_by_rank,
        huffman_lengths,
        image,
        total_nibbles,
        jump_tables,
        overflow_table,
        original_text_bytes,
    })
}

impl CompressedProgram {
    /// Converts to the execution-ready image form (what
    /// [`serialize`]/[`deserialize`] round-trip).
    pub fn to_image(&self) -> ProgramImage {
        let dictionary_by_rank = (0..self.dictionary.len() as u32)
            .map(|rank| self.dictionary.entry(self.dictionary.entry_of_rank(rank)).words.clone())
            .collect();
        ProgramImage {
            encoding: self.encoding,
            dictionary_by_rank,
            huffman_lengths: self
                .huffman
                .as_ref()
                .map(|h| h.nibble_lengths().to_vec())
                .unwrap_or_default(),
            image: self.image.clone(),
            total_nibbles: self.total_nibbles,
            jump_tables: self
                .jump_tables
                .iter()
                .map(|t| t.iter().map(|&a| a as u32).collect())
                .collect(),
            overflow_table: self.overflow_table.iter().map(|&a| a as u32).collect(),
            original_text_bytes: self.original_text_bytes as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionConfig, Compressor};
    use codense_obj::{JumpTable, ObjectModule};
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn program() -> CompressedProgram {
        let mut m = ObjectModule::new("t");
        for i in 0..60 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: (i % 4) as i16 }));
        }
        m.jump_tables.push(JumpTable { targets: vec![0, 8, 16] });
        Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap()
    }

    #[test]
    fn serialize_deserialize_roundtrip() {
        let c = program();
        let bytes = serialize(&c);
        let image = deserialize(&bytes).unwrap();
        assert_eq!(image, c.to_image());
        assert_eq!(image.encoding, EncodingKind::NibbleAligned);
        assert_eq!(image.jump_tables.len(), 1);
    }

    #[test]
    fn all_encodings_roundtrip() {
        let mut m = ObjectModule::new("t");
        m.code = vec![encode(&Insn::Addi { rt: R4, ra: R4, si: 2 }); 40];
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(8),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let c = Compressor::new(config).compress(&m).unwrap();
            assert_eq!(deserialize(&serialize(&c)).unwrap(), c.to_image());
        }
    }

    #[test]
    fn huffman_lengths_travel_in_the_container() {
        let mut m = ObjectModule::new("t");
        for i in 0..60 {
            m.code.push(encode(&Insn::Addi { rt: R3, ra: R3, si: (i % 4) as i16 }));
        }
        let c = Compressor::new(CompressionConfig::huffman()).compress(&m).unwrap();
        let lengths = c.huffman.as_ref().unwrap().nibble_lengths().to_vec();
        assert!(!lengths.is_empty());
        let image = deserialize(&serialize(&c)).unwrap();
        assert_eq!(image.encoding, EncodingKind::Huffman);
        assert_eq!(image.huffman_lengths, lengths);
        // The decoder can rebuild the canonical code from lengths alone.
        let rebuilt =
            crate::huffcode::HuffCode::from_nibble_lengths(image.huffman_lengths).unwrap();
        assert_eq!(&rebuilt, c.huffman.as_ref().unwrap());
    }

    #[test]
    fn corruption_detected() {
        let bytes = serialize(&program());
        for at in [0usize, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = deserialize(&bad).unwrap_err();
            assert!(
                matches!(err, ContainerError::ChecksumMismatch | ContainerError::BadMagic),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = serialize(&program());
        for len in [0usize, 3, 8, bytes.len() - 5] {
            assert!(deserialize(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn crc32_reference_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn footprint_accounts_components() {
        let c = program();
        let image = c.to_image();
        assert_eq!(
            image.footprint_bytes(),
            c.text_bytes().max(image.image.len()) // image includes padding byte
                + c.dictionary_bytes()
                + c.overflow_table_bytes()
        );
    }
}
