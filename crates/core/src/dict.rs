//! The instruction dictionary produced by compression.

/// One dictionary entry: the instruction sequence a codeword expands to,
/// plus bookkeeping from the selection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEntry {
    /// The instruction words, in program order.
    pub words: Vec<u32>,
    /// How many occurrences were replaced by this entry's codeword.
    pub replaced: usize,
}

impl DictEntry {
    /// Instructions in the entry.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never true for a well-formed dictionary.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Storage the entry occupies in the dictionary (4 bytes/instruction).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

/// The dictionary: entries indexed by the order the greedy pass accepted
/// them, with an encoding-assigned rank permutation (shortest codewords to
/// the most-used entries, §4.1.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    entries: Vec<DictEntry>,
    /// `rank_of[e]` = codeword rank assigned to entry `e` (identity until
    /// [`assign_ranks_by_use`](Dictionary::assign_ranks_by_use) runs).
    rank_of: Vec<u32>,
    /// Inverse permutation: `entry_of[r]` = entry holding rank `r`.
    entry_of: Vec<u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Appends an entry, returning its index, with an identity rank.
    ///
    /// Accepts anything convertible into the stored `Vec<u32>` — an owned
    /// vector by move, or a borrowed slice (e.g. the matchfinder's interned
    /// arena view), so each accepted entry is materialized exactly once.
    pub fn push(&mut self, words: impl Into<Vec<u32>>, replaced: usize) -> u32 {
        let words = words.into();
        debug_assert!(!words.is_empty());
        let id = self.entries.len() as u32;
        self.entries.push(DictEntry { words, replaced });
        self.rank_of.push(id);
        self.entry_of.push(id);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry with the given index.
    pub fn entry(&self, id: u32) -> &DictEntry {
        &self.entries[id as usize]
    }

    /// All entries in acceptance order.
    pub fn entries(&self) -> &[DictEntry] {
        &self.entries
    }

    /// Codeword rank of an entry.
    pub fn rank_of(&self, id: u32) -> u32 {
        self.rank_of[id as usize]
    }

    /// Entry holding a codeword rank.
    pub fn entry_of_rank(&self, rank: u32) -> u32 {
        self.entry_of[rank as usize]
    }

    /// Total dictionary storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(DictEntry::size_bytes).sum()
    }

    /// Re-ranks entries so the most-replaced entries get the lowest ranks —
    /// i.e. the shortest codewords under a variable-length encoding
    /// ("the shortest codewords encode the most frequent dictionary entries
    /// to maximize the savings", §3.1.3). Ties break toward longer entries
    /// (they save more per occurrence), then acceptance order.
    pub fn assign_ranks_by_use(&mut self) {
        let mut order: Vec<u32> = (0..self.entries.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let ea = &self.entries[a as usize];
            let eb = &self.entries[b as usize];
            eb.replaced.cmp(&ea.replaced).then(eb.words.len().cmp(&ea.words.len())).then(a.cmp(&b))
        });
        for (rank, &id) in order.iter().enumerate() {
            self.rank_of[id as usize] = rank as u32;
            self.entry_of[rank] = id;
        }
    }

    /// Distribution of entry lengths: `hist[l]` = number of entries with
    /// exactly `l` instructions (index 0 unused).
    pub fn length_histogram(&self, max_len: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_len + 1];
        for e in &self.entries {
            hist[e.words.len().min(max_len)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut d = Dictionary::new();
        let a = d.push(vec![1, 2], 10);
        let b = d.push(vec![3], 50);
        assert_eq!(d.len(), 2);
        assert_eq!(d.entry(a).words, vec![1, 2]);
        assert_eq!(d.entry(b).replaced, 50);
        assert_eq!(d.size_bytes(), 12);
    }

    #[test]
    fn rank_by_use_puts_hot_entries_first() {
        let mut d = Dictionary::new();
        let cold = d.push(vec![1, 2], 3);
        let hot = d.push(vec![3], 100);
        let warm = d.push(vec![4, 5, 6], 10);
        d.assign_ranks_by_use();
        assert_eq!(d.rank_of(hot), 0);
        assert_eq!(d.rank_of(warm), 1);
        assert_eq!(d.rank_of(cold), 2);
        assert_eq!(d.entry_of_rank(0), hot);
        assert_eq!(d.entry_of_rank(2), cold);
    }

    #[test]
    fn rank_ties_prefer_longer_entries() {
        let mut d = Dictionary::new();
        let short = d.push(vec![1], 5);
        let long = d.push(vec![2, 3, 4], 5);
        d.assign_ranks_by_use();
        assert_eq!(d.rank_of(long), 0);
        assert_eq!(d.rank_of(short), 1);
    }

    #[test]
    fn length_histogram() {
        let mut d = Dictionary::new();
        d.push(vec![1], 1);
        d.push(vec![1, 2], 1);
        d.push(vec![9], 1);
        assert_eq!(d.length_histogram(4), vec![0, 2, 1, 0, 0]);
    }
}
