//! Compressed-program statistics: the composition breakdown of Fig 9 and the
//! per-entry-length savings of Fig 7.

use crate::compressor::{Atom, CompressedProgram};
use crate::config::EncodingKind;
use crate::encoding;

/// Byte-level composition of a compressed program (the paper's Fig 9).
///
/// Values are fractional bytes for the nibble-aligned scheme (an escape is
/// half a byte there). `uncompressed_insns + codeword_escape +
/// codeword_index + dictionary ≈ text_bytes + dictionary_bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    /// Bytes of instructions left uncompressed (including overflow-branch
    /// dispatch sequences).
    pub uncompressed_insns: f64,
    /// Bytes of codeword escape prefixes (escape bytes in the baseline
    /// scheme; the per-instruction escape nibbles in the nibble scheme are
    /// charged here too).
    pub codeword_escape: f64,
    /// Bytes of codeword payload (index bytes / codeword nibbles).
    pub codeword_index: f64,
    /// Dictionary storage bytes.
    pub dictionary: f64,
}

impl Composition {
    /// Total accounted bytes.
    pub fn total(&self) -> f64 {
        self.uncompressed_insns + self.codeword_escape + self.codeword_index + self.dictionary
    }

    /// Each component as a fraction of the total.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        [
            self.uncompressed_insns / t,
            self.codeword_escape / t,
            self.codeword_index / t,
            self.dictionary / t,
        ]
    }
}

impl CompressedProgram {
    /// Computes the Fig 9 composition breakdown.
    pub fn composition(&self) -> Composition {
        let mut uncompressed = 0.0;
        let mut escape = 0.0;
        let mut index = 0.0;
        // Escape nibbles charged per uncompressed instruction: one for the
        // nibble scheme, the escape codeword's true length under Huffman.
        let escape_nibbles = match self.encoding {
            EncodingKind::NibbleAligned => 1.0,
            EncodingKind::Huffman => self.huffman.as_ref().map_or(0.0, |h| h.escape_len() as f64),
            _ => 0.0,
        };
        for atom in &self.atoms {
            match *atom {
                Atom::Insn { .. } => {
                    uncompressed += 4.0;
                    escape += escape_nibbles / 2.0;
                }
                Atom::ViaTable { word, slot, .. } => {
                    let n = crate::compressor::via_table_expansion_coded(
                        self.isa,
                        self.encoding,
                        self.huffman.as_ref(),
                        word,
                        slot,
                    )
                    .len() as f64;
                    uncompressed += 4.0 * n;
                    escape += escape_nibbles / 2.0 * n;
                }
                Atom::Codeword { entry, .. } => match self.encoding {
                    EncodingKind::Baseline => {
                        escape += 1.0;
                        index += 1.0;
                    }
                    EncodingKind::OneByte => {
                        escape += 1.0;
                    }
                    EncodingKind::NibbleAligned | EncodingKind::Huffman => {
                        let rank = self.dictionary.rank_of(entry);
                        index += encoding::try_codeword_nibbles_coded(
                            self.encoding,
                            self.huffman.as_ref(),
                            rank,
                        )
                        .expect("compressed atom has a codeword")
                            as f64
                            / 2.0;
                    }
                },
            }
        }
        Composition {
            uncompressed_insns: uncompressed,
            codeword_escape: escape,
            codeword_index: index,
            dictionary: self.dictionary_bytes() as f64,
        }
    }

    /// Bytes removed from the program by entries of each length (the paper's
    /// Fig 7): `out[l]` = net bytes saved by all dictionary entries of `l`
    /// instructions, using the entry's actual codeword size.
    pub fn savings_by_length(&self, max_len: usize) -> Vec<f64> {
        let mut out = vec![0.0; max_len + 1];
        for (id, e) in self.dictionary.entries().iter().enumerate() {
            let rank = self.dictionary.rank_of(id as u32);
            let cw_bytes =
                encoding::try_codeword_nibbles_coded(self.encoding, self.huffman.as_ref(), rank)
                    .expect("dictionary entry has a codeword") as f64
                    / 2.0;
            let saved =
                e.replaced as f64 * (4.0 * e.len() as f64 - cw_bytes) - 4.0 * e.len() as f64;
            out[e.len().min(max_len)] += saved;
        }
        out
    }

    /// Number of codeword atoms in the stream.
    pub fn codeword_atoms(&self) -> usize {
        self.atoms.iter().filter(|a| matches!(a, Atom::Codeword { .. })).count()
    }

    /// Number of uncompressed-instruction atoms in the stream.
    pub fn insn_atoms(&self) -> usize {
        self.atoms.iter().filter(|a| matches!(a, Atom::Insn { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CompressionConfig, Compressor};
    use codense_obj::ObjectModule;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut words = Vec::new();
        for i in 0..48 {
            words.push(encode(&Insn::Addi { rt: R3, ra: R3, si: 1 }));
            words.push(encode(&Insn::Addi { rt: R4, ra: R4, si: (i % 3) as i16 }));
        }
        let mut m = ObjectModule::new("t");
        m.code = words;
        m
    }

    #[test]
    fn composition_accounts_for_everything() {
        let m = module();
        for config in [CompressionConfig::baseline(), CompressionConfig::nibble_aligned()] {
            let c = Compressor::new(config).compress(&m).unwrap();
            let comp = c.composition();
            let expected = c.text_bytes() as f64 + c.dictionary_bytes() as f64;
            // Allow half a byte of final-nibble padding slack.
            assert!((comp.total() - expected).abs() <= 0.5, "{} vs {}", comp.total(), expected);
            let fracs = comp.fractions();
            assert!((fracs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn baseline_escape_equals_index_bytes() {
        let c = Compressor::new(CompressionConfig::baseline()).compress(&module()).unwrap();
        let comp = c.composition();
        assert_eq!(comp.codeword_escape, comp.codeword_index);
        assert_eq!(comp.codeword_escape as usize, c.codeword_atoms());
    }

    #[test]
    fn savings_by_length_sums_to_total_savings() {
        let m = module();
        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        let by_len: f64 = c.savings_by_length(4).iter().sum();
        let actual = m.text_bytes() as f64
            - (c.text_bytes() as f64 + c.dictionary_bytes() as f64 - c.dictionary_bytes() as f64)
            - c.dictionary_bytes() as f64;
        // by_len counts dictionary storage inside each entry's net saving,
        // so it equals original - (text + dictionary), up to padding.
        assert!((by_len - actual).abs() <= 1.0, "{by_len} vs {actual}");
    }
}
