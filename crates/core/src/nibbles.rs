//! Nibble-granular byte-stream reader/writer.
//!
//! The paper's most aggressive scheme aligns codewords to 4-bit boundaries,
//! so the compressed image is fundamentally a nibble stream. Nibbles are
//! stored big-endian within each byte (nibble 0 is the high half of byte 0),
//! matching PowerPC's big-endian text image so fixed-size schemes degrade to
//! plain byte layout.

/// An append-only nibble stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NibbleWriter {
    data: Vec<u8>,
    nibbles: u64,
}

impl NibbleWriter {
    /// Creates an empty writer.
    pub fn new() -> NibbleWriter {
        NibbleWriter::default()
    }

    /// Number of nibbles written so far (the current write address).
    pub fn len(&self) -> u64 {
        self.nibbles
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.nibbles == 0
    }

    /// Appends one nibble (low 4 bits of `n`).
    pub fn push(&mut self, n: u8) {
        let n = n & 0xf;
        if self.nibbles.is_multiple_of(2) {
            self.data.push(n << 4);
        } else {
            *self.data.last_mut().expect("odd length implies a byte") |= n;
        }
        self.nibbles += 1;
    }

    /// Appends a byte as two nibbles.
    pub fn push_byte(&mut self, b: u8) {
        self.push(b >> 4);
        self.push(b);
    }

    /// Appends a 32-bit word big-endian (8 nibbles).
    pub fn push_u32(&mut self, w: u32) {
        for b in w.to_be_bytes() {
            self.push_byte(b);
        }
    }

    /// Finishes the stream, padding the final half-byte with zero, and
    /// returns the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Size in whole bytes (the last byte may be half-used).
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }
}

/// A random-access nibble reader over packed bytes.
#[derive(Debug, Clone)]
pub struct NibbleReader<'a> {
    data: &'a [u8],
    pos: u64,
}

impl<'a> NibbleReader<'a> {
    /// Creates a reader positioned at nibble 0.
    pub fn new(data: &'a [u8]) -> NibbleReader<'a> {
        NibbleReader { data, pos: 0 }
    }

    /// Current nibble position.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Repositions the reader (a branch in the compressed-PC domain).
    pub fn seek(&mut self, nibble: u64) {
        self.pos = nibble;
    }

    /// Total nibbles available.
    pub fn len(&self) -> u64 {
        self.data.len() as u64 * 2
    }

    /// Returns `true` for an empty stream.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads the next nibble. Returns `None` at end of stream.
    #[allow(clippy::should_implement_trait)] // reader-style `next`, not an Iterator
    pub fn next(&mut self) -> Option<u8> {
        let byte = *self.data.get((self.pos / 2) as usize)?;
        let n = if self.pos.is_multiple_of(2) { byte >> 4 } else { byte & 0xf };
        self.pos += 1;
        Some(n)
    }

    /// Reads a byte (two nibbles).
    pub fn next_byte(&mut self) -> Option<u8> {
        let hi = self.next()?;
        let lo = self.next()?;
        Some((hi << 4) | lo)
    }

    /// Reads a big-endian 32-bit word (8 nibbles).
    pub fn next_u32(&mut self) -> Option<u32> {
        let mut w = 0u32;
        for _ in 0..8 {
            w = (w << 4) | self.next()? as u32;
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = NibbleWriter::new();
        w.push(0xA);
        w.push_byte(0x5C);
        w.push_u32(0xDEAD_BEEF);
        w.push(0x3);
        assert_eq!(w.len(), 1 + 2 + 8 + 1);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(r.next(), Some(0xA));
        assert_eq!(r.next_byte(), Some(0x5C));
        assert_eq!(r.next_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.next(), Some(0x3));
    }

    #[test]
    fn big_endian_nibble_order() {
        let mut w = NibbleWriter::new();
        w.push_byte(0xAB);
        assert_eq!(w.into_bytes(), vec![0xAB]);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let mut w = NibbleWriter::new();
        w.push(0x7);
        assert_eq!(w.byte_len(), 1);
        assert_eq!(w.into_bytes(), vec![0x70]);
    }

    #[test]
    fn seek_supports_branching() {
        let mut w = NibbleWriter::new();
        for i in 0..8 {
            w.push(i);
        }
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        r.seek(5);
        assert_eq!(r.next(), Some(5));
        r.seek(0);
        assert_eq!(r.next(), Some(0));
    }

    #[test]
    fn end_of_stream_is_none() {
        let mut r = NibbleReader::new(&[0x12]);
        assert_eq!(r.next(), Some(1));
        assert_eq!(r.next(), Some(2));
        assert_eq!(r.next(), None);
        assert_eq!(NibbleReader::new(&[]).next_u32(), None);
    }
}
