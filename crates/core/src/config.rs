//! Compression configuration: codeword encodings and selection limits.

/// Which codeword encoding scheme the compressed program uses.
///
/// The three schemes the paper evaluates, plus a frequency-driven extension:
///
/// * [`Baseline`](EncodingKind::Baseline) (§4.1): 2-byte codewords — an
///   escape byte built from one of the 8 illegal PowerPC primary opcodes
///   (32 escape bytes total) followed by an index byte, for up to
///   32 × 256 = 8192 codewords. Uncompressed instructions remain valid
///   PowerPC, so uncompressed programs still run.
/// * [`OneByte`](EncodingKind::OneByte) (§4.1.2): 1-byte codewords drawn
///   directly from the 32 escape bytes, for tiny (≤ 512-byte) dictionaries.
/// * [`NibbleAligned`](EncodingKind::NibbleAligned) (§4.1.3, Fig 10):
///   variable-length codewords of 4/8/12/16 bits, aligned to 4-bit
///   boundaries; one nibble escapes a 36-bit uncompressed instruction.
/// * [`Huffman`](EncodingKind::Huffman) (§2.1's statistical-beats-dictionary
///   observation): nibble-aligned canonical Huffman codewords whose lengths
///   come from the program's *actual* dictionary-entry usage frequencies
///   ([`crate::huffcode::HuffCode`]); the escape is itself a Huffman symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// 2-byte escape + index codewords (the paper's baseline).
    Baseline,
    /// 1-byte escape-byte codewords (small-dictionary scheme, Fig 8).
    OneByte,
    /// Nibble-aligned 4/8/12/16-bit codewords (Fig 10/11).
    NibbleAligned,
    /// Frequency-driven nibble-aligned canonical Huffman codewords.
    Huffman,
}

impl EncodingKind {
    /// Maximum number of dictionary entries the codeword space can index.
    pub fn capacity(self) -> usize {
        match self {
            EncodingKind::Baseline => 32 * 256,
            EncodingKind::OneByte => 32,
            EncodingKind::NibbleAligned => crate::encoding::nibble::CAPACITY,
            // Matches the baseline's dictionary budget; the code adapts its
            // lengths to however many entries selection actually keeps.
            EncodingKind::Huffman => 8192,
        }
    }

    /// Bits an uncompressed instruction occupies in the compressed stream
    /// (36 for the nibble-granular schemes: 4-bit escape estimate + 32-bit
    /// word; the Huffman escape's true length is known only after the code
    /// is built).
    pub fn uncompressed_insn_bits(self) -> u32 {
        match self {
            EncodingKind::NibbleAligned | EncodingKind::Huffman => 36,
            _ => 32,
        }
    }

    /// Estimated codeword size in bits, used by the greedy selector's
    /// savings function. Exact for the fixed-length schemes. For the
    /// variable-length schemes the true size (4–16 bits nibble-aligned,
    /// 4–32 Huffman) is only known after frequency ranking, so selection
    /// conservatively assumes a worst practical case (16): optimistic
    /// estimates would admit entries that break even at best — e.g. a
    /// four-instruction sequence occurring *once* costs 144 escaped bits
    /// uncompressed and 128 dictionary + 16 codeword bits compressed —
    /// bloating the dictionary with dead weight.
    pub fn codeword_bits_estimate(self) -> u32 {
        match self {
            EncodingKind::Baseline => 16,
            EncodingKind::OneByte => 8,
            EncodingKind::NibbleAligned | EncodingKind::Huffman => 16,
        }
    }

    /// Branch-offset granularity in nibbles: "the size of the smallest
    /// codeword" (§3.2.2) — 2 bytes, 1 byte, or one nibble.
    pub fn granule_nibbles(self) -> u32 {
        match self {
            EncodingKind::Baseline => 4,
            EncodingKind::OneByte => 2,
            EncodingKind::NibbleAligned | EncodingKind::Huffman => 1,
        }
    }
}

/// Parameters of one compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionConfig {
    /// Maximum instructions per dictionary entry (the paper sweeps 1–8;
    /// baseline uses 4 = 16 bytes).
    pub max_entry_len: usize,
    /// Maximum dictionary entries (further capped by the encoding's
    /// codeword capacity).
    pub max_codewords: usize,
    /// Codeword encoding scheme.
    pub encoding: EncodingKind,
}

impl CompressionConfig {
    /// The paper's baseline configuration: 2-byte codewords, entries of up
    /// to 4 instructions, full 8192-codeword space.
    pub fn baseline() -> CompressionConfig {
        CompressionConfig {
            max_entry_len: 4,
            max_codewords: 8192,
            encoding: EncodingKind::Baseline,
        }
    }

    /// The small-dictionary scheme of Fig 8 with the given entry count
    /// (8, 16 or 32 → 128/256/512-byte dictionaries).
    pub fn small_dictionary(entries: usize) -> CompressionConfig {
        CompressionConfig {
            max_entry_len: 4,
            max_codewords: entries,
            encoding: EncodingKind::OneByte,
        }
    }

    /// The most aggressive scheme (Fig 11): nibble-aligned variable-length
    /// codewords, full codeword space.
    pub fn nibble_aligned() -> CompressionConfig {
        CompressionConfig {
            max_entry_len: 4,
            max_codewords: crate::encoding::nibble::CAPACITY,
            encoding: EncodingKind::NibbleAligned,
        }
    }

    /// The frequency-driven Huffman-codeword scheme: nibble-aligned
    /// canonical codewords sized by actual dictionary-entry usage.
    pub fn huffman() -> CompressionConfig {
        CompressionConfig {
            max_entry_len: 4,
            max_codewords: EncodingKind::Huffman.capacity(),
            encoding: EncodingKind::Huffman,
        }
    }

    /// The effective dictionary-size limit (config cap ∧ encoding capacity).
    pub fn effective_max_codewords(&self) -> usize {
        self.max_codewords.min(self.encoding.capacity())
    }
}

impl Default for CompressionConfig {
    fn default() -> CompressionConfig {
        CompressionConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = CompressionConfig::baseline();
        assert_eq!(c.max_entry_len, 4);
        assert_eq!(c.effective_max_codewords(), 8192);
        assert_eq!(c.encoding.codeword_bits_estimate(), 16);
        assert_eq!(c.encoding.granule_nibbles(), 4);
    }

    #[test]
    fn one_byte_capacity_is_escape_count() {
        assert_eq!(EncodingKind::OneByte.capacity(), 32);
        assert_eq!(CompressionConfig::small_dictionary(64).effective_max_codewords(), 32);
    }

    #[test]
    fn nibble_escape_cost() {
        assert_eq!(EncodingKind::NibbleAligned.uncompressed_insn_bits(), 36);
        assert_eq!(EncodingKind::NibbleAligned.granule_nibbles(), 1);
    }

    #[test]
    fn huffman_is_nibble_granular() {
        let c = CompressionConfig::huffman();
        assert_eq!(c.effective_max_codewords(), 8192);
        assert_eq!(c.encoding.granule_nibbles(), 1);
        assert_eq!(c.encoding.uncompressed_insn_bits(), 36);
        assert_eq!(c.encoding.codeword_bits_estimate(), 16);
    }
}
