//! The original `Box<[u32]>`-keyed occurrence index, kept verbatim as an
//! executable specification of the greedy selector.
//!
//! This is the matchfinder the interned index (the parent module) replaced:
//! it allocates a fresh boxed-slice HashMap key for every window on build,
//! replacement, *and removal lookups*, and pays a `BTreeSet` node per
//! occurrence. It survives for two reasons:
//!
//! * the `matchfinder_equivalence` property suite asserts the interned
//!   matchfinder produces a byte-identical pick log, dictionary, and
//!   compressed image against it, across all encodings and hotness masks;
//! * `codense speed` measures it as the baseline the `BENCH_speed.json`
//!   speedup figures are relative to.
//!
//! Its removal path increments [`telemetry::GREEDY_REMOVAL_ALLOCS`] once
//! per boxed lookup key — the counter the interned index proves it never
//! touches.

use std::collections::{BTreeSet, BinaryHeap, HashMap};

use super::{effective_count_sorted, select_positions_sorted, GreedyParams, PickRecord};
use crate::dict::Dictionary;
use crate::model::{Cell, ProgramModel};
use crate::telemetry;

type Seq = Box<[u32]>;
/// Position of a window: (block index, cell index).
type Pos = (u32, u32);

#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    savings: i64,
    seq: Seq,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by savings; deterministic lexicographic tie-break.
        self.savings.cmp(&other.savings).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs greedy selection with the original allocation-heavy index. The
/// observable output (pick log, dictionary, model rewrite) is identical to
/// [`super::run_greedy`]; only the cost differs.
pub fn run_greedy(
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
) -> Vec<PickRecord> {
    let mut index = Index::build(model, params.max_entry_len);
    let mut picks = Vec::new();

    while dict.len() < params.max_codewords {
        let Some(top) = index.heap.pop() else { break };
        telemetry::GREEDY_HEAP_POPS.inc();
        let len = top.seq.len();
        let Some(set) = index.occ.get(&top.seq) else { continue };
        let n = effective_count(set, len);
        let savings = params.cost.savings_bits(len, n);
        debug_assert!(savings <= top.savings, "counts only decrease");
        if savings <= 0 {
            continue; // candidate dead; others may still be live
        }
        if savings < top.savings {
            telemetry::GREEDY_STALE_REINSERTS.inc();
            index.heap.push(HeapItem { savings, seq: top.seq });
            continue;
        }

        // Accept: replace every non-overlapping occurrence left to right.
        let positions = select_positions(set, len);
        debug_assert_eq!(positions.len(), n);
        let entry = dict.push(top.seq.to_vec(), n);
        for &(b, p) in &positions {
            index.replace(model, b as usize, p as usize, entry, len, params.max_entry_len);
        }
        telemetry::GREEDY_PICKS_ACCEPTED.inc();
        telemetry::GREEDY_REPLACEMENTS.add(n as u64);
        picks.push(PickRecord { entry, len, replaced: n, savings_bits: savings });
    }
    picks
}

/// Greedy left-to-right non-overlapping occurrence count.
fn effective_count(set: &BTreeSet<Pos>, len: usize) -> usize {
    let positions: Vec<Pos> = set.iter().copied().collect();
    effective_count_sorted(&positions, len)
}

/// The positions [`effective_count`] counted.
fn select_positions(set: &BTreeSet<Pos>, len: usize) -> Vec<Pos> {
    let positions: Vec<Pos> = set.iter().copied().collect();
    select_positions_sorted(&positions, len)
}

struct Index {
    occ: HashMap<Seq, BTreeSet<Pos>>,
    heap: BinaryHeap<HeapItem>,
}

impl Index {
    fn build(model: &ProgramModel, max_len: usize) -> Index {
        // Window mining is embarrassingly parallel over disjoint block
        // ranges; merging unions per-chunk maps. Positions from different
        // chunks never collide (they carry the block index), so the merged
        // map — and everything downstream — is bit-identical to a
        // sequential scan regardless of the worker count.
        let ranges = crate::parallel::chunk_ranges(
            model.blocks.len(),
            crate::parallel::jobs().saturating_mul(4),
        );
        let chunks =
            crate::parallel::par_map(ranges, |_, (b0, b1)| build_occ_range(model, b0, b1, max_len));
        let mut occ: HashMap<Seq, BTreeSet<Pos>> = HashMap::new();
        for chunk in chunks {
            if occ.is_empty() {
                occ = chunk;
                continue;
            }
            for (seq, set) in chunk {
                occ.entry(seq).or_default().extend(set);
            }
        }
        telemetry::GREEDY_CANDIDATES_SEEDED.add(occ.len() as u64);
        // Heap seeding is the only place HashMap iteration order is
        // observed; the heap's total order makes pops deterministic anyway.
        let heap = occ
            .iter()
            .map(|(seq, set)| HeapItem {
                savings: upper_bound_savings(seq, set.len()),
                seq: seq.clone(),
            })
            .collect();
        Index { occ, heap }
    }

    /// Replaces the window at (`b`, `p`) with codeword `entry` of `len`
    /// instructions, updating the occurrence index locally.
    fn replace(
        &mut self,
        model: &mut ProgramModel,
        b: usize,
        p: usize,
        entry: u32,
        len: usize,
        max_len: usize,
    ) {
        let block = &mut model.blocks[b];
        // The run containing p.
        let (rs, re) = run_around(&block.cells, p);
        debug_assert!(p + len <= re);
        remove_windows(&mut self.occ, &block.cells, b as u32, rs, re, max_len);
        let orig = match block.cells[p] {
            Cell::Insn { orig, .. } => orig,
            _ => unreachable!("replacement target must be an instruction"),
        };
        block.cells[p] = Cell::Code { entry, orig, len };
        for cell in &mut block.cells[p + 1..p + len] {
            *cell = Cell::Dead;
        }
        add_windows(&mut self.occ, &block.cells, b as u32, rs, p, max_len);
        add_windows(&mut self.occ, &block.cells, b as u32, p + len, re, max_len);
    }
}

/// Mines candidate windows for the block range `b0..b1` into a fresh map.
/// Run on worker threads by [`Index::build`].
fn build_occ_range(
    model: &ProgramModel,
    b0: usize,
    b1: usize,
    max_len: usize,
) -> HashMap<Seq, BTreeSet<Pos>> {
    let mut occ: HashMap<Seq, BTreeSet<Pos>> = HashMap::new();
    for (b, block) in model.blocks[b0..b1].iter().enumerate() {
        for (start, end) in super::runs(&block.cells) {
            add_windows(&mut occ, &block.cells, (b0 + b) as u32, start, end, max_len);
        }
    }
    occ
}

/// Initial savings upper bound for a fresh candidate. Seeding only needs a
/// value ≥ the real savings under any cost model; a count-proportional bound
/// keeps early pops useful (few lazy re-insertions).
fn upper_bound_savings(seq: &[u32], raw_count: usize) -> i64 {
    // 36 bits/insn is the largest stream cost in any scheme; codeword ≥ 4
    // bits; this dominates every cost model's savings.
    raw_count as i64 * (36 * seq.len() as i64 - 4)
}

/// The maximal compressible run containing `p`.
fn run_around(cells: &[Cell], p: usize) -> (usize, usize) {
    debug_assert!(cells[p].compressible_word().is_some());
    let mut s = p;
    while s > 0 && cells[s - 1].compressible_word().is_some() {
        s -= 1;
    }
    let mut e = p + 1;
    while e < cells.len() && cells[e].compressible_word().is_some() {
        e += 1;
    }
    (s, e)
}

fn add_windows(
    occ: &mut HashMap<Seq, BTreeSet<Pos>>,
    cells: &[Cell],
    b: u32,
    start: usize,
    end: usize,
    max_len: usize,
) {
    let mut added = 0u64;
    for s in start..end {
        let limit = max_len.min(end - s);
        let mut words = Vec::with_capacity(limit);
        for l in 1..=limit {
            words.push(cells[s + l - 1].compressible_word().expect("run cell"));
            occ.entry(words.clone().into_boxed_slice()).or_default().insert((b, s as u32));
            added += 1;
        }
    }
    telemetry::GREEDY_WINDOW_ADDS.add(added);
}

fn remove_windows(
    occ: &mut HashMap<Seq, BTreeSet<Pos>>,
    cells: &[Cell],
    b: u32,
    start: usize,
    end: usize,
    max_len: usize,
) {
    let mut removed = 0u64;
    for s in start..end {
        let limit = max_len.min(end - s);
        let mut words = Vec::with_capacity(limit);
        for l in 1..=limit {
            words.push(cells[s + l - 1].compressible_word().expect("run cell"));
            // The removal-path allocation the interned index eliminates: a
            // boxed key built just to *look up* an entry.
            let key: Seq = words.clone().into_boxed_slice();
            telemetry::GREEDY_REMOVAL_ALLOCS.inc();
            if let Some(set) = occ.get_mut(&key) {
                set.remove(&(b, s as u32));
                removed += 1;
                if set.is_empty() {
                    occ.remove(&key);
                }
            }
        }
    }
    telemetry::GREEDY_WINDOW_REMOVES.add(removed);
}
