//! Nibble-granular canonical Huffman codewords for dictionary ranks.
//!
//! The paper's §2.1 observes that statistical coding beats pure dictionary
//! substitution; the fixed nibble-aligned scheme (Fig 10) already
//! approximates this with its 4/8/12/16-bit classes, but its class split is
//! static. This module assigns codeword lengths from the *actual* usage
//! frequencies of a program's dictionary entries: a radix-16 canonical
//! prefix code over the symbols `rank 0..n` plus one `escape` symbol (which
//! prefixes each uncompressed 32-bit instruction), with codeword lengths of
//! 1–8 nibbles.
//!
//! Lengths come from a 16-ary Huffman construction run directly in nibble
//! units: merging the sixteen lightest nodes per step minimizes
//! `Σ freq × nibble_length` over all radix-16 prefix codes, so the result
//! is never longer than any fixed class split for the same frequencies.
//! (Rounding a *bit*-optimal code up to nibbles — the obvious shortcut —
//! strands most of the base-16 Kraft budget and loses to the fixed scheme.)
//! When pathological skew drives the tree past [`MAX_NIBBLES`], frequencies
//! are halved (floored at one) and the tree rebuilt until it fits — a
//! deterministic limiter that converges to the all-equal tree of depth
//! `⌈log₁₆ n⌉ ≤ 4`. Only the per-symbol nibble lengths need to be stored
//! with a compressed program; the canonical assignment (sorted by length,
//! then symbol) reconstructs the codewords.

use crate::nibbles::{NibbleReader, NibbleWriter};

/// Maximum codeword length in nibbles (32 bits — the bit-length limit of
/// the underlying coder, divided by 4).
pub const MAX_NIBBLES: u8 = 8;

/// A canonical radix-16 prefix code over dictionary ranks and the escape.
///
/// Symbols are `0..num_ranks` (dictionary codeword ranks, in rank order)
/// followed by one extra symbol, [`escape_symbol`](HuffCode::escape_symbol),
/// that introduces an uncompressed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffCode {
    /// Nibble length per symbol (always `1..=MAX_NIBBLES`).
    lengths: Vec<u8>,
    /// Canonical codeword per symbol (low `4 * lengths[s]` bits).
    codes: Vec<u32>,
    /// First canonical code value of each length (index = nibble length).
    first_code: [u32; MAX_NIBBLES as usize + 1],
    /// Start of each length's run in `by_code`.
    offset: [u32; MAX_NIBBLES as usize + 1],
    /// Number of codes of each length.
    count: [u32; MAX_NIBBLES as usize + 1],
    /// Symbols in canonical order (sorted by length, then symbol).
    by_code: Vec<u32>,
}

impl HuffCode {
    /// Builds the code for a program: `rank_freqs[r]` is how many times the
    /// entry holding rank `r` is referenced by a codeword, and `escape_freq`
    /// is how many uncompressed instructions the stream carries.
    ///
    /// Zero frequencies are raised to one so *every* rank — and the escape —
    /// always gets a codeword: branch-overflow rewriting can add escaped
    /// instructions after the code is fixed, so the escape must be encodable
    /// even when the initial stream has no uncompressed instructions.
    pub fn from_frequencies(rank_freqs: &[u64], escape_freq: u64) -> HuffCode {
        let mut freqs: Vec<u64> = rank_freqs.iter().map(|&f| f.max(1)).collect();
        freqs.push(escape_freq.max(1));
        let lengths = loop {
            let lengths = radix16_lengths(&freqs);
            if lengths.iter().all(|&l| l <= MAX_NIBBLES) {
                break lengths;
            }
            // Deterministic length limiter: flatten the skew and rebuild.
            for f in &mut freqs {
                *f = (*f >> 1).max(1);
            }
        };
        HuffCode::from_nibble_lengths(lengths).expect("derived lengths satisfy Kraft")
    }

    /// Reconstructs the code from stored per-symbol nibble lengths (the
    /// container's transmissible model). Returns `None` when the lengths
    /// cannot describe a prefix code: empty, a length outside
    /// `1..=MAX_NIBBLES`, or a Kraft-inequality violation — hostile
    /// containers are rejected, never trusted.
    pub fn from_nibble_lengths(lengths: Vec<u8>) -> Option<HuffCode> {
        if lengths.is_empty() || lengths.len() > (1 << 16) {
            return None;
        }
        let mut kraft = 0u64;
        for &l in &lengths {
            if !(1..=MAX_NIBBLES).contains(&l) {
                return None;
            }
            kraft += 1u64 << (4 * (MAX_NIBBLES - l) as u32);
        }
        if kraft > 1u64 << (4 * MAX_NIBBLES as u32) {
            return None;
        }
        let mut by_code: Vec<u32> = (0..lengths.len() as u32).collect();
        by_code.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut first_code = [0u32; MAX_NIBBLES as usize + 1];
        let mut offset = [0u32; MAX_NIBBLES as usize + 1];
        let mut count = [0u32; MAX_NIBBLES as usize + 1];
        // u64 accumulator: the final increment of a full code can carry past
        // 32 bits at the maximum length.
        let mut code = 0u64;
        let mut prev = 0u8;
        for (i, &s) in by_code.iter().enumerate() {
            let l = lengths[s as usize];
            if l > prev {
                code <<= 4 * (l - prev) as u32;
                first_code[l as usize] = code as u32;
                offset[l as usize] = i as u32;
                prev = l;
            }
            codes[s as usize] = code as u32;
            count[l as usize] += 1;
            code += 1;
        }
        Some(HuffCode { lengths, codes, first_code, offset, count, by_code })
    }

    /// Number of rank symbols (dictionary entries) the code covers.
    pub fn num_ranks(&self) -> u32 {
        self.lengths.len() as u32 - 1
    }

    /// The escape symbol's index (one past the last rank).
    pub fn escape_symbol(&self) -> u32 {
        self.num_ranks()
    }

    /// The per-symbol nibble lengths (the transmissible model).
    pub fn nibble_lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Codeword length in nibbles for a rank, or `None` when the rank is
    /// outside the code's symbol space.
    pub fn codeword_len(&self, rank: u32) -> Option<u32> {
        (rank < self.num_ranks()).then(|| self.lengths[rank as usize] as u32)
    }

    /// The escape codeword's length in nibbles.
    pub fn escape_len(&self) -> u32 {
        self.lengths[self.escape_symbol() as usize] as u32
    }

    /// Appends a symbol's codeword to the stream, most-significant nibble
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the code's symbol space.
    pub fn write_symbol(&self, w: &mut NibbleWriter, symbol: u32) {
        let l = self.lengths[symbol as usize];
        let c = self.codes[symbol as usize];
        for i in (0..l).rev() {
            w.push(((c >> (4 * i as u32)) & 0xf) as u8);
        }
    }

    /// Decodes the next symbol from the stream: O(1) per nibble via the
    /// canonical per-length tables. Returns `None` at end of stream or when
    /// no codeword matches (possible only for non-full codes).
    pub fn read_symbol(&self, r: &mut NibbleReader<'_>) -> Option<u32> {
        let mut acc = 0u32;
        for l in 1..=MAX_NIBBLES as usize {
            acc = (acc << 4) | r.next()? as u32;
            if self.count[l] > 0 && acc >= self.first_code[l] {
                let rel = acc - self.first_code[l];
                if rel < self.count[l] {
                    return Some(self.by_code[(self.offset[l] + rel) as usize]);
                }
            }
        }
        None
    }
}

/// Optimal radix-16 prefix-code lengths (in nibbles, unlimited) for the
/// given positive frequencies: a 16-ary Huffman tree, ties broken by
/// insertion id so the result is deterministic. The symbol count is padded
/// with zero-weight dummies to `(n − 1) ≡ 0 (mod 15)` so every merge takes
/// exactly sixteen nodes — the standard condition for r-ary optimality.
fn radix16_lengths(freqs: &[u64]) -> Vec<u8> {
    use std::collections::BinaryHeap;
    let n = freqs.len();
    if n <= 1 {
        return vec![1; n];
    }
    let dummies = (15 - (n - 1) % 15) % 15;
    #[derive(PartialEq, Eq)]
    struct Item {
        weight: u64,
        id: u32,
        node: usize,
    }
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reversed for a min-heap.
            o.weight.cmp(&self.weight).then(o.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    // Leaves first (dummies after the real symbols), then internal nodes,
    // linked through `parent`; depth extraction walks the links.
    let mut parent: Vec<usize> = vec![usize::MAX; n + dummies];
    let mut heap: BinaryHeap<Item> = (0..n + dummies)
        .map(|node| Item { weight: freqs.get(node).copied().unwrap_or(0), id: node as u32, node })
        .collect();
    let mut next_id = (n + dummies) as u32;
    while heap.len() > 1 {
        let node = parent.len();
        let mut weight = 0u64;
        for _ in 0..16 {
            let child = heap.pop().expect("padding makes every merge full");
            weight = weight.saturating_add(child.weight);
            parent[child.node] = node;
        }
        parent.push(usize::MAX);
        heap.push(Item { weight, id: next_id, node });
        next_id += 1;
    }
    (0..n)
        .map(|leaf| {
            let mut depth = 0u8;
            let mut at = leaf;
            while parent[at] != usize::MAX {
                at = parent[at];
                depth = depth.saturating_add(1);
            }
            depth.max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf(n: usize) -> Vec<u64> {
        (0..n as u64).map(|r| 10_000 / (r + 1)).collect()
    }

    #[test]
    fn roundtrips_every_symbol() {
        for n in [0usize, 1, 7, 100, 700, 8192] {
            let code = HuffCode::from_frequencies(&zipf(n), 37);
            assert_eq!(code.num_ranks(), n as u32);
            let mut w = NibbleWriter::new();
            let step = (n / 64).max(1) as u32;
            let probed: Vec<u32> =
                (0..n as u32).step_by(step as usize).chain([code.escape_symbol()]).collect();
            for &s in &probed {
                code.write_symbol(&mut w, s);
            }
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            for &s in &probed {
                assert_eq!(code.read_symbol(&mut r), Some(s), "n={n} symbol {s}");
            }
        }
    }

    #[test]
    fn frequent_ranks_get_shorter_codewords() {
        // A steep skew: rank 0 dominates, tail ranks are rare.
        let mut freqs = vec![1u64; 600];
        freqs[0] = 100_000;
        freqs[1] = 10_000;
        let code = HuffCode::from_frequencies(&freqs, 50);
        assert!(code.codeword_len(0).unwrap() <= code.codeword_len(599).unwrap());
        assert!(code.codeword_len(0).unwrap() <= 2);
    }

    /// The whole point of the adaptive code: for any frequency profile the
    /// fixed scheme can host, the 16-ary Huffman assignment never codes the
    /// stream longer than the fixed 1/2/3/4-nibble class split (which is
    /// itself a valid radix-16 prefix code, so optimality subsumes it).
    #[test]
    fn beats_or_ties_the_fixed_nibble_classes() {
        use crate::encoding::nibble;
        for n in [8usize, 64, 600, 4096, 8192] {
            let freqs = zipf(n);
            let escape_freq = 500u64;
            let code = HuffCode::from_frequencies(&freqs, escape_freq);
            let adaptive: u64 = freqs
                .iter()
                .enumerate()
                .map(|(r, &f)| f * code.codeword_len(r as u32).unwrap() as u64)
                .sum::<u64>()
                + escape_freq * code.escape_len() as u64;
            let fixed: u64 = freqs
                .iter()
                .enumerate()
                .map(|(r, &f)| f * nibble::codeword_nibbles(r as u32) as u64)
                .sum::<u64>()
                + escape_freq; // fixed scheme: 1-nibble escape marker
            assert!(adaptive <= fixed, "n={n}: adaptive {adaptive} > fixed {fixed}");
        }
    }

    #[test]
    fn lengths_roundtrip_through_reconstruction() {
        let code = HuffCode::from_frequencies(&zipf(300), 41);
        let rebuilt = HuffCode::from_nibble_lengths(code.nibble_lengths().to_vec()).unwrap();
        assert_eq!(rebuilt, code);
    }

    #[test]
    fn hostile_lengths_rejected() {
        assert!(HuffCode::from_nibble_lengths(vec![]).is_none());
        assert!(HuffCode::from_nibble_lengths(vec![0]).is_none());
        assert!(HuffCode::from_nibble_lengths(vec![9]).is_none());
        // Kraft violation: three 1-nibble codes leave room, but seventeen
        // 1-nibble codes overflow the 16-way first level.
        assert!(HuffCode::from_nibble_lengths(vec![1; 17]).is_none());
        assert!(HuffCode::from_nibble_lengths(vec![1; 16]).is_some());
    }

    #[test]
    fn kraft_holds_after_nibble_rounding() {
        for n in [2usize, 50, 1000, 8192] {
            let code = HuffCode::from_frequencies(&zipf(n), 1);
            let kraft: u64 =
                code.nibble_lengths().iter().map(|&l| 1u64 << (4 * (MAX_NIBBLES - l) as u32)).sum();
            assert!(kraft <= 1u64 << (4 * MAX_NIBBLES as u32), "n={n}");
        }
    }

    #[test]
    fn escape_always_has_a_code() {
        // Even with zero escape frequency (no uncompressed instructions at
        // selection time) the escape must remain encodable.
        let code = HuffCode::from_frequencies(&zipf(12), 0);
        assert!(code.escape_len() >= 1);
        let mut w = NibbleWriter::new();
        code.write_symbol(&mut w, code.escape_symbol());
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(code.read_symbol(&mut r), Some(code.escape_symbol()));
    }

    #[test]
    fn truncated_stream_returns_none() {
        let code = HuffCode::from_frequencies(&zipf(600), 3);
        // Pick a symbol with a ≥ 3-nibble codeword and supply only its first
        // byte (2 nibbles): the decode must report end-of-stream, not panic.
        let long = (0..600).find(|&r| code.codeword_len(r).unwrap() >= 3).unwrap();
        let mut w = NibbleWriter::new();
        code.write_symbol(&mut w, long);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes[..1]);
        assert_eq!(code.read_symbol(&mut r), None);
        // Empty stream likewise.
        assert_eq!(code.read_symbol(&mut NibbleReader::new(&[])), None);
    }
}
