//! The mutable program model the greedy selector rewrites: basic blocks of
//! cells, where each cell is an instruction, a codeword, or a tombstone left
//! behind by a replacement.

use codense_isa::IsaRef;
use codense_obj::{BasicBlocks, ObjectModule};

/// One slot of the rewrite model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// An (as yet) uncompressed instruction.
    Insn {
        /// The instruction word.
        word: u32,
        /// Original instruction index in the module.
        orig: usize,
        /// Whether the compressor may place this instruction in a dictionary
        /// entry (`false` for PC-relative branches, §3.1.1).
        compressible: bool,
    },
    /// A codeword covering `len` original instructions starting at `orig`.
    Code {
        /// Dictionary entry index.
        entry: u32,
        /// Original index of the first covered instruction.
        orig: usize,
        /// Number of instructions covered.
        len: usize,
    },
    /// An instruction slot consumed by a preceding [`Cell::Code`].
    Dead,
}

impl Cell {
    /// Returns the instruction word if this is a compressible instruction.
    pub fn compressible_word(&self) -> Option<u32> {
        match *self {
            Cell::Insn { word, compressible: true, .. } => Some(word),
            _ => None,
        }
    }
}

/// A basic block: a run of cells, positionally stable under replacement
/// (replacements tombstone cells rather than splice them out).
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The cells, one per original instruction of the block.
    pub cells: Vec<Cell>,
    /// Original index of the block's first instruction.
    pub start: usize,
}

/// The whole program as rewritable blocks.
#[derive(Debug, Clone)]
pub struct ProgramModel {
    /// Basic blocks in program order.
    pub blocks: Vec<Block>,
    /// Total instructions (original program length).
    pub insns: usize,
}

impl ProgramModel {
    /// Builds the model from a module: computes basic blocks and marks
    /// PC-relative branches incompressible (PowerPC decoding).
    pub fn build(module: &ObjectModule) -> ProgramModel {
        ProgramModel::build_isa(module, IsaRef(&codense_ppc::ISA))
    }

    /// Like [`build`](ProgramModel::build), with a custom compressibility
    /// predicate (baselines impose extra constraints — e.g. Liao's software
    /// mini-subroutines cannot contain link-register users).
    pub fn build_with(module: &ObjectModule, compressible: impl Fn(u32) -> bool) -> ProgramModel {
        ProgramModel::build_isa_with(module, IsaRef(&codense_ppc::ISA), compressible)
    }

    /// Builds the model under `isa`.
    pub fn build_isa(module: &ObjectModule, isa: IsaRef) -> ProgramModel {
        // `build_isa_with` already excludes PC-relative branches; the extra
        // predicate is identity so each word is decoded exactly once.
        ProgramModel::build_isa_with(module, isa, |_| true)
    }

    /// Builds the model under `isa` with a custom compressibility predicate.
    pub fn build_isa_with(
        module: &ObjectModule,
        isa: IsaRef,
        compressible: impl Fn(u32) -> bool,
    ) -> ProgramModel {
        let bbs = BasicBlocks::compute_with(module, isa);
        let blocks = bbs
            .blocks()
            .iter()
            .map(|&(s, e)| Block {
                start: s,
                cells: (s..e)
                    .map(|i| {
                        let word = module.code[i];
                        Cell::Insn {
                            word,
                            orig: i,
                            compressible: isa.rel_branch_info(word).is_none() && compressible(word),
                        }
                    })
                    .collect(),
            })
            .collect();
        ProgramModel { blocks, insns: module.len() }
    }

    /// Iterates the final atom stream: codewords and uncompressed
    /// instructions in program order (tombstones skipped).
    pub fn atoms(&self) -> impl Iterator<Item = Cell> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| b.cells.iter())
            .filter(|c| !matches!(c, Cell::Dead))
            .copied()
    }

    /// Counts uncompressed instructions remaining.
    pub fn uncompressed_insns(&self) -> usize {
        self.blocks.iter().flat_map(|b| &b.cells).filter(|c| matches!(c, Cell::Insn { .. })).count()
    }

    /// Counts codeword cells.
    pub fn codewords(&self) -> usize {
        self.blocks.iter().flat_map(|b| &b.cells).filter(|c| matches!(c, Cell::Code { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut a = Assembler::new();
        a.emit(Insn::Addi { rt: R3, ra: R0, si: 1 });
        a.label("l");
        a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
        a.bne(CR0, "l");
        a.emit(Insn::Sc);
        let mut m = ObjectModule::new("t");
        m.code = a.finish().unwrap();
        m
    }

    #[test]
    fn build_marks_branches_incompressible() {
        let pm = ProgramModel::build(&module());
        let flat: Vec<Cell> = pm.atoms().collect();
        assert_eq!(flat.len(), 4);
        assert!(matches!(flat[2], Cell::Insn { compressible: false, .. }));
        assert!(matches!(flat[0], Cell::Insn { compressible: true, .. }));
        assert_eq!(pm.insns, 4);
    }

    #[test]
    fn atoms_skip_tombstones() {
        let mut pm = ProgramModel::build(&module());
        // Manually fuse block 1's first cell into a codeword of length 1 and
        // kill nothing; then fuse two cells.
        pm.blocks[1].cells[0] = Cell::Code { entry: 0, orig: 1, len: 1 };
        let flat: Vec<Cell> = pm.atoms().collect();
        assert_eq!(flat.len(), 4);
        assert!(matches!(flat[1], Cell::Code { entry: 0, len: 1, .. }));
        assert_eq!(pm.uncompressed_insns(), 3);
        assert_eq!(pm.codewords(), 1);
    }
}
