//! An arena-backed interner for candidate instruction sequences.
//!
//! The greedy matchfinder examines every window of 1..=`max_entry_len`
//! instructions inside every compressible run. Keying the occurrence index
//! by `Box<[u32]>` made each window examination a heap allocation — on
//! build, on replacement, and even on removal *lookups*. The interner
//! removes all of that: every distinct sequence is stored once in a single
//! contiguous word arena and identified by a dense [`SeqId`], so the
//! occurrence index and the selection heap operate on plain `u32`s and
//! lookups borrow the probe slice instead of boxing it.
//!
//! Hashes are computed incrementally by the windower ([`hash_seed`] /
//! [`hash_extend`]): extending a window by one instruction extends its hash
//! in O(1), so mining all `O(n · max_entry_len)` windows costs O(1) hashing
//! per window. The table is open-addressing with a power-of-two capacity;
//! collisions are resolved by comparing the stored arena slice, so hash
//! quality affects speed only, never correctness.

/// Dense identifier of an interned sequence. Ids are assigned in first-
/// insertion order, starting at 0, with no gaps — callers index plain
/// vectors by them.
pub type SeqId = u32;

/// Seed value for the incremental window hash.
#[inline]
pub fn hash_seed() -> u64 {
    0xcbf2_9ce4_8422_2325 // FNV-1a 64 offset basis
}

/// Extends a window hash by one instruction word (FNV-1a over 32-bit
/// chunks). `hash_extend(hash_seed(), w1)` then `hash_extend(.., w2)` …
/// yields the hash of `[w1, w2, ..]`.
#[inline]
pub fn hash_extend(h: u64, word: u32) -> u64 {
    (h ^ word as u64).wrapping_mul(0x1000_0000_01b3) // FNV-1a 64 prime
}

/// Final avalanche before indexing the table (FNV alone clusters low bits).
#[inline]
fn fmix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// The interner: one contiguous word arena plus a hash table mapping
/// sequence content to its [`SeqId`]. Zero per-sequence heap allocations
/// after table warm-up; lookups never allocate.
#[derive(Debug, Clone, Default)]
pub struct SeqInterner {
    /// All interned sequences, concatenated.
    words: Vec<u32>,
    /// `SeqId` → (offset, len) into `words`.
    spans: Vec<(u32, u32)>,
    /// `SeqId` → full 64-bit hash (kept for cheap rehashing on growth).
    hashes: Vec<u64>,
    /// Open-addressing slots: 0 = empty, otherwise `SeqId + 1`.
    table: Vec<u32>,
}

impl SeqInterner {
    /// Creates an empty interner.
    pub fn new() -> SeqInterner {
        SeqInterner::default()
    }

    /// Creates an interner sized for roughly `seqs` distinct sequences of
    /// `words_per_seq` average length (avoids growth churn during mining).
    pub fn with_capacity(seqs: usize, words_per_seq: usize) -> SeqInterner {
        let slots = (seqs * 2).next_power_of_two().max(16);
        SeqInterner {
            words: Vec::with_capacity(seqs * words_per_seq),
            spans: Vec::with_capacity(seqs),
            hashes: Vec::with_capacity(seqs),
            table: vec![0; slots],
        }
    }

    /// Number of distinct sequences interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total words in the arena (sum of distinct sequence lengths).
    pub fn arena_words(&self) -> usize {
        self.words.len()
    }

    /// The instruction words of sequence `id`.
    #[inline]
    pub fn words(&self, id: SeqId) -> &[u32] {
        let (off, len) = self.spans[id as usize];
        &self.words[off as usize..off as usize + len as usize]
    }

    /// Length in instructions of sequence `id`.
    #[inline]
    pub fn seq_len(&self, id: SeqId) -> usize {
        self.spans[id as usize].1 as usize
    }

    /// The full hash of sequence `id` (as produced by [`hash_extend`]).
    #[inline]
    pub fn hash(&self, id: SeqId) -> u64 {
        self.hashes[id as usize]
    }

    /// Interns `seq` (whose [`hash_extend`] hash is `hash`), returning its
    /// id — existing id if present, a fresh dense id otherwise. Only the
    /// arena allocates, and only when a *new* sequence is appended.
    pub fn intern(&mut self, seq: &[u32], hash: u64) -> SeqId {
        if self.spans.len() * 2 >= self.table.len() {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = fmix(hash) as usize & mask;
        loop {
            match self.table[slot] {
                0 => {
                    // Callers bound worst-case arena demand up front (the
                    // matchfinder's `check_position_space`); this converts
                    // a would-be silent truncation into a loud failure.
                    let id = u32::try_from(self.spans.len()).expect("interner id space exhausted");
                    let off =
                        u32::try_from(self.words.len()).expect("interner arena space exhausted");
                    self.words.extend_from_slice(seq);
                    self.spans.push((off, seq.len() as u32));
                    self.hashes.push(hash);
                    self.table[slot] = id + 1;
                    return id;
                }
                stored => {
                    let id = stored - 1;
                    if self.hashes[id as usize] == hash && self.words(id) == seq {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Looks up `seq` without inserting (and without allocating).
    pub fn lookup(&self, seq: &[u32], hash: u64) -> Option<SeqId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = fmix(hash) as usize & mask;
        loop {
            match self.table[slot] {
                0 => return None,
                stored => {
                    let id = stored - 1;
                    if self.hashes[id as usize] == hash && self.words(id) == seq {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let slots = (self.table.len() * 2).max(16);
        let mask = slots - 1;
        let mut table = vec![0u32; slots];
        for (i, &h) in self.hashes.iter().enumerate() {
            let mut slot = fmix(h) as usize & mask;
            while table[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32 + 1;
        }
        self.table = table;
    }
}

/// Hashes a whole slice with the incremental combiner (convenience for
/// non-windowed callers and tests).
pub fn hash_of(seq: &[u32]) -> u64 {
    seq.iter().fold(hash_seed(), |h, &w| hash_extend(h, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_ids_are_dense() {
        let mut it = SeqInterner::new();
        let a = it.intern(&[1, 2, 3], hash_of(&[1, 2, 3]));
        let b = it.intern(&[1, 2], hash_of(&[1, 2]));
        let a2 = it.intern(&[1, 2, 3], hash_of(&[1, 2, 3]));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a2, a);
        assert_eq!(it.len(), 2);
        assert_eq!(it.words(a), &[1, 2, 3]);
        assert_eq!(it.words(b), &[1, 2]);
        assert_eq!(it.seq_len(a), 3);
        assert_eq!(it.arena_words(), 5);
    }

    #[test]
    fn lookup_borrows_without_inserting() {
        let mut it = SeqInterner::new();
        assert_eq!(it.lookup(&[7], hash_of(&[7])), None);
        let id = it.intern(&[7], hash_of(&[7]));
        assert_eq!(it.lookup(&[7], hash_of(&[7])), Some(id));
        assert_eq!(it.lookup(&[7, 7], hash_of(&[7, 7])), None);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn incremental_hash_matches_whole_slice_hash() {
        let seq = [0xdead_beefu32, 1, 0, u32::MAX, 42];
        let mut h = hash_seed();
        for (i, &w) in seq.iter().enumerate() {
            h = hash_extend(h, w);
            assert_eq!(h, hash_of(&seq[..=i]));
        }
    }

    #[test]
    fn growth_preserves_lookups() {
        let mut it = SeqInterner::new();
        let ids: Vec<SeqId> = (0u32..10_000)
            .map(|i| it.intern(&[i, i ^ 0xffff], hash_of(&[i, i ^ 0xffff])))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            let seq = [i, i ^ 0xffff];
            assert_eq!(it.lookup(&seq, hash_of(&seq)), Some(id));
            assert_eq!(it.words(id), &seq);
        }
        assert_eq!(it.len(), 10_000);
    }

    #[test]
    fn prefixes_are_distinct_sequences() {
        // The windower interns every prefix of a run window; prefixes must
        // never collide with each other.
        let mut it = SeqInterner::new();
        let run = [5u32, 5, 5, 5];
        let mut h = hash_seed();
        let mut ids = Vec::new();
        for l in 1..=run.len() {
            h = hash_extend(h, run[l - 1]);
            ids.push(it.intern(&run[..l], h));
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
