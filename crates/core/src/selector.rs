//! Dictionary-selection strategies: the greedy fast path and an
//! iterative-refinement hill climb.
//!
//! Greedy selection (PR 3's interned matchfinder) maximizes *immediate*
//! savings under an estimated codeword size, but the estimate diverges from
//! reality in two ways: variable-length codewords are priced at a worst
//! practical case, and the layout pass adds branch-patching and
//! overflow-table costs greedy never sees. The refinement selector closes
//! that gap by treating the full compression pipeline as the objective
//! function:
//!
//! 1. Run greedy and take its pick log as the incumbent solution. Every
//!    trial below is scored with the **exact** cost — `text_bytes +
//!    dictionary_bytes + overflow_table_bytes + huffman_table_bytes`, the
//!    numerator of the paper's compression ratio (Eq. 1) — and the
//!    incumbent is replaced only on strict improvement.
//! 2. *Re-price probes:* re-run selection with the codeword price nudged
//!    off the flat 16-bit estimate. Slightly higher prices act as a proxy
//!    penalty for the overflow-table and branch-patch bytes greedy never
//!    models, trimming marginal picks that bloat the layout.
//! 3. *Ban-and-reselect climb:* ban the sequence of one *marginal*
//!    accepted entry (smallest recorded savings) and re-run the pipeline
//!    over the remaining candidate universe. Banning an entry redirects
//!    its occurrences to other candidates, which greedy then re-selects —
//!    the "swap". Keep the trial only if it improves; otherwise lift the
//!    ban.
//! 4. Repeat until no marginal ban improves, or the trial budget runs out.
//!
//! The incumbent only ever changes to a strictly cheaper solution, so the
//! refined result is **never worse than greedy** under the exact cost; a
//! fixed probe order and budget make it deterministic for a given input.
//! Every trial reuses one [`CandidateIndex`], so a probe costs one
//! selection + layout pass, not a fresh mining pass.

use codense_obj::ObjectModule;

use crate::compressor::{CompressedProgram, Compressor};
use crate::config::EncodingKind;
use crate::error::CompressError;
use crate::greedy::{BanSet, CandidateIndex};
use crate::telemetry;

/// Which dictionary-selection strategy a [`Compressor`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectorKind {
    /// Plain greedy selection — one pass, maximum immediate savings.
    #[default]
    Greedy,
    /// Greedy plus the ban-and-reselect hill climb described in this
    /// module, re-scored with the exact layout cost.
    Refine,
}

/// Marginal entries probed per round: the bottom of the pick log by
/// recorded savings. Small because bans compound — after an accepted swap
/// the log is re-ranked and probing starts over.
const MARGINALS_PER_ROUND: usize = 8;

/// Total recompression budget. Refinement cost is `trials + 1` selection +
/// layout passes over a shared index.
const MAX_TRIALS: usize = 24;

/// The exact objective: the numerator of the paper's compression ratio.
fn exact_cost(p: &CompressedProgram) -> usize {
    p.text_bytes() + p.dictionary_bytes() + p.overflow_table_bytes() + p.huffman_table_bytes()
}

/// Runs refinement selection for `c` (see the module docs). Called by the
/// compressor's entry points when [`SelectorKind::Refine`] is configured.
pub(crate) fn refine(
    c: &Compressor,
    module: &ObjectModule,
    exempt: &[bool],
    shared_index: Option<&CandidateIndex>,
) -> Result<CompressedProgram, CompressError> {
    telemetry::REFINE_RUNS.inc();
    let _phase = telemetry::phase("refine");

    // Every trial re-selects against one index. Mine it from the masked
    // model when the caller didn't supply one, exactly as a fresh greedy
    // run would.
    let owned;
    let index = match shared_index {
        Some(index) => index,
        None => {
            let model = c.build_masked_model(module, exempt);
            owned = CandidateIndex::build(&model, c.config().max_entry_len)?;
            &owned
        }
    };

    let mut bans = BanSet::new();
    let mut best = c.compress_inner(module, exempt, Some(index), &bans)?;
    let mut best_cost = exact_cost(&best);
    let mut trials = 0usize;

    // Phase 1 — re-price probes. Greedy prices every codeword at a flat
    // 16-bit estimate and never sees the overflow-table and branch-patch
    // bytes the layout pass adds; a slightly *higher* price acts as a proxy
    // penalty for those unmodeled costs and steers selection away from
    // marginal picks that bloat them. The probe points were chosen
    // empirically over the benchmark suite; the exact layout cost
    // arbitrates, so a probe that doesn't pan out costs one trial and
    // changes nothing.
    let mut price: Option<u32> = None;
    let probe_prices: &[u32] = match c.config().encoding {
        EncodingKind::NibbleAligned | EncodingKind::Huffman => &[17, 18, 19, 22],
        _ => &[], // fixed-width codewords: the estimate is already exact
    };
    for &p in probe_prices {
        if trials >= MAX_TRIALS {
            break;
        }
        trials += 1;
        telemetry::REFINE_TRIALS.inc();
        let Ok(trial) = c.compress_inner_priced(module, exempt, Some(index), &bans, Some(p)) else {
            continue;
        };
        let cost = exact_cost(&trial);
        if cost < best_cost {
            telemetry::REFINE_SWAPS_ACCEPTED.inc();
            best = trial;
            best_cost = cost;
            price = Some(p);
        }
    }

    // Phase 2 — ban-and-reselect hill climb from the winning price.
    'climb: while trials < MAX_TRIALS {
        // Probe the marginal picks: ascending recorded savings, entry index
        // as the deterministic tie-break.
        let mut order: Vec<(i64, u32)> =
            best.picks.iter().map(|p| (p.savings_bits, p.entry)).collect();
        order.sort_unstable();

        for &(_, entry) in order.iter().take(MARGINALS_PER_ROUND) {
            if trials >= MAX_TRIALS {
                break;
            }
            let mut trial_bans = bans.clone();
            trial_bans.insert(best.dictionary.entry(entry).words.clone());
            trials += 1;
            telemetry::REFINE_TRIALS.inc();
            // A trial that fails to compress (e.g. the alternative layout
            // hits an unsupported overflow branch) is simply not an
            // improvement; the incumbent stands.
            let Ok(trial) =
                c.compress_inner_priced(module, exempt, Some(index), &trial_bans, price)
            else {
                continue;
            };
            let cost = exact_cost(&trial);
            if cost < best_cost {
                telemetry::REFINE_SWAPS_ACCEPTED.inc();
                bans = trial_bans;
                best = trial;
                best_cost = cost;
                // The pick log changed; re-rank the marginals against the
                // new incumbent.
                continue 'climb;
            }
        }
        break; // fixpoint: no marginal ban improves
    }

    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompressionConfig;
    use crate::verify::verify;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::R3;

    fn addi(rt: u8, si: i16) -> u32 {
        encode(&Insn::Addi { rt: codense_ppc::Gpr::new(rt).unwrap(), ra: R3, si })
    }

    /// A module where greedy's estimated savings and the exact layout cost
    /// disagree enough that refinement has room to move: overlapping
    /// repeated phrases of different lengths.
    fn overlapping_module() -> ObjectModule {
        let mut words = Vec::new();
        for i in 0..48 {
            words.extend_from_slice(&[addi(3, 1), addi(4, 2), addi(5, 3)]);
            if i % 3 == 0 {
                words.extend_from_slice(&[addi(4, 2), addi(5, 3), addi(6, 4), addi(7, 5)]);
            }
            words.push(addi(8, (i % 7) as i16));
        }
        let mut m = ObjectModule::new("overlap");
        m.code = words;
        m
    }

    #[test]
    fn refine_never_worse_than_greedy() {
        let m = overlapping_module();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let greedy = Compressor::new(config.clone()).compress(&m).unwrap();
            let refined = Compressor::new(config.clone())
                .with_selector(SelectorKind::Refine)
                .compress(&m)
                .unwrap();
            assert!(
                exact_cost(&refined) <= exact_cost(&greedy),
                "{:?}: refined {} > greedy {}",
                config.encoding,
                exact_cost(&refined),
                exact_cost(&greedy),
            );
            verify(&m, &refined).unwrap();
        }
    }

    #[test]
    fn refine_is_deterministic() {
        let m = overlapping_module();
        let c = Compressor::new(CompressionConfig::nibble_aligned())
            .with_selector(SelectorKind::Refine);
        let a = c.compress(&m).unwrap();
        let b = c.compress(&m).unwrap();
        assert_eq!(a.image, b.image);
        assert_eq!(a.addresses, b.addresses);
    }

    #[test]
    fn refine_with_shared_index_matches_fresh() {
        let m = overlapping_module();
        let config = CompressionConfig::nibble_aligned();
        let c = Compressor::new(config.clone()).with_selector(SelectorKind::Refine);
        let model = c.build_masked_model(&m, &[]);
        let index = CandidateIndex::build(&model, config.max_entry_len).unwrap();
        let fresh = c.compress(&m).unwrap();
        let shared = c.compress_with_index(&m, &index).unwrap();
        assert_eq!(fresh.image, shared.image);
    }

    #[test]
    fn selector_kind_default_is_greedy() {
        assert_eq!(SelectorKind::default(), SelectorKind::Greedy);
        assert_eq!(Compressor::default().selector(), SelectorKind::Greedy);
    }
}
