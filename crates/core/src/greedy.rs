//! The greedy dictionary-selection pass (§3.1.1 of the paper) with an
//! interned-sequence matchfinder.
//!
//! Choosing the optimum dictionary is NP-complete [Storer77], so — like the
//! paper — "on every iteration of the algorithm, we examine each potential
//! dictionary entry and find the one that results in the largest immediate
//! savings", repeating until the codeword space is exhausted or no candidate
//! saves anything.
//!
//! The naive algorithm rescans the whole program every iteration. This
//! implementation is equivalent but incremental, and allocation-free on the
//! selection hot path:
//!
//! * a **rolling-hash windower** walks every compressible run once, extending
//!   each window's hash by one instruction at a time, and maps each distinct
//!   candidate sequence to a dense [`SeqId`](crate::intern::SeqId) through an
//!   arena-backed [`SeqInterner`] — zero per-window heap allocations;
//! * the **occurrence index** ([`OccLists`]) is one flat position arena in
//!   CSR layout — a span per `SeqId` bracketing that candidate's window
//!   positions in (block, cell) order. Replacements never touch it: a
//!   position is *live* iff its cells are still compressible in the model,
//!   checked (and compacted out of the span, in place) lazily at recount
//!   time. Every window created by a replacement is a sub-window of an
//!   original run, so the candidate set is closed at build time and the
//!   index only ever shrinks;
//! * a **lazy max-heap** seeded with each candidate's exact initial savings
//!   (every position is live before the first replacement, so one
//!   sequential counting pass computes them; candidates that start
//!   non-positive can never recover and are never enqueued). Counts only
//!   ever decrease, so a popped entry whose recomputed savings still equals
//!   its key is the true maximum; stale entries are re-inserted with their
//!   corrected value.
//!
//! Tie-breaking is deterministic (savings, then lexicographic sequence
//! content, materialized as a per-candidate rank so heap items stay three
//! plain words), so compression output is bit-stable across runs, platforms,
//! and worker counts — and byte-identical to the original boxed-slice index,
//! kept in [`reference`] as the executable specification.
//!
//! A [`CandidateIndex`] is immutable once built and can be shared across
//! runs: the sweep engine builds one index at the largest entry length and
//! every sweep point reuses it (cloning only the dense position lists)
//! instead of re-mining the program per point.

use std::collections::BinaryHeap;

use crate::dict::Dictionary;
use crate::error::CompressError;
use crate::intern::{hash_extend, hash_seed, SeqId, SeqInterner};
use crate::model::{Cell, ProgramModel};
use crate::telemetry;

#[path = "greedy_reference.rs"]
pub mod reference;

/// Cost model for the savings function, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Size of an uncompressed instruction in the compressed stream
    /// (32, or 36 under the nibble scheme's escape).
    pub insn_bits: u32,
    /// (Estimated) size of one codeword.
    pub codeword_bits: u32,
    /// Storage cost of one dictionary word (32).
    pub dict_word_bits: u32,
    /// Fixed per-entry dictionary overhead in bits (0 for the paper's
    /// schemes; 32 for Liao's software mini-subroutines, whose stored
    /// sequence carries a trailing `blr`).
    pub dict_entry_fixed_bits: u32,
}

impl CostModel {
    /// Savings in bits from replacing `n` non-overlapping occurrences of a
    /// sequence of `len` instructions: stream savings minus dictionary
    /// storage.
    pub fn savings_bits(&self, len: usize, n: usize) -> i64 {
        let per = self.insn_bits as i64 * len as i64 - self.codeword_bits as i64;
        n as i64 * per - self.dict_word_bits as i64 * len as i64 - self.dict_entry_fixed_bits as i64
    }
}

/// Limits for one greedy run.
#[derive(Debug, Clone, Copy)]
pub struct GreedyParams {
    /// Maximum instructions per dictionary entry.
    pub max_entry_len: usize,
    /// Maximum dictionary entries.
    pub max_codewords: usize,
    /// Savings cost model.
    pub cost: CostModel,
}

/// A set of banned candidate *sequences* (matched by instruction content).
/// Banned sequences are excluded at heap seeding, so a run with bans is a
/// greedy run over the remaining candidate universe — the refinement
/// selector's probe: ban a marginal accepted entry, re-select, and keep the
/// result only if the exact layout cost improves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BanSet {
    /// Banned sequences, sorted for binary-search membership tests.
    seqs: Vec<Vec<u32>>,
}

impl BanSet {
    /// Creates an empty ban set.
    pub fn new() -> BanSet {
        BanSet::default()
    }

    /// Number of banned sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Returns `true` when nothing is banned.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Bans a sequence (idempotent).
    pub fn insert(&mut self, seq: Vec<u32>) {
        if let Err(at) = self.seqs.binary_search(&seq) {
            self.seqs.insert(at, seq);
        }
    }

    /// Whether the sequence is banned.
    pub fn contains(&self, seq: &[u32]) -> bool {
        self.seqs.binary_search_by(|s| s.as_slice().cmp(seq)).is_ok()
    }
}

/// One accepted dictionary entry, in acceptance order — the "pick log".
///
/// Because the greedy choice at step *k* does not depend on the dictionary
/// size cap, the state after *k* picks equals a full run capped at *k*
/// codewords; sweeps over dictionary size (the paper's Fig 5) read this log
/// instead of recompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickRecord {
    /// Dictionary entry index created by this pick.
    pub entry: u32,
    /// Instructions in the entry.
    pub len: usize,
    /// Occurrences replaced.
    pub replaced: usize,
    /// Savings in bits under the selection cost model.
    pub savings_bits: i64,
}

/// Which matchfinder backs the greedy selector. Output is byte-identical
/// either way; only the cost differs (the `matchfinder_equivalence` suite
/// pins the identity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatchfinderKind {
    /// The interned-sequence index (this module): arena interner, dense
    /// `SeqId` occurrence lists, lazy liveness. The production path.
    #[default]
    Interned,
    /// The original `Box<[u32]>`-keyed index ([`reference`]), kept as the
    /// executable specification and speed baseline.
    Reference,
}

/// Position of a window: (block index, cell index).
type Pos = (u32, u32);

/// Per-candidate occurrence lists packed into one flat arena (CSR layout):
/// `spans[id]` brackets candidate `id`'s live positions in `flat`, in
/// (block, cell) order. Compaction shrinks a span in place, so the
/// selection hot path never allocates and cloning the lists for a shared-
/// index run is two flat memcpys instead of one heap allocation per
/// candidate.
#[derive(Debug, Clone, Default)]
pub(crate) struct OccLists {
    spans: Vec<(u32, u32)>,
    flat: Vec<Pos>,
}

impl OccLists {
    /// Builds the arena from mined `(candidate, position)` pairs by
    /// counting-sort scatter; within each candidate, positions keep their
    /// order of appearance in `pairs`.
    fn from_pairs(candidates: usize, pairs: &[(SeqId, Pos)]) -> OccLists {
        let mut counts = vec![0u32; candidates];
        for &(id, _) in pairs {
            counts[id as usize] += 1;
        }
        let mut spans = Vec::with_capacity(candidates);
        let mut acc = 0u32;
        for &c in &counts {
            spans.push((acc, acc));
            acc += c;
        }
        let mut flat = vec![(0u32, 0u32); pairs.len()];
        for &(id, pos) in pairs {
            let end = &mut spans[id as usize].1;
            flat[*end as usize] = pos;
            *end += 1;
        }
        OccLists { spans, flat }
    }

    /// The live positions of candidate `id`.
    fn list(&self, id: SeqId) -> &[Pos] {
        let (s, e) = self.spans[id as usize];
        &self.flat[s as usize..e as usize]
    }

    /// In-place `retain` over one candidate's span; returns how many
    /// positions were dropped. Each dead position is examined exactly once
    /// across a run.
    fn compact(&mut self, id: SeqId, mut keep: impl FnMut(Pos) -> bool) -> usize {
        let (s, e) = self.spans[id as usize];
        let mut w = s as usize;
        for r in s as usize..e as usize {
            let pos = self.flat[r];
            if keep(pos) {
                self.flat[w] = pos;
                w += 1;
            }
        }
        self.spans[id as usize].1 = w as u32;
        e as usize - w
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapItem {
    savings: i64,
    /// Lexicographic rank of the candidate's sequence content — carries the
    /// reference tie-break (greater sequence first) without touching words.
    lex: u32,
    id: SeqId,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by savings; deterministic lexicographic tie-break.
        self.savings.cmp(&other.savings).then_with(|| self.lex.cmp(&other.lex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The immutable product of window mining: every candidate sequence of the
/// program interned to a dense id, with its occurrence positions and
/// content-lexicographic rank. Build once, run greedy selection against it
/// any number of times (`[run_greedy_with]`) — each run clones only the
/// position lists.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    interner: SeqInterner,
    /// Initial window positions per candidate, sorted by (block, cell).
    occ: OccLists,
    /// The window length cap the index was mined with. Runs may use any
    /// `max_entry_len` ≤ this.
    max_entry_len: usize,
}

impl CandidateIndex {
    /// Mines every candidate window of `model` (runs of compressible cells,
    /// windows up to `max_entry_len` instructions).
    ///
    /// Mining is parallel over disjoint block ranges; per-chunk interners
    /// are merged in block order, so the index is deterministic for a given
    /// model regardless of the worker count.
    ///
    /// # Errors
    ///
    /// [`CompressError::ProgramTooLarge`] if the program exceeds the
    /// matchfinder's 32-bit position space.
    pub fn build(model: &ProgramModel, max_len: usize) -> Result<CandidateIndex, CompressError> {
        let largest_block = model.blocks.iter().map(|b| b.cells.len()).max().unwrap_or(0);
        let total_cells: usize = model.blocks.iter().map(|b| b.cells.len()).sum();
        check_position_space(model.blocks.len(), largest_block, total_cells, max_len)?;

        // One chunk per worker quantum; a single-threaded run mines the
        // whole program in one pass and skips the merge entirely (the
        // merged result is partition-invariant, so this is unobservable).
        let jobs = crate::parallel::jobs();
        let parts = if jobs <= 1 { 1 } else { jobs.saturating_mul(4) };
        let ranges = crate::parallel::chunk_ranges(model.blocks.len(), parts);
        let mut chunks =
            crate::parallel::par_map(ranges, |_, (b0, b1)| mine_range(model, b0, b1, max_len));

        let (interner, pairs) = if chunks.len() == 1 {
            chunks.pop().expect("one chunk")
        } else {
            // Merge chunk interners in block order: re-intern each distinct
            // local sequence once and remap that chunk's pairs through the
            // global ids. Positions stay sorted per candidate because
            // chunks cover ascending block ranges in mining order.
            let seqs: usize = chunks.iter().map(|(li, _)| li.len()).sum();
            let windows: usize = chunks.iter().map(|(_, lp)| lp.len()).sum();
            let mut interner = SeqInterner::with_capacity(seqs, 2);
            let mut pairs: Vec<(SeqId, Pos)> = Vec::with_capacity(windows);
            for (li, lpairs) in chunks {
                let remap: Vec<SeqId> = (0..li.len() as SeqId)
                    .map(|lid| interner.intern(li.words(lid), li.hash(lid)))
                    .collect();
                pairs.extend(lpairs.into_iter().map(|(lid, pos)| (remap[lid as usize], pos)));
            }
            (interner, pairs)
        };
        if pairs.len() > u32::MAX as usize {
            // The flat occurrence arena is u32-indexed too.
            return Err(CompressError::ProgramTooLarge {
                blocks: model.blocks.len(),
                largest_block,
            });
        }

        telemetry::GREEDY_CANDIDATES_SEEDED.add(interner.len() as u64);
        telemetry::GREEDY_INTERNED_SEQS.add(interner.len() as u64);
        telemetry::GREEDY_INTERNED_WORDS.add(interner.arena_words() as u64);
        telemetry::GREEDY_WINDOW_ADDS.add(pairs.len() as u64);

        let occ = OccLists::from_pairs(interner.len(), &pairs);

        Ok(CandidateIndex { interner, occ, max_entry_len: max_len })
    }

    /// Number of distinct candidate sequences.
    pub fn candidates(&self) -> usize {
        self.interner.len()
    }

    /// The window length cap this index was mined with.
    pub fn max_entry_len(&self) -> usize {
        self.max_entry_len
    }
}

/// Runs greedy selection over `model`, filling `dict` and rewriting the
/// model's blocks in place. Returns the pick log.
///
/// # Errors
///
/// [`CompressError::ProgramTooLarge`] if the program exceeds the
/// matchfinder's 32-bit position space.
pub fn run_greedy(
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
) -> Result<Vec<PickRecord>, CompressError> {
    let mut index = CandidateIndex::build(model, params.max_entry_len)?;
    // The index is owned and dies with this call, so the position lists
    // move into the selector instead of being cloned entry by entry.
    let occ = std::mem::take(&mut index.occ);
    Ok(run_core(&index, occ, model, dict, params, &BanSet::default()))
}

/// Runs greedy selection against a prebuilt (shared) [`CandidateIndex`],
/// cloning only its flat position arena (two memcpys). The index must have
/// been mined
/// from a model with identical cell content, with a window cap ≥
/// `params.max_entry_len`; candidates longer than the run's cap are
/// filtered at heap seeding, so the result is byte-identical to a fresh
/// build at the smaller cap.
///
/// # Panics
///
/// Panics if `params.max_entry_len > index.max_entry_len()`.
pub fn run_greedy_with(
    index: &CandidateIndex,
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
) -> Vec<PickRecord> {
    assert!(
        params.max_entry_len <= index.max_entry_len,
        "index mined at max_entry_len {} cannot serve a run at {}",
        index.max_entry_len,
        params.max_entry_len
    );
    telemetry::GREEDY_INDEX_REUSES.inc();
    run_core(index, index.occ.clone(), model, dict, params, &BanSet::default())
}

/// [`run_greedy_with`] minus any candidate whose sequence content is in
/// `bans`. Banned candidates are excluded at heap seeding, so the run is an
/// ordinary greedy selection over the remaining universe — the refinement
/// selector's probe primitive.
///
/// # Panics
///
/// Panics if `params.max_entry_len > index.max_entry_len()`.
pub fn run_greedy_banned(
    index: &CandidateIndex,
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
    bans: &BanSet,
) -> Vec<PickRecord> {
    assert!(
        params.max_entry_len <= index.max_entry_len,
        "index mined at max_entry_len {} cannot serve a run at {}",
        index.max_entry_len,
        params.max_entry_len
    );
    telemetry::GREEDY_INDEX_REUSES.inc();
    run_core(index, index.occ.clone(), model, dict, params, bans)
}

fn run_core(
    index: &CandidateIndex,
    mut occ: OccLists,
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
    bans: &BanSet,
) -> Vec<PickRecord> {
    let interner = &index.interner;
    // Exact seeding: before any replacement every indexed position is
    // live, so one sequential counting pass yields each candidate's true
    // initial savings. Candidates that start non-positive can never become
    // acceptable (counts only shrink), so they never enter the heap — the
    // tail of hopeless candidates is discarded here, in cache order,
    // instead of one heap pop + recount at a time.
    let mut seeds: Vec<HeapItem> = (0..interner.len() as SeqId)
        .filter_map(|id| {
            let len = interner.seq_len(id);
            if len > params.max_entry_len {
                return None;
            }
            if !bans.is_empty() && bans.contains(interner.words(id)) {
                return None;
            }
            let n = effective_count_sorted(occ.list(id), len);
            let savings = params.cost.savings_bits(len, n);
            (savings > 0).then_some(HeapItem { savings, lex: 0, id })
        })
        .collect();
    // Content-lexicographic ranks among the seeds only: tie-breaking never
    // compares a heap member against a candidate that was filtered out, and
    // the relative order of a subset equals its order under global ranks —
    // so ranking the (much smaller) positive set reproduces the reference
    // index's `Box<[u32]>` comparison without sorting the whole universe.
    // Each entry carries its first two words packed into a u64 so almost
    // every comparison resolves inside the sorted array; the packed order
    // never contradicts slice order (a missing second word packs as 0, and
    // any packed tie falls through to the full compare).
    let mut order: Vec<(u64, u32)> = seeds
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let words = interner.words(s.id);
            let key = (words[0] as u64) << 32 | words.get(1).copied().unwrap_or(0) as u64;
            (key, i as u32)
        })
        .collect();
    order.sort_unstable_by(|a, b| {
        a.0.cmp(&b.0).then_with(|| {
            interner.words(seeds[a.1 as usize].id).cmp(interner.words(seeds[b.1 as usize].id))
        })
    });
    for (rank, &(_, i)) in order.iter().enumerate() {
        seeds[i as usize].lex = rank as u32;
    }
    drop(order);
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::from(seeds);
    let mut picks = Vec::new();

    while dict.len() < params.max_codewords {
        let Some(top) = heap.pop() else { break };
        telemetry::GREEDY_HEAP_POPS.inc();
        let len = interner.seq_len(top.id);
        // Lazy liveness: drop positions whose window lost a cell to an
        // accepted replacement, then recount.
        let dropped = occ.compact(top.id, |(b, p)| {
            let cells = &model.blocks[b as usize].cells;
            cells[p as usize..p as usize + len].iter().all(|c| c.compressible_word().is_some())
        });
        telemetry::GREEDY_WINDOW_REMOVES.add(dropped as u64);
        let positions = occ.list(top.id);
        let n = effective_count_sorted(positions, len);
        let savings = params.cost.savings_bits(len, n);
        debug_assert!(savings <= top.savings, "counts only decrease");
        if savings <= 0 {
            continue; // candidate dead; others may still be live
        }
        if savings < top.savings {
            telemetry::GREEDY_STALE_REINSERTS.inc();
            heap.push(HeapItem { savings, ..top });
            continue;
        }

        // Accept: replace every non-overlapping occurrence left to right.
        // No index surgery — occurrences overlapping a replacement simply
        // stop being live and are compacted away on their next recount.
        let selected = select_positions_sorted(positions, len);
        debug_assert_eq!(selected.len(), n);
        let entry = dict.push(interner.words(top.id), n);
        for &(b, p) in &selected {
            apply_replacement(model, b as usize, p as usize, entry, len);
        }
        telemetry::GREEDY_PICKS_ACCEPTED.inc();
        telemetry::GREEDY_REPLACEMENTS.add(n as u64);
        picks.push(PickRecord { entry, len, replaced: n, savings_bits: savings });
    }
    picks
}

/// Rejects programs whose (block, cell) positions would not fit the index's
/// packed 32-bit coordinates. `max_len` headroom on the cell bound keeps
/// the non-overlap scan's `p + len` arithmetic from wrapping.
///
/// The `total_cells` bound covers the interner: arena offsets and dense ids
/// are `u32`, and in the worst case every window is a distinct sequence,
/// appending `1 + 2 + … + max_len` words per start cell. Rejecting up front
/// makes [`CompressError::ProgramTooLarge`] the only failure mode — mining
/// can never silently truncate an offset.
fn check_position_space(
    blocks: usize,
    largest_block: usize,
    total_cells: usize,
    max_len: usize,
) -> Result<(), CompressError> {
    if blocks > u32::MAX as usize || largest_block > u32::MAX as usize - max_len {
        return Err(CompressError::ProgramTooLarge { blocks, largest_block });
    }
    let arena_worst = total_cells.saturating_mul(max_len * (max_len + 1) / 2);
    if arena_worst > u32::MAX as usize {
        return Err(CompressError::ProgramTooLarge { blocks, largest_block });
    }
    Ok(())
}

/// Rewrites the window at (`b`, `p`) into codeword `entry` covering `len`
/// instructions: one [`Cell::Code`] plus `len − 1` tombstones.
fn apply_replacement(model: &mut ProgramModel, b: usize, p: usize, entry: u32, len: usize) {
    let block = &mut model.blocks[b];
    let orig = match block.cells[p] {
        Cell::Insn { orig, .. } => orig,
        _ => unreachable!("replacement target must be an instruction"),
    };
    block.cells[p] = Cell::Code { entry, orig, len };
    for cell in &mut block.cells[p + 1..p + len] {
        *cell = Cell::Dead;
    }
}

/// Greedy left-to-right non-overlapping occurrence count over positions
/// sorted by (block, cell).
pub(crate) fn effective_count_sorted(positions: &[Pos], len: usize) -> usize {
    if len == 1 {
        // Single-cell windows occupy distinct cells; none can overlap.
        return positions.len();
    }
    let mut n = 0;
    let mut last: Option<(u32, u32)> = None; // (block, end)
    for &(b, p) in positions {
        if let Some((lb, end)) = last {
            if lb == b && p < end {
                continue;
            }
        }
        n += 1;
        last = Some((b, p + len as u32));
    }
    n
}

/// The positions [`effective_count_sorted`] counted.
pub(crate) fn select_positions_sorted(positions: &[Pos], len: usize) -> Vec<Pos> {
    if len == 1 {
        return positions.to_vec();
    }
    let mut out = Vec::new();
    let mut last: Option<(u32, u32)> = None;
    for &(b, p) in positions {
        if let Some((lb, end)) = last {
            if lb == b && p < end {
                continue;
            }
        }
        out.push((b, p));
        last = Some((b, p + len as u32));
    }
    out
}

/// Mines candidate windows for the block range `b0..b1` into a fresh local
/// interner + a flat `(candidate, position)` pair list. Run on worker
/// threads by [`CandidateIndex::build`]. The run's words are staged in one
/// reusable scratch buffer so every window is a borrowed subslice — no
/// per-window allocation.
fn mine_range(
    model: &ProgramModel,
    b0: usize,
    b1: usize,
    max_len: usize,
) -> (SeqInterner, Vec<(SeqId, Pos)>) {
    // Upper-bound the window count so neither the interner table nor the
    // pair list rehashes/reallocates mid-mine.
    let cells: usize = model.blocks[b0..b1].iter().map(|b| b.cells.len()).sum();
    let windows = cells.saturating_mul(max_len);
    let mut interner = SeqInterner::with_capacity(windows, 2);
    let mut pairs: Vec<(SeqId, Pos)> = Vec::with_capacity(windows);
    let mut scratch: Vec<u32> = Vec::new();
    for (b, block) in model.blocks[b0..b1].iter().enumerate() {
        for (start, end) in runs(&block.cells) {
            scratch.clear();
            scratch.extend(
                block.cells[start..end].iter().map(|c| c.compressible_word().expect("run cell")),
            );
            for s in 0..scratch.len() {
                let limit = max_len.min(scratch.len() - s);
                let mut h = hash_seed();
                for l in 1..=limit {
                    h = hash_extend(h, scratch[s + l - 1]);
                    let id = interner.intern(&scratch[s..s + l], h);
                    pairs.push((id, ((b0 + b) as u32, (start + s) as u32)));
                }
            }
        }
    }
    (interner, pairs)
}

/// Maximal runs of compressible instruction cells.
pub(crate) fn runs(cells: &[Cell]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in cells.iter().enumerate() {
        if c.compressible_word().is_some() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s, i));
        }
    }
    if let Some(s) = start {
        out.push((s, cells.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_obj::ObjectModule;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn w(si: i16) -> u32 {
        encode(&Insn::Addi { rt: R3, ra: R3, si })
    }

    fn model_of(words: Vec<u32>) -> ProgramModel {
        let mut m = ObjectModule::new("t");
        m.code = words;
        ProgramModel::build(&m)
    }

    fn baseline_params(max_len: usize, max_cw: usize) -> GreedyParams {
        GreedyParams {
            max_entry_len: max_len,
            max_codewords: max_cw,
            cost: CostModel {
                insn_bits: 32,
                codeword_bits: 16,
                dict_word_bits: 32,
                dict_entry_fixed_bits: 0,
            },
        }
    }

    #[test]
    fn picks_most_saving_sequence_first() {
        // Pattern [1,2] appears 8 times, singleton 9 appears 3 times.
        let mut words = Vec::new();
        for _ in 0..8 {
            words.push(w(1));
            words.push(w(2));
        }
        for _ in 0..3 {
            words.push(w(9));
        }
        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100)).unwrap();
        assert!(!picks.is_empty());
        // Best first pick is the pair (or a longer repetition of it).
        assert!(picks[0].savings_bits >= picks.last().unwrap().savings_bits);
        let first = dict.entry(picks[0].entry);
        assert!(first.words.contains(&w(1)) || first.words.contains(&w(2)));
        // Everything replaceable got replaced: remaining instructions are
        // unique or unprofitable.
        assert!(model.codewords() > 0);
    }

    #[test]
    fn respects_max_codewords() {
        let mut words = Vec::new();
        for i in 0..50 {
            for _ in 0..4 {
                words.push(w(i));
            }
        }
        let mut model = model_of(words.clone());
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(1, 5)).unwrap();
        assert_eq!(dict.len(), 5);

        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(1, 1000)).unwrap();
        assert!(dict.len() > 5);
    }

    #[test]
    fn no_negative_savings_accepted() {
        // All-unique program: nothing is worth a dictionary entry.
        let words: Vec<u32> = (0..40).map(w).collect();
        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100)).unwrap();
        assert!(picks.is_empty(), "unique code must not be compressed: {picks:?}");
        assert_eq!(model.codewords(), 0);
    }

    #[test]
    fn overlapping_occurrences_counted_non_overlapping() {
        // "aaaa": sequence [a,a] has raw occurrences at 0,1,2 but only 2
        // non-overlapping.
        let positions: Vec<Pos> = vec![(0, 0), (0, 1), (0, 2)];
        assert_eq!(effective_count_sorted(&positions, 2), 2);
        assert_eq!(select_positions_sorted(&positions, 2), vec![(0, 0), (0, 2)]);
    }

    #[test]
    fn prefix_stability() {
        // The pick sequence with a large cap starts with the pick sequence
        // of a small cap (Fig 5's sweep relies on this).
        let mut words = Vec::new();
        for i in 0..20 {
            for _ in 0..(20 - i) {
                words.push(w(i));
                words.push(w(100 + i));
            }
        }
        let run = |cap: usize| {
            let mut model = model_of(words.clone());
            let mut dict = Dictionary::new();
            run_greedy(&mut model, &mut dict, baseline_params(4, cap)).unwrap()
        };
        let small = run(3);
        let large = run(12);
        assert_eq!(small.len(), 3);
        assert_eq!(&large[..3], &small[..]);
    }

    #[test]
    fn greedy_is_deterministic() {
        let mut words = Vec::new();
        for i in 0..30 {
            for _ in 0..3 {
                words.push(w(i % 7));
                words.push(w(i % 5));
            }
        }
        let run = || {
            let mut model = model_of(words.clone());
            let mut dict = Dictionary::new();
            let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100)).unwrap();
            (picks, dict)
        };
        let (p1, d1) = run();
        let (p2, d2) = run();
        assert_eq!(p1, p2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn branches_stay_uncompressed() {
        let mut a = codense_ppc::asm::Assembler::new();
        for _ in 0..4 {
            a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
            a.label_pos("x"); // no-op lookup to silence lints
            a.emit(Insn::Addi { rt: R4, ra: R4, si: 1 });
        }
        a.label("end");
        a.b("end");
        let mut m = ObjectModule::new("t");
        m.code = a.finish().unwrap();
        let mut model = ProgramModel::build(&m);
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(4, 100)).unwrap();
        for e in dict.entries() {
            for &word in &e.words {
                assert!(codense_ppc::branch::rel_branch_info(word).is_none());
            }
        }
    }

    #[test]
    fn matches_reference_on_small_program() {
        let mut words = Vec::new();
        for i in 0..24 {
            for _ in 0..3 {
                words.push(w(i % 6));
                words.push(w(i % 4 + 50));
            }
        }
        let mut m1 = model_of(words.clone());
        let mut d1 = Dictionary::new();
        let p1 = run_greedy(&mut m1, &mut d1, baseline_params(4, 100)).unwrap();
        let mut m2 = model_of(words);
        let mut d2 = Dictionary::new();
        let p2 = reference::run_greedy(&mut m2, &mut d2, baseline_params(4, 100));
        assert_eq!(p1, p2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn shared_index_matches_fresh_build_at_smaller_cap() {
        let mut words = Vec::new();
        for i in 0..16 {
            for _ in 0..4 {
                words.push(w(i % 5));
                words.push(w(i % 3 + 30));
                words.push(w(7));
            }
        }
        // Index mined at 8; runs at caps 1, 2, 4 must match fresh builds.
        let model0 = model_of(words.clone());
        let index = CandidateIndex::build(&model0, 8).unwrap();
        for cap in [1usize, 2, 4, 8] {
            let mut shared_model = model0.clone();
            let mut shared_dict = Dictionary::new();
            let shared = run_greedy_with(
                &index,
                &mut shared_model,
                &mut shared_dict,
                baseline_params(cap, 64),
            );
            let mut fresh_model = model_of(words.clone());
            let mut fresh_dict = Dictionary::new();
            let fresh =
                run_greedy(&mut fresh_model, &mut fresh_dict, baseline_params(cap, 64)).unwrap();
            assert_eq!(shared, fresh, "cap {cap}");
            assert_eq!(shared_dict, fresh_dict, "cap {cap}");
        }
    }

    #[test]
    fn position_space_guard() {
        // The checked conversion surfaces as a typed error instead of a
        // silent `as u32` truncation (the SPEC-scale roadmap item).
        assert!(check_position_space(1 << 20, 1 << 20, 1 << 22, 8).is_ok());
        assert!(check_position_space(u32::MAX as usize, 0, 0, 8).is_ok());
        assert!(check_position_space(u32::MAX as usize - 8, u32::MAX as usize - 8, 0, 8).is_ok());
        let err = check_position_space(u32::MAX as usize + 1, 0, 0, 8).unwrap_err();
        assert!(
            matches!(err, CompressError::ProgramTooLarge { blocks, .. } if blocks > u32::MAX as usize)
        );
        let err = check_position_space(1, u32::MAX as usize - 7, 0, 8).unwrap_err();
        assert!(matches!(err, CompressError::ProgramTooLarge { largest_block, .. }
            if largest_block == u32::MAX as usize - 7));
    }

    #[test]
    fn arena_capacity_guard() {
        // The interner's arena offsets are u32; the worst case appends
        // 1+2+…+max_len words per start cell. The boundary sits exactly at
        // u32::MAX worst-case words.
        let tri = 8 * 9 / 2;
        let fits = u32::MAX as usize / tri;
        assert!(check_position_space(1, fits, fits, 8).is_ok());
        let err = check_position_space(1, fits + 1, fits + 1, 8).unwrap_err();
        assert!(matches!(err, CompressError::ProgramTooLarge { .. }));
        // A SPEC-scale corpus (millions of cells) stays far inside the
        // bound: the guard only rejects programs mining could corrupt.
        assert!(check_position_space(1 << 12, 1 << 12, 16 << 20, 8).is_ok());
        // max_len 1 degenerates to one word per cell.
        assert!(check_position_space(1, u32::MAX as usize - 1, u32::MAX as usize, 1).is_ok());
        let err =
            check_position_space(1, u32::MAX as usize - 1, u32::MAX as usize + 1, 1).unwrap_err();
        assert!(matches!(err, CompressError::ProgramTooLarge { .. }));
    }
}
