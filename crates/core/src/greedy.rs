//! The greedy dictionary-selection pass (§3.1.1 of the paper) with an
//! incremental occurrence index.
//!
//! Choosing the optimum dictionary is NP-complete [Storer77], so — like the
//! paper — "on every iteration of the algorithm, we examine each potential
//! dictionary entry and find the one that results in the largest immediate
//! savings", repeating until the codeword space is exhausted or no candidate
//! saves anything.
//!
//! The naive algorithm rescans the whole program every iteration. This
//! implementation is equivalent but incremental:
//!
//! * an **occurrence index** maps every candidate sequence (any run of
//!   compressible instructions inside one basic block, up to the entry-length
//!   cap) to the ordered set of its positions, updated locally when a
//!   replacement rewrites a block;
//! * a **lazy max-heap** holds an upper bound of each candidate's savings.
//!   Counts only ever decrease, so a popped entry whose recomputed savings
//!   still equals its key is the true maximum; stale entries are re-inserted
//!   with their corrected value.
//!
//! Tie-breaking is deterministic (savings, then lexicographic sequence), so
//! compression output is bit-stable across runs and platforms.

use std::collections::{BTreeSet, BinaryHeap, HashMap};

use crate::dict::Dictionary;
use crate::model::{Cell, ProgramModel};
use crate::telemetry;

/// Cost model for the savings function, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Size of an uncompressed instruction in the compressed stream
    /// (32, or 36 under the nibble scheme's escape).
    pub insn_bits: u32,
    /// (Estimated) size of one codeword.
    pub codeword_bits: u32,
    /// Storage cost of one dictionary word (32).
    pub dict_word_bits: u32,
    /// Fixed per-entry dictionary overhead in bits (0 for the paper's
    /// schemes; 32 for Liao's software mini-subroutines, whose stored
    /// sequence carries a trailing `blr`).
    pub dict_entry_fixed_bits: u32,
}

impl CostModel {
    /// Savings in bits from replacing `n` non-overlapping occurrences of a
    /// sequence of `len` instructions: stream savings minus dictionary
    /// storage.
    pub fn savings_bits(&self, len: usize, n: usize) -> i64 {
        let per = self.insn_bits as i64 * len as i64 - self.codeword_bits as i64;
        n as i64 * per - self.dict_word_bits as i64 * len as i64 - self.dict_entry_fixed_bits as i64
    }
}

/// Limits for one greedy run.
#[derive(Debug, Clone, Copy)]
pub struct GreedyParams {
    /// Maximum instructions per dictionary entry.
    pub max_entry_len: usize,
    /// Maximum dictionary entries.
    pub max_codewords: usize,
    /// Savings cost model.
    pub cost: CostModel,
}

/// One accepted dictionary entry, in acceptance order — the "pick log".
///
/// Because the greedy choice at step *k* does not depend on the dictionary
/// size cap, the state after *k* picks equals a full run capped at *k*
/// codewords; sweeps over dictionary size (the paper's Fig 5) read this log
/// instead of recompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickRecord {
    /// Dictionary entry index created by this pick.
    pub entry: u32,
    /// Instructions in the entry.
    pub len: usize,
    /// Occurrences replaced.
    pub replaced: usize,
    /// Savings in bits under the selection cost model.
    pub savings_bits: i64,
}

type Seq = Box<[u32]>;
/// Position of a window: (block index, cell index).
type Pos = (u32, u32);

#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    savings: i64,
    seq: Seq,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by savings; deterministic lexicographic tie-break.
        self.savings.cmp(&other.savings).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs greedy selection over `model`, filling `dict` and rewriting the
/// model's blocks in place. Returns the pick log.
pub fn run_greedy(
    model: &mut ProgramModel,
    dict: &mut Dictionary,
    params: GreedyParams,
) -> Vec<PickRecord> {
    let mut index = Index::build(model, params.max_entry_len);
    let mut picks = Vec::new();

    while dict.len() < params.max_codewords {
        let Some(top) = index.heap.pop() else { break };
        telemetry::GREEDY_HEAP_POPS.inc();
        let len = top.seq.len();
        let Some(set) = index.occ.get(&top.seq) else { continue };
        let n = effective_count(set, len);
        let savings = params.cost.savings_bits(len, n);
        debug_assert!(savings <= top.savings, "counts only decrease");
        if savings <= 0 {
            continue; // candidate dead; others may still be live
        }
        if savings < top.savings {
            telemetry::GREEDY_STALE_REINSERTS.inc();
            index.heap.push(HeapItem { savings, seq: top.seq });
            continue;
        }

        // Accept: replace every non-overlapping occurrence left to right.
        let positions = select_positions(set, len);
        debug_assert_eq!(positions.len(), n);
        let entry = dict.push(top.seq.to_vec(), n);
        for &(b, p) in &positions {
            index.replace(model, b as usize, p as usize, entry, len, params.max_entry_len);
        }
        telemetry::GREEDY_PICKS_ACCEPTED.inc();
        telemetry::GREEDY_REPLACEMENTS.add(n as u64);
        picks.push(PickRecord { entry, len, replaced: n, savings_bits: savings });
    }
    picks
}

/// Greedy left-to-right non-overlapping occurrence count.
fn effective_count(set: &BTreeSet<Pos>, len: usize) -> usize {
    let mut n = 0;
    let mut last: Option<(u32, u32)> = None; // (block, end)
    for &(b, p) in set {
        if let Some((lb, end)) = last {
            if lb == b && p < end {
                continue;
            }
        }
        n += 1;
        last = Some((b, p + len as u32));
    }
    n
}

/// The positions [`effective_count`] counted.
fn select_positions(set: &BTreeSet<Pos>, len: usize) -> Vec<Pos> {
    let mut out = Vec::new();
    let mut last: Option<(u32, u32)> = None;
    for &(b, p) in set {
        if let Some((lb, end)) = last {
            if lb == b && p < end {
                continue;
            }
        }
        out.push((b, p));
        last = Some((b, p + len as u32));
    }
    out
}

struct Index {
    occ: HashMap<Seq, BTreeSet<Pos>>,
    heap: BinaryHeap<HeapItem>,
}

impl Index {
    fn build(model: &ProgramModel, max_len: usize) -> Index {
        // Window mining is embarrassingly parallel over disjoint block
        // ranges; merging unions per-chunk maps. Positions from different
        // chunks never collide (they carry the block index), so the merged
        // map — and everything downstream — is bit-identical to a
        // sequential scan regardless of the worker count.
        let ranges = crate::parallel::chunk_ranges(
            model.blocks.len(),
            crate::parallel::jobs().saturating_mul(4),
        );
        let chunks =
            crate::parallel::par_map(ranges, |_, (b0, b1)| build_occ_range(model, b0, b1, max_len));
        let mut occ: HashMap<Seq, BTreeSet<Pos>> = HashMap::new();
        for chunk in chunks {
            if occ.is_empty() {
                occ = chunk;
                continue;
            }
            for (seq, set) in chunk {
                occ.entry(seq).or_default().extend(set);
            }
        }
        telemetry::GREEDY_CANDIDATES_SEEDED.add(occ.len() as u64);
        // Heap seeding is the only place HashMap iteration order is
        // observed; the heap's total order makes pops deterministic anyway.
        let heap = occ
            .iter()
            .map(|(seq, set)| HeapItem {
                savings: upper_bound_savings(seq, set.len()),
                seq: seq.clone(),
            })
            .collect();
        Index { occ, heap }
    }

    /// Replaces the window at (`b`, `p`) with codeword `entry` of `len`
    /// instructions, updating the occurrence index locally.
    fn replace(
        &mut self,
        model: &mut ProgramModel,
        b: usize,
        p: usize,
        entry: u32,
        len: usize,
        max_len: usize,
    ) {
        let block = &mut model.blocks[b];
        // The run containing p.
        let (rs, re) = run_around(&block.cells, p);
        debug_assert!(p + len <= re);
        remove_windows(&mut self.occ, &block.cells, b as u32, rs, re, max_len);
        let orig = match block.cells[p] {
            Cell::Insn { orig, .. } => orig,
            _ => unreachable!("replacement target must be an instruction"),
        };
        block.cells[p] = Cell::Code { entry, orig, len };
        for cell in &mut block.cells[p + 1..p + len] {
            *cell = Cell::Dead;
        }
        add_windows(&mut self.occ, &block.cells, b as u32, rs, p, max_len);
        add_windows(&mut self.occ, &block.cells, b as u32, p + len, re, max_len);
    }
}

/// Initial savings upper bound for a fresh candidate. Seeding only needs a
/// value ≥ the real savings under any cost model; a count-proportional bound
/// keeps early pops useful (few lazy re-insertions).
/// Mines candidate windows for the block range `b0..b1` into a fresh map.
/// Run on worker threads by [`Index::build`].
fn build_occ_range(
    model: &ProgramModel,
    b0: usize,
    b1: usize,
    max_len: usize,
) -> HashMap<Seq, BTreeSet<Pos>> {
    let mut occ: HashMap<Seq, BTreeSet<Pos>> = HashMap::new();
    for (b, block) in model.blocks[b0..b1].iter().enumerate() {
        for (start, end) in runs(&block.cells) {
            add_windows(&mut occ, &block.cells, (b0 + b) as u32, start, end, max_len);
        }
    }
    occ
}

fn upper_bound_savings(seq: &[u32], raw_count: usize) -> i64 {
    // 36 bits/insn is the largest stream cost in any scheme; codeword ≥ 4
    // bits; this dominates every cost model's savings.
    raw_count as i64 * (36 * seq.len() as i64 - 4)
}

/// Maximal runs of compressible instruction cells.
fn runs(cells: &[Cell]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in cells.iter().enumerate() {
        if c.compressible_word().is_some() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s, i));
        }
    }
    if let Some(s) = start {
        out.push((s, cells.len()));
    }
    out
}

/// The maximal compressible run containing `p`.
fn run_around(cells: &[Cell], p: usize) -> (usize, usize) {
    debug_assert!(cells[p].compressible_word().is_some());
    let mut s = p;
    while s > 0 && cells[s - 1].compressible_word().is_some() {
        s -= 1;
    }
    let mut e = p + 1;
    while e < cells.len() && cells[e].compressible_word().is_some() {
        e += 1;
    }
    (s, e)
}

fn add_windows(
    occ: &mut HashMap<Seq, BTreeSet<Pos>>,
    cells: &[Cell],
    b: u32,
    start: usize,
    end: usize,
    max_len: usize,
) {
    let mut added = 0u64;
    for s in start..end {
        let limit = max_len.min(end - s);
        let mut words = Vec::with_capacity(limit);
        for l in 1..=limit {
            words.push(cells[s + l - 1].compressible_word().expect("run cell"));
            occ.entry(words.clone().into_boxed_slice()).or_default().insert((b, s as u32));
            added += 1;
        }
    }
    telemetry::GREEDY_WINDOW_ADDS.add(added);
}

fn remove_windows(
    occ: &mut HashMap<Seq, BTreeSet<Pos>>,
    cells: &[Cell],
    b: u32,
    start: usize,
    end: usize,
    max_len: usize,
) {
    let mut removed = 0u64;
    for s in start..end {
        let limit = max_len.min(end - s);
        let mut words = Vec::with_capacity(limit);
        for l in 1..=limit {
            words.push(cells[s + l - 1].compressible_word().expect("run cell"));
            let key: Seq = words.clone().into_boxed_slice();
            if let Some(set) = occ.get_mut(&key) {
                set.remove(&(b, s as u32));
                removed += 1;
                if set.is_empty() {
                    occ.remove(&key);
                }
            }
        }
    }
    telemetry::GREEDY_WINDOW_REMOVES.add(removed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_obj::ObjectModule;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn w(si: i16) -> u32 {
        encode(&Insn::Addi { rt: R3, ra: R3, si })
    }

    fn model_of(words: Vec<u32>) -> ProgramModel {
        let mut m = ObjectModule::new("t");
        m.code = words;
        ProgramModel::build(&m)
    }

    fn baseline_params(max_len: usize, max_cw: usize) -> GreedyParams {
        GreedyParams {
            max_entry_len: max_len,
            max_codewords: max_cw,
            cost: CostModel {
                insn_bits: 32,
                codeword_bits: 16,
                dict_word_bits: 32,
                dict_entry_fixed_bits: 0,
            },
        }
    }

    #[test]
    fn picks_most_saving_sequence_first() {
        // Pattern [1,2] appears 8 times, singleton 9 appears 3 times.
        let mut words = Vec::new();
        for _ in 0..8 {
            words.push(w(1));
            words.push(w(2));
        }
        for _ in 0..3 {
            words.push(w(9));
        }
        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100));
        assert!(!picks.is_empty());
        // Best first pick is the pair (or a longer repetition of it).
        assert!(picks[0].savings_bits >= picks.last().unwrap().savings_bits);
        let first = dict.entry(picks[0].entry);
        assert!(first.words.contains(&w(1)) || first.words.contains(&w(2)));
        // Everything replaceable got replaced: remaining instructions are
        // unique or unprofitable.
        assert!(model.codewords() > 0);
    }

    #[test]
    fn respects_max_codewords() {
        let mut words = Vec::new();
        for i in 0..50 {
            for _ in 0..4 {
                words.push(w(i));
            }
        }
        let mut model = model_of(words.clone());
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(1, 5));
        assert_eq!(dict.len(), 5);

        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(1, 1000));
        assert!(dict.len() > 5);
    }

    #[test]
    fn no_negative_savings_accepted() {
        // All-unique program: nothing is worth a dictionary entry.
        let words: Vec<u32> = (0..40).map(w).collect();
        let mut model = model_of(words);
        let mut dict = Dictionary::new();
        let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100));
        assert!(picks.is_empty(), "unique code must not be compressed: {picks:?}");
        assert_eq!(model.codewords(), 0);
    }

    #[test]
    fn overlapping_occurrences_counted_non_overlapping() {
        // "aaaa": sequence [a,a] has raw occurrences at 0,1,2 but only 2
        // non-overlapping.
        let words = vec![w(7); 4];
        let set: BTreeSet<Pos> = [(0, 0), (0, 1), (0, 2)].into_iter().collect();
        assert_eq!(effective_count(&set, 2), 2);
        assert_eq!(select_positions(&set, 2), vec![(0, 0), (0, 2)]);
        drop(words);
    }

    #[test]
    fn prefix_stability() {
        // The pick sequence with a large cap starts with the pick sequence
        // of a small cap (Fig 5's sweep relies on this).
        let mut words = Vec::new();
        for i in 0..20 {
            for _ in 0..(20 - i) {
                words.push(w(i));
                words.push(w(100 + i));
            }
        }
        let run = |cap: usize| {
            let mut model = model_of(words.clone());
            let mut dict = Dictionary::new();
            run_greedy(&mut model, &mut dict, baseline_params(4, cap))
        };
        let small = run(3);
        let large = run(12);
        assert_eq!(small.len(), 3);
        assert_eq!(&large[..3], &small[..]);
    }

    #[test]
    fn greedy_is_deterministic() {
        let mut words = Vec::new();
        for i in 0..30 {
            for _ in 0..3 {
                words.push(w(i % 7));
                words.push(w(i % 5));
            }
        }
        let run = || {
            let mut model = model_of(words.clone());
            let mut dict = Dictionary::new();
            let picks = run_greedy(&mut model, &mut dict, baseline_params(4, 100));
            (picks, dict)
        };
        let (p1, d1) = run();
        let (p2, d2) = run();
        assert_eq!(p1, p2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn branches_stay_uncompressed() {
        let mut a = codense_ppc::asm::Assembler::new();
        for _ in 0..4 {
            a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
            a.label_pos("x"); // no-op lookup to silence lints
            a.emit(Insn::Addi { rt: R4, ra: R4, si: 1 });
        }
        a.label("end");
        a.b("end");
        let mut m = ObjectModule::new("t");
        m.code = a.finish().unwrap();
        let mut model = ProgramModel::build(&m);
        let mut dict = Dictionary::new();
        run_greedy(&mut model, &mut dict, baseline_params(4, 100));
        for e in dict.entries() {
            for &word in &e.words {
                assert!(codense_ppc::branch::rel_branch_info(word).is_none());
            }
        }
    }
}
