//! Static program analyses motivating the compression method: instruction-
//! encoding redundancy (Fig 1), branch-offset field usage (Table 1), and
//! prologue/epilogue weight (Table 3).

use std::collections::HashMap;

use codense_obj::ObjectModule;
use codense_ppc::branch::{offset_expressible, rel_branch_info};

/// Instruction-encoding redundancy profile of a program (Fig 1).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingProfile {
    /// Total static instructions.
    pub total_insns: usize,
    /// Distinct 32-bit encodings.
    pub distinct: usize,
    /// Instructions whose encoding appears exactly once in the program.
    pub used_once_insns: usize,
    /// Instructions whose encoding appears more than once.
    pub used_multiple_insns: usize,
}

impl EncodingProfile {
    /// Fraction of the program that is single-use encodings (the paper finds
    /// < 20 % on average).
    pub fn used_once_fraction(&self) -> f64 {
        self.used_once_insns as f64 / self.total_insns as f64
    }

    /// Fraction of the program that repeats some other instruction.
    pub fn used_multiple_fraction(&self) -> f64 {
        self.used_multiple_insns as f64 / self.total_insns as f64
    }
}

/// Computes the encoding redundancy profile.
pub fn encoding_profile(module: &ObjectModule) -> EncodingProfile {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &w in &module.code {
        *counts.entry(w).or_insert(0) += 1;
    }
    let used_once = counts.values().filter(|&&c| c == 1).count();
    EncodingProfile {
        total_insns: module.len(),
        distinct: counts.len(),
        used_once_insns: used_once,
        used_multiple_insns: module.len() - used_once,
    }
}

/// Fraction of the program covered by the most frequent `frac` of distinct
/// instruction encodings (the paper: in go, the top 1 % of encodings cover
/// 30 % of the program).
pub fn top_encoding_coverage(module: &ObjectModule, frac: f64) -> f64 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &w in &module.code {
        *counts.entry(w).or_insert(0) += 1;
    }
    let mut freqs: Vec<usize> = counts.into_values().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let take = ((freqs.len() as f64 * frac).ceil() as usize).max(1);
    let covered: usize = freqs.iter().take(take).sum();
    covered as f64 / module.len() as f64
}

/// Branch-offset field usage (Table 1): how many PC-relative branches could
/// *not* express their current displacement if the offset field were
/// reinterpreted at finer granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOffsetUsage {
    /// Static PC-relative branch count.
    pub total: usize,
    /// Branches too narrow for 2-byte target resolution.
    pub too_narrow_2byte: usize,
    /// Branches too narrow for 1-byte target resolution.
    pub too_narrow_1byte: usize,
    /// Branches too narrow for 4-bit target resolution.
    pub too_narrow_4bit: usize,
}

impl BranchOffsetUsage {
    /// Percentages in Table 1's column order (2-byte, 1-byte, 4-bit).
    pub fn percentages(&self) -> [f64; 3] {
        let t = self.total.max(1) as f64;
        [
            100.0 * self.too_narrow_2byte as f64 / t,
            100.0 * self.too_narrow_1byte as f64 / t,
            100.0 * self.too_narrow_4bit as f64 / t,
        ]
    }
}

/// Computes Table 1's row for a module.
pub fn branch_offset_usage(module: &ObjectModule) -> BranchOffsetUsage {
    let mut usage = BranchOffsetUsage {
        total: 0,
        too_narrow_2byte: 0,
        too_narrow_1byte: 0,
        too_narrow_4bit: 0,
    };
    for &w in &module.code {
        let Some(info) = rel_branch_info(w) else { continue };
        usage.total += 1;
        let nibbles = info.offset as i64 * 2;
        if !offset_expressible(info.kind, nibbles, 4) {
            usage.too_narrow_2byte += 1;
        }
        if !offset_expressible(info.kind, nibbles, 2) {
            usage.too_narrow_1byte += 1;
        }
        if !offset_expressible(info.kind, nibbles, 1) {
            usage.too_narrow_4bit += 1;
        }
    }
    usage
}

/// Prologue/epilogue weight (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrologueEpilogue {
    /// Static prologue instructions across all functions.
    pub prologue_insns: usize,
    /// Static epilogue instructions across all functions.
    pub epilogue_insns: usize,
    /// Total static instructions.
    pub total_insns: usize,
}

impl PrologueEpilogue {
    /// Prologue percentage of the program.
    pub fn prologue_pct(&self) -> f64 {
        100.0 * self.prologue_insns as f64 / self.total_insns as f64
    }

    /// Epilogue percentage of the program.
    pub fn epilogue_pct(&self) -> f64 {
        100.0 * self.epilogue_insns as f64 / self.total_insns as f64
    }
}

/// Computes Table 3's row from the module's function metadata.
pub fn prologue_epilogue(module: &ObjectModule) -> PrologueEpilogue {
    PrologueEpilogue {
        prologue_insns: module.functions.iter().map(|f| f.prologue_len).sum(),
        epilogue_insns: module.functions.iter().map(|f| f.epilogue_insns()).sum(),
        total_insns: module.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_obj::FunctionInfo;
    use codense_ppc::encode;
    use codense_ppc::insn::{bo, Insn};
    use codense_ppc::reg::*;

    #[test]
    fn profile_counts_singletons() {
        let mut m = ObjectModule::new("t");
        let a = encode(&Insn::Addi { rt: R3, ra: R3, si: 1 });
        let b = encode(&Insn::Addi { rt: R4, ra: R4, si: 2 });
        let c = encode(&Insn::Addi { rt: R5, ra: R5, si: 3 });
        m.code = vec![a, a, a, b, b, c];
        let p = encoding_profile(&m);
        assert_eq!(p.total_insns, 6);
        assert_eq!(p.distinct, 3);
        assert_eq!(p.used_once_insns, 1);
        assert_eq!(p.used_multiple_insns, 5);
        assert!((p.used_once_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_coverage_monotone() {
        let mut m = ObjectModule::new("t");
        m.code =
            (0..100).map(|i| encode(&Insn::Addi { rt: R3, ra: R3, si: (i % 10) as i16 })).collect();
        let c1 = top_encoding_coverage(&m, 0.01);
        let c10 = top_encoding_coverage(&m, 0.10);
        let c100 = top_encoding_coverage(&m, 1.0);
        assert!(c1 <= c10 + 1e-12 && c10 <= c100 + 1e-12);
        assert!((c100 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_usage_detects_narrow_fields() {
        let mut m = ObjectModule::new("t");
        // bc with bd near the 14-bit limit: 16380 bytes displacement fits at
        // 4-byte granularity (4095 words) but not at 2-byte resolution as
        // 8190 > 8191? It does fit (8190 < 8192); 1-byte needs 16380 ≥ 2^13 → too narrow.
        m.code = vec![
            encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 0, bd: 16380, aa: false, lk: false }),
            encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 0, bd: 16, aa: false, lk: false }),
            encode(&Insn::B { li: 32, aa: false, lk: false }),
        ];
        let u = branch_offset_usage(&m);
        assert_eq!(u.total, 3);
        assert_eq!(u.too_narrow_2byte, 0);
        assert_eq!(u.too_narrow_1byte, 1);
        assert_eq!(u.too_narrow_4bit, 1);
        let pct = u.percentages();
        assert!((pct[2] - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn prologue_epilogue_sums_functions() {
        let mut m = ObjectModule::new("t");
        m.code = vec![0x6000_0000; 20];
        m.functions.push(FunctionInfo {
            name: "a".into(),
            start: 0,
            end: 10,
            prologue_len: 3,
            epilogues: std::iter::once(8..10).collect(),
        });
        m.functions.push(FunctionInfo {
            name: "b".into(),
            start: 10,
            end: 20,
            prologue_len: 2,
            epilogues: vec![15..16, 18..20],
        });
        let pe = prologue_epilogue(&m);
        assert_eq!(pe.prologue_insns, 5);
        assert_eq!(pe.epilogue_insns, 5);
        assert!((pe.prologue_pct() - 25.0).abs() < 1e-12);
    }
}

/// Static instruction-class mix of a program — the realism check for the
/// synthetic benchmarks (compiled RISC integer code typically runs ~20–30 %
/// loads/stores, ~15–20 % branches, the rest ALU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// Loads (any width, displacement or indexed, incl. `lmw`).
    pub loads: usize,
    /// Stores (incl. `stmw`, `stwu`).
    pub stores: usize,
    /// Control transfers (`b`, `bc`, `bclr`, `bcctr`, `sc`).
    pub branches: usize,
    /// Compares.
    pub compares: usize,
    /// Everything else (ALU, rotates, SPR moves).
    pub alu: usize,
}

impl InstructionMix {
    /// Total classified instructions.
    pub fn total(&self) -> usize {
        self.loads + self.stores + self.branches + self.compares + self.alu
    }

    /// Class fractions in `[loads, stores, branches, compares, alu]` order.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().max(1) as f64;
        [
            self.loads as f64 / t,
            self.stores as f64 / t,
            self.branches as f64 / t,
            self.compares as f64 / t,
            self.alu as f64 / t,
        ]
    }
}

/// Classifies every instruction of a module.
pub fn instruction_mix(module: &ObjectModule) -> InstructionMix {
    use codense_ppc::Insn::*;
    let mut mix = InstructionMix::default();
    for &w in &module.code {
        match codense_ppc::decode(w) {
            Lwz { .. }
            | Lwzu { .. }
            | Lbz { .. }
            | Lbzu { .. }
            | Lhz { .. }
            | Lhzu { .. }
            | Lha { .. }
            | Lhau { .. }
            | Lmw { .. }
            | Lwzx { .. }
            | Lbzx { .. }
            | Lhzx { .. } => mix.loads += 1,
            Stw { .. }
            | Stwu { .. }
            | Stb { .. }
            | Stbu { .. }
            | Sth { .. }
            | Sthu { .. }
            | Stmw { .. }
            | Stwx { .. }
            | Stbx { .. }
            | Sthx { .. } => mix.stores += 1,
            B { .. } | Bc { .. } | Bclr { .. } | Bcctr { .. } | Sc => mix.branches += 1,
            Cmpwi { .. } | Cmplwi { .. } | Cmpw { .. } | Cmplw { .. } => mix.compares += 1,
            _ => mix.alu += 1,
        }
    }
    mix
}

#[cfg(test)]
mod mix_tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    #[test]
    fn classifies_each_class() {
        let mut m = ObjectModule::new("t");
        m.code = vec![
            encode(&Insn::Lwz { rt: R3, ra: R1, d: 0 }),
            encode(&Insn::Stw { rs: R3, ra: R1, d: 0 }),
            encode(&Insn::B { li: 4, aa: false, lk: false }),
            encode(&Insn::Cmpwi { bf: CR0, ra: R3, si: 0 }),
            encode(&Insn::Add { rt: R3, ra: R3, rb: R3, rc: false }),
        ];
        let mix = instruction_mix(&m);
        assert_eq!((mix.loads, mix.stores, mix.branches, mix.compares, mix.alu), (1, 1, 1, 1, 1));
        assert_eq!(mix.total(), 5);
        assert!((mix.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn benchmark_mix_is_risc_like() {
        let m = codense_codegen_stub();
        let mix = instruction_mix(&m);
        let f = mix.fractions();
        // Memory traffic and branch density in realistic RISC bands.
        assert!((0.15..0.50).contains(&(f[0] + f[1])), "mem {:.2}", f[0] + f[1]);
        assert!((0.05..0.30).contains(&f[2]), "branches {:.2}", f[2]);
    }

    // analysis lives below codegen in the crate graph; synthesize a small
    // template-shaped module by hand instead of depending upward.
    fn codense_codegen_stub() -> ObjectModule {
        let mut m = ObjectModule::new("stub");
        for i in 0..50i16 {
            m.code.push(encode(&Insn::Lwz { rt: R9, ra: R1, d: 8 + (i % 6) * 4 }));
            m.code.push(encode(&Insn::Addi { rt: R9, ra: R9, si: i % 7 }));
            m.code.push(encode(&Insn::Stw { rs: R9, ra: R1, d: 8 }));
            m.code.push(encode(&Insn::Cmpwi { bf: CR0, ra: R9, si: 3 }));
            m.code.push(encode(&Insn::Bc {
                bo: codense_ppc::insn::bo::IF_FALSE,
                bi: 2,
                bd: -16,
                aa: false,
                lk: false,
            }));
        }
        m
    }
}
