//! Parameter sweeps for the paper's Figures 4–8.
//!
//! The greedy pick order does not depend on the dictionary-size cap (the
//! choice at step *k* is made from the program state after *k−1* picks), so
//! sweeps over *dictionary size* are read off one full run's pick log
//! instead of recompressing per point. Sweeps over *entry length* change the
//! candidate set and therefore recompress.
//!
//! Sweeps whose points need independent full compression runs
//! ([`entry_len_sweep`], [`small_dictionary_sweep`]) evaluate their points
//! on the [`crate::parallel`] worker pool; each point is an independent
//! compression of the same immutable module, so results are identical to
//! the sequential loop and arrive in point order. These sweeps mine the
//! program's candidate windows **once**, into a shared
//! [`CandidateIndex`](crate::greedy::CandidateIndex) built at the largest
//! entry length in the sweep; every point then reuses the shared index
//! (candidates above the point's cap are filtered at heap seeding) instead
//! of re-scanning the program, which is byte-identical to a fresh build.

use codense_isa::IsaRef;
use codense_obj::ObjectModule;

use crate::compressor::{CompressedProgram, Compressor};
use crate::config::{CompressionConfig, EncodingKind};
use crate::error::CompressError;
use crate::greedy::CandidateIndex;
use crate::model::ProgramModel;

/// Compression ratio at each requested codeword-count point (Fig 5),
/// computed from one baseline run to the largest point.
///
/// Ratios at interior points are exact for the baseline encoding up to
/// branch-overflow rewrites (which add a handful of bytes and affect all
/// points equally).
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying run.
pub fn codeword_count_sweep(
    module: &ObjectModule,
    max_entry_len: usize,
    points: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    codeword_count_sweep_with_isa(module, IsaRef(&codense_ppc::ISA), max_entry_len, points)
}

/// [`codeword_count_sweep`] for an explicit target ISA.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying run.
pub fn codeword_count_sweep_with_isa(
    module: &ObjectModule,
    isa: IsaRef,
    max_entry_len: usize,
    points: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    let cap = points.iter().copied().max().unwrap_or(0).min(EncodingKind::Baseline.capacity());
    crate::telemetry::SWEEP_POINTS.add(points.len() as u64);
    crate::telemetry::SWEEP_FULL_COMPRESSIONS.inc();
    let config =
        CompressionConfig { max_entry_len, max_codewords: cap, encoding: EncodingKind::Baseline };
    let c = Compressor::new(config).with_isa(isa).compress(module)?;
    Ok(crate::parallel::par_map(points.to_vec(), |_, k| (k, ratio_at_prefix(&c, k))))
}

/// The baseline-encoding compression ratio after only the first `k` greedy
/// picks, reconstructed from the pick log.
pub fn ratio_at_prefix(c: &CompressedProgram, k: usize) -> f64 {
    crate::telemetry::SWEEP_PREFIX_POINTS.inc();
    let orig = c.original_text_bytes as f64;
    let mut text = orig;
    let mut dict = 0.0;
    for p in c.picks.iter().take(k) {
        // Each replacement turns `len` instructions into one 2-byte codeword.
        text -= p.replaced as f64 * (4.0 * p.len as f64 - 2.0);
        dict += 4.0 * p.len as f64;
    }
    (text + dict) / orig
}

/// Compression ratio for each maximum entry length (Fig 4), each a full
/// baseline run with the whole 8192-codeword space.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying runs.
pub fn entry_len_sweep(
    module: &ObjectModule,
    lens: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    entry_len_sweep_with_isa(module, IsaRef(&codense_ppc::ISA), lens)
}

/// [`entry_len_sweep`] for an explicit target ISA.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying runs.
pub fn entry_len_sweep_with_isa(
    module: &ObjectModule,
    isa: IsaRef,
    lens: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    crate::telemetry::SWEEP_POINTS.add(lens.len() as u64);
    crate::telemetry::SWEEP_FULL_COMPRESSIONS.add(lens.len() as u64);
    let max_len = lens.iter().copied().max().unwrap_or(1);
    let index = CandidateIndex::build(&ProgramModel::build_isa(module, isa), max_len)?;
    crate::parallel::par_map(lens.to_vec(), |_, l| {
        let config = CompressionConfig {
            max_entry_len: l,
            max_codewords: EncodingKind::Baseline.capacity(),
            encoding: EncodingKind::Baseline,
        };
        let c = Compressor::new(config).with_isa(isa).compress_with_index(module, &index)?;
        Ok((l, c.compression_ratio()))
    })
    .into_iter()
    .collect()
}

/// Dictionary composition by entry length at several dictionary sizes
/// (Fig 6): for each size `k`, a histogram `hist[l]` of entries with `l`
/// instructions among the first `k` picks.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying run.
pub fn dict_composition_sweep(
    module: &ObjectModule,
    max_entry_len: usize,
    sizes: &[usize],
) -> Result<Vec<(usize, Vec<usize>)>, CompressError> {
    crate::telemetry::SWEEP_POINTS.add(sizes.len() as u64);
    crate::telemetry::SWEEP_FULL_COMPRESSIONS.inc();
    let cap = sizes.iter().copied().max().unwrap_or(0).min(EncodingKind::Baseline.capacity());
    let config =
        CompressionConfig { max_entry_len, max_codewords: cap, encoding: EncodingKind::Baseline };
    let c = Compressor::new(config).compress(module)?;
    Ok(sizes
        .iter()
        .map(|&k| {
            let mut hist = vec![0usize; max_entry_len + 1];
            for p in c.picks.iter().take(k) {
                hist[p.len.min(max_entry_len)] += 1;
            }
            (k, hist)
        })
        .collect())
}

/// Bytes saved, by entry length, at several dictionary sizes (Fig 7), as a
/// fraction of the original program size. Baseline 2-byte codewords.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying run.
pub fn savings_by_length_sweep(
    module: &ObjectModule,
    max_entry_len: usize,
    sizes: &[usize],
) -> Result<Vec<(usize, Vec<f64>)>, CompressError> {
    crate::telemetry::SWEEP_POINTS.add(sizes.len() as u64);
    crate::telemetry::SWEEP_FULL_COMPRESSIONS.inc();
    let cap = sizes.iter().copied().max().unwrap_or(0).min(EncodingKind::Baseline.capacity());
    let config =
        CompressionConfig { max_entry_len, max_codewords: cap, encoding: EncodingKind::Baseline };
    let c = Compressor::new(config).compress(module)?;
    let orig = c.original_text_bytes as f64;
    Ok(sizes
        .iter()
        .map(|&k| {
            let mut by_len = vec![0.0f64; max_entry_len + 1];
            for p in c.picks.iter().take(k) {
                let saved = p.replaced as f64 * (4.0 * p.len as f64 - 2.0) - 4.0 * p.len as f64;
                by_len[p.len.min(max_entry_len)] += saved / orig;
            }
            (k, by_len)
        })
        .collect())
}

/// Small-dictionary ratios (Fig 8): 1-byte codewords at each entry count.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying runs.
pub fn small_dictionary_sweep(
    module: &ObjectModule,
    entry_counts: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    small_dictionary_sweep_with_isa(module, IsaRef(&codense_ppc::ISA), entry_counts)
}

/// [`small_dictionary_sweep`] for an explicit target ISA.
///
/// # Errors
///
/// Propagates [`CompressError`] from the underlying runs.
pub fn small_dictionary_sweep_with_isa(
    module: &ObjectModule,
    isa: IsaRef,
    entry_counts: &[usize],
) -> Result<Vec<(usize, f64)>, CompressError> {
    crate::telemetry::SWEEP_POINTS.add(entry_counts.len() as u64);
    crate::telemetry::SWEEP_FULL_COMPRESSIONS.add(entry_counts.len() as u64);
    // Every point uses the same entry-length cap; mine the window set once.
    let max_len = CompressionConfig::small_dictionary(0).max_entry_len;
    let index = CandidateIndex::build(&ProgramModel::build_isa(module, isa), max_len)?;
    crate::parallel::par_map(entry_counts.to_vec(), |_, n| {
        let compressor = Compressor::new(CompressionConfig::small_dictionary(n)).with_isa(isa);
        let c = compressor.compress_with_index(module, &index)?;
        Ok((n, c.compression_ratio()))
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::encode;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn module() -> ObjectModule {
        let mut words = Vec::new();
        for i in 0..40 {
            for _ in 0..(40 - i) / 6 + 1 {
                words.push(encode(&Insn::Addi { rt: R3, ra: R3, si: i as i16 }));
                words.push(encode(&Insn::Addi { rt: R4, ra: R4, si: (i * 2) as i16 }));
            }
        }
        let mut m = ObjectModule::new("t");
        m.code = words;
        m
    }

    #[test]
    fn more_codewords_never_hurt() {
        let m = module();
        let sweep = codeword_count_sweep(&m, 4, &[2, 8, 32, 128, 512]).unwrap();
        for pair in sweep.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-9, "{sweep:?}");
        }
    }

    #[test]
    fn prefix_ratio_matches_full_run_at_cap() {
        let m = module();
        let cap = 64;
        let sweep = codeword_count_sweep(&m, 4, &[cap]).unwrap();
        let full = Compressor::new(CompressionConfig {
            max_entry_len: 4,
            max_codewords: cap,
            encoding: EncodingKind::Baseline,
        })
        .compress(&m)
        .unwrap();
        assert!((sweep[0].1 - full.compression_ratio()).abs() < 1e-6);
    }

    #[test]
    fn entry_len_sweep_runs_all_points() {
        let m = module();
        let sweep = entry_len_sweep(&m, &[1, 2, 4]).unwrap();
        assert_eq!(sweep.len(), 3);
        // Longer entries can only help or match on this simple input.
        assert!(sweep[2].1 <= sweep[0].1 + 1e-9);
    }

    #[test]
    fn dict_composition_histogram_counts_picks() {
        let m = module();
        let comp = dict_composition_sweep(&m, 8, &[4, 16]).unwrap();
        assert_eq!(comp[0].0, 4);
        assert_eq!(comp[0].1.iter().sum::<usize>(), 4.min(comp[0].1.iter().sum()));
        let total16: usize = comp[1].1.iter().sum();
        assert!(total16 <= 16);
    }

    #[test]
    fn rank_space_guard() {
        assert_eq!(check_rank_space(0).unwrap(), 0);
        assert_eq!(check_rank_space(u32::MAX as usize).unwrap(), u32::MAX);
        assert!(matches!(
            check_rank_space(u32::MAX as usize + 1),
            Err(CompressError::ProgramTooLarge { blocks, largest_block: 0 })
                if blocks == u32::MAX as usize + 1
        ));
    }

    #[test]
    fn small_dictionary_sweep_improves_with_entries() {
        let m = module();
        let sweep = small_dictionary_sweep(&m, &[8, 16, 32]).unwrap();
        assert!(sweep[2].1 <= sweep[0].1 + 1e-9);
    }

    #[test]
    fn shared_index_points_match_fresh_compressions() {
        // The sweep reuses one CandidateIndex across points; every point
        // must equal an independent full compression bit-for-bit (here via
        // the exact ratio).
        let m = module();
        for (l, ratio) in entry_len_sweep(&m, &[1, 2, 4, 8]).unwrap() {
            let fresh = Compressor::new(CompressionConfig {
                max_entry_len: l,
                max_codewords: EncodingKind::Baseline.capacity(),
                encoding: EncodingKind::Baseline,
            })
            .compress(&m)
            .unwrap();
            assert_eq!(ratio, fresh.compression_ratio(), "entry len {l}");
        }
        for (n, ratio) in small_dictionary_sweep(&m, &[4, 16, 32]).unwrap() {
            let fresh =
                Compressor::new(CompressionConfig::small_dictionary(n)).compress(&m).unwrap();
            assert_eq!(ratio, fresh.compression_ratio(), "entry count {n}");
        }
    }
}

/// A nibble-codeword space allocation: how many of the 15 non-escape first
/// nibbles introduce 4/8/12/16-bit codewords.
///
/// The shipped encoding is `{8, 3, 2, 2}` (see [`crate::encoding::nibble`]).
/// The paper (§4.1.3) notes "other programs may benefit from different
/// encodings. For example, if many codewords are not necessary for good
/// compression, then more 4-bit and 8-bit code words could be used" — this
/// type lets that trade-off be evaluated analytically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NibbleSplit {
    /// First-nibble values assigned to 4-bit codewords.
    pub n4: u32,
    /// First-nibble values prefixing 8-bit codewords.
    pub n8: u32,
    /// First-nibble values prefixing 12-bit codewords.
    pub n12: u32,
    /// First-nibble values prefixing 16-bit codewords.
    pub n16: u32,
}

impl NibbleSplit {
    /// The encoding shipped by [`crate::encoding::nibble`].
    pub const SHIPPED: NibbleSplit = NibbleSplit { n4: 8, n8: 3, n12: 2, n16: 2 };

    /// Total codewords this split can index.
    pub fn capacity(&self) -> u64 {
        self.n4 as u64 + self.n8 as u64 * 16 + self.n12 as u64 * 256 + self.n16 as u64 * 4096
    }

    /// Returns `true` if the split uses exactly the 15 non-escape nibbles.
    pub fn is_valid(&self) -> bool {
        self.n4 + self.n8 + self.n12 + self.n16 == 15
    }

    /// Codeword length in nibbles for a rank under this split, or `None` if
    /// the rank exceeds the split's capacity.
    pub fn codeword_nibbles(&self, rank: u64) -> Option<u64> {
        let b4 = self.n4 as u64;
        let b8 = b4 + self.n8 as u64 * 16;
        let b12 = b8 + self.n12 as u64 * 256;
        if rank < b4 {
            Some(1)
        } else if rank < b8 {
            Some(2)
        } else if rank < b12 {
            Some(3)
        } else if rank < self.capacity() {
            Some(4)
        } else {
            None
        }
    }
}

/// Evaluates what a nibble-compressed program's *text* size would be under a
/// different codeword-space split, analytically from the dictionary's
/// occurrence counts (entries are re-ranked by frequency; entries beyond the
/// split's capacity fall back to escaped uncompressed instructions).
///
/// Returns total text nibbles. Dictionary bytes are unchanged by the split
/// except for dropped entries, which this conservative model keeps.
///
/// # Errors
///
/// [`CompressError::ProgramTooLarge`] if the dictionary exceeds the 32-bit
/// rank space — the same overflow contract as the matchfinder's position
/// space, instead of a silently truncating `as u32` cast.
pub fn text_nibbles_under_split(
    c: &CompressedProgram,
    split: NibbleSplit,
) -> Result<u64, CompressError> {
    assert!(split.is_valid(), "split must use exactly 15 nibbles");
    let entries = check_rank_space(c.dictionary.len())?;
    // Occurrence counts by rank (already sorted: rank order is by use).
    let mut total: u64 = 0;
    for rank in 0..entries {
        let entry = c.dictionary.entry_of_rank(rank);
        let e = c.dictionary.entry(entry);
        match split.codeword_nibbles(rank as u64) {
            Some(n) => total += n * e.replaced as u64,
            // Beyond capacity: occurrences revert to escaped instructions.
            None => total += 9 * (e.len() as u64) * e.replaced as u64,
        }
    }
    // Uncompressed instructions keep their 9-nibble cost.
    let uncompressed: u64 = c
        .atoms
        .iter()
        .map(|a| match *a {
            crate::compressor::Atom::Insn { .. } => 9,
            crate::compressor::Atom::ViaTable { word, slot, .. } => {
                9 * crate::compressor::via_table_expansion_with(c.isa, c.encoding, word, slot).len()
                    as u64
            }
            crate::compressor::Atom::Codeword { .. } => 0,
        })
        .sum();
    Ok(total + uncompressed)
}

/// Rejects dictionaries whose entry count would not fit the u32 rank
/// arithmetic — the same typed-overflow contract as the matchfinder's
/// position-space guard, instead of a silently truncating `as u32` cast.
fn check_rank_space(entries: usize) -> Result<u32, CompressError> {
    entries
        .try_into()
        .map_err(|_| CompressError::ProgramTooLarge { blocks: entries, largest_block: 0 })
}
