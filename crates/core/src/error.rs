//! Error types for compression and verification.

use std::fmt;

/// Errors from [`Compressor::compress`](crate::Compressor::compress).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The program contains an instruction word whose primary opcode is one
    /// of the reserved illegal (escape) opcodes; under the baseline and
    /// one-byte schemes such a word is indistinguishable from a codeword.
    EscapeCollision {
        /// Instruction index.
        at: usize,
        /// The offending word.
        word: u32,
    },
    /// A branch overflowed its reduced-resolution offset field and cannot be
    /// rewritten through the overflow jump table (CTR-decrementing `bc`
    /// forms would have their loop counter clobbered by the rewrite).
    UnsupportedOverflowBranch {
        /// Instruction index of the branch.
        at: usize,
    },
    /// Branch-overflow rewriting failed to converge (cannot happen for sane
    /// inputs; guarded to bound the fixpoint loop).
    LayoutDiverged,
    /// A codeword rank does not fit in the encoding's codeword space.
    /// Unreachable through [`Compressor`](crate::Compressor), which clamps
    /// the dictionary to the encoding capacity, but reported (instead of a
    /// panic) when a hand-built dictionary exceeds it.
    CodewordSpaceExhausted {
        /// The offending rank.
        rank: u32,
        /// The encoding's codeword capacity.
        capacity: usize,
    },
    /// The program exceeds the matchfinder's 32-bit position space (more
    /// than `u32::MAX` blocks, or a block so large that cell indices could
    /// wrap). Previously a silent `as u32` truncation; surfaced as a typed
    /// error so SPEC-scale inputs fail loudly.
    ProgramTooLarge {
        /// Number of blocks in the program.
        blocks: usize,
        /// Cells in the largest block.
        largest_block: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::EscapeCollision { at, word } => {
                write!(f, "instruction {at} ({word:#010x}) uses a reserved escape opcode")
            }
            CompressError::UnsupportedOverflowBranch { at } => {
                write!(f, "branch at instruction {at} overflows and uses the count register")
            }
            CompressError::LayoutDiverged => write!(f, "branch overflow layout did not converge"),
            CompressError::CodewordSpaceExhausted { rank, capacity } => {
                write!(f, "codeword rank {rank} exceeds the encoding capacity {capacity}")
            }
            CompressError::ProgramTooLarge { blocks, largest_block } => {
                write!(
                    f,
                    "program exceeds the matchfinder's 32-bit position space \
                     ({blocks} blocks, largest block {largest_block} cells)"
                )
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Errors from [`verify`](crate::verify::verify): any divergence between the
/// compressed program and the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Expanded instruction stream does not cover original instruction
    /// `expected` next (got `got`).
    CoverageGap {
        /// The original index expected next.
        expected: usize,
        /// The index actually produced.
        got: usize,
    },
    /// A non-branch instruction expanded to the wrong word.
    WordMismatch {
        /// Original instruction index.
        orig: usize,
        /// Word in the original program.
        want: u32,
        /// Word produced by expansion.
        got: u32,
    },
    /// A patched branch resolves to the wrong target.
    BranchTargetMismatch {
        /// Original instruction index of the branch.
        orig: usize,
        /// Original target instruction index.
        want_target: usize,
    },
    /// The packed byte image disagrees with the logical atom stream.
    ImageMismatch {
        /// Atom index where parsing diverged.
        atom: usize,
    },
    /// A jump-table entry was not patched to its target's new address.
    JumpTableMismatch {
        /// Table index.
        table: usize,
        /// Entry index.
        entry: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::CoverageGap { expected, got } => {
                write!(f, "expansion skipped instructions: expected {expected}, got {got}")
            }
            VerifyError::WordMismatch { orig, want, got } => {
                write!(f, "instruction {orig}: want {want:#010x}, got {got:#010x}")
            }
            VerifyError::BranchTargetMismatch { orig, want_target } => {
                write!(f, "branch {orig} no longer reaches instruction {want_target}")
            }
            VerifyError::ImageMismatch { atom } => {
                write!(f, "packed image diverges from atom {atom}")
            }
            VerifyError::JumpTableMismatch { table, entry } => {
                write!(f, "jump table {table} entry {entry} not patched correctly")
            }
        }
    }
}

impl std::error::Error for VerifyError {}
