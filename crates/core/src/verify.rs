//! Round-trip verification: proves a compressed program is semantically
//! equivalent to its original.
//!
//! Four properties are checked:
//!
//! 1. **Coverage** — the expanded atom stream covers original instructions
//!    `0..n` exactly once, in order.
//! 2. **Word fidelity** — every non-branch instruction expands to its
//!    original word; every patched branch resolves (through the
//!    compressed-domain address arithmetic) to the atom holding its original
//!    target; every overflow-rewritten branch's table slot holds the
//!    target's compressed address.
//! 3. **Image fidelity** — re-parsing the packed byte image reproduces the
//!    logical atom stream, item by item.
//! 4. **Data patching** — every jump-table entry was rewritten to the
//!    compressed address of its original target.

use codense_obj::ObjectModule;

use crate::compressor::{via_table_expansion_coded, Atom, CompressedProgram};
use crate::encoding::{read_item_coded, Item};
use crate::error::VerifyError;
use crate::nibbles::NibbleReader;

/// Verifies `compressed` against the `module` it was produced from.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found; `Ok(())` means the compressed
/// program provably expands to the original (modulo the intended branch
/// re-encoding).
pub fn verify(module: &ObjectModule, compressed: &CompressedProgram) -> Result<(), VerifyError> {
    crate::telemetry::VERIFY_RUNS.inc();
    let _phase = crate::telemetry::phase("verify");
    verify_coverage_and_words(module, compressed)?;
    verify_image(compressed)?;
    verify_jump_tables(module, compressed)?;
    Ok(())
}

fn verify_coverage_and_words(
    module: &ObjectModule,
    c: &CompressedProgram,
) -> Result<(), VerifyError> {
    let mut next = 0usize;
    for (i, atom) in c.atoms.iter().enumerate() {
        if atom.orig() != next {
            return Err(VerifyError::CoverageGap { expected: next, got: atom.orig() });
        }
        match *atom {
            Atom::Codeword { entry, orig, len } => {
                let words = &c.dictionary.entry(entry).words;
                if words.len() != len {
                    return Err(VerifyError::WordMismatch {
                        orig,
                        want: module.code[orig],
                        got: 0,
                    });
                }
                for (k, &w) in words.iter().enumerate() {
                    if module.code[orig + k] != w {
                        return Err(VerifyError::WordMismatch {
                            orig: orig + k,
                            want: module.code[orig + k],
                            got: w,
                        });
                    }
                }
            }
            Atom::Insn { word, orig } => {
                let original = module.code[orig];
                match c.isa.rel_branch_info(original) {
                    None => {
                        if word != original {
                            return Err(VerifyError::WordMismatch {
                                orig,
                                want: original,
                                got: word,
                            });
                        }
                    }
                    Some(info) => {
                        // Patched branch: non-offset bits must match, and the
                        // re-encoded offset must land on the target atom.
                        let want_target = (orig as i64 + (info.offset / 4) as i64) as usize;
                        let units = c.isa.read_offset_units(word, info.kind) as i64;
                        let target_addr =
                            c.addresses[i] as i64 + units * c.encoding.granule_nibbles() as i64;
                        let ok = c.address_of_orig(want_target) == Some(target_addr as u64);
                        if !ok {
                            return Err(VerifyError::BranchTargetMismatch { orig, want_target });
                        }
                    }
                }
            }
            Atom::ViaTable { word, orig, slot } => {
                let original = module.code[orig];
                if word != original {
                    return Err(VerifyError::WordMismatch { orig, want: original, got: word });
                }
                let info = c.isa.rel_branch_info(original).expect("ViaTable is a branch");
                let want_target = (orig as i64 + (info.offset / 4) as i64) as usize;
                if c.address_of_orig(want_target) != Some(c.overflow_table[slot]) {
                    return Err(VerifyError::BranchTargetMismatch { orig, want_target });
                }
            }
        }
        next += atom.covered();
    }
    if next != module.len() {
        return Err(VerifyError::CoverageGap { expected: next, got: module.len() });
    }
    Ok(())
}

fn verify_image(c: &CompressedProgram) -> Result<(), VerifyError> {
    let huff = c.huffman.as_ref();
    let mut r = NibbleReader::new(&c.image);
    for (i, atom) in c.atoms.iter().enumerate() {
        if r.pos() != c.addresses[i] {
            return Err(VerifyError::ImageMismatch { atom: i });
        }
        match *atom {
            Atom::Insn { word, .. } => {
                if read_item_coded(c.encoding, c.isa, huff, &mut r) != Some(Item::Insn(word)) {
                    return Err(VerifyError::ImageMismatch { atom: i });
                }
            }
            Atom::Codeword { entry, .. } => {
                let want = Item::Codeword(c.dictionary.rank_of(entry));
                if read_item_coded(c.encoding, c.isa, huff, &mut r) != Some(want) {
                    return Err(VerifyError::ImageMismatch { atom: i });
                }
            }
            Atom::ViaTable { word, slot, .. } => {
                for w in via_table_expansion_coded(c.isa, c.encoding, huff, word, slot) {
                    if read_item_coded(c.encoding, c.isa, huff, &mut r) != Some(Item::Insn(w)) {
                        return Err(VerifyError::ImageMismatch { atom: i });
                    }
                }
            }
        }
    }
    Ok(())
}

fn verify_jump_tables(module: &ObjectModule, c: &CompressedProgram) -> Result<(), VerifyError> {
    for (t, table) in module.jump_tables.iter().enumerate() {
        for (e, &idx) in table.targets.iter().enumerate() {
            if c.address_of_orig(idx) != Some(c.jump_tables[t][e]) {
                return Err(VerifyError::JumpTableMismatch { table: t, entry: e });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionConfig, Compressor};
    use codense_obj::JumpTable;
    use codense_ppc::asm::Assembler;
    use codense_ppc::insn::Insn;
    use codense_ppc::reg::*;

    fn looped_module() -> ObjectModule {
        let mut a = Assembler::new();
        for _ in 0..12 {
            a.emit(Insn::Addi { rt: R3, ra: R3, si: 1 });
            a.emit(Insn::Addi { rt: R4, ra: R4, si: 2 });
            a.emit(Insn::Addi { rt: R5, ra: R5, si: 3 });
        }
        a.label("head");
        a.emit(Insn::Addi { rt: R6, ra: R6, si: -1 });
        a.emit(Insn::Cmpwi { bf: CR0, ra: R6, si: 0 });
        a.bne(CR0, "head");
        a.emit(Insn::Sc);
        let mut m = ObjectModule::new("loop");
        m.code = a.finish().unwrap();
        m.jump_tables.push(JumpTable { targets: vec![0, 36] });
        m
    }

    #[test]
    fn all_schemes_verify() {
        let m = looped_module();
        for config in [
            CompressionConfig::baseline(),
            CompressionConfig::small_dictionary(16),
            CompressionConfig::nibble_aligned(),
            CompressionConfig::huffman(),
        ] {
            let c = Compressor::new(config.clone()).compress(&m).unwrap();
            verify(&m, &c).unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn corrupted_dictionary_fails_verification() {
        let m = looped_module();
        let mut c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        assert!(!c.dictionary.is_empty());
        // Corrupt an entry word.
        let mut dict = crate::dict::Dictionary::new();
        for e in c.dictionary.entries() {
            let mut words = e.words.clone();
            words[0] ^= 4; // flip a bit
            dict.push(words, e.replaced);
        }
        c.dictionary = dict;
        assert!(verify(&m, &c).is_err());
    }

    #[test]
    fn corrupted_image_fails_verification() {
        let m = looped_module();
        let mut c = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        let mid = c.image.len() / 2;
        c.image[mid] ^= 0xff;
        assert!(matches!(verify(&m, &c), Err(VerifyError::ImageMismatch { .. })));
    }

    #[test]
    fn corrupted_jump_table_fails_verification() {
        let m = looped_module();
        let mut c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        c.jump_tables[0][1] += 2;
        assert!(matches!(verify(&m, &c), Err(VerifyError::JumpTableMismatch { .. })));
    }
}
