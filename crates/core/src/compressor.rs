//! The compression pipeline: analyze → greedy select → rank → lay out →
//! patch branches → pack.

use codense_isa::IsaRef;
use codense_obj::ObjectModule;

use crate::config::{CompressionConfig, EncodingKind};
use crate::dict::Dictionary;
use crate::encoding::{self, try_write_codeword_coded, write_insn_coded};
use crate::error::CompressError;
use crate::greedy::{
    run_greedy, run_greedy_banned, run_greedy_with, BanSet, CandidateIndex, CostModel,
    GreedyParams, MatchfinderKind, PickRecord,
};
use crate::huffcode::HuffCode;
use crate::model::{Cell, ProgramModel};
use crate::nibbles::NibbleWriter;
use crate::selector::SelectorKind;

/// Synthetic high half of the overflow jump table's address (a `.data`
/// object created by the compressor for branches whose patched offsets no
/// longer fit; §3.2.2). Re-exported from `codense-isa` so backends can emit
/// matching dispatch sequences.
pub use codense_isa::OVERFLOW_TABLE_HI;

/// One element of the compressed program's logical stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Atom {
    /// An uncompressed instruction (branches carry their *patched* word).
    Insn {
        /// The (possibly patched) instruction word.
        word: u32,
        /// Original instruction index.
        orig: usize,
    },
    /// A codeword standing for a dictionary entry.
    Codeword {
        /// Dictionary entry index.
        entry: u32,
        /// Original index of the first covered instruction.
        orig: usize,
        /// Instructions covered.
        len: usize,
    },
    /// A branch rewritten to dispatch through the overflow jump table
    /// because its patched offset no longer fits its field.
    ViaTable {
        /// The original branch word.
        word: u32,
        /// Original instruction index.
        orig: usize,
        /// Slot in the overflow table holding the target address.
        slot: usize,
    },
}

impl Atom {
    /// Original index of the first instruction this atom covers.
    pub fn orig(&self) -> usize {
        match *self {
            Atom::Insn { orig, .. } | Atom::Codeword { orig, .. } | Atom::ViaTable { orig, .. } => {
                orig
            }
        }
    }

    /// Original instructions covered.
    pub fn covered(&self) -> usize {
        match *self {
            Atom::Codeword { len, .. } => len,
            _ => 1,
        }
    }
}

/// A compressed program: logical atom stream, dictionary, packed image,
/// patched data tables, and the selection log.
#[derive(Debug, Clone)]
pub struct CompressedProgram {
    /// Program name (copied from the module).
    pub name: String,
    /// Encoding scheme used.
    pub encoding: EncodingKind,
    /// The instruction-set architecture the program was compressed for.
    pub isa: IsaRef,
    /// The instruction dictionary.
    pub dictionary: Dictionary,
    /// Logical stream in program order.
    pub atoms: Vec<Atom>,
    /// Nibble address of each atom.
    pub addresses: Vec<u64>,
    /// The packed byte image of the compressed text section.
    pub image: Vec<u8>,
    /// Total stream length in nibbles.
    pub total_nibbles: u64,
    /// Jump tables patched to compressed (nibble) addresses.
    pub jump_tables: Vec<Vec<u64>>,
    /// Overflow jump table: target nibble address per rewritten branch.
    pub overflow_table: Vec<u64>,
    /// The greedy pick log (enables exact dictionary-size sweeps).
    pub picks: Vec<PickRecord>,
    /// Original text size in bytes.
    pub original_text_bytes: usize,
    /// The canonical Huffman codeword table ([`EncodingKind::Huffman`] only;
    /// `None` for the fixed-layout encodings).
    pub huffman: Option<HuffCode>,
}

impl CompressedProgram {
    /// Compressed text size in bytes (nibbles rounded up).
    pub fn text_bytes(&self) -> usize {
        self.total_nibbles.div_ceil(2) as usize
    }

    /// Dictionary size in bytes.
    pub fn dictionary_bytes(&self) -> usize {
        self.dictionary.size_bytes()
    }

    /// Bytes added to `.data` by overflow-branch rewriting.
    pub fn overflow_table_bytes(&self) -> usize {
        self.overflow_table.len() * 4
    }

    /// Bytes the Huffman decode table adds to the program (one nibble
    /// length per symbol, packed two per byte — the canonical code is fully
    /// determined by lengths); zero for the fixed-layout encodings.
    pub fn huffman_table_bytes(&self) -> usize {
        self.huffman.as_ref().map_or(0, |h| h.nibble_lengths().len().div_ceil(2))
    }

    /// The paper's compression ratio (Eq. 1): compressed size / original
    /// size, where compressed size includes the dictionary (plus any
    /// overflow-table bytes, and the Huffman decode table when that
    /// encoding is in use). Jump tables keep their original size and
    /// cancel out of the ratio.
    pub fn compression_ratio(&self) -> f64 {
        (self.text_bytes()
            + self.dictionary_bytes()
            + self.overflow_table_bytes()
            + self.huffman_table_bytes()) as f64
            / self.original_text_bytes as f64
    }

    /// Nibble address of the original instruction index, if it starts an
    /// atom (branch targets always do).
    pub fn address_of_orig(&self, orig: usize) -> Option<u64> {
        match self.atoms.binary_search_by_key(&orig, Atom::orig) {
            Ok(i) => Some(self.addresses[i]),
            Err(_) => None,
        }
    }

    /// Expands the logical stream back to (original index, word) pairs.
    /// Patched branch atoms yield their *patched* words.
    pub fn expand(&self) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            match *atom {
                Atom::Insn { word, orig } => out.push((orig, word)),
                Atom::Codeword { entry, orig, len } => {
                    let words = &self.dictionary.entry(entry).words;
                    debug_assert_eq!(words.len(), len);
                    for (k, &w) in words.iter().enumerate() {
                        out.push((orig + k, w));
                    }
                }
                Atom::ViaTable { word, orig, .. } => out.push((orig, word)),
            }
        }
        out
    }
}

/// The compressor: a configured compression pipeline.
///
/// ```
/// use codense_core::{Compressor, CompressionConfig};
/// use codense_obj::ObjectModule;
/// use codense_ppc::{encode, Insn, reg::{R3, R0}};
///
/// # fn main() -> Result<(), codense_core::CompressError> {
/// let mut module = ObjectModule::new("demo");
/// module.code = vec![encode(&Insn::Addi { rt: R3, ra: R0, si: 7 }); 64];
/// let compressed = Compressor::new(CompressionConfig::baseline()).compress(&module)?;
/// assert!(compressed.compression_ratio() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compressor {
    config: CompressionConfig,
    matchfinder: MatchfinderKind,
    selector: SelectorKind,
    isa: IsaRef,
}

impl Default for Compressor {
    fn default() -> Compressor {
        Compressor::new(CompressionConfig::default())
    }
}

impl Compressor {
    /// Creates a compressor with the given configuration, targeting PowerPC.
    pub fn new(config: CompressionConfig) -> Compressor {
        Compressor {
            config,
            matchfinder: MatchfinderKind::default(),
            selector: SelectorKind::default(),
            isa: IsaRef(&codense_ppc::ISA),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompressionConfig {
        &self.config
    }

    /// The target instruction-set architecture.
    pub fn isa(&self) -> IsaRef {
        self.isa
    }

    /// Selects which matchfinder backs the greedy pass. Output is
    /// byte-identical for every kind; [`MatchfinderKind::Reference`] exists
    /// for equivalence testing and speed baselining.
    pub fn with_matchfinder(mut self, kind: MatchfinderKind) -> Compressor {
        self.matchfinder = kind;
        self
    }

    /// Selects how dictionary entries are chosen: the greedy fast path
    /// (default) or the iterative-refinement hill climb, which re-scores
    /// candidate swaps with the exact layout cost (see [`crate::selector`]).
    pub fn with_selector(mut self, kind: SelectorKind) -> Compressor {
        self.selector = kind;
        self
    }

    /// The selector in use.
    pub fn selector(&self) -> SelectorKind {
        self.selector
    }

    /// Retargets the compressor at a different instruction-set architecture.
    pub fn with_isa(mut self, isa: IsaRef) -> Compressor {
        self.isa = isa;
        self
    }

    /// Compresses a module.
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    pub fn compress(&self, module: &ObjectModule) -> Result<CompressedProgram, CompressError> {
        self.compress_masked(module, &[])
    }

    /// Compresses a module against a prebuilt [`CandidateIndex`] (mined from
    /// a model of the same module at a window cap ≥ this configuration's
    /// `max_entry_len`). The sweep engine uses this to mine the program once
    /// and reuse the index at every sweep point; output is byte-identical to
    /// [`compress`](Self::compress).
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    ///
    /// # Panics
    ///
    /// Panics if the index's window cap is smaller than
    /// `config.max_entry_len`.
    pub fn compress_with_index(
        &self,
        module: &ObjectModule,
        index: &CandidateIndex,
    ) -> Result<CompressedProgram, CompressError> {
        match self.selector {
            SelectorKind::Greedy => self.compress_inner(module, &[], Some(index), &BanSet::new()),
            SelectorKind::Refine => crate::selector::refine(self, module, &[], Some(index)),
        }
    }

    /// Profile-guided hybrid compression: like [`compress`](Self::compress),
    /// but instruction `i` is exempted from dictionary replacement when
    /// `exempt[i]` is true. Exempt (hot) instructions stay in the stream as
    /// uncompressed atoms, and the greedy selector never counts occurrences
    /// inside them, so hot-only sequences cannot pollute the dictionary
    /// (§5's "leave frequently executed code uncompressed"). Callers derive
    /// block-aligned masks from an execution profile (`codense-profile`);
    /// an empty slice exempts nothing and is byte-identical to
    /// [`compress`](Self::compress).
    ///
    /// # Errors
    ///
    /// See [`CompressError`].
    ///
    /// # Panics
    ///
    /// Panics if `exempt` is non-empty and `exempt.len() != module.len()`.
    pub fn compress_masked(
        &self,
        module: &ObjectModule,
        exempt: &[bool],
    ) -> Result<CompressedProgram, CompressError> {
        match self.selector {
            SelectorKind::Greedy => self.compress_inner(module, exempt, None, &BanSet::new()),
            SelectorKind::Refine => crate::selector::refine(self, module, exempt, None),
        }
    }

    /// Builds the basic-block model with hot (exempt) cells already marked
    /// incompressible — the model state every selection pass runs against.
    pub(crate) fn build_masked_model(
        &self,
        module: &ObjectModule,
        exempt: &[bool],
    ) -> ProgramModel {
        let mut model = ProgramModel::build_isa(module, self.isa);
        if !exempt.is_empty() {
            for block in &mut model.blocks {
                for cell in &mut block.cells {
                    if let Cell::Insn { orig, compressible, .. } = cell {
                        if exempt[*orig] {
                            *compressible = false;
                        }
                    }
                }
            }
        }
        model
    }

    pub(crate) fn compress_inner(
        &self,
        module: &ObjectModule,
        exempt: &[bool],
        shared_index: Option<&CandidateIndex>,
        bans: &BanSet,
    ) -> Result<CompressedProgram, CompressError> {
        self.compress_inner_priced(module, exempt, shared_index, bans, None)
    }

    /// [`compress_inner`] with an overridden codeword-price estimate for
    /// greedy selection (in bits; `None` uses the encoding's default). The
    /// refinement selector probes cheaper prices for the variable-length
    /// encodings — selection admits more candidates, and the exact layout
    /// cost decides whether that was an improvement.
    pub(crate) fn compress_inner_priced(
        &self,
        module: &ObjectModule,
        exempt: &[bool],
        shared_index: Option<&CandidateIndex>,
        bans: &BanSet,
        codeword_bits: Option<u32>,
    ) -> Result<CompressedProgram, CompressError> {
        assert!(
            exempt.is_empty() || exempt.len() == module.len(),
            "exemption mask length {} does not match module length {}",
            exempt.len(),
            module.len()
        );
        let kind = self.config.encoding;
        crate::telemetry::COMPRESS_RUNS.inc();
        if !exempt.is_empty() {
            crate::telemetry::HYBRID_COMPRESSIONS.inc();
            crate::telemetry::HYBRID_EXEMPT_INSNS
                .add(exempt.iter().filter(|&&hot| hot).count() as u64);
        }
        let _phase = crate::telemetry::phase("compress");

        // Escape opcodes must not occur as real instructions under the
        // byte-level schemes (§4.1: escape bytes are *illegal* opcodes).
        // The nibble-granular schemes have explicit escape codewords and
        // accept any instruction word.
        if matches!(kind, EncodingKind::Baseline | EncodingKind::OneByte) {
            for (i, &w) in module.code.iter().enumerate() {
                if self.isa.escape_index((w >> 24) as u8).is_some() {
                    return Err(CompressError::EscapeCollision { at: i, word: w });
                }
            }
        }

        // 1. Greedy dictionary selection over the basic-block model. Hot
        //    (exempt) cells are marked incompressible before selection, so
        //    the occurrence index only ever sees eligible code.
        let greedy_phase = crate::telemetry::phase("greedy");
        let mut model = self.build_masked_model(module, exempt);
        let mut dictionary = Dictionary::new();
        let params = GreedyParams {
            max_entry_len: self.config.max_entry_len,
            max_codewords: self.config.effective_max_codewords(),
            cost: CostModel {
                insn_bits: kind.uncompressed_insn_bits(),
                codeword_bits: codeword_bits.unwrap_or_else(|| kind.codeword_bits_estimate()),
                dict_word_bits: 32,
                dict_entry_fixed_bits: 0,
            },
        };
        let picks = if !bans.is_empty() {
            // Banned selection is the refinement selector's probe; it always
            // runs against an index (the reference matchfinder has no ban
            // support, and refinement reuses one index across all trials).
            match shared_index {
                Some(index) => run_greedy_banned(index, &mut model, &mut dictionary, params, bans),
                None => {
                    let index = CandidateIndex::build(&model, params.max_entry_len)?;
                    run_greedy_banned(&index, &mut model, &mut dictionary, params, bans)
                }
            }
        } else {
            match (shared_index, self.matchfinder) {
                (Some(index), _) => run_greedy_with(index, &mut model, &mut dictionary, params),
                (None, MatchfinderKind::Interned) => {
                    run_greedy(&mut model, &mut dictionary, params)?
                }
                (None, MatchfinderKind::Reference) => {
                    crate::greedy::reference::run_greedy(&mut model, &mut dictionary, params)
                }
            }
        };
        drop(greedy_phase);

        // 2. Rank assignment: shortest codewords to the most-used entries.
        dictionary.assign_ranks_by_use();

        // 3. Initial atom stream.
        let mut atoms: Vec<Atom> = model
            .atoms()
            .map(|cell| match cell {
                Cell::Insn { word, orig, .. } => Atom::Insn { word, orig },
                Cell::Code { entry, orig, len } => Atom::Codeword { entry, orig, len },
                Cell::Dead => unreachable!("atoms() skips tombstones"),
            })
            .collect();

        // 3b. Huffman only: freeze the codeword table from actual usage —
        // per-rank replacement counts plus the initial escape (uncompressed
        // instruction) count. The code stays fixed through the layout
        // fixpoint even though ViaTable rewrites add escaped instructions;
        // frequencies are weights, not an exact stream census.
        let huffman = (kind == EncodingKind::Huffman).then(|| {
            crate::telemetry::HUFFMAN_CODES_BUILT.inc();
            let rank_freqs: Vec<u64> = (0..dictionary.len() as u32)
                .map(|rank| dictionary.entry(dictionary.entry_of_rank(rank)).replaced as u64)
                .collect();
            let escape_freq =
                atoms.iter().filter(|a| matches!(a, Atom::Insn { .. })).count() as u64;
            HuffCode::from_frequencies(&rank_freqs, escape_freq)
        });
        let huff = huffman.as_ref();

        // 4. Layout fixpoint: compute addresses; rewrite branches whose
        //    patched offsets overflow into overflow-table dispatches (which
        //    changes sizes, hence the loop). Rewrites only grow atoms, so
        //    the set of rewritten branches grows monotonically and the loop
        //    terminates.
        let layout_phase = crate::telemetry::phase("layout");
        let mut overflow_slots = 0usize;
        let mut addresses;
        let mut rounds = 0;
        loop {
            crate::telemetry::COMPRESS_LAYOUT_ROUNDS.inc();
            addresses = self.layout(&atoms, &dictionary, huff);
            let addr_of = |orig: usize, atoms: &[Atom]| -> u64 {
                match atoms.binary_search_by_key(&orig, Atom::orig) {
                    Ok(i) => addresses[i],
                    Err(_) => unreachable!("branch target {orig} is not an atom start"),
                }
            };
            let mut changed = false;
            for i in 0..atoms.len() {
                let Atom::Insn { word, orig } = atoms[i] else { continue };
                let Some(info) = self.isa.rel_branch_info(word) else { continue };
                let target = (orig as i64 + (info.offset / 4) as i64) as usize;
                let delta = addr_of(target, &atoms) as i64 - addresses[i] as i64;
                if !self.isa.offset_expressible(info.kind, delta, kind.granule_nibbles()) {
                    // Rewrite through the overflow table. Branches the ISA
                    // cannot expand into a dispatch sequence (e.g. PowerPC's
                    // CTR-decrementing forms, whose dispatch would clobber
                    // CTR) are unsupported.
                    let insn_nibbles = encoding::insn_nibbles_coded(kind, huff);
                    if self
                        .isa
                        .overflow_expansion(word, 0, kind.granule_nibbles(), insn_nibbles)
                        .is_none()
                    {
                        return Err(CompressError::UnsupportedOverflowBranch { at: orig });
                    }
                    atoms[i] = Atom::ViaTable { word, orig, slot: overflow_slots };
                    crate::telemetry::COMPRESS_OVERFLOW_REWRITES.inc();
                    overflow_slots += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rounds += 1;
            if rounds > 64 {
                return Err(CompressError::LayoutDiverged);
            }
        }

        // 5. Patch branch offsets and collect overflow-table targets.
        // Targets are atom starts and atoms stay sorted by original index
        // (patching rewrites words, never `orig`), so the same binary
        // search the fixpoint loop uses stands in for a hash map of every
        // atom address.
        let addr_of = |orig: usize, atoms: &[Atom], addresses: &[u64]| -> u64 {
            match atoms.binary_search_by_key(&orig, Atom::orig) {
                Ok(i) => addresses[i],
                Err(_) => unreachable!("branch target {orig} is not an atom start"),
            }
        };
        let mut overflow_table = vec![0u64; overflow_slots];
        for i in 0..atoms.len() {
            match atoms[i] {
                Atom::Insn { word, orig } => {
                    let Some(info) = self.isa.rel_branch_info(word) else { continue };
                    let target = (orig as i64 + (info.offset / 4) as i64) as usize;
                    let delta = addr_of(target, &atoms, &addresses) as i64 - addresses[i] as i64;
                    let units = delta / kind.granule_nibbles() as i64;
                    let patched = self.isa.patch_offset_units(word, info.kind, units as i32);
                    atoms[i] = Atom::Insn { word: patched, orig };
                }
                Atom::ViaTable { word, orig, slot } => {
                    let info = self.isa.rel_branch_info(word).expect("ViaTable holds a branch");
                    let target = (orig as i64 + (info.offset / 4) as i64) as usize;
                    overflow_table[slot] = addr_of(target, &atoms, &addresses);
                }
                Atom::Codeword { .. } => {}
            }
        }

        drop(layout_phase);

        // 6. Pack the image.
        let pack_phase = crate::telemetry::phase("pack");
        let mut w = NibbleWriter::new();
        for (i, atom) in atoms.iter().enumerate() {
            debug_assert_eq!(w.len(), addresses[i], "layout/pack disagreement at atom {i}");
            match *atom {
                Atom::Insn { word, .. } => write_insn_coded(kind, huff, &mut w, word),
                Atom::Codeword { entry, .. } => try_write_codeword_coded(
                    kind,
                    self.isa,
                    huff,
                    &mut w,
                    dictionary.rank_of(entry),
                )?,
                Atom::ViaTable { word, slot, .. } => {
                    for insn_word in via_table_expansion_coded(self.isa, kind, huff, word, slot) {
                        write_insn_coded(kind, huff, &mut w, insn_word);
                    }
                }
            }
        }
        let total_nibbles = w.len();
        drop(pack_phase);

        // 7. Patch jump tables to compressed addresses.
        let jump_tables = module
            .jump_tables
            .iter()
            .map(|t| t.targets.iter().map(|&idx| addr_of(idx, &atoms, &addresses)).collect())
            .collect();

        Ok(CompressedProgram {
            name: module.name.clone(),
            encoding: kind,
            isa: self.isa,
            dictionary,
            atoms,
            addresses,
            image: w.into_bytes(),
            total_nibbles,
            jump_tables,
            overflow_table,
            picks,
            original_text_bytes: module.text_bytes(),
            huffman,
        })
    }

    /// Computes each atom's nibble address under the current sizes.
    fn layout(&self, atoms: &[Atom], dict: &Dictionary, huff: Option<&HuffCode>) -> Vec<u64> {
        let kind = self.config.encoding;
        let mut addr = 0u64;
        let mut out = Vec::with_capacity(atoms.len());
        for atom in atoms {
            out.push(addr);
            addr += atom_nibbles_coded(self.isa, kind, huff, atom, dict);
        }
        out
    }
}

/// Size of one atom in nibbles (PowerPC; see [`atom_nibbles_with`]).
pub fn atom_nibbles(kind: EncodingKind, atom: &Atom, dict: &Dictionary) -> u64 {
    atom_nibbles_with(IsaRef(&codense_ppc::ISA), kind, atom, dict)
}

/// Size of one atom in nibbles under `isa` (fixed-layout encodings; for
/// [`EncodingKind::Huffman`] use [`atom_nibbles_coded`]).
pub fn atom_nibbles_with(isa: IsaRef, kind: EncodingKind, atom: &Atom, dict: &Dictionary) -> u64 {
    atom_nibbles_coded(isa, kind, None, atom, dict)
}

/// Size of one atom in nibbles under `isa`, with the program's Huffman
/// codeword table when the encoding needs one.
///
/// # Panics
///
/// Panics if `kind` is [`EncodingKind::Huffman`] and `huff` is `None`, or
/// the atom's rank has no codeword in the table.
pub fn atom_nibbles_coded(
    isa: IsaRef,
    kind: EncodingKind,
    huff: Option<&HuffCode>,
    atom: &Atom,
    dict: &Dictionary,
) -> u64 {
    match *atom {
        Atom::Insn { .. } => encoding::insn_nibbles_coded(kind, huff) as u64,
        Atom::Codeword { entry, .. } => {
            let rank = dict.rank_of(entry);
            encoding::try_codeword_nibbles_coded(kind, huff, rank)
                .unwrap_or_else(|| panic!("rank {rank} has no codeword under {kind:?}"))
                as u64
        }
        Atom::ViaTable { word, slot, .. } => {
            via_table_expansion_coded(isa, kind, huff, word, slot).len() as u64
                * encoding::insn_nibbles_coded(kind, huff) as u64
        }
    }
}

/// The instruction sequence a [`Atom::ViaTable`] packs under PowerPC (see
/// [`via_table_expansion_with`]).
pub fn via_table_expansion(kind: EncodingKind, word: u32, slot: usize) -> Vec<u32> {
    via_table_expansion_with(IsaRef(&codense_ppc::ISA), kind, word, slot)
}

/// The instruction sequence a [`Atom::ViaTable`] packs under `isa`
/// (fixed-layout encodings; for [`EncodingKind::Huffman`] use
/// [`via_table_expansion_coded`]).
///
/// # Panics
///
/// Panics if the ISA cannot expand `word` (the compressor rejects such
/// branches with [`CompressError::UnsupportedOverflowBranch`] earlier).
pub fn via_table_expansion_with(
    isa: IsaRef,
    kind: EncodingKind,
    word: u32,
    slot: usize,
) -> Vec<u32> {
    via_table_expansion_coded(isa, kind, None, word, slot)
}

/// The instruction sequence a [`Atom::ViaTable`] packs under `isa`: an
/// optional inverted conditional skip, then a dispatch sequence loading the
/// true target from the overflow jump table (the paper's "modified to load
/// their targets through jump tables", §3.2.2). The escaped-instruction
/// width the skip displacement is computed at depends on the Huffman escape
/// length, hence the table parameter.
///
/// # Panics
///
/// Panics if the ISA cannot expand `word` (the compressor rejects such
/// branches with [`CompressError::UnsupportedOverflowBranch`] earlier), or
/// if `kind` is [`EncodingKind::Huffman`] and `huff` is `None`.
pub fn via_table_expansion_coded(
    isa: IsaRef,
    kind: EncodingKind,
    huff: Option<&HuffCode>,
    word: u32,
    slot: usize,
) -> Vec<u32> {
    isa.overflow_expansion(
        word,
        slot as u32,
        kind.granule_nibbles(),
        encoding::insn_nibbles_coded(kind, huff),
    )
    .expect("ViaTable holds a supported relative branch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_ppc::branch::RelBranchKind;
    use codense_ppc::encode;
    use codense_ppc::insn::{bo, Insn};
    use codense_ppc::reg::*;

    fn addi(rt: u8, si: i16) -> u32 {
        encode(&Insn::Addi { rt: codense_ppc::Gpr::new(rt).unwrap(), ra: R3, si })
    }

    fn simple_module(words: Vec<u32>) -> ObjectModule {
        let mut m = ObjectModule::new("t");
        m.code = words;
        m
    }

    #[test]
    fn repeated_block_compresses() {
        let mut words = Vec::new();
        for _ in 0..32 {
            words.extend_from_slice(&[addi(3, 1), addi(4, 2), addi(5, 3), addi(6, 4)]);
        }
        let m = simple_module(words);
        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        assert!(c.compression_ratio() < 0.25, "ratio = {}", c.compression_ratio());
        assert!(!c.dictionary.is_empty());
        // Expanded stream equals the original.
        let expanded = c.expand();
        assert_eq!(expanded.len(), m.len());
        for (orig, w) in expanded {
            assert_eq!(w, m.code[orig]);
        }
    }

    #[test]
    fn unique_program_stays_uncompressed() {
        let words: Vec<u32> = (0..64).map(|i| addi(3, i)).collect();
        let m = simple_module(words);
        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        assert_eq!(c.dictionary.len(), 0);
        assert_eq!(c.text_bytes(), m.text_bytes());
        assert!((c.compression_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn escape_collision_detected() {
        let m = simple_module(vec![0x0000_0000; 8]); // opcode 0 is an escape
        let err = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap_err();
        assert!(matches!(err, CompressError::EscapeCollision { at: 0, .. }));
        // The nibble scheme has explicit escapes and accepts such words.
        let ok = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m);
        assert!(ok.is_ok());
    }

    #[test]
    fn branches_patched_to_new_addresses() {
        use codense_ppc::asm::Assembler;
        let mut a = Assembler::new();
        // A compressible prefix that shrinks, then a backwards branch whose
        // offset must be re-encoded at 2-byte granularity.
        for _ in 0..8 {
            a.emit(Insn::Addi { rt: R3, ra: R3, si: 5 });
            a.emit(Insn::Addi { rt: R4, ra: R4, si: 5 });
        }
        a.label("target");
        a.emit(Insn::Addi { rt: R5, ra: R5, si: 1 });
        a.emit(Insn::Cmpwi { bf: CR0, ra: R5, si: 3 });
        a.bne(CR0, "target");
        a.emit(Insn::Sc);
        let mut m = ObjectModule::new("t");
        m.code = a.finish().unwrap();

        let c = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        crate::verify::verify(&m, &c).unwrap();
    }

    #[test]
    fn via_table_expansion_shapes() {
        // Unconditional branch: 4-instruction dispatch, no skip.
        let b = encode(&Insn::B { li: 4096, aa: false, lk: false });
        let seq = via_table_expansion(EncodingKind::Baseline, b, 3);
        assert_eq!(seq.len(), 4);
        assert!(matches!(codense_ppc::decode(seq[3]), Insn::Bcctr { lk: false, .. }));
        // Call keeps LK.
        let bl = encode(&Insn::B { li: 4096, aa: false, lk: true });
        let seq = via_table_expansion(EncodingKind::Baseline, bl, 0);
        assert!(matches!(codense_ppc::decode(seq[3]), Insn::Bcctr { lk: true, .. }));
        // Conditional branch gains an inverted skip.
        let bc = encode(&Insn::Bc { bo: bo::IF_TRUE, bi: 2, bd: 64, aa: false, lk: false });
        let seq = via_table_expansion(EncodingKind::Baseline, bc, 0);
        assert_eq!(seq.len(), 5);
        match codense_ppc::decode(seq[0]) {
            Insn::Bc { bo: b, bi, .. } => {
                assert_eq!(b, bo::IF_FALSE);
                assert_eq!(bi, 2);
            }
            other => panic!("expected inverted bc, got {other:?}"),
        }
        // Skip displacement covers the whole 5-instruction atom.
        let units = codense_ppc::branch::read_offset_units(seq[0], RelBranchKind::BForm);
        assert_eq!(units as u32 * EncodingKind::Baseline.granule_nibbles(), 5 * 8);
    }

    #[test]
    fn one_byte_scheme_small_dictionary() {
        let mut words = Vec::new();
        for _ in 0..64 {
            words.extend_from_slice(&[addi(3, 1), addi(4, 2)]);
        }
        let m = simple_module(words);
        let c = Compressor::new(CompressionConfig::small_dictionary(8)).compress(&m).unwrap();
        assert!(c.dictionary.len() <= 8);
        assert!(c.dictionary_bytes() <= 128);
        assert!(c.compression_ratio() < 0.5);
    }

    #[test]
    fn nibble_scheme_beats_baseline_on_redundant_code() {
        let mut words = Vec::new();
        for i in 0..64 {
            words.extend_from_slice(&[addi(3, 1), addi(4, 2), addi(5, (i % 4) as i16)]);
        }
        let m = simple_module(words);
        let base = Compressor::new(CompressionConfig::baseline()).compress(&m).unwrap();
        let nib = Compressor::new(CompressionConfig::nibble_aligned()).compress(&m).unwrap();
        assert!(
            nib.compression_ratio() < base.compression_ratio(),
            "nibble {} vs baseline {}",
            nib.compression_ratio(),
            base.compression_ratio()
        );
    }
}
