//! A std-only scoped worker pool: order-preserving `par_map` over indexed
//! work items, with a process-wide job count (`--jobs N` in the CLIs).
//!
//! The registry is unreachable in the build environment, so no rayon — this
//! is the minimal primitive the compression and sweep layers need:
//!
//! * **Order preservation.** `par_map(items, f)` returns results in item
//!   order regardless of completion order, so callers observe exactly the
//!   sequential output shape.
//! * **Exact sequential reference.** With `jobs == 1` (or a single item) no
//!   threads are spawned at all; the closure runs inline on the caller's
//!   stack in item order. `--jobs 1` therefore *is* the sequential
//!   implementation, not a one-worker simulation of it.
//! * **No nested fan-out.** A `par_map` inside a pool worker runs
//!   sequentially (a thread-local marks pool context). Outer parallelism —
//!   sweep points, suite benchmarks — already saturates the machine;
//!   nesting would oversubscribe it with `jobs²` threads.
//!
//! Work is distributed dynamically (a shared iterator behind a mutex), so
//! uneven item costs — e.g. `gcc` vs `compress` in the benchmark suite —
//! don't serialize on the slowest-first static partition. Determinism is
//! unaffected: only the *completion order* varies; results are reassembled
//! by index.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide job count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads — nested `par_map`s run sequentially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Sets the process-wide worker count used by [`par_map`]. `0` restores the
/// default (one worker per available hardware thread). `1` selects the
/// exact sequential reference path.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the last [`set_jobs`] value, or the
/// machine's available parallelism when unset (or set to 0).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on up to [`jobs`] worker threads, preserving item
/// order in the output. `f` receives `(index, item)`.
///
/// Equivalent to `items.into_iter().enumerate().map(|(i, x)| f(i, x))` in
/// every observable way except wall-clock time.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (callers normally use the
/// process-wide setting).
pub fn par_map_with<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let nested = IN_POOL.with(Cell::get);
    if jobs <= 1 || n <= 1 || nested {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    // Hold the queue lock only to pop; run `f` outside it.
                    let next = queue.lock().unwrap().next();
                    let Some((i, item)) = next else { break };
                    let r = f(i, item);
                    done.lock().unwrap().push((i, r));
                }
            });
        }
    });

    let mut pairs = done.into_inner().unwrap();
    debug_assert_eq!(pairs.len(), n, "every item produces exactly one result");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size
/// (the shorter ranges last). Used to chunk block lists for parallel index
/// construction.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let got = par_map_with(8, items.clone(), |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..257).map(|i| i * 37 % 101).collect();
        let seq = par_map_with(1, items.clone(), |i, x| x.wrapping_mul(i as u64 + 1));
        let par = par_map_with(7, items, |i, x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(par_map_with(4, Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(4, vec![9], |i, x| x + i as u32), vec![9]);
    }

    #[test]
    fn nested_par_map_runs_sequentially() {
        // Inner par_map inside a worker must not deadlock or fan out; it
        // must still produce correct, ordered results.
        let got = par_map_with(4, vec![10usize, 20, 30], |_, base| {
            par_map_with(4, (0..5usize).collect(), move |_, k| base + k)
        });
        assert_eq!(
            got,
            vec![vec![10, 11, 12, 13, 14], vec![20, 21, 22, 23, 24], vec![30, 31, 32, 33, 34]]
        );
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 1500] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|&(s, e)| e - s).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous");
                }
                if n > 0 {
                    assert_eq!(ranges.first().unwrap().0, 0);
                    assert_eq!(ranges.last().unwrap().1, n);
                    assert!(ranges.len() <= parts.min(n));
                }
            }
        }
    }

    #[test]
    fn jobs_setting_roundtrip() {
        // Other tests may race on the global; just check set/get coherence
        // of nonzero values through the public API.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
