//! Deterministic pipeline telemetry: typed counters and hierarchical phase
//! timers behind `--metrics` on the CLI front ends.
//!
//! The design splits observability into two planes with different
//! determinism contracts:
//!
//! * **Counters** ([`Counter`]) count *work*, never time: heap pops in the
//!   greedy selector, occurrence-index window updates, codeword expansions
//!   in the VM fetch path, cache misses, fuzz cases. Every increment site
//!   counts a unit of work whose total is independent of scheduling, and
//!   aggregation is a commutative atomic add — so for a fixed input the
//!   final value of every counter is **byte-identical between `--jobs 1`
//!   and `--jobs N`**. The `metrics-determinism` tests pin this.
//! * **Phase timers** ([`phase`]) measure wall-clock time in a hierarchy
//!   (`repro/compress/greedy`). Timings are inherently nondeterministic and
//!   are reported in a separate `timings` section that determinism checks
//!   exclude. Phase *paths* nest through a thread-local stack, so a phase
//!   opened on a worker thread records under its own root rather than
//!   inheriting an unrelated parent.
//!
//! Every counter in the system is declared in this module (the registry is
//! the [`counters`] array), giving the JSON report a closed, schema-stable
//! key set: a counter that never fires still appears with value 0. The
//! report format is documented in `EXPERIMENTS.md` and produced by
//! [`metrics_json`]; [`render_summary`] renders the human-oriented per-phase
//! table printed to stderr.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A named monotonic event counter. Increments are relaxed atomic adds:
/// commutative, so totals are independent of thread interleaving.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter (used by this module's static registry and by
    /// tests needing a private instance).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// The counter's registry name (`layer.event`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to `n` if it is currently below (a high-water
    /// mark). `max` is commutative and idempotent, so marks recorded from
    /// any thread interleaving of the *same* work agree.
    #[inline]
    pub fn record_max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

macro_rules! registry {
    ($($ident:ident => $name:literal),+ $(,)?) => {
        $(
            #[doc = concat!("The `", $name, "` counter.")]
            pub static $ident: Counter = Counter::new($name);
        )+

        /// Every counter in the system, sorted by name. The closed set makes
        /// the `counters` section of the metrics report schema-stable.
        pub fn counters() -> &'static [&'static Counter] {
            static ALL: &[&Counter] = &[$(&$ident),+];
            ALL
        }
    };
}

// Sorted by name; `registry_is_sorted` pins the order (the JSON report
// relies on it for stable output).
registry! {
    CACHE_ACCESSES => "cache.accesses",
    CACHE_EVICTIONS => "cache.evictions",
    CACHE_HITS => "cache.hits",
    CACHE_MISSES => "cache.misses",
    CACHE_REPLAYS => "cache.replays",
    COMPRESS_LAYOUT_ROUNDS => "compress.layout_rounds",
    COMPRESS_OVERFLOW_REWRITES => "compress.overflow_rewrites",
    COMPRESS_RUNS => "compress.runs",
    FUZZ_CASES => "fuzz.cases",
    FUZZ_DIVERGENCES => "fuzz.divergences",
    FUZZ_FAULT_CHECKS => "fuzz.fault_checks",
    FUZZ_LOCKSTEP_RUNS => "fuzz.lockstep_runs",
    FUZZ_SHRINK_CANDIDATES => "fuzz.shrink_candidates",
    GREEDY_CANDIDATES_SEEDED => "greedy.candidates_seeded",
    GREEDY_HEAP_POPS => "greedy.heap_pops",
    GREEDY_INDEX_REUSES => "greedy.index_reuses",
    GREEDY_INTERNED_SEQS => "greedy.interned_seqs",
    GREEDY_INTERNED_WORDS => "greedy.interned_words",
    GREEDY_PICKS_ACCEPTED => "greedy.picks_accepted",
    GREEDY_REMOVAL_ALLOCS => "greedy.removal_allocs",
    GREEDY_REPLACEMENTS => "greedy.replacements",
    GREEDY_STALE_REINSERTS => "greedy.stale_reinserts",
    GREEDY_WINDOW_ADDS => "greedy.window_adds",
    GREEDY_WINDOW_REMOVES => "greedy.window_removes",
    HUFFMAN_CODES_BUILT => "huffman.codes_built",
    HYBRID_COMPRESSIONS => "hybrid.compressions",
    HYBRID_EXEMPT_INSNS => "hybrid.exempt_insns",
    HYBRID_HOT_BLOCKS => "hybrid.hot_blocks",
    HYBRID_SWEEP_POINTS => "hybrid.sweep_points",
    PROFILE_BLOCKS => "profile.blocks",
    PROFILE_INSNS_COUNTED => "profile.insns_counted",
    PROFILE_RUNS => "profile.runs",
    REFINE_RUNS => "refine.runs",
    REFINE_SWAPS_ACCEPTED => "refine.swaps_accepted",
    REFINE_TRIALS => "refine.trials",
    SERVE_BYTES_IN => "serve.bytes_in",
    SERVE_BYTES_OUT => "serve.bytes_out",
    SERVE_CACHE_BYTES_HIGH_WATER => "serve.cache.bytes_high_water",
    SERVE_CACHE_EVICTIONS => "serve.cache.evictions",
    SERVE_CACHE_HITS => "serve.cache.hits",
    SERVE_CACHE_MISSES => "serve.cache.misses",
    SERVE_CONNS_ACCEPTED => "serve.conns_accepted",
    SERVE_FRAMES_BAD => "serve.frames_bad",
    SERVE_PIPELINE_HIGH_WATER => "serve.pipeline_high_water",
    SERVE_QUEUE_HIGH_WATER => "serve.queue_high_water",
    SERVE_REQUESTS_ACCEPTED => "serve.requests_accepted",
    SERVE_REQUESTS_BUSY => "serve.requests_busy",
    SERVE_REQUESTS_FAILED => "serve.requests_failed",
    SERVE_REQUESTS_OK => "serve.requests_ok",
    SWEEP_FULL_COMPRESSIONS => "sweep.full_compressions",
    SWEEP_POINTS => "sweep.points",
    SWEEP_PREFIX_POINTS => "sweep.prefix_points",
    VERIFY_RUNS => "verify.runs",
    VM_FETCH_BUFFERED_INSNS => "vm.fetch.buffered_insns",
    VM_FETCH_CODEWORDS => "vm.fetch.codewords",
    VM_FETCH_ESCAPES => "vm.fetch.escapes",
    VM_FETCH_LINEAR_INSNS => "vm.fetch.linear_insns",
    VM_FETCH_NIBBLES => "vm.fetch.nibbles",
    VM_FETCH_REALIGNS => "vm.fetch.realigns",
}

/// Accumulated wall-clock statistics of one phase path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall-clock nanoseconds across calls.
    pub total_ns: u64,
}

struct TimerState {
    /// Phase path (`a/b/c`) → accumulated stats.
    phases: std::collections::BTreeMap<String, PhaseStat>,
    /// Wall-clock epoch: process start or last [`reset`].
    epoch: Instant,
}

fn timers() -> &'static Mutex<TimerState> {
    static TIMERS: std::sync::OnceLock<Mutex<TimerState>> = std::sync::OnceLock::new();
    TIMERS.get_or_init(|| {
        Mutex::new(TimerState { phases: std::collections::BTreeMap::new(), epoch: Instant::now() })
    })
}

thread_local! {
    /// The open phases on this thread, outermost first.
    static PHASE_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// An open phase; dropping it records the elapsed wall-clock time under the
/// phase's hierarchical path.
#[must_use = "a phase measures the scope it is bound to"]
#[derive(Debug)]
pub struct PhaseGuard {
    start: Instant,
}

/// Opens a phase. Phases nest per thread: a phase opened while another is
/// open records under `outer/inner`.
pub fn phase(name: &'static str) -> PhaseGuard {
    PHASE_STACK.with(|s| s.borrow_mut().push(name));
    PhaseGuard { start: Instant::now() }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let path = PHASE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut t = timers().lock().unwrap();
        let stat = t.phases.entry(path).or_default();
        stat.calls += 1;
        stat.total_ns += elapsed.as_nanos() as u64;
    }
}

/// Zeroes every counter, clears phase statistics, and restarts the
/// wall-clock epoch. Call at the start of an instrumented command (or
/// between measured sections in tests).
pub fn reset() {
    for c in counters() {
        c.reset();
    }
    let mut t = timers().lock().unwrap();
    t.phases.clear();
    t.epoch = Instant::now();
}

/// Snapshot of every counter as `(name, value)`, in registry (name) order.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    counters().iter().map(|c| (c.name(), c.get())).collect()
}

/// Snapshot of every recorded phase as `(path, stat)`, sorted by path.
pub fn phase_snapshot() -> Vec<(String, PhaseStat)> {
    timers().lock().unwrap().phases.iter().map(|(k, &v)| (k.clone(), v)).collect()
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full metrics report: schema-stable JSON with sorted keys and
/// fixed indentation.
///
/// Layout (`schema` 1):
///
/// ```json
/// {
///   "command": "<subcommand>",
///   "counters": { "<layer.event>": <u64>, ... },
///   "schema": 1,
///   "timings": {
///     "jobs": <u64>,
///     "phases": [ { "calls": <u64>, "name": "<a/b>", "total_us": <u64> } ],
///     "wall_us": <u64>
///   }
/// }
/// ```
///
/// The `counters` object is the determinism contract: for a fixed workload
/// it is byte-identical at any `--jobs` value. `timings` carries wall-clock
/// data and the worker count and is excluded from determinism checks.
pub fn metrics_json(command: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"command\": \"{}\",\n", json_escape(command)));
    out.push_str("  \"counters\": {\n");
    let counters = counter_snapshot();
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  },\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"timings\": {\n");
    out.push_str(&format!("    \"jobs\": {},\n", crate::parallel::jobs()));
    out.push_str("    \"phases\": [\n");
    let phases = phase_snapshot();
    for (i, (path, stat)) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        out.push_str(&format!(
            "      {{ \"calls\": {}, \"name\": \"{}\", \"total_us\": {} }}{comma}\n",
            stat.calls,
            json_escape(path),
            stat.total_ns / 1_000
        ));
    }
    out.push_str("    ],\n");
    let wall = timers().lock().unwrap().epoch.elapsed();
    out.push_str(&format!("    \"wall_us\": {}\n", wall.as_micros()));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Renders the per-phase summary table (plus non-zero counters) printed to
/// stderr by instrumented commands.
pub fn render_summary() -> String {
    let phases = phase_snapshot();
    let mut out = String::new();
    out.push_str("--- telemetry ---\n");
    if !phases.is_empty() {
        let width = phases.iter().map(|(p, _)| p.len()).max().unwrap_or(5).max(5);
        out.push_str(&format!("{:width$}  {:>6}  {:>12}\n", "phase", "calls", "total"));
        for (path, stat) in &phases {
            out.push_str(&format!(
                "{path:width$}  {:>6}  {:>9.1?}\n",
                stat.calls,
                std::time::Duration::from_nanos(stat.total_ns)
            ));
        }
    }
    let hot: Vec<(&str, u64)> = counter_snapshot().into_iter().filter(|&(_, v)| v > 0).collect();
    if !hot.is_empty() {
        let width = hot.iter().map(|(n, _)| n.len()).max().unwrap().max(7);
        out.push_str(&format!("{:width$}  {:>14}\n", "counter", "value"));
        for (name, value) in hot {
            out.push_str(&format!("{name:width$}  {value:>14}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "registry must be sorted by name, without duplicates");
    }

    #[test]
    fn counter_arithmetic() {
        static LOCAL: Counter = Counter::new("test.local");
        assert_eq!(LOCAL.get(), 0);
        LOCAL.inc();
        LOCAL.add(41);
        assert_eq!(LOCAL.get(), 42);
        assert_eq!(LOCAL.name(), "test.local");
    }

    #[test]
    fn json_is_schema_stable() {
        // Two reports from the same process have identical key structure:
        // strip values and compare shapes.
        let shape = |json: &str| -> Vec<String> {
            json.lines().filter_map(|l| l.split(':').next()).map(str::to_string).collect()
        };
        let a = metrics_json("x");
        let b = metrics_json("x");
        assert_eq!(shape(&a), shape(&b));
        assert!(a.contains("\"schema\": 1"));
        assert!(a.contains("\"counters\""));
        assert!(a.contains("\"timings\""));
        // Every registered counter appears even when untouched.
        for c in counters() {
            assert!(a.contains(&format!("\"{}\":", c.name())), "{} missing", c.name());
        }
    }

    #[test]
    fn phases_nest_into_paths() {
        // Use distinctive names to find our entries among other tests'.
        {
            let _outer = phase("telemetry-test-outer");
            let _inner = phase("telemetry-test-inner");
        }
        let phases = phase_snapshot();
        assert!(
            phases
                .iter()
                .any(|(p, s)| p == "telemetry-test-outer/telemetry-test-inner" && s.calls >= 1),
            "{phases:?}"
        );
        assert!(phases.iter().any(|(p, _)| p == "telemetry-test-outer"), "{phases:?}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }
}
