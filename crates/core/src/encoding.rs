//! Codeword encodings: how codeword *ranks* are serialized into the
//! compressed instruction stream, and how the stream is parsed back.
//!
//! All three schemes share one contract: the stream is a sequence of items,
//! each either an uncompressed 32-bit instruction or a codeword rank, and the
//! first nibble(s) of an item unambiguously classify it.

use crate::config::EncodingKind;
use crate::huffcode::HuffCode;
use crate::nibbles::{NibbleReader, NibbleWriter};
use codense_isa::IsaRef;

/// One parsed stream item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Item {
    /// An uncompressed instruction word.
    Insn(u32),
    /// A codeword with the given rank.
    Codeword(u32),
}

/// The nibble-aligned variable-length layout (the paper's Fig 10).
///
/// First-nibble classes:
///
/// | first nibble | item                              | count |
/// |--------------|-----------------------------------|-------|
/// | `0..=7`      | 4-bit codeword, ranks 0–7         | 8     |
/// | `8..=10`     | 8-bit codeword, ranks 8–55        | 48    |
/// | `11..=12`    | 12-bit codeword, ranks 56–567     | 512   |
/// | `13..=14`    | 16-bit codeword, ranks 568–8759   | 8192  |
/// | `15`         | escape: 32-bit instruction follows | —    |
///
/// The paper gives the format shape (4/8/12/16-bit codewords plus an escape
/// for 36-bit uncompressed instructions) without the exact class split; this
/// allocation matches its description of "8 … 4-bit codewords … and a few
/// thousand 12-bit and 16-bit codewords".
pub mod nibble {
    /// The escape nibble introducing an uncompressed instruction.
    pub const ESCAPE: u8 = 0xF;
    /// Ranks encodable in 4 bits.
    pub const N4: u32 = 8;
    /// Ranks encodable in 8 bits.
    pub const N8: u32 = 3 * 16;
    /// Ranks encodable in 12 bits.
    pub const N12: u32 = 2 * 256;
    /// Ranks encodable in 16 bits.
    pub const N16: u32 = 2 * 4096;
    /// Total codeword capacity (8760).
    pub const CAPACITY: usize = (N4 + N8 + N12 + N16) as usize;

    /// Codeword length in nibbles for a rank, or `None` if the rank does
    /// not fit the codeword space.
    pub const fn try_codeword_nibbles(rank: u32) -> Option<u32> {
        if rank < N4 {
            Some(1)
        } else if rank < N4 + N8 {
            Some(2)
        } else if rank < N4 + N8 + N12 {
            Some(3)
        } else if rank < CAPACITY as u32 {
            Some(4)
        } else {
            None
        }
    }

    /// Codeword length in nibbles for a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= CAPACITY`; use [`try_codeword_nibbles`] when the
    /// rank is not known to be in range.
    pub const fn codeword_nibbles(rank: u32) -> u32 {
        match try_codeword_nibbles(rank) {
            Some(n) => n,
            None => panic!("rank out of nibble codeword space"),
        }
    }
}

/// How many nibbles an uncompressed instruction occupies in the stream.
///
/// # Panics
///
/// Panics for [`EncodingKind::Huffman`], whose escape length depends on the
/// program's code table; use [`insn_nibbles_coded`] there.
pub fn insn_nibbles(kind: EncodingKind) -> u32 {
    insn_nibbles_coded(kind, None)
}

/// How many nibbles an uncompressed instruction occupies in the stream,
/// given the program's Huffman code table when the encoding needs one.
///
/// # Panics
///
/// Panics when `kind` is [`EncodingKind::Huffman`] and `huff` is `None`.
pub fn insn_nibbles_coded(kind: EncodingKind, huff: Option<&HuffCode>) -> u32 {
    match kind {
        EncodingKind::NibbleAligned => 9,
        EncodingKind::Huffman => {
            huff.expect("huffman encoding requires its code table").escape_len() + 8
        }
        _ => 8,
    }
}

/// How many nibbles the codeword of the given rank occupies, or `None` if
/// the rank does not fit the encoding's codeword space (always `None` for
/// [`EncodingKind::Huffman`], whose lengths live in the program's code
/// table — use [`try_codeword_nibbles_coded`]).
pub fn try_codeword_nibbles(kind: EncodingKind, rank: u32) -> Option<u32> {
    try_codeword_nibbles_coded(kind, None, rank)
}

/// How many nibbles the codeword of the given rank occupies under the given
/// Huffman table, or `None` if the rank does not fit the codeword space.
pub fn try_codeword_nibbles_coded(
    kind: EncodingKind,
    huff: Option<&HuffCode>,
    rank: u32,
) -> Option<u32> {
    if rank as usize >= kind.capacity() {
        return None;
    }
    match kind {
        EncodingKind::Baseline => Some(4),
        EncodingKind::OneByte => Some(2),
        EncodingKind::NibbleAligned => nibble::try_codeword_nibbles(rank),
        EncodingKind::Huffman => huff?.codeword_len(rank),
    }
}

/// How many nibbles the codeword of the given rank occupies.
///
/// # Panics
///
/// Panics if `rank` exceeds the encoding's capacity; use
/// [`try_codeword_nibbles`] when the rank is not known to be in range.
pub fn codeword_nibbles(kind: EncodingKind, rank: u32) -> u32 {
    try_codeword_nibbles(kind, rank)
        .unwrap_or_else(|| panic!("rank {rank} out of {kind:?} codeword space"))
}

/// Serializes an uncompressed instruction into the stream.
///
/// # Panics
///
/// Panics for [`EncodingKind::Huffman`]; use [`write_insn_coded`] there.
pub fn write_insn(kind: EncodingKind, w: &mut NibbleWriter, word: u32) {
    write_insn_coded(kind, None, w, word);
}

/// Serializes an uncompressed instruction into the stream, given the
/// program's Huffman code table when the encoding needs one.
///
/// # Panics
///
/// Panics when `kind` is [`EncodingKind::Huffman`] and `huff` is `None`.
pub fn write_insn_coded(
    kind: EncodingKind,
    huff: Option<&HuffCode>,
    w: &mut NibbleWriter,
    word: u32,
) {
    match kind {
        EncodingKind::NibbleAligned => w.push(nibble::ESCAPE),
        EncodingKind::Huffman => {
            let h = huff.expect("huffman encoding requires its code table");
            h.write_symbol(w, h.escape_symbol());
        }
        _ => {}
    }
    w.push_u32(word);
}

/// Serializes a codeword rank into the stream, or returns
/// [`CompressError::CodewordSpaceExhausted`] if the rank does not fit the
/// encoding's codeword space. Nothing is written on error.
///
/// PowerPC convenience wrapper over [`try_write_codeword_with`].
pub fn try_write_codeword(
    kind: EncodingKind,
    w: &mut NibbleWriter,
    rank: u32,
) -> Result<(), crate::CompressError> {
    try_write_codeword_with(kind, IsaRef(&codense_ppc::ISA), w, rank)
}

/// Serializes a codeword rank into the stream under `isa`'s escape-byte
/// reservation, or returns [`CompressError::CodewordSpaceExhausted`] if the
/// rank does not fit the encoding's codeword space. Nothing is written on
/// error. For [`EncodingKind::Huffman`] (whose codewords live in a
/// per-program table) every rank is out of space here — use
/// [`try_write_codeword_coded`].
pub fn try_write_codeword_with(
    kind: EncodingKind,
    isa: IsaRef,
    w: &mut NibbleWriter,
    rank: u32,
) -> Result<(), crate::CompressError> {
    try_write_codeword_coded(kind, isa, None, w, rank)
}

/// Serializes a codeword rank into the stream under `isa`'s escape-byte
/// reservation and the program's Huffman code table, or returns
/// [`CompressError::CodewordSpaceExhausted`] if the rank does not fit the
/// encoding's (or table's) codeword space. Nothing is written on error.
pub fn try_write_codeword_coded(
    kind: EncodingKind,
    isa: IsaRef,
    huff: Option<&HuffCode>,
    w: &mut NibbleWriter,
    rank: u32,
) -> Result<(), crate::CompressError> {
    if rank as usize >= kind.capacity() {
        return Err(crate::CompressError::CodewordSpaceExhausted {
            rank,
            capacity: kind.capacity(),
        });
    }
    if kind == EncodingKind::Huffman {
        let capacity = huff.map_or(0, |h| h.num_ranks() as usize);
        let Some(h) = huff.filter(|h| rank < h.num_ranks()) else {
            return Err(crate::CompressError::CodewordSpaceExhausted { rank, capacity });
        };
        h.write_symbol(w, rank);
        return Ok(());
    }
    match kind {
        EncodingKind::Baseline => {
            let escapes = isa.escape_bytes();
            w.push_byte(escapes[(rank >> 8) as usize]);
            w.push_byte((rank & 0xff) as u8);
        }
        EncodingKind::OneByte => {
            w.push_byte(isa.escape_bytes()[rank as usize]);
        }
        EncodingKind::NibbleAligned => {
            use nibble::*;
            if rank < N4 {
                w.push(rank as u8);
            } else if rank < N4 + N8 {
                let r = rank - N4;
                w.push(8 + (r / 16) as u8);
                w.push((r % 16) as u8);
            } else if rank < N4 + N8 + N12 {
                let r = rank - N4 - N8;
                w.push(11 + (r / 256) as u8);
                w.push(((r / 16) % 16) as u8);
                w.push((r % 16) as u8);
            } else {
                let r = rank - N4 - N8 - N12;
                w.push(13 + (r / 4096) as u8);
                w.push(((r / 256) % 16) as u8);
                w.push(((r / 16) % 16) as u8);
                w.push((r % 16) as u8);
            }
        }
        EncodingKind::Huffman => unreachable!("handled above"),
    }
    Ok(())
}

/// Serializes a codeword rank into the stream.
///
/// # Panics
///
/// Panics if `rank` exceeds the encoding's capacity; use
/// [`try_write_codeword`] when the rank is not known to be in range.
pub fn write_codeword(kind: EncodingKind, w: &mut NibbleWriter, rank: u32) {
    try_write_codeword(kind, w, rank).expect("rank out of codeword space");
}

/// Parses the next stream item.
///
/// Returns `None` at (or past) end of stream, or on a malformed/truncated
/// item.
///
/// PowerPC convenience wrapper over [`read_item_with`].
pub fn read_item(kind: EncodingKind, r: &mut NibbleReader<'_>) -> Option<Item> {
    read_item_with(kind, IsaRef(&codense_ppc::ISA), r)
}

/// Parses the next stream item under `isa`'s escape-byte reservation (the
/// byte-level schemes classify items by whether the leading byte is one of
/// the ISA's escape bytes; the nibble scheme has an explicit escape nibble
/// and never consults the ISA).
///
/// Returns `None` at (or past) end of stream, or on a malformed/truncated
/// item. [`EncodingKind::Huffman`] streams need their code table and always
/// parse as `None` here — use [`read_item_coded`].
pub fn read_item_with(kind: EncodingKind, isa: IsaRef, r: &mut NibbleReader<'_>) -> Option<Item> {
    read_item_coded(kind, isa, None, r)
}

/// Parses the next stream item under `isa`'s escape-byte reservation and
/// the program's Huffman code table (required only by
/// [`EncodingKind::Huffman`]; ignored elsewhere).
///
/// Returns `None` at (or past) end of stream, on a malformed/truncated
/// item, or when a Huffman stream is parsed without its table.
pub fn read_item_coded(
    kind: EncodingKind,
    isa: IsaRef,
    huff: Option<&HuffCode>,
    r: &mut NibbleReader<'_>,
) -> Option<Item> {
    if kind == EncodingKind::Huffman {
        let h = huff?;
        let symbol = h.read_symbol(r)?;
        return if symbol == h.escape_symbol() {
            Some(Item::Insn(r.next_u32()?))
        } else {
            Some(Item::Codeword(symbol))
        };
    }
    match kind {
        EncodingKind::Baseline => {
            let b0 = r.next_byte()?;
            if let Some(esc_index) = isa.escape_index(b0) {
                let idx = r.next_byte()?;
                Some(Item::Codeword(esc_index * 256 + idx as u32))
            } else {
                let b1 = r.next_byte()?;
                let b2 = r.next_byte()?;
                let b3 = r.next_byte()?;
                Some(Item::Insn(u32::from_be_bytes([b0, b1, b2, b3])))
            }
        }
        EncodingKind::OneByte => {
            let b0 = r.next_byte()?;
            if let Some(esc_index) = isa.escape_index(b0) {
                Some(Item::Codeword(esc_index))
            } else {
                let b1 = r.next_byte()?;
                let b2 = r.next_byte()?;
                let b3 = r.next_byte()?;
                Some(Item::Insn(u32::from_be_bytes([b0, b1, b2, b3])))
            }
        }
        EncodingKind::NibbleAligned => {
            use nibble::*;
            let n0 = r.next()?;
            match n0 {
                ESCAPE => Some(Item::Insn(r.next_u32()?)),
                0..=7 => Some(Item::Codeword(n0 as u32)),
                8..=10 => {
                    let n1 = r.next()? as u32;
                    Some(Item::Codeword(N4 + (n0 as u32 - 8) * 16 + n1))
                }
                11..=12 => {
                    let n1 = r.next()? as u32;
                    let n2 = r.next()? as u32;
                    Some(Item::Codeword(N4 + N8 + (n0 as u32 - 11) * 256 + n1 * 16 + n2))
                }
                _ => {
                    let n1 = r.next()? as u32;
                    let n2 = r.next()? as u32;
                    let n3 = r.next()? as u32;
                    Some(Item::Codeword(
                        N4 + N8 + N12 + (n0 as u32 - 13) * 4096 + n1 * 256 + n2 * 16 + n3,
                    ))
                }
            }
        }
        EncodingKind::Huffman => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_rank(kind: EncodingKind, rank: u32) {
        let mut w = NibbleWriter::new();
        write_codeword(kind, &mut w, rank);
        assert_eq!(w.len(), codeword_nibbles(kind, rank) as u64);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(read_item(kind, &mut r), Some(Item::Codeword(rank)), "{kind:?} rank {rank}");
    }

    #[test]
    fn baseline_codewords_roundtrip() {
        for rank in [0, 1, 255, 256, 4095, 8191] {
            roundtrip_rank(EncodingKind::Baseline, rank);
        }
    }

    #[test]
    fn one_byte_codewords_roundtrip() {
        for rank in 0..32 {
            roundtrip_rank(EncodingKind::OneByte, rank);
        }
    }

    #[test]
    fn nibble_codewords_roundtrip_entire_space_boundaries() {
        use nibble::*;
        for rank in [
            0,
            N4 - 1,
            N4,
            N4 + N8 - 1,
            N4 + N8,
            N4 + N8 + N12 - 1,
            N4 + N8 + N12,
            CAPACITY as u32 - 1,
        ] {
            roundtrip_rank(EncodingKind::NibbleAligned, rank);
        }
    }

    #[test]
    fn nibble_codewords_roundtrip_exhaustive() {
        for rank in 0..nibble::CAPACITY as u32 {
            let mut w = NibbleWriter::new();
            write_codeword(EncodingKind::NibbleAligned, &mut w, rank);
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            assert_eq!(read_item(EncodingKind::NibbleAligned, &mut r), Some(Item::Codeword(rank)));
        }
    }

    #[test]
    fn insns_roundtrip_in_all_schemes() {
        for kind in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned] {
            let mut w = NibbleWriter::new();
            write_insn(kind, &mut w, 0x3860_0001);
            assert_eq!(w.len(), insn_nibbles(kind) as u64);
            let bytes = w.into_bytes();
            let mut r = NibbleReader::new(&bytes);
            assert_eq!(read_item(kind, &mut r), Some(Item::Insn(0x3860_0001)));
        }
    }

    #[test]
    fn nibble_codeword_lengths_match_classes() {
        use nibble::{CAPACITY, N12, N4, N8};
        let n = |rank| super::codeword_nibbles(EncodingKind::NibbleAligned, rank);
        assert_eq!(n(0), 1);
        assert_eq!(n(7), 1);
        assert_eq!(n(8), 2);
        assert_eq!(n(N4 + N8), 3);
        assert_eq!(n(N4 + N8 + N12), 4);
        assert_eq!(CAPACITY, 8760);
    }

    #[test]
    fn mixed_stream_parses() {
        let kind = EncodingKind::NibbleAligned;
        let mut w = NibbleWriter::new();
        write_codeword(kind, &mut w, 3);
        write_insn(kind, &mut w, 0x4e80_0020);
        write_codeword(kind, &mut w, 600);
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(read_item(kind, &mut r), Some(Item::Codeword(3)));
        assert_eq!(read_item(kind, &mut r), Some(Item::Insn(0x4e80_0020)));
        assert_eq!(read_item(kind, &mut r), Some(Item::Codeword(600)));
    }

    #[test]
    fn truncated_stream_is_none() {
        let bytes = [0xF0]; // escape nibble + 1 nibble, not a full insn
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(read_item(EncodingKind::NibbleAligned, &mut r), None);
    }

    #[test]
    fn huffman_items_roundtrip_with_table() {
        let kind = EncodingKind::Huffman;
        let isa = IsaRef(&codense_ppc::ISA);
        let freqs: Vec<u64> = (0..100u64).map(|r| 1000 / (r + 1)).collect();
        let huff = HuffCode::from_frequencies(&freqs, 25);
        let h = Some(&huff);
        let mut w = NibbleWriter::new();
        try_write_codeword_coded(kind, isa, h, &mut w, 0).unwrap();
        write_insn_coded(kind, h, &mut w, 0x4e80_0020);
        try_write_codeword_coded(kind, isa, h, &mut w, 99).unwrap();
        let bytes = w.into_bytes();
        let mut r = NibbleReader::new(&bytes);
        assert_eq!(read_item_coded(kind, isa, h, &mut r), Some(Item::Codeword(0)));
        assert_eq!(read_item_coded(kind, isa, h, &mut r), Some(Item::Insn(0x4e80_0020)));
        assert_eq!(read_item_coded(kind, isa, h, &mut r), Some(Item::Codeword(99)));
    }

    #[test]
    fn huffman_without_table_is_out_of_space_and_unreadable() {
        let kind = EncodingKind::Huffman;
        let isa = IsaRef(&codense_ppc::ISA);
        let mut w = NibbleWriter::new();
        let err = try_write_codeword_coded(kind, isa, None, &mut w, 0).unwrap_err();
        assert!(matches!(err, crate::CompressError::CodewordSpaceExhausted { .. }));
        assert_eq!(w.len(), 0);
        let mut r = NibbleReader::new(&[0x12, 0x34]);
        assert_eq!(read_item_with(kind, isa, &mut r), None);
        assert_eq!(try_codeword_nibbles(kind, 0), None);
    }

    #[test]
    fn huffman_rank_past_table_is_typed_error() {
        let kind = EncodingKind::Huffman;
        let isa = IsaRef(&codense_ppc::ISA);
        let huff = HuffCode::from_frequencies(&[10, 5, 1], 2);
        let mut w = NibbleWriter::new();
        let err = try_write_codeword_coded(kind, isa, Some(&huff), &mut w, 3).unwrap_err();
        assert_eq!(err, crate::CompressError::CodewordSpaceExhausted { rank: 3, capacity: 3 });
        assert_eq!(w.len(), 0);
        assert_eq!(try_codeword_nibbles_coded(kind, Some(&huff), 3), None);
        assert!(try_codeword_nibbles_coded(kind, Some(&huff), 2).is_some());
    }
}
