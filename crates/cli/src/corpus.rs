//! The `codense corpus` / `codense scale` subcommands plus the shared
//! `--corpus N` plumbing that lets `repro`, `sweep`, `profile`,
//! `hybrid-sweep`, `speed`, and `loadgen` swap their toy benchmark for a
//! SPEC-scale program from `codense-corpus`.

use std::time::Instant;

use codense_core::{verify::verify, CompressedProgram, CompressionConfig, Compressor};
use codense_corpus::{build, CorpusIsa, CorpusProgram, CorpusSpec};
use codense_isa::Core;
use codense_vm::{run, run_predecoded, CompressedFetcher, PredecodedFetcher};

use crate::{flag_value, insns_per_sec, parse_seed, CliResult, ReproRow, REPRO_ENCODINGS};

/// Parses a human-scale instruction count: plain decimal, or with a
/// `k`/`m` suffix (`10k`, `250k`, `1m`).
pub fn parse_size(v: &str) -> Result<usize, String> {
    let (digits, mult) = match v.to_ascii_lowercase() {
        ref s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 1_000),
        ref s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 1_000_000),
        s => (s, 1),
    };
    match digits.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n * mult),
        _ => Err(format!("bad size `{v}` (expected an integer >= 1, k/m suffixes ok)")),
    }
}

/// Renders a size the way `parse_size` reads it (`10000` → `10k`).
pub fn format_size(n: usize) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}m", n / 1_000_000)
    } else if n >= 1_000 && n.is_multiple_of(1_000) {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// The display/bench-key name of a corpus scale point.
pub fn corpus_name(insns: usize) -> String {
    format!("corpus-{}", format_size(insns))
}

/// Parses an optional `--corpus N` scale-point flag.
pub fn corpus_arg(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--corpus") {
        Some(v) => parse_size(v).map(Some).map_err(|e| format!("--corpus: {e}")),
        None => Ok(None),
    }
}

/// A [`CorpusSpec`] for `insns` instructions with the shared knob flags
/// (`--dup`, `--seed`) applied.
fn spec_from_args(args: &[String], insns: usize) -> Result<CorpusSpec, String> {
    let mut spec = CorpusSpec { insns, ..CorpusSpec::default() };
    if let Some(v) = flag_value(args, "--dup") {
        spec.dup = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --dup `{v}` (expected an integer >= 1)")),
        };
    }
    if let Some(v) = flag_value(args, "--seed") {
        spec.seed = parse_seed(v)?;
    }
    Ok(spec)
}

fn parse_corpus_isa(name: &str) -> Result<CorpusIsa, String> {
    match name {
        "ppc" => Ok(CorpusIsa::Ppc),
        "mips" => Ok(CorpusIsa::Mips),
        other => Err(format!("unknown ISA `{other}` (ppc|mips)")),
    }
}

/// Builds the corpus program for `--corpus insns` on the named backend.
pub fn corpus_program(args: &[String], insns: usize, isa: &str) -> Result<CorpusProgram, String> {
    let spec = spec_from_args(args, insns)?;
    build(&spec, parse_corpus_isa(isa)?).map_err(|e| format!("{}: {e}", corpus_name(insns)))
}

/// Wraps a (PPC) corpus program as a profiling [`codense_profile::Subject`]:
/// no static init memory, jump tables seeded per fetch domain by the
/// subject, the corpus's 8 MiB data memory.
pub fn corpus_subject(p: &CorpusProgram) -> Result<codense_profile::Subject, String> {
    if p.isa != CorpusIsa::Ppc {
        return Err("corpus profiling subjects are PPC-only (the profiler's machine is)".into());
    }
    Ok(codense_profile::Subject {
        name: corpus_name(p.spec.insns),
        module: p.module.clone(),
        init_mem: Vec::new(),
        table_addrs: p.table_addrs.clone(),
        expected: p.stats.exit_code,
        mem_bytes: codense_corpus::MEM_BYTES,
    })
}

/// Compresses a corpus program under all four repro encodings with the
/// given selector, verifying each result — one extra row for the `repro`
/// table (printed only; the blessed artifacts carry the fixed suite).
pub fn corpus_repro_row(
    p: &CorpusProgram,
    selector: codense_core::SelectorKind,
) -> Result<ReproRow, String> {
    let mut ratios = [0.0f64; 4];
    for (i, &(_, encoding)) in REPRO_ENCODINGS.iter().enumerate() {
        let config =
            CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
        let c = Compressor::new(config)
            .with_isa(p.isa.isa_ref())
            .with_selector(selector)
            .compress(&p.module)
            .map_err(|e| format!("{}: {e}", corpus_name(p.spec.insns)))?;
        verify(&p.module, &c)
            .map_err(|e| format!("{} ({encoding:?}): {e}", corpus_name(p.spec.insns)))?;
        ratios[i] = c.compression_ratio();
    }
    Ok((corpus_name(p.spec.insns), p.module.len(), p.module.text_bytes(), ratios))
}

/// `codense corpus`: build one SPEC-scale program, print its measurements,
/// optionally write the module.
pub fn cmd_corpus(args: &[String]) -> CliResult {
    let insns = match flag_value(args, "--insns") {
        Some(v) => parse_size(v)?,
        None => CorpusSpec::default().insns,
    };
    let isa_name = crate::parse_isa(args)?;
    let spec = spec_from_args(args, insns)?;
    let t0 = Instant::now();
    let p = build(&spec, parse_corpus_isa(isa_name)?)
        .map_err(|e| format!("{}: {e}", corpus_name(insns)))?;
    let s = &p.stats;
    println!(
        "{} ({isa_name}, seed {:#x}): built in {:.1}s",
        corpus_name(insns),
        spec.seed,
        t0.elapsed().as_secs_f64()
    );
    println!("  modules      : {} ({} functions, dup {})", s.modules, s.functions, spec.dup);
    println!(
        "  instructions : {} static ({} bytes), {} dynamic",
        s.insns,
        p.module.text_bytes(),
        s.dynamic_insns
    );
    println!("  jump tables  : {} ({} dispatch passes)", s.jump_tables, s.passes);
    println!("  exit checksum: {:#010x}", s.exit_code);
    if let Some(path) = flag_value(args, "-o") {
        std::fs::write(path, codense_obj::serialize(&p.module))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} instructions", p.module.len());
    }
    Ok(())
}

/// One scale point's measurements for `BENCH_scale.json`.
struct ScalePoint {
    target_insns: usize,
    insns: usize,
    dynamic_insns: u64,
    /// `(ratio, compress_insns_per_sec)` in [`REPRO_ENCODINGS`] order.
    per_encoding: [(f64, u64); 4],
    reparse_ips: u64,
    predecoded_ips: u64,
}

impl ScalePoint {
    fn speedup(&self) -> f64 {
        self.predecoded_ips as f64 / self.reparse_ips.max(1) as f64
    }
}

/// Seeds a concrete machine's jump tables with a compressed image's patched
/// values (what `CorpusProgram::compressed_core` does for `dyn Core`; the
/// predecoded run needs the concrete machine type).
fn seed_compressed_tables<M: Core>(
    m: &mut M,
    p: &CorpusProgram,
    c: &CompressedProgram,
) -> Result<(), String> {
    for (t, table) in c.jump_tables.iter().enumerate() {
        for (e, &target) in table.iter().enumerate() {
            m.write32(p.table_addrs[t] + 4 * e as u32, target as u32).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Times the reparse (`CompressedFetcher`) and predecoded
/// (`PredecodedFetcher`) VM paths over full runs of `p` under image `c`,
/// best of `trials`, returning `(reparse, predecoded)` insns/sec.
fn vm_trials(
    p: &CorpusProgram,
    c: &CompressedProgram,
    trials: usize,
) -> Result<(u64, u64), String> {
    let name = corpus_name(p.spec.insns);
    let mut best = (0u64, 0u64);
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut core = p.compressed_core(c).map_err(|e| e.to_string())?;
        let mut fetch = CompressedFetcher::new(c);
        let r = run(core.as_mut(), &mut fetch, 0, u64::MAX).map_err(|e| e.to_string())?;
        let reparse = ips_of(r.steps, t0.elapsed());
        if r.exit_code != p.stats.exit_code {
            return Err(format!("{name}: reparse run exited {:#x}", r.exit_code));
        }

        let t0 = Instant::now();
        let (steps, exit) = match p.isa {
            CorpusIsa::Ppc => {
                let mut m = codense_ppc::machine::Machine::new(codense_corpus::MEM_BYTES);
                seed_compressed_tables(&mut m, p, c)?;
                let mut pf = PredecodedFetcher::new(c);
                let r = run_predecoded(&mut m, &mut pf, 0, u64::MAX).map_err(|e| e.to_string())?;
                (r.steps, r.exit_code)
            }
            CorpusIsa::Mips => {
                let mut m = codense_mips::Machine::new(codense_corpus::MEM_BYTES);
                seed_compressed_tables(&mut m, p, c)?;
                let mut pf = PredecodedFetcher::new(c);
                let r = run_predecoded(&mut m, &mut pf, 0, u64::MAX).map_err(|e| e.to_string())?;
                (r.steps, r.exit_code)
            }
        };
        let predecoded = ips_of(steps, t0.elapsed());
        if exit != p.stats.exit_code {
            return Err(format!("{name}: predecoded run exited {exit:#x}"));
        }
        best = (best.0.max(reparse), best.1.max(predecoded));
    }
    Ok(best)
}

fn ips_of(steps: u64, dt: std::time::Duration) -> u64 {
    (steps as f64 / dt.as_secs_f64().max(1e-9)) as u64
}

fn scale_point(
    args: &[String],
    insns: usize,
    isa: &str,
    trials: usize,
) -> Result<ScalePoint, String> {
    let p = corpus_program(args, insns, isa)?;
    let mut per_encoding = [(0.0f64, 0u64); 4];
    let mut nibble_image = None;
    for (i, &(ename, encoding)) in REPRO_ENCODINGS.iter().enumerate() {
        let config =
            CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
        let compressor = Compressor::new(config).with_isa(p.isa.isa_ref());
        let mut best_ns = u64::MAX;
        let mut image = None;
        for _ in 0..trials {
            let t0 = Instant::now();
            let c = compressor
                .compress(&p.module)
                .map_err(|e| format!("{} ({ename}): {e}", corpus_name(insns)))?;
            best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
            image = Some(c);
        }
        let c = image.expect("at least one trial");
        verify(&p.module, &c).map_err(|e| format!("{} ({ename}): {e}", corpus_name(insns)))?;
        per_encoding[i] = (c.compression_ratio(), insns_per_sec(p.module.len() as u64, best_ns));
        if ename == "nibble" {
            nibble_image = Some(c);
        }
    }
    // VM throughput under the headline nibble encoding (granule 1 — the
    // hardest case for the reparse path, and what the 5× bar is quoted on).
    let (reparse_ips, predecoded_ips) =
        vm_trials(&p, &nibble_image.expect("nibble is in REPRO_ENCODINGS"), trials)?;
    Ok(ScalePoint {
        target_insns: insns,
        insns: p.stats.insns,
        dynamic_insns: p.stats.dynamic_insns,
        per_encoding,
        reparse_ips,
        predecoded_ips,
    })
}

/// Renders the schema-1 `BENCH_scale.json` artifact: sorted keys, one
/// points array per ISA in scale order.
fn render_scale_json(per_isa: &[(&str, Vec<ScalePoint>)], trials: usize) -> String {
    // REPRO_ENCODINGS order is (baseline, onebyte, nibble, huffman); the
    // artifact's keys are alphabetical.
    const ALPHA: [(usize, &str); 4] =
        [(0, "baseline"), (3, "huffman"), (2, "nibble"), (1, "onebyte")];
    let mut json = String::new();
    json.push_str("{\n  \"isas\": {\n");
    let mut isas: Vec<_> = per_isa.iter().collect();
    isas.sort_by_key(|(name, _)| *name);
    for (ii, (isa, points)) in isas.iter().enumerate() {
        let isa_comma = if ii + 1 < isas.len() { "," } else { "" };
        json.push_str(&format!("    \"{isa}\": {{\n      \"points\": [\n"));
        for (pi, pt) in points.iter().enumerate() {
            let comma = if pi + 1 < points.len() { "," } else { "" };
            json.push_str("        {\n");
            json.push_str("          \"compress_insns_per_sec\": { ");
            for (k, (src, name)) in ALPHA.iter().enumerate() {
                let sep = if k + 1 < ALPHA.len() { ", " } else { " " };
                json.push_str(&format!("\"{name}\": {}{sep}", pt.per_encoding[*src].1));
            }
            json.push_str("},\n");
            json.push_str(&format!("          \"dynamic_insns\": {},\n", pt.dynamic_insns));
            json.push_str(&format!("          \"insns\": {},\n", pt.insns));
            json.push_str("          \"ratio\": { ");
            for (k, (src, name)) in ALPHA.iter().enumerate() {
                let sep = if k + 1 < ALPHA.len() { ", " } else { " " };
                json.push_str(&format!("\"{name}\": {:.4}{sep}", pt.per_encoding[*src].0));
            }
            json.push_str("},\n");
            json.push_str(&format!("          \"target_insns\": {},\n", pt.target_insns));
            json.push_str(&format!(
                "          \"vm\": {{ \"predecoded_insns_per_sec\": {}, \
                 \"reparse_insns_per_sec\": {}, \"speedup\": {:.2} }}\n",
                pt.predecoded_ips,
                pt.reparse_ips,
                pt.speedup()
            ));
            json.push_str(&format!("        }}{comma}\n"));
        }
        json.push_str(&format!("      ]\n    }}{isa_comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str("  \"vm_encoding\": \"nibble\"\n");
    json.push_str("}\n");
    json
}

/// `codense scale`: the SPEC-scale benchmark — compression ratio, compress
/// throughput, and VM insns/sec at each scale point on the selected ISAs,
/// written as `BENCH_scale.json`.
pub fn cmd_scale(args: &[String]) -> CliResult {
    let points: Vec<usize> = match flag_value(args, "--points") {
        Some(csv) => csv.split(',').map(|s| parse_size(s.trim())).collect::<Result<_, _>>()?,
        None => vec![10_000, 100_000, 1_000_000],
    };
    let isas: Vec<&'static str> = match flag_value(args, "--isa") {
        None | Some("both") => vec!["ppc", "mips"],
        Some("ppc") => vec!["ppc"],
        Some("mips") => vec!["mips"],
        Some(other) => return Err(format!("unknown ISA `{other}` (ppc|mips|both)")),
    };
    let trials: usize = match flag_value(args, "--trials") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --trials `{v}` (expected an integer >= 1)")),
        },
        None => 3,
    };
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_scale.json");

    let mut per_isa: Vec<(&str, Vec<ScalePoint>)> = Vec::new();
    for &isa in &isas {
        let mut rows = Vec::with_capacity(points.len());
        for &n in &points {
            let pt = scale_point(args, n, isa, trials)?;
            println!(
                "{isa} {}: {} insns, nibble ratio {:.1}%, compress {} insns/s, \
                 vm reparse {:.1}M/s -> predecoded {:.1}M/s ({:.2}x)",
                corpus_name(n),
                pt.insns,
                100.0 * pt.per_encoding[2].0,
                pt.per_encoding[2].1,
                pt.reparse_ips as f64 / 1e6,
                pt.predecoded_ips as f64 / 1e6,
                pt.speedup()
            );
            rows.push(pt);
        }
        per_isa.push((isa, rows));
    }

    let json = render_scale_json(&per_isa, trials);
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!("{out_path}: {} isa(s) x {} point(s), best of {trials}", per_isa.len(), points.len());
    Ok(())
}
