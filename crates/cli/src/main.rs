//! `codense` — command-line front end for the code-compression system.
//!
//! ```text
//! codense gen <benchmark|all> [-o DIR]        write .cdm module file(s)
//! codense info <FILE>                         inspect a .cdm or .cdns file
//! codense disasm <FILE.cdm|FILE.cdns> [START [COUNT]]   disassemble a module
//! codense compress <FILE.cdm> [-o OUT.cdns] [--encoding E] [--max-entry N]
//!                                             [--max-codewords N]
//! codense analyze <FILE.cdm>                  redundancy / branch / size stats
//! codense run-kernel <NAME> [--encoding E]    execute a built-in kernel
//! codense repro [--bench NAME] [--isa ppc|mips|both] [--out BENCH_isa.json]
//!                                             suite ratio table, all encodings
//! codense corpus [--insns N] [--dup N] [--seed S] [--isa ISA] [-o FILE.cdm]
//!                                             build a SPEC-scale program
//! codense scale [--points CSV] [--isa ppc|mips|both] [--out BENCH_scale.json]
//!                                             ratio/throughput/VM-speed at scale
//! codense sweep [--bench NAME] [--isa ISA]    Figs 4/5/8 parameter sweeps
//! codense profile [--bench NAME] [--encoding E] [--out FILE]
//!                                             execution profiles of the kernel suite
//! codense hybrid --bench NAME [--coverage F|--threshold N] [--encoding E]
//!                                             one profile-guided hybrid compression
//! codense hybrid-sweep [--encoding E] [--out BENCH_hybrid.json]
//!                                             size-vs-cycles Pareto frontier
//! codense fuzz [--cases N] [--seed S] [--isa ISA] [--hybrid]
//!                                             differential fuzz campaign
//! codense serve --addr HOST:PORT [--queue-depth N] [--timeout-ms N]
//!               [--cache-bytes N]             batch-compression TCP server
//! codense loadgen --addr HOST:PORT [--requests N] [--connections N]
//!                 [--bench NAME] [--encoding E] [--out FILE] [--shutdown]
//!                                             drive a server, write BENCH_serve.json
//! codense loadsweep --addr HOST:PORT [--rates CSV] [--unique CSV]
//!                   [--out FILE] [--shutdown] open-loop + cache sweeps, BENCH_load.json
//! codense speed [--bench NAME] [--samples N] [--out BENCH_speed.json]
//!               [--no-reference] [--check FILE] [--floor X]
//!                                             compression-throughput benchmark
//! ```
//!
//! Encodings: `baseline` (2-byte codewords), `onebyte`, `nibble`,
//! `huffman` (frequency-adaptive codeword lengths). Selectors (`--selector`
//! on `compress`/`repro`/`speed`/`loadgen`): `greedy` (default), `refine`.
//! ISAs (`--isa` on `asm`/`repro`/`sweep`/`fuzz`/`speed`): `ppc` (default),
//! `mips`. `--corpus N` (on `repro`/`sweep`/`profile`/`hybrid-sweep`/
//! `speed`/`loadgen`) swaps the benchmark for an N-instruction SPEC-scale
//! corpus program (`10k`/`100k`/`1m` suffixes accepted).
//!
//! Global flags: `--jobs N` (worker-pool width) and `--metrics OUT.json`
//! (telemetry report + per-phase summary on stderr after the command).

use std::process::ExitCode;

use codense_core::{
    container, verify::verify, CompressionConfig, Compressor, EncodingKind, SelectorKind,
};
use codense_obj::ObjectModule;

mod corpus;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = take_jobs(&mut args) {
        eprintln!("codense: {e}");
        return ExitCode::from(2);
    }
    let metrics_path = match take_metrics(&mut args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("codense: {e}");
            return ExitCode::from(2);
        }
    };
    let command = args.first().cloned().unwrap_or_else(|| "help".to_owned());
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("run-kernel") => cmd_run_kernel(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        Some("corpus") => corpus::cmd_corpus(&args[1..]),
        Some("scale") => corpus::cmd_scale(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("hybrid") => cmd_hybrid(&args[1..]),
        Some("hybrid-sweep") => cmd_hybrid_sweep(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("loadsweep") => cmd_loadsweep(&args[1..]),
        Some("speed") => cmd_speed(&args[1..]),
        Some("help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    // Metrics are written even when the command fails: the counters of a
    // failing run are exactly what a bug report needs.
    if let Some(path) = metrics_path {
        let json = codense_core::telemetry::metrics_json(&command);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("codense: {path}: {e}");
            return ExitCode::from(2);
        }
        eprint!("{}", codense_core::telemetry::render_summary());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("codense: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  codense [--jobs N] [--metrics OUT.json] <command> ...

  codense gen <benchmark|all> [-o DIR]
  codense info <FILE.cdm|FILE.cdns>
  codense disasm <FILE.cdm|FILE.cdns> [START [COUNT]]
  codense compress <FILE.cdm> [-o OUT.cdns]
                   [--encoding baseline|onebyte|nibble|huffman]
                   [--selector greedy|refine]
                   [--max-entry N] [--max-codewords N]
  codense analyze <FILE.cdm>
  codense asm <FILE.s> [-o OUT.cdm] [--isa ppc|mips]
  codense run-kernel <NAME|list>
                     [--encoding baseline|onebyte|nibble|huffman|none]
  codense repro [--bench NAME] [--isa ppc|mips|both] [--out BENCH_isa.json]
                [--selector greedy|refine] [--ratio-out BENCH_ratio.json]
                [--corpus N]
  codense corpus [--insns N] [--dup N] [--seed S] [--isa ppc|mips]
                 [-o FILE.cdm]
  codense scale [--points CSV] [--isa ppc|mips|both] [--trials N]
                [--dup N] [--seed S] [--out BENCH_scale.json]
  codense sweep [--bench NAME] [--isa ppc|mips] [--selector greedy|refine]
                [--corpus N]
  codense profile [--bench NAME] [--encoding baseline|onebyte|nibble]
                  [--max-steps N] [--out PROFILE.json] [--corpus N]
  codense hybrid --bench NAME [--coverage FRAC | --threshold N]
                 [--encoding baseline|onebyte|nibble] [--max-steps N]
  codense hybrid-sweep [--encoding baseline|onebyte|nibble]
                       [--out BENCH_hybrid.json] [--corpus N]
  codense fuzz [--cases N] [--seed S] [--max-steps N] [--fault-tries N]
               [--hybrid] [--isa ppc|mips]
  codense serve --addr HOST:PORT [--queue-depth N] [--timeout-ms N]
                [--cache-bytes N]
  codense loadgen --addr HOST:PORT [--requests N] [--connections N]
                  [--bench NAME] [--encoding baseline|onebyte|nibble|huffman]
                  [--selector greedy|refine] [--corpus N]
                  [--max-entry N] [--out BENCH_serve.json] [--shutdown]
                  [--server-jobs N] [--server-queue-depth N]
                  [--metrics-out METRICS.json]
  codense loadsweep --addr HOST:PORT [--bench NAME]
                    [--encoding baseline|onebyte|nibble|huffman]
                    [--selector greedy|refine] [--max-entry N]
                    [--rates CSV] [--point-requests N] [--connections N]
                    [--unique CSV] [--cache-requests N] [--seed S]
                    [--out BENCH_load.json] [--shutdown]
  codense speed [--bench NAME] [--samples N] [--out BENCH_speed.json]
                [--no-reference] [--check BENCH_speed.json] [--floor X]
                [--isa ppc|mips] [--selector greedy|refine] [--corpus N]

--jobs N sets the worker-thread count for parallel phases (candidate-index
construction, suite generation, fuzz campaigns); the default is the
machine's available parallelism, and --jobs 1 is the exact sequential
reference. Output is bit-identical at any job count.

--metrics OUT.json writes a schema-stable telemetry report (sorted-key
JSON: every registered counter plus per-phase timings) after the command
runs, and prints a per-phase summary table on stderr. The `counters`
section is deterministic: byte-identical at any --jobs value; the
`timings` section carries wall-clock data and is excluded from that
contract.

repro regenerates the deterministic synthetic benchmark suite, compresses
every benchmark under all four encodings, verifies each result, and
prints the compression-ratio table (the paper's headline numbers).
--isa selects the backend (the same IR suite lowered through PowerPC or
MIPS templates; `both` prints one table per ISA). --selector picks the
dictionary selector for the printed table (greedy is the paper's
algorithm; refine hill-climbs the greedy pick log under the real layout
cost model). --out writes the schema-1 BENCH_isa.json cross-ISA density
artifact, which always carries both backends under the greedy selector.
--ratio-out writes the schema-1 BENCH_ratio.json density trajectory:
per-bench ratios for every ISA x selector x encoding cell, with means
(see EXPERIMENTS.md for both bless workflows).

corpus builds one seeded-deterministic SPEC-scale program (see DESIGN.md
section 15): deep multi-module call graphs over a library layer duplicated
--dup times per module, 16-way jump-table dispatch loops, and cold
error-handling bulk — 10K to 1M+ lowered instructions on either ISA,
runnable under the VM and the lockstep oracle. --insns accepts k/m
suffixes (default 100k). -o writes the module as a .cdm file.

scale is the SPEC-scale benchmark behind BENCH_scale.json: for each
--points scale point (default 10k,100k,1m) on each ISA it builds the
corpus program, compresses it under all four encodings (verifying each),
and times compression throughput plus full-run VM execution through both
the reparse fetch path and the predecoded threaded-dispatch path (nibble
encoding), best of --trials. See EXPERIMENTS.md for the bless workflow.

--corpus N on repro/sweep/profile/hybrid-sweep/speed/loadgen swaps that
command's benchmark for the N-instruction corpus program (sharing --dup /
--seed with the corpus command). repro prints the corpus row under the
suite table without touching the blessed artifacts; profile and
hybrid-sweep run it as a PPC profiling subject; speed times it with the
reference engine disabled (the boxed-slice index is too slow at scale).

sweep runs the parameter sweeps behind Figures 4-8 (max entry length,
codeword count, small dictionaries) on one benchmark (default `compress`)
under the --isa backend. --selector refine recompresses every sweep
point with the refinement selector (no pick-log shortcuts).

serve runs the batch-compression TCP service (DESIGN.md section 10): a
poll(2) reactor with pipelined per-connection state machines, a bounded
work queue with --jobs workers, BUSY backpressure when the queue is full,
per-request deadlines, a content-addressed LRU result cache
(--cache-bytes budget, default 64 MiB, 0 disables), and typed error
frames for malformed input. The bound address is printed on stdout;
serve blocks until a SHUTDOWN frame arrives, then drains in-flight work
and exits.

speed measures compression throughput (instructions compressed per
second, median of --samples whole runs) for every encoding on one
benchmark (default `compress`), using the production interned matchfinder
and — unless --no-reference — the original boxed-slice index as the
speedup baseline. Writes the schema-1 BENCH_speed.json artifact with
--out (see EXPERIMENTS.md for the bless workflow). --check FILE compares
the current interned throughput against a checked-in baseline and fails
when any encoding falls below baseline/--floor (default 3.0) — the
speed-regression gate in scripts/verify.sh.

loadgen compresses --bench in process once, then drives --requests
identical compression requests over --connections concurrent connections
against --addr, byte-comparing every response (a mismatch counts as
failed). Writes a schema-1 throughput + latency-quantile report (see
EXPERIMENTS.md) to --out, and exits nonzero when any request failed.
--shutdown sends a SHUTDOWN frame after the run.

loadsweep measures the serve front end along two axes and writes the
schema-1 BENCH_load.json artifact (see EXPERIMENTS.md): an open-loop
latency-vs-offered-load curve — requests arrive on a seeded Poisson-like
schedule at each --rates point, pipelined over --connections connections,
latency measured from the scheduled arrival — and a cache-hit-ratio sweep
cycling --unique distinct module variants through one sequential
connection while reading the server's serve.cache.* counters. Every
response is byte-compared against in-process compression.

profile runs the built-in kernel suite (each kernel extended with a large
never-executed cold section) natively under the VM's tracing hook and
writes per-instruction / per-basic-block execution counts plus the
fetch-path event totals of a reference compressed run as a schema-1
sorted-key JSON artifact — byte-identical at any --jobs value.

hybrid profiles one benchmark, exempts its hot blocks from compression
(--coverage F keeps the hottest blocks covering fraction F of dynamic
execution; --threshold N exempts blocks executing at least N
instructions), verifies and lockstep-executes the hybrid image, and
prints the native/full/hybrid cycle and size comparison under the fetch
cost model.

hybrid-sweep walks the coverage knob over the whole suite and writes the
size-vs-cycles Pareto frontier (BENCH_hybrid.json, schema 1; see
EXPERIMENTS.md for the bless workflow).

fuzz generates seeded random programs, runs each natively and through the
compressed fetch path under all four encodings in lockstep, and fault-
injects the binary container formats; failures print a reproducer case
seed and a shrunk minimal program weight. Exit status 1 on any divergence
or panic. --hybrid additionally derives a random block-aligned hotness
mask per case and fuzzes hybrid (partially compressed) images the same
way. --isa mips runs the MIPS half of the cross-ISA battery: the same
campaign-seed stream drives a MIPS program generator through the same
lockstep oracle (fault injection and --hybrid are PPC-only).

asm syntax: one instruction per line (the disasm output syntax), `label:`
definitions, `label` usable as any branch target, `#` comments. --isa
selects the instruction set the source is parsed and encoded as.
";

type CliResult = Result<(), String>;

/// Extracts a global `--jobs N` / `--jobs=N` and applies it to the worker
/// pool before command dispatch.
fn take_jobs(args: &mut Vec<String>) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let value: Option<String> = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                return Err("--jobs requires a value".into());
            }
            let v = args[i + 1].clone();
            args.drain(i..i + 2);
            Some(v)
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => codense_core::parallel::set_jobs(n),
                _ => return Err(format!("invalid --jobs value `{v}` (expected an integer >= 1)")),
            }
        }
    }
    Ok(())
}

/// Extracts a global `--metrics PATH` / `--metrics=PATH`; the telemetry
/// report is written there after command dispatch.
fn take_metrics(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            if i + 1 >= args.len() {
                return Err("--metrics requires a file path".into());
            }
            path = Some(args[i + 1].clone());
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--metrics=") {
            path = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(path)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Resolves a `--isa` flag to a backend name (default `ppc`).
fn parse_isa(args: &[String]) -> Result<&'static str, String> {
    match flag_value(args, "--isa") {
        None | Some("ppc") => Ok("ppc"),
        Some("mips") => Ok("mips"),
        Some(other) => Err(format!("unknown ISA `{other}` (ppc|mips)")),
    }
}

/// The trait object for a backend name from [`parse_isa`].
fn isa_ref(isa: &str) -> codense_isa::IsaRef {
    if isa == "mips" {
        codense_isa::IsaRef(&codense_mips::ISA)
    } else {
        codense_isa::IsaRef(&codense_ppc::ISA)
    }
}

/// Generates one benchmark module for the named backend.
fn benchmark_for(isa: &str, bench: &str) -> Option<ObjectModule> {
    if isa == "mips" {
        codense_codegen::benchmark_mips(bench)
    } else {
        codense_codegen::benchmark(bench)
    }
}

fn parse_encoding(name: &str) -> Result<EncodingKind, String> {
    match name {
        "baseline" => Ok(EncodingKind::Baseline),
        "onebyte" => Ok(EncodingKind::OneByte),
        "nibble" => Ok(EncodingKind::NibbleAligned),
        "huffman" => Ok(EncodingKind::Huffman),
        other => Err(format!("unknown encoding `{other}` (baseline|onebyte|nibble|huffman)")),
    }
}

/// Resolves a `--selector` flag to a dictionary selection strategy
/// (default `greedy`).
fn parse_selector(args: &[String]) -> Result<SelectorKind, String> {
    match flag_value(args, "--selector") {
        None | Some("greedy") => Ok(SelectorKind::Greedy),
        Some("refine") => Ok(SelectorKind::Refine),
        Some(other) => Err(format!("unknown selector `{other}` (greedy|refine)")),
    }
}

fn load_module(path: &str) -> Result<ObjectModule, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    codense_obj::deserialize(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn cmd_gen(args: &[String]) -> CliResult {
    let which = args.first().ok_or("gen: missing benchmark name (or `all`)")?;
    let dir = flag_value(args, "-o").unwrap_or(".");
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let modules: Vec<ObjectModule> = if which == "all" {
        // Each benchmark is generated from its own seeded profile, so the
        // suite parallelizes with output identical to `generate_suite`.
        codense_core::parallel::par_map(codense_codegen::spec_profiles(), |_, p| {
            codense_codegen::generate_module(&p)
        })
    } else {
        vec![codense_codegen::benchmark(which)
            .ok_or_else(|| format!("unknown benchmark `{which}`"))?]
    };
    for m in modules {
        let path = format!("{dir}/{}.cdm", m.name);
        std::fs::write(&path, codense_obj::serialize(&m)).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} instructions, {} bytes of text", m.len(), m.text_bytes());
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let path = args.first().ok_or("info: missing file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(&codense_obj::serialize::MAGIC) {
        let m = codense_obj::deserialize(&bytes).map_err(|e| format!("{path}: {e}"))?;
        println!("module `{}`", m.name);
        println!("  instructions : {}", m.len());
        println!("  text bytes   : {}", m.text_bytes());
        println!("  functions    : {}", m.functions.len());
        println!("  jump tables  : {} ({} bytes)", m.jump_tables.len(), m.jump_table_bytes());
        let bbs = codense_obj::BasicBlocks::compute(&m);
        println!("  basic blocks : {} (mean {:.1} insns)", bbs.len(), bbs.mean_block_len());
    } else if bytes.starts_with(&container::MAGIC) {
        let image = container::deserialize(&bytes).map_err(|e| format!("{path}: {e}"))?;
        println!("compressed program ({:?})", image.encoding);
        println!("  original text : {} bytes", image.original_text_bytes);
        println!("  stream        : {} nibbles ({} bytes)", image.total_nibbles, image.image.len());
        println!("  dictionary    : {} entries", image.dictionary_by_rank.len());
        println!("  jump tables   : {}", image.jump_tables.len());
        println!("  overflow slots: {}", image.overflow_table.len());
        println!(
            "  footprint     : {} bytes ({:.1}% of original)",
            image.footprint_bytes(),
            100.0 * image.footprint_bytes() as f64 / image.original_text_bytes.max(1) as f64
        );
    } else {
        return Err(format!("{path}: unrecognized file format"));
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let path = args.first().ok_or("disasm: missing file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let start: usize =
        args.get(1).map(|s| s.parse().map_err(|_| "bad START")).transpose()?.unwrap_or(0);
    let count: usize =
        args.get(2).map(|s| s.parse().map_err(|_| "bad COUNT")).transpose()?.unwrap_or(64);
    if bytes.starts_with(&container::MAGIC) {
        let image = container::deserialize(&bytes).map_err(|e| format!("{path}: {e}"))?;
        return disasm_stream(&image, start, count);
    }
    let m = codense_obj::deserialize(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if start >= m.len() {
        return Err(format!("START {start} beyond program ({} insns)", m.len()));
    }
    let end = (start + count).min(m.len());
    print!("{}", codense_ppc::disasm::dump(&m.code[start..end], 4 * start as u32));
    Ok(())
}

/// Renders a compressed stream: nibble addresses, codewords with their
/// expansions, and escaped instructions — an objdump for `.cdns` images.
fn disasm_stream(image: &container::ProgramImage, skip_items: usize, count: usize) -> CliResult {
    use codense_core::encoding::{read_item_coded, Item};
    use codense_core::huffcode::HuffCode;
    use codense_core::nibbles::NibbleReader;
    let huff = if image.encoding == EncodingKind::Huffman {
        Some(
            HuffCode::from_nibble_lengths(image.huffman_lengths.clone())
                .ok_or("corrupt huffman code-length table in container")?,
        )
    } else {
        None
    };
    let mut r = NibbleReader::new(&image.image);
    let mut index = 0usize;
    let mut shown = 0usize;
    while r.pos() < image.total_nibbles && shown < count {
        let at = r.pos();
        let Some(item) = read_item_coded(image.encoding, isa_ref("ppc"), huff.as_ref(), &mut r)
        else {
            break;
        };
        if index >= skip_items {
            match item {
                Item::Insn(word) => {
                    println!("{at:7}:  {}", codense_ppc::disasm::disassemble(word, 0));
                }
                Item::Codeword(rank) => {
                    let words = image
                        .dictionary_by_rank
                        .get(rank as usize)
                        .ok_or_else(|| format!("stream references unknown rank {rank}"))?;
                    let expansion: Vec<String> =
                        words.iter().map(|&w| codense_ppc::disasm::disassemble(w, 0)).collect();
                    println!("{at:7}:  CODEWORD #{rank}  => {}", expansion.join("; "));
                }
            }
            shown += 1;
        }
        index += 1;
    }
    Ok(())
}

fn cmd_compress(args: &[String]) -> CliResult {
    let path = args.first().ok_or("compress: missing input .cdm")?;
    let m = load_module(path)?;
    let encoding = parse_encoding(flag_value(args, "--encoding").unwrap_or("nibble"))?;
    let mut config =
        CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
    if let Some(v) = flag_value(args, "--max-entry") {
        config.max_entry_len = v.parse().map_err(|_| "bad --max-entry")?;
    }
    if let Some(v) = flag_value(args, "--max-codewords") {
        config.max_codewords = v.parse().map_err(|_| "bad --max-codewords")?;
    }
    let out_path = flag_value(args, "-o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.cdns", path.trim_end_matches(".cdm")));

    let compressed = Compressor::new(config)
        .with_selector(parse_selector(args)?)
        .compress(&m)
        .map_err(|e| e.to_string())?;
    verify(&m, &compressed).map_err(|e| format!("verification failed: {e}"))?;
    std::fs::write(&out_path, container::serialize(&compressed))
        .map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "{out_path}: {} -> {} text bytes + {} dictionary bytes ({} entries), ratio {:.1}%",
        m.text_bytes(),
        compressed.text_bytes(),
        compressed.dictionary_bytes(),
        compressed.dictionary.len(),
        100.0 * compressed.compression_ratio(),
    );
    if !compressed.overflow_table.is_empty() {
        println!(
            "  {} branch(es) rewritten through the overflow table",
            compressed.overflow_table.len()
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CliResult {
    let path = args.first().ok_or("analyze: missing file")?;
    let m = load_module(path)?;
    let p = codense_core::analysis::encoding_profile(&m);
    println!("`{}`: {} instructions, {} distinct encodings", m.name, p.total_insns, p.distinct);
    println!(
        "  encodings used once  : {} insns ({:.1}%)",
        p.used_once_insns,
        100.0 * p.used_once_fraction()
    );
    let u = codense_core::analysis::branch_offset_usage(&m);
    println!("  PC-relative branches : {}", u.total);
    let pct = u.percentages();
    println!(
        "  too narrow @2B/1B/4b : {}/{}/{} ({:.2}%/{:.2}%/{:.2}%)",
        u.too_narrow_2byte, u.too_narrow_1byte, u.too_narrow_4bit, pct[0], pct[1], pct[2]
    );
    let pe = codense_core::analysis::prologue_epilogue(&m);
    println!(
        "  prologue/epilogue    : {:.1}% / {:.1}% of program",
        pe.prologue_pct(),
        pe.epilogue_pct()
    );
    let lzw = codense_lzw::compressed_size(&m.text_image());
    println!(
        "  LZW bound            : {} bytes ({:.1}%)",
        lzw,
        100.0 * lzw as f64 / m.text_bytes() as f64
    );
    Ok(())
}

/// Two-pass textual assembler over the selected backend's `parse` module:
/// pass 1 assigns label addresses, pass 2 substitutes them into branch
/// targets. `--isa` picks the backend (default `ppc`).
fn cmd_asm(args: &[String]) -> CliResult {
    let path = args.first().ok_or("asm: missing input .s file")?;
    let isa_name = parse_isa(args)?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;

    // Pass 1: strip comments/labels, record label -> instruction index.
    let mut labels = std::collections::HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new(); // (source line no, text)
    for (no, raw) in source.lines().enumerate() {
        let mut line = raw;
        if let Some(hash) = line.find('#') {
            line = &line[..hash];
        }
        let mut rest = line.trim();
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), lines.len()).is_some() {
                return Err(format!("{path}:{}: duplicate label `{label}`", no + 1));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            lines.push((no + 1, rest.to_string()));
        }
    }

    // Pass 2: substitute label operands with absolute hex addresses, parse.
    // Both backends print and parse branch targets as absolute *byte*
    // addresses; instruction width comes from the backend, not a literal.
    let insn_bytes: u32 = if isa_name == "mips" { codense_mips::INSN_BYTES } else { 4 };
    let parse_encode = |text: &str, addr: u32| -> Result<u32, String> {
        if isa_name == "mips" {
            codense_mips::parse::parse_insn(text, addr)
                .map(|i| codense_mips::encode(&i))
                .map_err(|e| e.to_string())
        } else {
            codense_ppc::parse::parse_insn(text, addr)
                .map(|i| codense_ppc::encode(&i))
                .map_err(|e| e.to_string())
        }
    };
    let mut code = Vec::with_capacity(lines.len());
    for (idx, (no, text)) in lines.iter().enumerate() {
        let substituted: String = {
            let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
            let ops: Vec<String> = rest
                .split(',')
                .map(|op| {
                    let op = op.trim();
                    match labels.get(op) {
                        Some(&target) => format!("{:08x}", insn_bytes * target as u32),
                        None => op.to_string(),
                    }
                })
                .collect();
            if rest.trim().is_empty() {
                mnemonic.to_string()
            } else {
                format!("{mnemonic} {}", ops.join(","))
            }
        };
        let word = parse_encode(&substituted, insn_bytes * idx as u32)
            .map_err(|e| format!("{path}:{no}: {e}"))?;
        code.push(word);
    }

    let stem = path.trim_end_matches(".s");
    let out_path =
        flag_value(args, "-o").map(str::to_owned).unwrap_or_else(|| format!("{stem}.cdm"));
    let mut module = ObjectModule::new(
        std::path::Path::new(stem)
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "module".to_owned()),
    );
    module.code = code;
    module.validate_with(isa_ref(isa_name)).map_err(|e| format!("{path}: invalid program: {e}"))?;
    std::fs::write(&out_path, codense_obj::serialize(&module))
        .map_err(|e| format!("{out_path}: {e}"))?;
    println!("{out_path}: {} instructions", module.len());
    Ok(())
}

/// The paper's headline experiment: regenerate the deterministic synthetic
/// suite, compress every benchmark under all four encodings, verify each
/// result, and print the ratio table.
/// One `repro` table row: benchmark name, instruction count, text bytes,
/// ratio per encoding (baseline, onebyte, nibble, huffman).
type ReproRow = (String, usize, usize, [f64; 4]);

/// The repro encoding order (table column order; the JSON artifacts sort
/// keys alphabetically on their own).
const REPRO_ENCODINGS: [(&str, EncodingKind); 4] = [
    ("baseline", EncodingKind::Baseline),
    ("onebyte", EncodingKind::OneByte),
    ("nibble", EncodingKind::NibbleAligned),
    ("huffman", EncodingKind::Huffman),
];

/// Generates the suite for one backend and compresses every benchmark
/// under all four encodings with the given selector, verifying each result.
fn repro_rows(
    isa: &str,
    bench_filter: Option<&str>,
    selector: SelectorKind,
) -> Result<Vec<ReproRow>, String> {
    use codense_core::telemetry;
    let profiles: Vec<_> = codense_codegen::spec_profiles()
        .into_iter()
        .filter(|p| bench_filter.is_none_or(|b| p.name == b))
        .collect();
    if profiles.is_empty() {
        return Err(format!("repro: unknown benchmark `{}`", bench_filter.unwrap_or("")));
    }
    let isa_name = isa.to_owned();
    let modules: Vec<ObjectModule> = {
        let _phase = telemetry::phase("suite-gen");
        codense_core::parallel::par_map(profiles, move |_, p| {
            if isa_name == "mips" {
                codense_codegen::generate_module_mips(&p)
            } else {
                codense_codegen::generate_module(&p)
            }
        })
    };

    let _compress_phase = telemetry::phase("compress-suite");
    let isa = isa_ref(isa);
    codense_core::parallel::par_map(modules, move |_, m| {
        let mut ratios = [0.0f64; 4];
        for (i, &(_, encoding)) in REPRO_ENCODINGS.iter().enumerate() {
            let config = CompressionConfig {
                max_entry_len: 4,
                max_codewords: encoding.capacity(),
                encoding,
            };
            let c = Compressor::new(config)
                .with_isa(isa)
                .with_selector(selector)
                .compress(&m)
                .map_err(|e| format!("{}: {e}", m.name))?;
            verify(&m, &c).map_err(|e| format!("{} ({encoding:?}): {e}", m.name))?;
            ratios[i] = c.compression_ratio();
        }
        Ok::<_, String>((m.name.clone(), m.len(), m.text_bytes(), ratios))
    })
    .into_iter()
    .collect::<Result<_, _>>()
}

fn print_repro_row((name, insns, bytes, r): &ReproRow) {
    println!(
        "{name:<10} {insns:>7} {bytes:>8} {:>8.1}% {:>7.1}% {:>6.1}% {:>7.1}%",
        100.0 * r[0],
        100.0 * r[1],
        100.0 * r[2],
        100.0 * r[3]
    );
}

fn print_repro_table(rows: &[ReproRow]) {
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>8} {:>7} {:>8}",
        "bench", "insns", "bytes", "baseline", "onebyte", "nibble", "huffman"
    );
    let mut mean = [0.0f64; 4];
    for row in rows {
        print_repro_row(row);
        for (m, r) in mean.iter_mut().zip(row.3) {
            *m += r;
        }
    }
    let n = rows.len() as f64;
    println!(
        "{:<10} {:>7} {:>8} {:>8.1}% {:>7.1}% {:>6.1}% {:>7.1}%",
        "average",
        "",
        "",
        100.0 * mean[0] / n,
        100.0 * mean[1] / n,
        100.0 * mean[2] / n,
        100.0 * mean[3] / n
    );
}

/// Renders the schema-1 `BENCH_isa.json` cross-ISA density artifact:
/// sorted-key JSON with per-benchmark ratios and per-ISA means for both
/// backends under all four encodings (greedy selector).
fn render_isa_artifact(per_isa: &[(&str, &[ReproRow])]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"isas\": {\n");
    let mut isas: Vec<_> = per_isa.to_vec();
    isas.sort_by_key(|(name, _)| *name);
    for (ii, (isa, rows)) in isas.iter().enumerate() {
        let isa_comma = if ii + 1 < isas.len() { "," } else { "" };
        json.push_str(&format!("    \"{isa}\": {{\n      \"benches\": {{\n"));
        let mut rows: Vec<_> = rows.to_vec();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let mut mean = [0.0f64; 4];
        for (bi, (name, insns, bytes, r)) in rows.iter().enumerate() {
            let comma = if bi + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "        \"{name}\": {{ \"baseline\": {:.4}, \"huffman\": {:.4}, \
                 \"insns\": {insns}, \"nibble\": {:.4}, \"onebyte\": {:.4}, \
                 \"text_bytes\": {bytes} }}{comma}\n",
                r[0], r[3], r[2], r[1]
            ));
            for i in 0..4 {
                mean[i] += r[i];
            }
        }
        let n = rows.len() as f64;
        json.push_str("      },\n");
        json.push_str(&format!(
            "      \"mean\": {{ \"baseline\": {:.4}, \"huffman\": {:.4}, \"nibble\": {:.4}, \
             \"onebyte\": {:.4} }}\n",
            mean[0] / n,
            mean[3] / n,
            mean[2] / n,
            mean[1] / n
        ));
        json.push_str(&format!("    }}{isa_comma}\n"));
    }
    json.push_str("  },\n  \"schema\": 1\n}\n");
    json
}

/// One ISA's column of the ratio artifact: repro rows per selector name.
type SelectorCells<'a> = [(&'a str, &'a [ReproRow]); 2];

/// Renders the schema-1 `BENCH_ratio.json` selector-trajectory artifact:
/// per-benchmark compression ratios for both ISAs under every
/// selector × encoding cell, with per-cell means. The checked-in copy is
/// the ratio-regression baseline in `scripts/verify.sh` and documents that
/// the refinement selector beats greedy (ISSUE 9's acceptance bar:
/// refine+huffman mean < greedy+nibble mean on at least one ISA).
fn render_ratio_artifact(per_isa: &[(&str, SelectorCells)]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"isas\": {\n");
    let mut isas: Vec<_> = per_isa.to_vec();
    isas.sort_by_key(|(name, _)| *name);
    for (ii, (isa, selectors)) in isas.iter().enumerate() {
        let isa_comma = if ii + 1 < isas.len() { "," } else { "" };
        json.push_str(&format!("    \"{isa}\": {{\n"));
        let mut selectors = *selectors;
        selectors.sort_by_key(|(name, _)| *name);
        for (si, (selector, rows)) in selectors.iter().enumerate() {
            let sel_comma = if si + 1 < selectors.len() { "," } else { "" };
            json.push_str(&format!("      \"{selector}\": {{\n        \"benches\": {{\n"));
            let mut rows: Vec<_> = rows.to_vec();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            let mut mean = [0.0f64; 4];
            for (bi, (name, _, _, r)) in rows.iter().enumerate() {
                let comma = if bi + 1 < rows.len() { "," } else { "" };
                json.push_str(&format!(
                    "          \"{name}\": {{ \"baseline\": {:.4}, \"huffman\": {:.4}, \
                     \"nibble\": {:.4}, \"onebyte\": {:.4} }}{comma}\n",
                    r[0], r[3], r[2], r[1]
                ));
                for i in 0..4 {
                    mean[i] += r[i];
                }
            }
            let n = rows.len() as f64;
            json.push_str("        },\n");
            json.push_str(&format!(
                "        \"mean\": {{ \"baseline\": {:.4}, \"huffman\": {:.4}, \
                 \"nibble\": {:.4}, \"onebyte\": {:.4} }}\n",
                mean[0] / n,
                mean[3] / n,
                mean[2] / n,
                mean[1] / n
            ));
            json.push_str(&format!("      }}{sel_comma}\n"));
        }
        json.push_str(&format!("    }}{isa_comma}\n"));
    }
    json.push_str("  },\n  \"schema\": 1\n}\n");
    json
}

fn cmd_repro(args: &[String]) -> CliResult {
    let bench_filter = flag_value(args, "--bench");
    let isa_flag = flag_value(args, "--isa").unwrap_or("ppc");
    let show: Vec<&'static str> = match isa_flag {
        "ppc" => vec!["ppc"],
        "mips" => vec!["mips"],
        "both" => vec!["ppc", "mips"],
        other => return Err(format!("unknown ISA `{other}` (ppc|mips|both)")),
    };
    let out_path = flag_value(args, "--out");
    let ratio_path = flag_value(args, "--ratio-out");
    let selector = parse_selector(args)?;

    // (isa, selector) → rows, computed lazily so the table, the isa
    // artifact (always greedy), and the ratio artifact (both selectors)
    // share work.
    let mut computed: Vec<((&'static str, SelectorKind), Vec<ReproRow>)> = Vec::new();
    fn rows_for<'a>(
        computed: &'a mut Vec<((&'static str, SelectorKind), Vec<ReproRow>)>,
        isa: &'static str,
        selector: SelectorKind,
        bench_filter: Option<&str>,
    ) -> Result<&'a [ReproRow], String> {
        if let Some(i) = computed.iter().position(|(k, _)| *k == (isa, selector)) {
            return Ok(&computed[i].1);
        }
        let rows = repro_rows(isa, bench_filter, selector)?;
        computed.push(((isa, selector), rows));
        Ok(&computed.last().expect("just pushed").1)
    }

    let corpus_insns = corpus::corpus_arg(args)?;
    for &isa in &show {
        let rows = rows_for(&mut computed, isa, selector, bench_filter)?;
        // The single-ISA default output is the historical table, unchanged.
        if show.len() > 1 || isa != "ppc" {
            println!("isa: {isa}");
        }
        if selector != SelectorKind::Greedy {
            println!("selector: refine");
        }
        print_repro_table(rows);
        // The corpus scale point rides along in the printed table only; the
        // blessed artifacts carry the fixed suite (BENCH_scale.json owns the
        // corpus data).
        if let Some(n) = corpus_insns {
            let p = corpus::corpus_program(args, n, isa)?;
            print_repro_row(&corpus::corpus_repro_row(&p, selector)?);
        }
    }

    // The isa artifact is the cross-ISA comparison: it always carries both
    // backends under the greedy selector, computing whatever the table
    // display didn't need.
    if let Some(path) = out_path {
        for isa in ["ppc", "mips"] {
            rows_for(&mut computed, isa, SelectorKind::Greedy, bench_filter)?;
        }
        let per_isa: Vec<(&str, &[ReproRow])> = computed
            .iter()
            .filter(|((_, s), _)| *s == SelectorKind::Greedy)
            .map(|((i, _), r)| (*i, r.as_slice()))
            .collect();
        let json = render_isa_artifact(&per_isa);
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} isa(s)", per_isa.len());
    }

    // The ratio artifact carries the full isa × selector × encoding grid.
    if let Some(path) = ratio_path {
        for isa in ["ppc", "mips"] {
            for s in [SelectorKind::Greedy, SelectorKind::Refine] {
                rows_for(&mut computed, isa, s, bench_filter)?;
            }
        }
        let cell = |isa: &str, s: SelectorKind| -> &[ReproRow] {
            computed
                .iter()
                .find(|((i, cs), _)| *i == isa && *cs == s)
                .map(|(_, r)| r.as_slice())
                .expect("computed above")
        };
        let per_isa: Vec<(&str, SelectorCells)> = ["ppc", "mips"]
            .iter()
            .map(|isa| {
                (
                    *isa,
                    [
                        ("greedy", cell(isa, SelectorKind::Greedy)),
                        ("refine", cell(isa, SelectorKind::Refine)),
                    ],
                )
            })
            .collect();
        let json = render_ratio_artifact(&per_isa);
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} isa(s) x 2 selectors", per_isa.len());
    }
    Ok(())
}

/// Parameter sweeps behind Figures 4-8 on one benchmark.
fn cmd_sweep(args: &[String]) -> CliResult {
    use codense_core::{sweep, telemetry};
    let bench = flag_value(args, "--bench").unwrap_or("compress");
    let isa_name = parse_isa(args)?;
    let isa = isa_ref(isa_name);
    let selector = parse_selector(args)?;
    let module = match corpus::corpus_arg(args)? {
        Some(n) => corpus::corpus_program(args, n, isa_name)?.module,
        None => {
            benchmark_for(isa_name, bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?
        }
    };
    println!("sweeps on `{}` ({} insns, {} bytes)", module.name, module.len(), module.text_bytes());
    if selector != SelectorKind::Greedy {
        println!("selector: refine");
    }
    // Refinement invalidates the greedy pick-log prefix shortcut the core
    // sweeps lean on, so the refine path recompresses every point honestly.
    let ratio_at = |config: CompressionConfig| -> Result<f64, String> {
        let c = Compressor::new(config)
            .with_isa(isa)
            .with_selector(selector)
            .compress(&module)
            .map_err(|e| e.to_string())?;
        Ok(c.compression_ratio())
    };

    {
        let _phase = telemetry::phase("sweep-entry-len");
        let lens = [1usize, 2, 3, 4, 6, 8];
        let points: Vec<(usize, f64)> = match selector {
            SelectorKind::Greedy => {
                sweep::entry_len_sweep_with_isa(&module, isa, &lens).map_err(|e| e.to_string())?
            }
            SelectorKind::Refine => lens
                .iter()
                .map(|&l| {
                    let kind = EncodingKind::Baseline;
                    let config = CompressionConfig {
                        max_entry_len: l,
                        max_codewords: kind.capacity(),
                        encoding: kind,
                    };
                    Ok((l, ratio_at(config)?))
                })
                .collect::<Result<_, String>>()?,
        };
        println!("max entry length (Fig 4):");
        for (l, ratio) in points {
            println!("  {l:>2} insns: {:.1}%", 100.0 * ratio);
        }
    }
    {
        let _phase = telemetry::phase("sweep-codewords");
        let counts = [16usize, 64, 256, 1024, 4096, 8192];
        let points: Vec<(usize, f64)> = match selector {
            SelectorKind::Greedy => sweep::codeword_count_sweep_with_isa(&module, isa, 4, &counts)
                .map_err(|e| e.to_string())?,
            SelectorKind::Refine => counts
                .iter()
                .map(|&k| {
                    let config = CompressionConfig {
                        max_entry_len: 4,
                        max_codewords: k,
                        encoding: EncodingKind::Baseline,
                    };
                    Ok((k, ratio_at(config)?))
                })
                .collect::<Result<_, String>>()?,
        };
        println!("codeword count (Fig 5):");
        for (k, ratio) in points {
            println!("  {k:>5} codewords: {:.1}%", 100.0 * ratio);
        }
    }
    {
        let _phase = telemetry::phase("sweep-small-dict");
        let counts = [16usize, 32, 64, 128, 256];
        let points: Vec<(usize, f64)> = match selector {
            SelectorKind::Greedy => sweep::small_dictionary_sweep_with_isa(&module, isa, &counts)
                .map_err(|e| e.to_string())?,
            SelectorKind::Refine => counts
                .iter()
                .map(|&n| Ok((n, ratio_at(CompressionConfig::small_dictionary(n))?)))
                .collect::<Result<_, String>>()?,
        };
        println!("small dictionaries, 1-byte codewords (Fig 8):");
        for (n, ratio) in points {
            println!("  {n:>4} entries: {:.1}%", 100.0 * ratio);
        }
    }
    Ok(())
}

/// Profiles the kernel benchmark suite and renders the schema-1 artifact.
fn cmd_profile(args: &[String]) -> CliResult {
    use codense_profile::{bench, collect_subject, render_profiles_json, Subject};
    let encoding_name = flag_value(args, "--encoding").unwrap_or("nibble");
    let encoding = parse_encoding(encoding_name)?;
    let max_steps: u64 = match flag_value(args, "--max-steps") {
        Some(v) => v.parse().map_err(|_| "bad --max-steps")?,
        None => 10_000_000,
    };
    let subjects: Vec<Subject> = match (corpus::corpus_arg(args)?, flag_value(args, "--bench")) {
        (Some(_), Some(_)) => return Err("profile: --corpus and --bench conflict".into()),
        (Some(n), None) => {
            vec![corpus::corpus_subject(&corpus::corpus_program(args, n, "ppc")?)?]
        }
        (None, Some(name)) => {
            vec![Subject::from_kernel(
                &bench::bench(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?,
            )]
        }
        (None, None) => bench::benches().iter().map(Subject::from_kernel).collect(),
    };
    let profiles = codense_core::parallel::par_map(subjects, |_, s| {
        collect_subject(&s, encoding, max_steps).map_err(|e| format!("{}: {e}", s.name))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let json = render_profiles_json(&profiles, encoding_name);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            for p in &profiles {
                println!(
                    "{:<12} {:>6} insns, {:>7} steps, {:>3} blocks executed of {}",
                    p.bench,
                    p.insns,
                    p.steps,
                    p.blocks.iter().filter(|b| b.weight > 0).count(),
                    p.blocks.len()
                );
            }
            println!("{path}: {} profile(s), encoding {encoding_name}", profiles.len());
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// One profile-guided hybrid compression with full-trace validation.
fn cmd_hybrid(args: &[String]) -> CliResult {
    use codense_fuzz::oracle::{lockstep, LockstepOk, TraceMask};
    use codense_profile::{
        bench, collect, hot_mask, score_compressed, score_native, CostParams, HotnessPolicy,
    };
    let name = flag_value(args, "--bench").ok_or("hybrid: missing --bench NAME")?;
    let kernel = bench::bench(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let encoding = parse_encoding(flag_value(args, "--encoding").unwrap_or("nibble"))?;
    let max_steps: u64 = match flag_value(args, "--max-steps") {
        Some(v) => v.parse().map_err(|_| "bad --max-steps")?,
        None => 10_000_000,
    };
    let policy = match (flag_value(args, "--coverage"), flag_value(args, "--threshold")) {
        (Some(_), Some(_)) => return Err("hybrid: --coverage and --threshold conflict".into()),
        (Some(v), None) => {
            let f: f64 = v.parse().map_err(|_| "bad --coverage")?;
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("bad --coverage `{v}` (expected 0.0..=1.0)"));
            }
            HotnessPolicy::TopCoverage(f)
        }
        (None, Some(v)) => HotnessPolicy::Threshold(v.parse().map_err(|_| "bad --threshold")?),
        (None, None) => HotnessPolicy::TopCoverage(0.5),
    };
    let cost = CostParams::default();

    let profile = collect(&kernel, encoding, max_steps).map_err(|e| e.to_string())?;
    let mask = hot_mask(&profile, policy);
    let config =
        CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
    let full =
        Compressor::new(config.clone()).compress(&kernel.module).map_err(|e| e.to_string())?;
    let hybrid = Compressor::new(config)
        .compress_masked(&kernel.module, &mask.exempt)
        .map_err(|e| e.to_string())?;
    verify(&kernel.module, &hybrid).map_err(|e| format!("verification failed: {e}"))?;

    // Full-trace equivalence, not just matching exit codes.
    let trace_mask =
        TraceMask { skip_gprs: 1 << 0, mem_skip: std::iter::once(0xE0000..1 << 20).collect() };
    let got = lockstep(
        &kernel.module,
        &hybrid,
        &[],
        &|machine| kernel.apply_init(machine),
        &trace_mask,
        1 << 20,
        max_steps,
    )
    .map_err(|d| format!("hybrid image diverged from native: {d}"))?;
    if got != (LockstepOk::Completed { steps: profile.steps, exit: kernel.expected }) {
        return Err(format!("hybrid lockstep ended unexpectedly: {got:?}"));
    }

    let native = score_native(&kernel, &cost, max_steps).map_err(|e| e.to_string())?;
    let full_score =
        score_compressed(&kernel, &full, &cost, max_steps).map_err(|e| e.to_string())?;
    let hybrid_score =
        score_compressed(&kernel, &hybrid, &cost, max_steps).map_err(|e| e.to_string())?;

    println!(
        "{name}: {} insns, {} steps, lockstep ok ({:?})",
        profile.insns, profile.steps, encoding
    );
    println!(
        "  hot: {} of {} blocks, {} of {} insns exempt",
        mask.hot_block_count(),
        profile.blocks.len(),
        mask.exempt_insn_count(),
        profile.insns
    );
    println!("  {:<8} {:>8} {:>9}", "image", "cycles", "ratio");
    println!("  {:<8} {:>8} {:>8.1}%", "native", native.cycles, 100.0);
    println!("  {:<8} {:>8} {:>8.1}%", "full", full_score.cycles, 100.0 * full.compression_ratio());
    println!(
        "  {:<8} {:>8} {:>8.1}%",
        "hybrid",
        hybrid_score.cycles,
        100.0 * hybrid.compression_ratio()
    );
    Ok(())
}

/// The whole-suite coverage sweep behind `BENCH_hybrid.json`.
fn cmd_hybrid_sweep(args: &[String]) -> CliResult {
    use codense_profile::{
        bench, hybrid_sweep_subjects, render_bench_json, HybridOptions, Subject,
    };
    let encoding_name = flag_value(args, "--encoding").unwrap_or("nibble");
    let options =
        HybridOptions { encoding: parse_encoding(encoding_name)?, ..HybridOptions::default() };
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_hybrid.json");
    let mut subjects: Vec<Subject> = bench::benches().iter().map(Subject::from_kernel).collect();
    // An optional corpus scale point joins the sweep; the blessed
    // BENCH_hybrid.json is generated without it.
    if let Some(n) = corpus::corpus_arg(args)? {
        subjects.push(corpus::corpus_subject(&corpus::corpus_program(args, n, "ppc")?)?);
    }
    let results = hybrid_sweep_subjects(&subjects, &options).map_err(|e| e.to_string())?;
    let json = render_bench_json(&results, encoding_name, &options.cost);
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!("{:<12} {:>7} {:>8} {:>8}  best mid-range point", "bench", "native", "full", "ratio");
    for r in &results {
        let best =
            r.points.iter().filter(|p| p.coverage > 0.0 && p.coverage < 1.0).max_by(|a, b| {
                (a.recovered_pct.min(100.0) + a.retained_pct.min(100.0))
                    .total_cmp(&(b.recovered_pct.min(100.0) + b.retained_pct.min(100.0)))
            });
        match best {
            Some(p) => println!(
                "{:<12} {:>7} {:>8} {:>7.1}%  cov {:.2}: {} cycles, {:.1}% recovered, {:.1}% size kept",
                r.bench,
                r.native_cycles,
                r.full_cycles,
                100.0 * r.full_ratio,
                p.coverage,
                p.cycles,
                p.recovered_pct,
                p.retained_pct
            ),
            None => println!("{:<12} {:>7} {:>8} {:>7.1}%", r.bench, r.native_cycles, r.full_cycles, 100.0 * r.full_ratio),
        }
    }
    println!("{out_path}: {} benches, encoding {encoding_name}", results.len());
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let mut opts = codense_fuzz::FuzzOptions::default();
    if let Some(v) = flag_value(args, "--cases") {
        opts.cases = v.parse().map_err(|_| "bad --cases")?;
    }
    if let Some(v) = flag_value(args, "--seed") {
        opts.seed = parse_seed(v)?;
    }
    if let Some(v) = flag_value(args, "--max-steps") {
        opts.max_steps = v.parse().map_err(|_| "bad --max-steps")?;
    }
    if let Some(v) = flag_value(args, "--fault-tries") {
        opts.fault_tries = v.parse().map_err(|_| "bad --fault-tries")?;
    }
    opts.hybrid = args.iter().any(|a| a == "--hybrid");
    let isa = parse_isa(args)?;
    if isa == "mips" && opts.hybrid {
        return Err("fuzz: --hybrid is not supported with --isa mips".into());
    }
    let report =
        if isa == "mips" { codense_fuzz::run_mips(&opts) } else { codense_fuzz::run(&opts) };
    println!("{}", report.render());
    if report.ok() {
        Ok(())
    } else {
        // The report already printed the failures; exit nonzero quietly.
        Err(format!("{} failure(s) found", report.failures))
    }
}

/// Parses a campaign seed in decimal or `0x` hex.
fn parse_seed(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("bad --seed `{v}` (decimal or 0x hex)"))
}

fn cmd_run_kernel(args: &[String]) -> CliResult {
    use codense_vm::{
        fetch::CompressedFetcher, kernels, machine::Machine, run::run, LinearFetcher,
    };
    let name = args.first().ok_or("run-kernel: missing kernel name (try `list`)")?;
    let all = kernels::all();
    if name == "list" {
        for k in &all {
            println!("{}", k.name);
        }
        return Ok(());
    }
    let kernel = all
        .iter()
        .find(|k| k.name == name.as_str())
        .ok_or_else(|| format!("unknown kernel `{name}` (try `list`)"))?;
    let encoding = flag_value(args, "--encoding").unwrap_or("nibble");

    let mut machine = Machine::new(1 << 20);
    kernel.apply_init(&mut machine);
    let result = if encoding == "none" {
        let mut fetch = LinearFetcher::new(kernel.module.code.clone());
        run(&mut machine, &mut fetch, 0, 100_000_000).map_err(|e| e.to_string())?
    } else {
        let kind = parse_encoding(encoding)?;
        let config =
            CompressionConfig { max_entry_len: 4, max_codewords: kind.capacity(), encoding: kind };
        let compressed =
            Compressor::new(config).compress(&kernel.module).map_err(|e| e.to_string())?;
        let mut fetch = CompressedFetcher::new(&compressed);
        run(&mut machine, &mut fetch, 0, 100_000_000).map_err(|e| e.to_string())?
    };
    println!(
        "{name}: exit {} (expected {}), {} steps, {:.2} bits/insn fetched",
        result.exit_code,
        kernel.expected,
        result.steps,
        result.stats.bits_per_insn()
    );
    if result.exit_code != kernel.expected {
        return Err("kernel produced an unexpected result".into());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut opts = codense_service::ServeOptions {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_owned(),
        jobs: codense_core::parallel::jobs(),
        ..Default::default()
    };
    if let Some(v) = flag_value(args, "--queue-depth") {
        opts.queue_depth = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --queue-depth `{v}` (expected an integer >= 1)")),
        };
    }
    if let Some(v) = flag_value(args, "--timeout-ms") {
        opts.timeout_ms = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --timeout-ms `{v}` (expected an integer >= 1)")),
        };
    }
    if let Some(v) = flag_value(args, "--cache-bytes") {
        opts.cache_bytes =
            v.parse().map_err(|_| format!("bad --cache-bytes `{v}` (expected an integer >= 0)"))?;
    }
    let handle = codense_service::serve(&opts).map_err(|e| format!("serve: {e}"))?;
    // Scripts parse this line to learn the ephemeral port; flush so it is
    // visible before the (blocking) join.
    println!("serving on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    println!("drained, exiting");
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> CliResult {
    let addr = flag_value(args, "--addr").ok_or("loadgen: missing --addr HOST:PORT")?;
    let corpus_insns = corpus::corpus_arg(args)?;
    let bench = match corpus_insns {
        Some(n) => corpus::corpus_name(n),
        None => flag_value(args, "--bench").unwrap_or("compress").to_owned(),
    };
    let encoding = parse_encoding(flag_value(args, "--encoding").unwrap_or("nibble"))?;
    let max_entry: u16 = match flag_value(args, "--max-entry") {
        Some(v) => v.parse().map_err(|_| "bad --max-entry")?,
        None => 4,
    };
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_serve.json");
    let mut opts = codense_service::LoadgenOptions { addr: addr.to_owned(), ..Default::default() };
    if let Some(v) = flag_value(args, "--requests") {
        opts.requests = v.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(v) = flag_value(args, "--connections") {
        opts.connections = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --connections `{v}` (expected an integer >= 1)")),
        };
    }
    if let Some(v) = flag_value(args, "--timeout-ms") {
        opts.timeout_ms = v.parse().map_err(|_| "bad --timeout-ms")?;
    }

    // --corpus swaps the toy benchmark for a SPEC-scale module, exercising
    // the server's frame streaming at multi-MiB request sizes (the
    // MAX_FRAME / TOO_LARGE boundary itself is pinned by protocol tests).
    let module = match corpus_insns {
        Some(n) => corpus::corpus_program(args, n, "ppc")?.module,
        None => codense_codegen::benchmark(&bench)
            .ok_or_else(|| format!("unknown benchmark `{bench}`"))?,
    };
    let request = codense_service::CompressRequest {
        encoding,
        selector: parse_selector(args)?,
        max_entry_len: max_entry,
        max_codewords: 0, // the encoding's full codeword space
        module: codense_obj::serialize(&module),
    };
    if corpus_insns.is_some() {
        println!(
            "corpus request: {} insns, {:.2} MiB serialized module",
            module.len(),
            request.module.len() as f64 / (1 << 20) as f64
        );
    }
    // The expected response, computed in process: every served result must
    // be byte-identical, so the benchmark doubles as a correctness check.
    let compressed = Compressor::new(request.config())
        .with_selector(request.selector)
        .compress(&module)
        .map_err(|e| format!("loadgen: in-process compression failed: {e}"))?;
    let expected = container::serialize(&compressed);

    let report = codense_service::run_loadgen(&opts, &request, &expected)
        .map_err(|e| format!("loadgen: {addr}: {e}"))?;

    // Snapshot the server's telemetry right after the run (and before any
    // --shutdown), for the determinism gate in scripts/verify.sh.
    if let Some(path) = flag_value(args, "--metrics-out") {
        let json = codense_service::Client::connect(addr, opts.timeout_ms)
            .map_err(|e| format!("loadgen: metrics: {e}"))?
            .metrics()
            .map_err(|e| format!("loadgen: metrics: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    // The server's shape is not observable through the wire protocol (the
    // counters section must stay identical at any --jobs), so the caller
    // records it explicitly; 0 means "not recorded".
    let parse_shape = |flag: &str| -> Result<usize, String> {
        match flag_value(args, flag) {
            Some(v) => v.parse().map_err(|_| format!("bad {flag} `{v}`")),
            None => Ok(0),
        }
    };
    let meta = codense_service::BenchMeta {
        bench: bench.to_owned(),
        encoding: flag_value(args, "--encoding").unwrap_or("nibble").to_owned(),
        jobs: parse_shape("--server-jobs")?,
        queue_depth: parse_shape("--server-queue-depth")?,
    };
    let json = codense_service::render_bench_json(&report, &opts, &meta);
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "{out_path}: {} ok, {} busy, {} failed; {:.1} req/s, p50 {} us, p99 {} us",
        report.ok,
        report.busy,
        report.failed,
        report.throughput_rps(),
        report.percentile_us(50.0),
        report.percentile_us(99.0),
    );

    if args.iter().any(|a| a == "--shutdown") {
        codense_service::Client::connect(addr, opts.timeout_ms)
            .and_then(|mut c| c.shutdown().map_err(|e| std::io::Error::other(e.to_string())))
            .map_err(|e| format!("loadgen: shutdown: {e}"))?;
    }
    if report.failed > 0 {
        return Err(format!("{} request(s) failed", report.failed));
    }
    Ok(())
}

fn cmd_loadsweep(args: &[String]) -> CliResult {
    let addr = flag_value(args, "--addr").ok_or("loadsweep: missing --addr HOST:PORT")?;
    let bench = flag_value(args, "--bench").unwrap_or("compress");
    let encoding_name = flag_value(args, "--encoding").unwrap_or("nibble");
    let encoding = parse_encoding(encoding_name)?;
    let selector = parse_selector(args)?;
    let max_entry: u16 = match flag_value(args, "--max-entry") {
        Some(v) => v.parse().map_err(|_| "bad --max-entry")?,
        None => 4,
    };
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_load.json");
    let timeout_ms: u64 = match flag_value(args, "--timeout-ms") {
        Some(v) => v.parse().map_err(|_| "bad --timeout-ms")?,
        None => 30_000,
    };
    let connections: usize = match flag_value(args, "--connections") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --connections `{v}` (expected an integer >= 1)")),
        },
        None => 4,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| "bad --seed")?,
        None => 0xC0DE,
    };
    let parse_csv = |flag: &str, default: &str| -> Result<Vec<u64>, String> {
        flag_value(args, flag)
            .unwrap_or(default)
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad {flag} entry `{s}`")))
            .collect()
    };
    let rates = parse_csv("--rates", "50,100,200,400,800")?;
    let uniques = parse_csv("--unique", "1,2,4,8,16")?;
    let point_requests: usize = match flag_value(args, "--point-requests") {
        Some(v) => v.parse().map_err(|_| "bad --point-requests")?,
        None => 64,
    };
    let cache_requests: usize = match flag_value(args, "--cache-requests") {
        Some(v) => v.parse().map_err(|_| "bad --cache-requests")?,
        None => 64,
    };

    // Distinct modules for the cache sweep: the base benchmark plus one
    // differentiating instruction per variant — enough to change the
    // content hash, cheap enough to compress in-process for every variant.
    let base =
        codense_codegen::benchmark(bench).ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
    let max_unique = uniques.iter().copied().max().unwrap_or(1).max(4) as usize;
    let mut items = Vec::with_capacity(max_unique);
    for v in 0..max_unique {
        let mut module = base.clone();
        module.code.push(0x3860_0000 | v as u32); // li r3, v
        let request = codense_service::CompressRequest {
            encoding,
            selector,
            max_entry_len: max_entry,
            max_codewords: 0, // the encoding's full codeword space
            module: codense_obj::serialize(&module),
        };
        let compressed = Compressor::new(request.config())
            .with_selector(request.selector)
            .compress(&module)
            .map_err(|e| format!("loadsweep: in-process compression failed: {e}"))?;
        items.push(codense_service::WorkItem {
            request,
            expected: container::serialize(&compressed),
        });
    }

    // Latency-vs-offered-load curve over a small working set that fits the
    // cache: the first touches exercise the workers, steady state measures
    // the reactor + cache service path under pipelined arrivals.
    let mix = &items[..items.len().min(4)];
    let mut load_points = Vec::new();
    let mut failed_total = 0u64;
    for &rate in &rates {
        let opts = codense_service::OpenLoopOptions {
            addr: addr.to_owned(),
            rate_rps: rate as f64,
            requests: point_requests,
            connections,
            timeout_ms,
            seed,
        };
        let report = codense_service::run_open_loop(&opts, mix)
            .map_err(|e| format!("loadsweep: {addr}: {e}"))?;
        println!(
            "rate {rate} rps: {} ok, {} busy, {} failed; p50 {} us, p99 {} us",
            report.ok,
            report.busy,
            report.failed,
            report.percentile_us(50.0),
            report.percentile_us(99.0),
        );
        failed_total += report.failed;
        load_points.push(codense_service::LoadPoint { offered_rps: rate as f64, report });
    }

    let mut cache_points = Vec::new();
    for &d in &uniques {
        let d = (d as usize).clamp(1, items.len());
        let point = codense_service::run_cache_point(addr, timeout_ms, cache_requests, &items[..d])
            .map_err(|e| format!("loadsweep: cache point ({d} distinct): {e}"))?;
        println!(
            "distinct {d}: {} requests, {} hits, {} misses, hit ratio {:.3}",
            point.requests, point.hits, point.misses, point.hit_ratio,
        );
        cache_points.push(point);
    }

    let json = codense_service::render_load_json(
        bench,
        encoding_name,
        connections,
        seed,
        &load_points,
        &cache_points,
    );
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!("{out_path}: {} load points, {} cache points", load_points.len(), cache_points.len());

    if args.iter().any(|a| a == "--shutdown") {
        codense_service::Client::connect(addr, timeout_ms)
            .and_then(|mut c| c.shutdown().map_err(|e| std::io::Error::other(e.to_string())))
            .map_err(|e| format!("loadsweep: shutdown: {e}"))?;
    }
    if failed_total > 0 {
        return Err(format!("{failed_total} open-loop request(s) failed"));
    }
    Ok(())
}

/// Compression-throughput benchmark: median-of-N whole-run timing of the
/// interned matchfinder (and optionally the boxed-slice reference index)
/// per encoding, reported as instructions compressed per second. Writes the
/// `BENCH_speed.json` artifact and implements the speed-regression gate.
fn cmd_speed(args: &[String]) -> CliResult {
    use codense_core::greedy::MatchfinderKind;

    let samples: usize = match flag_value(args, "--samples") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --samples `{v}` (expected an integer >= 1)")),
        },
        None => 5,
    };
    let corpus_insns = corpus::corpus_arg(args)?;
    // The boxed-slice reference index is far too slow at corpus scale; the
    // corpus rows time the production engine only.
    let with_reference = !args.iter().any(|a| a == "--no-reference") && corpus_insns.is_none();
    let floor: f64 = match flag_value(args, "--floor") {
        Some(v) => match v.parse() {
            Ok(f) if f >= 1.0 => f,
            _ => return Err(format!("bad --floor `{v}` (expected a number >= 1.0)")),
        },
        None => 3.0,
    };
    let isa_name = parse_isa(args)?;
    let (bench, module) = match corpus_insns {
        Some(n) => (corpus::corpus_name(n), corpus::corpus_program(args, n, isa_name)?.module),
        None => {
            let bench = flag_value(args, "--bench").unwrap_or("compress");
            let module = benchmark_for(isa_name, bench)
                .ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
            (bench.to_owned(), module)
        }
    };
    let insns = module.len() as u64;
    println!("speed on `{}` ({} insns, median of {samples})", module.name, insns);

    // Alphabetical so the JSON artifact's keys are sorted.
    const ENCODINGS: [(&str, EncodingKind); 4] = [
        ("baseline", EncodingKind::Baseline),
        ("huffman", EncodingKind::Huffman),
        ("nibble", EncodingKind::NibbleAligned),
        ("onebyte", EncodingKind::OneByte),
    ];
    let selector = parse_selector(args)?;
    struct Row {
        name: &'static str,
        median_ns: u64,
        reference_ns: Option<u64>,
    }
    let mut rows = Vec::new();
    for (name, encoding) in ENCODINGS {
        let config =
            CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
        let time_engine = |kind: MatchfinderKind| {
            let compressor = Compressor::new(config.clone())
                .with_isa(isa_ref(isa_name))
                .with_selector(selector)
                .with_matchfinder(kind);
            codense_bench::median_ns(samples, || {
                codense_bench::black_box(
                    compressor.compress(&module).expect("benchmark compresses"),
                )
            })
        };
        let median_ns = time_engine(MatchfinderKind::Interned);
        let reference_ns = with_reference.then(|| time_engine(MatchfinderKind::Reference));
        let ips = insns_per_sec(insns, median_ns);
        match reference_ns {
            Some(r) => println!(
                "  {name:<8} {:>12} insns/s ({:>7} us)   reference {:>10} insns/s ({:>8} us)   speedup {:.1}x",
                ips,
                median_ns / 1_000,
                insns_per_sec(insns, r),
                r / 1_000,
                r as f64 / median_ns as f64,
            ),
            None => println!(
                "  {name:<8} {:>12} insns/s ({:>7} us)",
                ips,
                median_ns / 1_000,
            ),
        }
        rows.push(Row { name, median_ns, reference_ns });
    }

    // Schema-1 sorted-key JSON artifact.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    json.push_str("  \"encodings\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    \"{}\": {{\n", row.name));
        json.push_str(&format!(
            "      \"insns_per_sec\": {},\n      \"median_us\": {}",
            insns_per_sec(insns, row.median_ns),
            row.median_ns / 1_000
        ));
        if let Some(r) = row.reference_ns {
            json.push_str(&format!(
                ",\n      \"reference_insns_per_sec\": {},\n      \"reference_median_us\": {},\n      \"speedup\": {:.2}",
                insns_per_sec(insns, r),
                r / 1_000,
                r as f64 / row.median_ns as f64
            ));
        }
        json.push_str(&format!("\n    }}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"insns\": {insns},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"schema\": 1\n");
    json.push_str("}\n");
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} encoding(s)", rows.len());
    }

    // Regression gate: current interned throughput must stay within --floor
    // of the checked-in baseline for every encoding.
    if let Some(path) = flag_value(args, "--check") {
        let baseline = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        for row in &rows {
            let want = baseline_insns_per_sec(&baseline, row.name)
                .ok_or_else(|| format!("{path}: no `insns_per_sec` for `{}`", row.name))?;
            let got = insns_per_sec(insns, row.median_ns);
            let lower = want / floor;
            if (got as f64) < lower {
                return Err(format!(
                    "speed regression: {} at {got} insns/s, below baseline {want:.0}/{floor:.1} = {lower:.0} (from {path})",
                    row.name
                ));
            }
            println!(
                "  {:<8} {got:>12} insns/s >= {lower:>12.0} (baseline/{floor:.1})  ok",
                row.name
            );
        }
    }
    Ok(())
}

fn insns_per_sec(insns: u64, median_ns: u64) -> u64 {
    ((insns as u128 * 1_000_000_000) / median_ns.max(1) as u128) as u64
}

/// Pulls `encodings.<name>.insns_per_sec` out of a `BENCH_speed.json`
/// artifact with a minimal line scan (the artifact's key order is pinned by
/// its schema; no JSON parser in the workspace).
fn baseline_insns_per_sec(json: &str, encoding: &str) -> Option<f64> {
    let mut in_section = false;
    for line in json.lines() {
        let t = line.trim();
        if t.starts_with(&format!("\"{encoding}\":")) {
            in_section = true;
        } else if in_section {
            if let Some(rest) = t.strip_prefix("\"insns_per_sec\":") {
                return rest.trim_end_matches(',').trim().parse().ok();
            }
            if t.starts_with('}') {
                return None;
            }
        }
    }
    None
}
