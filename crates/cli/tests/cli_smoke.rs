//! End-to-end CLI smoke tests driving the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_codense"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("codense-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_compress_info_pipeline() {
    let dir = tmpdir("pipe");
    let out = bin().args(["gen", "compress", "-o", dir.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let cdm = dir.join("compress.cdm");
    let cdns = dir.join("compress.cdns");
    let out = bin()
        .args([
            "compress",
            cdm.to_str().unwrap(),
            "-o",
            cdns.to_str().unwrap(),
            "--encoding",
            "nibble",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ratio"), "{text}");

    for file in [&cdm, &cdns] {
        let out = bin().args(["info", file.to_str().unwrap()]).output().unwrap();
        assert!(out.status.success());
        assert!(!out.stdout.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disasm_prints_paper_style_text() {
    let dir = tmpdir("dis");
    bin().args(["gen", "li", "-o", dir.to_str().unwrap()]).status().unwrap();
    let out =
        bin().args(["disasm", dir.join("li.cdm").to_str().unwrap(), "0", "4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stwu r1,"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_kernel_checks_result() {
    for encoding in ["none", "baseline", "nibble"] {
        let out = bin().args(["run-kernel", "fib", "--encoding", encoding]).output().unwrap();
        assert!(out.status.success(), "{encoding}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("exit 6765"));
    }
}

#[test]
fn bad_inputs_fail_cleanly() {
    assert!(!bin().args(["info", "/nonexistent.cdm"]).output().unwrap().status.success());
    assert!(!bin().args(["gen", "espresso"]).output().unwrap().status.success());
    assert!(!bin().args(["frobnicate"]).output().unwrap().status.success());
    assert!(bin().args(["run-kernel", "list"]).output().unwrap().status.success());
}

#[test]
fn asm_assembles_labeled_source() {
    let dir = tmpdir("asm");
    let src = dir.join("prog.s");
    std::fs::write(
        &src,
        "# doubling loop\n\
         li r3,1\n\
         li r4,6\n\
         loop:\n\
         add r3,r3,r3\n\
         addi r4,r4,-1   # decrement\n\
         cmpwi r4,0\n\
         bne loop\n\
         sc\n",
    )
    .unwrap();
    let out = bin().args(["asm", src.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Disassemble it back and check the branch resolved to the label.
    let out = bin().args(["disasm", dir.join("prog.cdm").to_str().unwrap()]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bne 00000008"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn asm_assembles_mips_source() {
    // Regression test: `asm` used to hardcode PowerPC parsing and 4-byte
    // branch-target scaling; `--isa mips` must assemble MIPS mnemonics and
    // resolve labels through the MIPS branch encodings.
    let dir = tmpdir("asm-mips");
    let src = dir.join("prog.s");
    std::fs::write(
        &src,
        "# countdown with a call\n\
         start:\n\
         addiu $4,$0,10\n\
         loop:\n\
         jal leaf\n\
         addiu $4,$4,-1   # decrement\n\
         bgtz $4,loop\n\
         addu $2,$4,$0\n\
         syscall\n\
         leaf:\n\
         jr $31\n",
    )
    .unwrap();
    let out = bin().args(["asm", src.to_str().unwrap(), "--isa", "mips"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("7 instructions"), "{text}");

    // The same source is not valid PowerPC assembly; the default ISA must
    // reject it rather than silently mis-assemble.
    let out = bin().args(["asm", src.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "mips source must not assemble as ppc");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn isa_flag_rejects_unknown_backend() {
    for cmd in
        [&["repro", "--isa", "vax"][..], &["fuzz", "--isa", "vax"], &["sweep", "--isa", "vax"]]
    {
        let out = bin().args(cmd).output().unwrap();
        assert!(!out.status.success(), "{cmd:?} accepted unknown isa");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown ISA"), "{cmd:?}: {err}");
    }
}

#[test]
fn fuzz_mips_smoke_is_clean() {
    let out =
        bin().args(["fuzz", "--isa", "mips", "--cases", "3", "--seed", "9"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("isa=mips"), "{text}");
    assert!(text.contains("result: OK (3 cases, 0 divergences, 0 panics)"), "{text}");
    // Fault injection is PPC-only; the flag combination must be refused.
    let out = bin().args(["fuzz", "--isa", "mips", "--hybrid"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn asm_rejects_bad_source() {
    let dir = tmpdir("asmbad");
    let src = dir.join("bad.s");
    std::fs::write(&src, "li r3,1\nfrobnicate r3\n").unwrap();
    let out = bin().args(["asm", src.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad.s:2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disasm_renders_compressed_streams() {
    let dir = tmpdir("dis-cdns");
    bin().args(["gen", "compress", "-o", dir.to_str().unwrap()]).status().unwrap();
    let cdm = dir.join("compress.cdm");
    let cdns = dir.join("compress.cdns");
    bin().args(["compress", cdm.to_str().unwrap(), "-o", cdns.to_str().unwrap()]).status().unwrap();
    let out = bin().args(["disasm", cdns.to_str().unwrap(), "0", "20"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CODEWORD #"), "{text}");
    assert!(text.contains("=>"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
