//! The telemetry determinism contract, checked end-to-end on the real
//! binary: the `counters` section of `--metrics` output must be
//! byte-identical between `--jobs 1` and `--jobs 8` for the same workload.
//! (The `timings` section carries wall-clock data and worker counts and is
//! explicitly outside the contract.)
//!
//! Run as subprocesses so each measurement starts from zeroed counters —
//! in-process tests share the global registry and would race.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_codense"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("codense-metrics-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Extracts the `"counters": { ... }` block from a metrics report.
fn counters_section(json: &str) -> String {
    let start = json.find("\"counters\"").expect("counters key present");
    let open = json[start..].find('{').unwrap() + start;
    let close = json[open..].find('}').unwrap() + open;
    json[open..=close].to_string()
}

/// Runs the binary with `--metrics` at a given job count; returns the
/// counters section of the report.
fn run_with_jobs(dir: &Path, tag: &str, jobs: &str, args: &[&str]) -> String {
    let path = dir.join(format!("{tag}-j{jobs}.json"));
    let mut cmd = bin();
    cmd.args(["--jobs", jobs, "--metrics", path.to_str().unwrap()]);
    cmd.args(args);
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The summary table goes to stderr alongside the JSON file.
    assert!(String::from_utf8_lossy(&out.stderr).contains("telemetry"));
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"schema\": 1"), "schema marker missing: {json}");
    counters_section(&json)
}

#[test]
fn repro_counters_identical_across_job_counts() {
    let dir = tmpdir("repro");
    // One small benchmark keeps debug-mode runtime reasonable; the full
    // suite goes through the same par_map path.
    let args = ["repro", "--bench", "compress"];
    let seq = run_with_jobs(&dir, "repro", "1", &args);
    let par = run_with_jobs(&dir, "repro", "8", &args);
    assert_eq!(seq, par, "repro counters diverged between --jobs 1 and --jobs 8");
    // The run must actually have exercised the compressor.
    assert!(!seq.contains("\"compress.runs\": 0"), "{seq}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_counters_identical_across_job_counts() {
    let dir = tmpdir("fuzz");
    let args = ["fuzz", "--cases", "12", "--seed", "0xfeed", "--max-steps", "200"];
    let seq = run_with_jobs(&dir, "fuzz", "1", &args);
    let par = run_with_jobs(&dir, "fuzz", "8", &args);
    assert_eq!(seq, par, "fuzz counters diverged between --jobs 1 and --jobs 8");
    assert!(seq.contains("\"fuzz.cases\": 12"), "{seq}");
    std::fs::remove_dir_all(&dir).ok();
}
