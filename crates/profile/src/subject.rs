//! A profiling subject: everything [`crate::collect`] and [`crate::cost`]
//! need to run one program in both fetch domains.
//!
//! [`Kernel`]s are subjects with no jump tables. SPEC-scale corpus programs
//! (`codense-corpus`) add table seeding, and the seed values differ between
//! domains: a jump-table entry holds a fetch-domain code address, which is
//! `8 × insn` under linear fetch but the compressor's patched nibble
//! address under a compressed image. A plain `(address, bytes)` init list
//! cannot express that, so the subject carries the table bases and derives
//! each domain's entries from the image being run.

use codense_core::CompressedProgram;
use codense_obj::ObjectModule;
use codense_vm::kernels::Kernel;
use codense_vm::Machine;

/// A runnable profiling subject with per-fetch-domain memory initialization.
#[derive(Debug, Clone)]
pub struct Subject {
    /// Display name (the artifact's bench key).
    pub name: String,
    /// The program.
    pub module: ObjectModule,
    /// Static initial memory contents as (address, bytes) pairs, identical
    /// in both domains.
    pub init_mem: Vec<(u32, Vec<u8>)>,
    /// Byte address of each of the module's jump tables (empty for
    /// table-free programs).
    pub table_addrs: Vec<u32>,
    /// Expected exit register value at halt.
    pub expected: u32,
    /// Data-memory size for runs.
    pub mem_bytes: usize,
}

impl Subject {
    /// Wraps a kernel (no jump tables, the standard 1 MiB profiling
    /// memory).
    pub fn from_kernel(kernel: &Kernel) -> Subject {
        Subject {
            name: kernel.name.to_string(),
            module: kernel.module.clone(),
            init_mem: kernel.init_mem.clone(),
            table_addrs: Vec::new(),
            expected: kernel.expected,
            mem_bytes: crate::collect::MEM_BYTES,
        }
    }

    /// A fresh machine seeded for native (word-granular) execution: jump
    /// table entry *e* of table *t* holds `8 × target`.
    ///
    /// # Panics
    ///
    /// Panics if an init region or table lies outside the machine's memory.
    pub fn machine_native(&self) -> Machine {
        let mut m = self.machine_base();
        for (t, table) in self.module.jump_tables.iter().enumerate() {
            for (e, &target) in table.targets.iter().enumerate() {
                m.store32(self.table_addrs[t] + 4 * e as u32, 8 * target as u32)
                    .expect("jump table within subject memory");
            }
        }
        m
    }

    /// A fresh machine seeded for compressed execution: jump table entries
    /// hold the image's patched nibble-domain values.
    ///
    /// # Panics
    ///
    /// Panics if an init region or table lies outside the machine's memory.
    pub fn machine_compressed(&self, compressed: &CompressedProgram) -> Machine {
        let mut m = self.machine_base();
        for (t, table) in compressed.jump_tables.iter().enumerate() {
            for (e, &target) in table.iter().enumerate() {
                m.store32(self.table_addrs[t] + 4 * e as u32, target as u32)
                    .expect("jump table within subject memory");
            }
        }
        m
    }

    fn machine_base(&self) -> Machine {
        let mut m = Machine::new(self.mem_bytes);
        for (addr, bytes) in &self.init_mem {
            let a = *addr as usize;
            m.mem[a..a + bytes.len()].copy_from_slice(bytes);
        }
        m
    }
}
