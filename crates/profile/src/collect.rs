//! The execution profiler: instrumented VM runs producing [`Profile`]s.

use codense_core::{telemetry, CompressError, CompressionConfig, Compressor, EncodingKind};
use codense_obj::BasicBlocks;
use codense_vm::kernels::Kernel;
use codense_vm::{run, run_traced, CompressedFetcher, LinearFetcher, MachineError};

use crate::artifact::{BlockStat, FetchEvents, Profile};
use crate::subject::Subject;

/// Data-memory size for profiling runs (matches the kernel test harness).
pub const MEM_BYTES: usize = 1 << 20;

/// Why profiling a benchmark failed.
#[derive(Debug)]
pub enum ProfileError {
    /// The VM faulted or ran out of steps.
    Machine(MachineError),
    /// The reference compression failed.
    Compress(CompressError),
    /// A hybrid image failed round-trip verification.
    Verify(codense_core::VerifyError),
    /// A run halted with an exit code other than the kernel's expectation —
    /// the profile would describe a broken execution.
    WrongExit {
        /// Observed exit code.
        got: u32,
        /// Expected exit code.
        want: u32,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Machine(e) => write!(f, "vm error: {e}"),
            ProfileError::Compress(e) => write!(f, "compression error: {e}"),
            ProfileError::Verify(e) => write!(f, "verification error: {e}"),
            ProfileError::WrongExit { got, want } => {
                write!(f, "exit code {got}, expected {want}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<MachineError> for ProfileError {
    fn from(e: MachineError) -> ProfileError {
        ProfileError::Machine(e)
    }
}

impl From<CompressError> for ProfileError {
    fn from(e: CompressError) -> ProfileError {
        ProfileError::Compress(e)
    }
}

impl From<codense_core::VerifyError> for ProfileError {
    fn from(e: codense_core::VerifyError) -> ProfileError {
        ProfileError::Verify(e)
    }
}

/// Profiles one benchmark: a traced native run for per-instruction and
/// per-block execution counts, plus a reference fully-compressed run under
/// `encoding` for the fetch-path event totals (escape decodes, codeword
/// expansions, nibble traffic, realignments).
///
/// # Errors
///
/// [`ProfileError`] if either run faults, exceeds `max_steps`, or exits
/// with the wrong code, or if the reference compression fails.
pub fn collect(
    kernel: &Kernel,
    encoding: EncodingKind,
    max_steps: u64,
) -> Result<Profile, ProfileError> {
    collect_subject(&Subject::from_kernel(kernel), encoding, max_steps)
}

/// [`collect`] generalized to any [`Subject`], including jump-table-bearing
/// corpus programs whose table seeds differ per fetch domain.
///
/// # Errors
///
/// [`ProfileError`] if either run faults, exceeds `max_steps`, or exits
/// with the wrong code, or if the reference compression fails.
pub fn collect_subject(
    subject: &Subject,
    encoding: EncodingKind,
    max_steps: u64,
) -> Result<Profile, ProfileError> {
    telemetry::PROFILE_RUNS.inc();
    let _phase = telemetry::phase("profile");

    // Native reference run with per-instruction counting.
    let mut counts = vec![0u64; subject.module.len()];
    let mut machine = subject.machine_native();
    let mut fetch = LinearFetcher::new(subject.module.code.clone());
    let native = run_traced(&mut machine, &mut fetch, 0, max_steps, |pc, _| {
        counts[(pc / 8) as usize] += 1;
    })?;
    if native.exit_code != subject.expected {
        return Err(ProfileError::WrongExit { got: native.exit_code, want: subject.expected });
    }

    // Reference compressed run: where the fetch-path events come from.
    let config =
        CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding };
    let compressed = Compressor::new(config).compress(&subject.module)?;
    let mut cmachine = subject.machine_compressed(&compressed);
    let mut cfetch = CompressedFetcher::new(&compressed);
    let creference = run(&mut cmachine, &mut cfetch, 0, max_steps)?;
    if creference.exit_code != subject.expected {
        return Err(ProfileError::WrongExit { got: creference.exit_code, want: subject.expected });
    }
    let cstats = creference.stats;
    let fetch_events = FetchEvents {
        linear_insns: native.stats.insns,
        // Every uncompressed instruction in the packed stream carries an
        // escape prefix, under all three encodings.
        escapes: cstats.insns - cstats.expanded_insns,
        codewords: cstats.codewords,
        expanded_insns: cstats.expanded_insns,
        nibbles: cstats.nibbles_fetched,
        realigns: cstats.realigns,
    };

    let blocks: Vec<BlockStat> = BasicBlocks::compute(&subject.module)
        .blocks()
        .iter()
        .map(|&(start, end)| BlockStat {
            start,
            end,
            entries: counts[start],
            weight: counts[start..end].iter().sum(),
        })
        .collect();
    telemetry::PROFILE_BLOCKS.add(blocks.len() as u64);
    telemetry::PROFILE_INSNS_COUNTED.add(native.steps);

    Ok(Profile {
        bench: subject.name.clone(),
        insns: subject.module.len(),
        steps: native.steps,
        exit: native.exit_code,
        counts,
        blocks,
        fetch: fetch_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn fib_profile_is_consistent() {
        let kernel = bench::bench("fib").unwrap();
        let p = collect(&kernel, EncodingKind::NibbleAligned, 1_000_000).unwrap();
        assert_eq!(p.exit, kernel.expected);
        assert_eq!(p.total_weight(), p.steps);
        assert_eq!(p.counts.iter().sum::<u64>(), p.steps);
        assert_eq!(p.fetch.linear_insns, p.steps);
        // The compressed run executes the same dynamic path.
        assert_eq!(p.fetch.escapes + p.fetch.expanded_insns, p.steps);
        // The cold tail never executes.
        let plain = codense_vm::kernels::all().into_iter().find(|k| k.name == "fib").unwrap();
        assert!(p.counts[plain.module.len()..].iter().all(|&c| c == 0));
        // Blocks tile the program.
        assert_eq!(p.blocks.first().unwrap().start, 0);
        assert_eq!(p.blocks.last().unwrap().end, p.insns);
    }

    #[test]
    fn profiles_are_deterministic() {
        let kernel = bench::bench("gcd").unwrap();
        let a = collect(&kernel, EncodingKind::Baseline, 1_000_000).unwrap();
        let b = collect(&kernel, EncodingKind::Baseline, 1_000_000).unwrap();
        assert_eq!(a, b);
    }
}
