//! The hybrid sweep: the size-vs-cycles Pareto frontier of profile-guided
//! hybrid compression, rendered as the checked-in `BENCH_hybrid.json`.
//!
//! For each benchmark the sweep walks the hotness-coverage knob from 0.0
//! (fully compressed) to 1.0 (all executed code exempt), compresses under
//! the corresponding exemption mask, verifies the hybrid image, and scores
//! it under the cycle model. Two derived axes summarize each point:
//!
//! * `recovered_pct` — how much of full compression's modeled cycle
//!   overhead the hybrid point wins back, relative to native.
//! * `retained_pct` — how much of full compression's size reduction the
//!   hybrid point keeps.

use codense_core::parallel::par_map;
use codense_core::verify::verify;
use codense_core::{telemetry, CompressionConfig, Compressor, EncodingKind};

use crate::artifact::Profile;
use crate::bench;
use crate::collect::{collect_subject, ProfileError};
use crate::cost::{score_compressed_subject, score_native_subject, CostParams, Score};
use crate::hotness::{hot_mask, HotnessPolicy};
use crate::subject::Subject;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct HybridOptions {
    /// Codeword encoding under test.
    pub encoding: EncodingKind,
    /// Hotness-coverage fractions to sweep, in `[0, 1]`.
    pub coverages: Vec<f64>,
    /// Cycle-model parameters.
    pub cost: CostParams,
    /// Step budget per VM run.
    pub max_steps: u64,
}

impl Default for HybridOptions {
    fn default() -> HybridOptions {
        HybridOptions {
            encoding: EncodingKind::NibbleAligned,
            coverages: vec![0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0],
            cost: CostParams::default(),
            max_steps: 10_000_000,
        }
    }
}

/// One point on a benchmark's size-vs-cycles frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPoint {
    /// Hotness coverage fraction this point was built with.
    pub coverage: f64,
    /// Blocks exempted from compression.
    pub hot_blocks: usize,
    /// Instructions exempted from compression.
    pub exempt_insns: usize,
    /// Compression ratio of the hybrid image (Eq. 1).
    pub ratio: f64,
    /// Modeled cycles of the hybrid run.
    pub cycles: u64,
    /// Percentage of full compression's cycle overhead recovered
    /// (`100` = native speed, `0` = no better than fully compressed).
    pub recovered_pct: f64,
    /// Percentage of full compression's size reduction retained
    /// (`100` = as small as fully compressed, `0` = no smaller than native).
    pub retained_pct: f64,
}

/// A benchmark's reference data and swept frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridBenchResult {
    /// Benchmark name.
    pub bench: String,
    /// Static instruction count.
    pub insns: usize,
    /// Modeled cycles of the native run.
    pub native_cycles: u64,
    /// Modeled cycles of the fully compressed run.
    pub full_cycles: u64,
    /// Compression ratio of the fully compressed image.
    pub full_ratio: f64,
    /// Frontier points, one per requested coverage, in input order.
    pub points: Vec<HybridPoint>,
}

struct BenchRef {
    profile: Profile,
    native: Score,
    full: Score,
    full_ratio: f64,
}

fn config_for(encoding: EncodingKind) -> CompressionConfig {
    CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding }
}

fn bench_ref(subject: &Subject, options: &HybridOptions) -> Result<BenchRef, ProfileError> {
    let profile = collect_subject(subject, options.encoding, options.max_steps)?;
    let native = score_native_subject(subject, &options.cost, options.max_steps)?;
    let full = Compressor::new(config_for(options.encoding)).compress(&subject.module)?;
    let full_ratio = full.compression_ratio();
    let full_score = score_compressed_subject(subject, &full, &options.cost, options.max_steps)?;
    Ok(BenchRef { profile, native, full: full_score, full_ratio })
}

fn sweep_point(
    subject: &Subject,
    r: &BenchRef,
    coverage: f64,
    options: &HybridOptions,
) -> Result<HybridPoint, ProfileError> {
    telemetry::HYBRID_SWEEP_POINTS.inc();
    let mask = hot_mask(&r.profile, HotnessPolicy::TopCoverage(coverage));
    let hybrid = Compressor::new(config_for(options.encoding))
        .compress_masked(&subject.module, &mask.exempt)?;
    verify(&subject.module, &hybrid)?;
    let score = score_compressed_subject(subject, &hybrid, &options.cost, options.max_steps)?;
    let ratio = hybrid.compression_ratio();
    let overhead = r.full.cycles.saturating_sub(r.native.cycles);
    let recovered_pct = if overhead == 0 {
        100.0
    } else {
        100.0 * r.full.cycles.saturating_sub(score.cycles) as f64 / overhead as f64
    };
    let reduction = 1.0 - r.full_ratio;
    let retained_pct = if reduction <= 0.0 { 100.0 } else { 100.0 * (1.0 - ratio) / reduction };
    Ok(HybridPoint {
        coverage,
        hot_blocks: mask.hot_block_count(),
        exempt_insns: mask.exempt_insn_count(),
        ratio,
        cycles: score.cycles,
        recovered_pct,
        retained_pct,
    })
}

/// Runs the full sweep over the padded benchmark suite, parallelized over
/// `codense_core::parallel` (results are identical at any `--jobs`).
///
/// # Errors
///
/// The first [`ProfileError`] from any benchmark (profiling, compression,
/// verification, or a scored run going wrong).
pub fn hybrid_sweep(options: &HybridOptions) -> Result<Vec<HybridBenchResult>, ProfileError> {
    let subjects: Vec<Subject> = bench::benches().iter().map(Subject::from_kernel).collect();
    hybrid_sweep_subjects(&subjects, options)
}

/// [`hybrid_sweep`] over an explicit subject list (e.g. the padded suite
/// plus a SPEC-scale corpus program), parallelized identically.
///
/// # Errors
///
/// The first [`ProfileError`] from any subject.
pub fn hybrid_sweep_subjects(
    subjects: &[Subject],
    options: &HybridOptions,
) -> Result<Vec<HybridBenchResult>, ProfileError> {
    let _phase = telemetry::phase("hybrid-sweep");

    // Per-bench reference data first (profile, native score, full score)…
    let refs = par_map(subjects.iter().collect(), |_, s: &Subject| bench_ref(s, options));
    let mut bench_refs = Vec::with_capacity(subjects.len());
    for r in refs {
        bench_refs.push(r?);
    }

    // …then every (bench, coverage) point as one flat parallel batch.
    let jobs: Vec<(usize, f64)> =
        (0..subjects.len()).flat_map(|b| options.coverages.iter().map(move |&c| (b, c))).collect();
    let points = par_map(jobs, |_, (b, coverage)| {
        sweep_point(&subjects[b], &bench_refs[b], coverage, options).map(|p| (b, p))
    });

    let mut results: Vec<HybridBenchResult> = subjects
        .iter()
        .zip(&bench_refs)
        .map(|(s, r)| HybridBenchResult {
            bench: s.name.clone(),
            insns: s.module.len(),
            native_cycles: r.native.cycles,
            full_cycles: r.full.cycles,
            full_ratio: r.full_ratio,
            points: Vec::with_capacity(options.coverages.len()),
        })
        .collect();
    for p in points {
        let (b, point) = p?;
        results[b].points.push(point);
    }
    Ok(results)
}

/// Renders sweep results as the schema-1 `BENCH_hybrid.json` artifact:
/// sorted keys, fixed float precision, byte-identical at any `--jobs`.
pub fn render_bench_json(
    results: &[HybridBenchResult],
    encoding: &str,
    cost: &CostParams,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benches\": [\n");
    for (ri, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"bench\": \"{}\",\n", r.bench));
        out.push_str(&format!("      \"full_cycles\": {},\n", r.full_cycles));
        out.push_str(&format!("      \"full_ratio\": {:.6},\n", r.full_ratio));
        out.push_str(&format!("      \"insns\": {},\n", r.insns));
        out.push_str(&format!("      \"native_cycles\": {},\n", r.native_cycles));
        out.push_str("      \"points\": [\n");
        for (pi, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"coverage\": {:.2}, \"cycles\": {}, \"exempt_insns\": {}, \
                 \"hot_blocks\": {}, \"ratio\": {:.6}, \"recovered_pct\": {:.1}, \
                 \"retained_pct\": {:.1} }}{}\n",
                p.coverage,
                p.cycles,
                p.exempt_insns,
                p.hot_blocks,
                p.ratio,
                p.recovered_pct,
                p.retained_pct,
                if pi + 1 < r.points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if ri + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ],\n");
    let c = cost;
    out.push_str(&format!(
        "  \"cost\": {{ \"escape_cycles\": {}, \"expand_cycles\": {}, \"icache_bytes\": {}, \
         \"icache_line\": {}, \"icache_ways\": {}, \"miss_penalty\": {}, \"native_cycles\": {}, \
         \"realign_cycles\": {} }},\n",
        c.escape_cycles,
        c.expand_cycles,
        c.cache.size_bytes,
        c.cache.line_bytes,
        c.cache.ways,
        c.miss_penalty,
        c.native_cycles,
        c.realign_cycles
    ));
    out.push_str(&format!("  \"encoding\": \"{encoding}\",\n"));
    out.push_str("  \"schema\": 1\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_and_stable() {
        let results = vec![HybridBenchResult {
            bench: "t".into(),
            insns: 10,
            native_cycles: 100,
            full_cycles: 160,
            full_ratio: 0.5,
            points: vec![HybridPoint {
                coverage: 0.5,
                hot_blocks: 1,
                exempt_insns: 4,
                ratio: 0.625,
                cycles: 120,
                recovered_pct: 66.6667,
                retained_pct: 75.0,
            }],
        }];
        let a = render_bench_json(&results, "nibble", &CostParams::default());
        assert_eq!(a, render_bench_json(&results, "nibble", &CostParams::default()));
        assert!(a.contains("\"schema\": 1"));
        assert!(a.contains("\"recovered_pct\": 66.7"));
        assert!(a.contains("\"full_ratio\": 0.500000"));
    }
}
