#![warn(missing_docs)]

//! Profile-guided hybrid compression: the size-vs-speed layer the paper's
//! §5 defers ("the dictionary must be accessed to expand codewords … one
//! could leave frequently executed code uncompressed").
//!
//! Three pieces, composed by `codense profile` / `codense hybrid` /
//! `codense hybrid-sweep`:
//!
//! * [`collect`] — the execution profiler: runs a benchmark natively under
//!   the VM's tracing hook and records per-instruction and per-basic-block
//!   execution counts, plus the fetch-path event counts (escape decodes,
//!   codeword expansions, nibble-PC realignments) of a reference compressed
//!   run. The result is a deterministic [`Profile`] artifact rendered as
//!   schema-1 sorted-key JSON ([`render_profiles_json`]).
//! * [`hotness`] — the hot/cold partitioning policy: a [`HotnessPolicy`]
//!   (absolute weight threshold or top-K% dynamic coverage) turns a profile
//!   into a block-aligned exemption mask for
//!   `codense_core::Compressor::compress_masked`, which keeps hot blocks
//!   uncompressed and counts occurrences only in cold code.
//! * [`cost`] — the cycle-level fetch performance model: configurable
//!   per-event costs ([`CostParams`]) over the VM's fetch statistics plus
//!   the `codense-cache` I-cache simulator, scoring any image against a
//!   run ([`score_native`], [`score_compressed`]).
//!
//! [`hybrid_sweep`] sweeps the hotness-coverage knob across the [`bench`]
//! suite (each runnable kernel extended with a large never-executed cold
//! section, the shape of real firmware) and emits the size-vs-cycles Pareto
//! frontier checked in as `BENCH_hybrid.json`.

pub mod artifact;
pub mod bench;
pub mod collect;
pub mod cost;
pub mod hotness;
pub mod subject;
pub mod sweep;

pub use artifact::{render_profiles_json, BlockStat, FetchEvents, Profile};
pub use collect::{collect, collect_subject, ProfileError, MEM_BYTES};
pub use cost::{
    score_compressed, score_compressed_subject, score_native, score_native_subject, CostParams,
    Score,
};
pub use hotness::{hot_mask, HotMask, HotnessPolicy};
pub use subject::Subject;
pub use sweep::{
    hybrid_sweep, hybrid_sweep_subjects, render_bench_json, HybridBenchResult, HybridOptions,
    HybridPoint,
};
