//! The [`Profile`] artifact: what the execution profiler measures, and its
//! deterministic schema-1 JSON rendering.
//!
//! The artifact carries only scheduling-invariant data — execution counts
//! and fetch-path event totals from deterministic VM runs — so the rendered
//! JSON is byte-identical at any `--jobs` value (`scripts/verify.sh` pins
//! this with a byte comparison between `--jobs 1` and `--jobs 8`).

/// Execution statistics of one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStat {
    /// Index of the block's first instruction.
    pub start: usize,
    /// One past the block's last instruction.
    pub end: usize,
    /// Times control entered the block (executions of its first insn).
    pub entries: u64,
    /// Total instructions executed inside the block (the hotness measure —
    /// blocks can be partially executed when they contain the halting `sc`).
    pub weight: u64,
}

/// Fetch-path event totals: the native reference run plus a reference
/// compressed run under the profiled encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchEvents {
    /// Native fetches (instructions delivered by the linear front end).
    pub linear_insns: u64,
    /// Escape decodes: uncompressed instructions parsed out of the
    /// compressed stream behind an escape prefix.
    pub escapes: u64,
    /// Codeword expansions (dictionary accesses).
    pub codewords: u64,
    /// Instructions delivered out of the dictionary expansion buffer.
    pub expanded_insns: u64,
    /// Nibbles fetched from compressed program memory.
    pub nibbles: u64,
    /// Nibble-PC realignments: control transfers landing mid-word in the
    /// packed stream.
    pub realigns: u64,
}

/// A complete execution profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name.
    pub bench: String,
    /// Static instruction count of the module.
    pub insns: usize,
    /// Dynamic instructions executed by the native reference run.
    pub steps: u64,
    /// Exit code of the reference run (must match the kernel's expectation).
    pub exit: u32,
    /// Per-instruction execution counts (`counts[i]` = executions of
    /// original instruction `i`; dense, zero for never-executed code).
    pub counts: Vec<u64>,
    /// Per-basic-block statistics, in program order.
    pub blocks: Vec<BlockStat>,
    /// Fetch-path event totals.
    pub fetch: FetchEvents,
}

impl Profile {
    /// Total dynamic weight across blocks (equals [`Profile::steps`]).
    pub fn total_weight(&self) -> u64 {
        self.blocks.iter().map(|b| b.weight).sum()
    }
}

/// Renders profiles as the schema-1 artifact: sorted keys, fixed
/// indentation, per-instruction counts as sparse `[index, count]` pairs.
pub fn render_profiles_json(profiles: &[Profile], encoding: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benches\": [\n");
    for (pi, p) in profiles.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"bench\": \"{}\",\n", p.bench));
        out.push_str("      \"blocks\": [\n");
        for (bi, b) in p.blocks.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"end\": {}, \"entries\": {}, \"start\": {}, \"weight\": {} }}{}\n",
                b.end,
                b.entries,
                b.start,
                b.weight,
                if bi + 1 < p.blocks.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        let nonzero: Vec<String> = p
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{i}, {c}]"))
            .collect();
        out.push_str(&format!("      \"counts\": [{}],\n", nonzero.join(", ")));
        out.push_str(&format!("      \"exit\": {},\n", p.exit));
        let f = p.fetch;
        out.push_str(&format!(
            "      \"fetch\": {{ \"codewords\": {}, \"escapes\": {}, \"expanded_insns\": {}, \
             \"linear_insns\": {}, \"nibbles\": {}, \"realigns\": {} }},\n",
            f.codewords, f.escapes, f.expanded_insns, f.linear_insns, f.nibbles, f.realigns
        ));
        out.push_str(&format!("      \"insns\": {},\n", p.insns));
        out.push_str(&format!("      \"steps\": {}\n", p.steps));
        out.push_str(&format!("    }}{}\n", if pi + 1 < profiles.len() { "," } else { "" }));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"encoding\": \"{encoding}\",\n"));
    out.push_str("  \"schema\": 1\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            bench: "t".into(),
            insns: 4,
            steps: 7,
            exit: 3,
            counts: vec![1, 3, 3, 0],
            blocks: vec![
                BlockStat { start: 0, end: 1, entries: 1, weight: 1 },
                BlockStat { start: 1, end: 4, entries: 3, weight: 6 },
            ],
            fetch: FetchEvents { linear_insns: 7, ..FetchEvents::default() },
        }
    }

    #[test]
    fn rendering_is_deterministic_and_sparse() {
        let p = vec![sample()];
        let a = render_profiles_json(&p, "nibble");
        let b = render_profiles_json(&p, "nibble");
        assert_eq!(a, b);
        assert!(a.contains("\"counts\": [[0, 1], [1, 3], [2, 3]]"), "{a}");
        assert!(a.contains("\"schema\": 1"));
        assert!(a.contains("\"encoding\": \"nibble\""));
    }

    #[test]
    fn total_weight_matches_steps() {
        assert_eq!(sample().total_weight(), 7);
    }
}
