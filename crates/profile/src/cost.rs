//! The cycle-level fetch performance model.
//!
//! The paper's §5 names the costs of compressed execution — dictionary
//! accesses to expand codewords, escape decoding, branching into a
//! nibble-aligned stream — without quantifying them. This module assigns
//! each fetch-path event a configurable cycle cost and adds I-cache miss
//! penalties from replaying the run's program-memory reference trace
//! through the `codense-cache` simulator:
//!
//! ```text
//! cycles = insns·native + escapes·escape + expanded·expand
//!        + realigns·realign + misses·miss_penalty
//! ```
//!
//! Every event count comes from a deterministic VM run, so scores are
//! byte-stable across thread counts.

use codense_cache::{Cache, CacheConfig, TracingFetch};
use codense_core::CompressedProgram;
use codense_vm::kernels::Kernel;
use codense_vm::{run, CompressedFetcher, LinearFetcher};

use crate::collect::ProfileError;
use crate::subject::Subject;

/// Per-event cycle costs and the modeled I-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Base cycles per delivered instruction (native and compressed alike).
    pub native_cycles: u64,
    /// Extra cycles to detect and strip an escape prefix.
    pub escape_cycles: u64,
    /// Extra cycles per instruction delivered from a dictionary expansion
    /// (the on-chip dictionary access the paper worries about).
    pub expand_cycles: u64,
    /// Extra cycles when a control transfer lands mid-word and the fetch
    /// unit must realign its nibble PC.
    pub realign_cycles: u64,
    /// Cycles per I-cache miss.
    pub miss_penalty: u64,
    /// Modeled I-cache geometry.
    pub cache: CacheConfig,
}

impl Default for CostParams {
    /// A small embedded front end: single-cycle fetch, free escape
    /// stripping (prefix detection folds into decode — the stated goal of
    /// the paper's escape-byte design), a 3-cycle dictionary expansion,
    /// 2-cycle realign, and a 1 KiB 2-way I-cache with a 20-cycle miss
    /// penalty.
    fn default() -> CostParams {
        CostParams {
            native_cycles: 1,
            escape_cycles: 0,
            expand_cycles: 3,
            realign_cycles: 2,
            miss_penalty: 20,
            cache: CacheConfig { size_bytes: 1024, line_bytes: 16, ways: 2 },
        }
    }
}

/// A scored run: the modeled cycle count plus every event that fed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Score {
    /// Total modeled cycles.
    pub cycles: u64,
    /// Instructions delivered to the core.
    pub insns: u64,
    /// Escape decodes (0 for native runs).
    pub escapes: u64,
    /// Instructions delivered from dictionary expansions.
    pub expanded_insns: u64,
    /// Nibble-PC realignments.
    pub realigns: u64,
    /// I-cache line accesses.
    pub cache_accesses: u64,
    /// I-cache misses.
    pub cache_misses: u64,
    /// Dynamic instruction count of the run.
    pub steps: u64,
    /// Exit code.
    pub exit: u32,
}

/// Fetch-path event counts of one run, before costing.
struct RunEvents {
    insns: u64,
    escapes: u64,
    expanded: u64,
    realigns: u64,
}

fn combine(params: &CostParams, ev: RunEvents, cache: &Cache, steps: u64, exit: u32) -> Score {
    let stats = cache.stats();
    Score {
        cycles: ev.insns * params.native_cycles
            + ev.escapes * params.escape_cycles
            + ev.expanded * params.expand_cycles
            + ev.realigns * params.realign_cycles
            + stats.misses * params.miss_penalty,
        insns: ev.insns,
        escapes: ev.escapes,
        expanded_insns: ev.expanded,
        realigns: ev.realigns,
        cache_accesses: stats.accesses,
        cache_misses: stats.misses,
        steps,
        exit,
    }
}

/// Scores the uncompressed run of a kernel under the cost model.
///
/// # Errors
///
/// [`ProfileError`] if the run faults, exceeds `max_steps`, or exits with
/// the wrong code.
pub fn score_native(
    kernel: &Kernel,
    params: &CostParams,
    max_steps: u64,
) -> Result<Score, ProfileError> {
    score_native_subject(&Subject::from_kernel(kernel), params, max_steps)
}

/// [`score_native`] generalized to any [`Subject`].
///
/// # Errors
///
/// [`ProfileError`] if the run faults, exceeds `max_steps`, or exits with
/// the wrong code.
pub fn score_native_subject(
    subject: &Subject,
    params: &CostParams,
    max_steps: u64,
) -> Result<Score, ProfileError> {
    let mut machine = subject.machine_native();
    let mut fetch = TracingFetch::new(LinearFetcher::new(subject.module.code.clone()));
    let result = run(&mut machine, &mut fetch, 0, max_steps)?;
    if result.exit_code != subject.expected {
        return Err(ProfileError::WrongExit { got: result.exit_code, want: subject.expected });
    }
    let mut cache = Cache::new(params.cache);
    fetch.replay(&mut cache);
    let ev = RunEvents { insns: result.stats.insns, escapes: 0, expanded: 0, realigns: 0 };
    Ok(combine(params, ev, &cache, result.steps, result.exit_code))
}

/// Scores the run of a (possibly hybrid) compressed image under the cost
/// model. `kernel` supplies the initial machine state and expected exit.
///
/// # Errors
///
/// [`ProfileError`] if the run faults, exceeds `max_steps`, or exits with
/// the wrong code.
pub fn score_compressed(
    kernel: &Kernel,
    program: &CompressedProgram,
    params: &CostParams,
    max_steps: u64,
) -> Result<Score, ProfileError> {
    score_compressed_subject(&Subject::from_kernel(kernel), program, params, max_steps)
}

/// [`score_compressed`] generalized to any [`Subject`]: the machine is
/// seeded with the *image's* jump-table values, so corpus dispatch loops
/// branch to valid compressed-domain addresses.
///
/// # Errors
///
/// [`ProfileError`] if the run faults, exceeds `max_steps`, or exits with
/// the wrong code.
pub fn score_compressed_subject(
    subject: &Subject,
    program: &CompressedProgram,
    params: &CostParams,
    max_steps: u64,
) -> Result<Score, ProfileError> {
    let mut machine = subject.machine_compressed(program);
    let mut fetch = TracingFetch::new(CompressedFetcher::new(program));
    let result = run(&mut machine, &mut fetch, 0, max_steps)?;
    if result.exit_code != subject.expected {
        return Err(ProfileError::WrongExit { got: result.exit_code, want: subject.expected });
    }
    let mut cache = Cache::new(params.cache);
    fetch.replay(&mut cache);
    let stats = result.stats;
    let ev = RunEvents {
        insns: stats.insns,
        escapes: stats.insns - stats.expanded_insns,
        expanded: stats.expanded_insns,
        realigns: stats.realigns,
    };
    Ok(combine(params, ev, &cache, result.steps, result.exit_code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use codense_core::{CompressionConfig, Compressor};

    #[test]
    fn native_score_is_pure_fetch_plus_misses() {
        let kernel = bench::bench("sum_array").unwrap();
        let params = CostParams::default();
        let s = score_native(&kernel, &params, 1_000_000).unwrap();
        assert_eq!(s.escapes, 0);
        assert_eq!(s.expanded_insns, 0);
        assert_eq!(s.realigns, 0);
        assert_eq!(s.insns, s.steps);
        assert_eq!(s.cycles, s.insns * params.native_cycles + s.cache_misses * params.miss_penalty);
    }

    #[test]
    fn compressed_run_costs_more_cycles_per_insn() {
        let kernel = bench::bench("fib").unwrap();
        let params = CostParams::default();
        let native = score_native(&kernel, &params, 1_000_000).unwrap();
        let compressed =
            Compressor::new(CompressionConfig::nibble_aligned()).compress(&kernel.module).unwrap();
        let s = score_compressed(&kernel, &compressed, &params, 1_000_000).unwrap();
        assert_eq!(s.steps, native.steps);
        assert_eq!(s.escapes + s.expanded_insns, s.insns);
        assert!(s.cycles > native.cycles, "{} <= {}", s.cycles, native.cycles);
    }
}
