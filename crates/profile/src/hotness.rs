//! Hot/cold partitioning: turning a [`Profile`] into a block-aligned
//! compression-exemption mask.
//!
//! The paper's suggested mitigation — "one could leave frequently executed
//! code uncompressed" (§5) — needs a definition of *frequently*. Two
//! policies are provided: an absolute execution-weight threshold, and the
//! usual profile-guided formulation of covering the top K% of dynamic
//! execution with the fewest (hottest) blocks.

use codense_core::telemetry;

use crate::artifact::Profile;

/// How blocks are classified as hot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotnessPolicy {
    /// A block is hot iff its dynamic weight (instructions executed inside
    /// it) is at least this value. `Threshold(0)` marks everything hot;
    /// any positive threshold leaves never-executed code cold.
    Threshold(u64),
    /// The smallest set of hottest blocks covering at least this fraction
    /// of total dynamic execution (ties broken by program order). `0.0`
    /// marks nothing hot, `1.0` marks exactly the executed blocks hot.
    TopCoverage(f64),
}

/// A computed hot/cold partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotMask {
    /// Per-block hotness, parallel to [`Profile::blocks`].
    pub hot_blocks: Vec<bool>,
    /// Per-instruction exemption mask for
    /// `codense_core::Compressor::compress_masked`.
    pub exempt: Vec<bool>,
}

impl HotMask {
    /// Number of hot blocks.
    pub fn hot_block_count(&self) -> usize {
        self.hot_blocks.iter().filter(|&&h| h).count()
    }

    /// Number of exempted (hot) instructions.
    pub fn exempt_insn_count(&self) -> usize {
        self.exempt.iter().filter(|&&h| h).count()
    }
}

/// Applies a policy to a profile.
pub fn hot_mask(profile: &Profile, policy: HotnessPolicy) -> HotMask {
    let mut hot_blocks = vec![false; profile.blocks.len()];
    match policy {
        HotnessPolicy::Threshold(t) => {
            for (i, b) in profile.blocks.iter().enumerate() {
                hot_blocks[i] = b.weight >= t;
            }
        }
        HotnessPolicy::TopCoverage(frac) => {
            let total = profile.total_weight();
            let target = (frac.clamp(0.0, 1.0) * total as f64).ceil() as u64;
            // Hottest first; program order among equals keeps this
            // deterministic.
            let mut order: Vec<usize> =
                (0..profile.blocks.len()).filter(|&i| profile.blocks[i].weight > 0).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(profile.blocks[i].weight), i));
            let mut covered = 0u64;
            for i in order {
                if covered >= target {
                    break;
                }
                hot_blocks[i] = true;
                covered += profile.blocks[i].weight;
            }
        }
    }
    let mut exempt = vec![false; profile.insns];
    for (i, b) in profile.blocks.iter().enumerate() {
        if hot_blocks[i] {
            exempt[b.start..b.end].iter_mut().for_each(|e| *e = true);
        }
    }
    let mask = HotMask { hot_blocks, exempt };
    telemetry::HYBRID_HOT_BLOCKS.add(mask.hot_block_count() as u64);
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BlockStat, FetchEvents};

    fn profile(weights: &[u64]) -> Profile {
        let blocks: Vec<BlockStat> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| BlockStat { start: 2 * i, end: 2 * i + 2, entries: w / 2, weight: w })
            .collect();
        Profile {
            bench: "synthetic".into(),
            insns: 2 * weights.len(),
            steps: weights.iter().sum(),
            exit: 0,
            counts: weights.iter().flat_map(|&w| [w / 2, w - w / 2]).collect(),
            blocks,
            fetch: FetchEvents::default(),
        }
    }

    #[test]
    fn threshold_zero_is_all_hot() {
        let p = profile(&[5, 0, 9]);
        let m = hot_mask(&p, HotnessPolicy::Threshold(0));
        assert_eq!(m.hot_block_count(), 3);
        assert!(m.exempt.iter().all(|&e| e));
    }

    #[test]
    fn threshold_splits_on_weight() {
        let p = profile(&[5, 0, 9]);
        let m = hot_mask(&p, HotnessPolicy::Threshold(6));
        assert_eq!(m.hot_blocks, vec![false, false, true]);
        assert_eq!(m.exempt, vec![false, false, false, false, true, true]);
    }

    #[test]
    fn coverage_extremes() {
        let p = profile(&[5, 0, 9]);
        let none = hot_mask(&p, HotnessPolicy::TopCoverage(0.0));
        assert_eq!(none.hot_block_count(), 0);
        let all = hot_mask(&p, HotnessPolicy::TopCoverage(1.0));
        // Full coverage marks exactly the executed blocks; never-executed
        // code stays cold.
        assert_eq!(all.hot_blocks, vec![true, false, true]);
    }

    #[test]
    fn coverage_takes_hottest_first() {
        let p = profile(&[5, 0, 9]);
        // 9/14 ≈ 64% — the single hottest block suffices for 60%.
        let m = hot_mask(&p, HotnessPolicy::TopCoverage(0.60));
        assert_eq!(m.hot_blocks, vec![false, false, true]);
    }

    #[test]
    fn empty_profile_yields_empty_mask() {
        let p = Profile {
            bench: "empty".into(),
            insns: 0,
            steps: 0,
            exit: 0,
            counts: vec![],
            blocks: vec![],
            fetch: FetchEvents::default(),
        };
        for policy in [HotnessPolicy::Threshold(1), HotnessPolicy::TopCoverage(0.5)] {
            let m = hot_mask(&p, policy);
            assert!(m.hot_blocks.is_empty());
            assert!(m.exempt.is_empty());
        }
    }
}
