//! The hybrid-compression benchmark suite: every runnable VM kernel,
//! extended with a large deterministic **cold section** that is reachable
//! code but never executes (the kernel halts first).
//!
//! Real firmware images look like this: a small set of hot loops plus a
//! long tail of error handlers, configuration paths, and generated feature
//! code that rarely or never runs. The raw kernels alone cannot exhibit the
//! hybrid trade-off — in a 30-instruction loop, *all* static code is hot —
//! so each benchmark grafts on a cold tail of repetitive straight-line
//! chunks (drawn from a small per-bench vocabulary, the compressor's
//! favorite diet) with occasional forward branches for block structure.

use codense_codegen::Rng;
use codense_ppc::asm::Assembler;
use codense_ppc::insn::Insn;
use codense_ppc::reg::*;
use codense_vm::kernels::{self, Kernel};

/// Cold chunks appended per benchmark (each 3–6 instructions).
const COLD_CHUNKS: usize = 96;

/// Per-suite salt so each benchmark gets a distinct but fixed cold section.
const COLD_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Assembles one deterministic cold section. Offsets are relative, so the
/// words can be appended verbatim after any kernel.
fn cold_section(seed: u64) -> Vec<u32> {
    let mut rng = Rng::new(seed);
    let regs = [R3, R4, R5, R6, R7, R8, R9, R10];
    // A fixed vocabulary of short sequences; chunks repeat vocabulary
    // entries, so the cold tail is highly compressible.
    let mut vocab: Vec<Vec<Insn>> = Vec::new();
    for _ in 0..6 {
        let n = rng.range(3, 6);
        let mut seq = Vec::with_capacity(n);
        for _ in 0..n {
            let rt = *rng.pick(&regs);
            let ra = *rng.pick(&regs);
            seq.push(match rng.below(4) {
                0 => Insn::Addi { rt, ra, si: rng.range(0, 31) as i16 },
                1 => Insn::Add { rt, ra, rb: *rng.pick(&regs), rc: false },
                2 => Insn::Or { ra: rt, rs: ra, rb: *rng.pick(&regs), rc: false },
                _ => Insn::Rlwinm {
                    ra: rt,
                    rs: ra,
                    sh: rng.below(8) as u8,
                    mb: 0,
                    me: 31,
                    rc: false,
                },
            });
        }
        vocab.push(seq);
    }
    let mut a = Assembler::new();
    for c in 0..COLD_CHUNKS {
        a.label(&format!("chunk{c}"));
        for insn in rng.pick(&vocab).clone() {
            a.emit(insn);
        }
        // Occasional forward branch: block leaders, like real control flow.
        if c % 7 == 3 {
            a.b(&format!("chunk{}", c + 1));
        }
    }
    // Terminal landing pad for the last possible forward branch.
    a.label(&format!("chunk{COLD_CHUNKS}"));
    a.emit(Insn::Sc);
    a.finish().expect("cold section assembles")
}

/// Appends the cold section to a kernel's module. The kernel halts at its
/// own `sc` before control can ever reach the tail, so execution (and the
/// profile) is unchanged while the static image grows severalfold.
fn pad(mut kernel: Kernel, index: u64) -> Kernel {
    let cold = cold_section(0xC01D_0000_0000_0000 ^ (index + 1).wrapping_mul(COLD_SALT));
    kernel.module.code.extend_from_slice(&cold);
    kernel.module.validate().expect("padded kernel validates");
    kernel
}

/// The full benchmark suite: every VM kernel plus its cold section.
pub fn benches() -> Vec<Kernel> {
    kernels::all().into_iter().enumerate().map(|(i, k)| pad(k, i as u64)).collect()
}

/// One benchmark by kernel name.
pub fn bench(name: &str) -> Option<Kernel> {
    kernels::all()
        .into_iter()
        .enumerate()
        .find(|(_, k)| k.name == name)
        .map(|(i, k)| pad(k, i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codense_vm::{machine::Machine, run::run, LinearFetcher};

    #[test]
    fn padded_kernels_still_pass() {
        for kernel in benches() {
            let plain = kernels::all().into_iter().find(|k| k.name == kernel.name).unwrap();
            assert!(
                kernel.module.len() >= plain.module.len() + 300,
                "{}: cold section too small",
                kernel.name
            );
            let mut machine = Machine::new(1 << 20);
            kernel.apply_init(&mut machine);
            let mut fetch = LinearFetcher::new(kernel.module.code.clone());
            let result = run(&mut machine, &mut fetch, 0, 10_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert_eq!(result.exit_code, kernel.expected, "{}", kernel.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = benches();
        let b = benches();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.module.code, y.module.code, "{}", x.name);
        }
        assert_eq!(bench("fib").unwrap().module.code, a[0].module.code);
        assert!(bench("no-such-kernel").is_none());
    }
}
