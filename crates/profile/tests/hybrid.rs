//! End-to-end checks of profile-guided hybrid compression: the headline
//! size-vs-cycles trade-off, full-trace correctness of hybrid images, and
//! determinism of the artifacts across worker counts.

use codense_core::parallel::par_map_with;
use codense_core::verify::verify;
use codense_core::{CompressionConfig, Compressor, EncodingKind};
use codense_fuzz::oracle::{lockstep, LockstepOk, TraceMask};
use codense_profile::{
    bench, collect, hot_mask, hybrid_sweep, render_bench_json, render_profiles_json,
    score_compressed, score_native, HotnessPolicy, HybridOptions,
};

fn config_for(encoding: EncodingKind) -> CompressionConfig {
    CompressionConfig { max_entry_len: 4, max_codewords: encoding.capacity(), encoding }
}

/// The PR's headline claim: under the nibble encoding, a mid-range hotness
/// coverage recovers at least half of full compression's modeled cycle
/// overhead while keeping at least 70% of its size reduction, on at least
/// four benchmarks.
#[test]
fn mid_range_coverage_recovers_cycles_and_retains_size() {
    let options = HybridOptions::default();
    let results = hybrid_sweep(&options).unwrap();
    assert!(results.len() >= 4);
    let mut winners = Vec::new();
    for r in &results {
        assert_eq!(r.points.len(), options.coverages.len(), "{}", r.bench);
        let good = r.points.iter().any(|p| {
            p.coverage > 0.0
                && p.coverage < 1.0
                && p.recovered_pct >= 50.0
                && p.retained_pct >= 70.0
        });
        if good {
            winners.push(r.bench.clone());
        }
    }
    assert!(winners.len() >= 4, "only {} benchmarks meet the bar: {winners:?}", winners.len());
}

/// Hybrid images must be full-trace equivalent to their originals under
/// every encoding, not just exit-code equivalent.
#[test]
fn hybrid_images_lockstep_under_all_encodings() {
    let mask =
        TraceMask { skip_gprs: 1 << 0, mem_skip: std::iter::once(0xE0000..1 << 20).collect() };
    for name in ["fib", "bubble_sort", "call_frames", "quicksort"] {
        let kernel = bench::bench(name).unwrap();
        let profile = collect(&kernel, EncodingKind::NibbleAligned, 10_000_000).unwrap();
        let hot = hot_mask(&profile, HotnessPolicy::TopCoverage(0.5));
        assert!(hot.exempt_insn_count() > 0, "{name}: expected some hot code");
        for encoding in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned]
        {
            let hybrid = Compressor::new(config_for(encoding))
                .compress_masked(&kernel.module, &hot.exempt)
                .unwrap();
            verify(&kernel.module, &hybrid).unwrap();
            let got = lockstep(
                &kernel.module,
                &hybrid,
                &[],
                &|machine| kernel.apply_init(machine),
                &mask,
                1 << 20,
                10_000_000,
            )
            .unwrap_or_else(|d| panic!("{name} {encoding:?}: trace divergence: {d}"));
            assert_eq!(
                got,
                LockstepOk::Completed { steps: profile.steps, exit: kernel.expected },
                "{name} {encoding:?}"
            );
        }
    }
}

/// Exempting hot code must never make the image smaller than full
/// compression, and exempting everything must be byte-neutral in ratio
/// terms (ratio 1.0 means no compression at all of executed+cold code is
/// impossible here since cold code still compresses — it must stay < 1).
#[test]
fn coverage_monotonically_trades_size_for_cycles() {
    let kernel = bench::bench("gcd").unwrap();
    let options = HybridOptions::default();
    let profile = collect(&kernel, options.encoding, options.max_steps).unwrap();
    let native = score_native(&kernel, &options.cost, options.max_steps).unwrap();
    let mut last_ratio = 0.0;
    for coverage in [0.0, 0.5, 1.0] {
        let hot = hot_mask(&profile, HotnessPolicy::TopCoverage(coverage));
        let hybrid = Compressor::new(config_for(options.encoding))
            .compress_masked(&kernel.module, &hot.exempt)
            .unwrap();
        let score = score_compressed(&kernel, &hybrid, &options.cost, options.max_steps).unwrap();
        let ratio = hybrid.compression_ratio();
        assert!(ratio >= last_ratio, "ratio shrank as coverage grew: {ratio} < {last_ratio}");
        assert!(ratio < 1.0, "cold tail must still compress at coverage {coverage}");
        assert!(score.cycles >= native.cycles, "model can't beat native");
        last_ratio = ratio;
    }
}

/// Both rendered artifacts must be byte-identical across worker counts.
#[test]
fn artifacts_are_identical_across_jobs() {
    let kernels: Vec<_> = bench::benches().into_iter().take(4).collect();
    let render = |jobs: usize| {
        let profiles = par_map_with(jobs, kernels.clone(), |_, k| {
            collect(&k, EncodingKind::NibbleAligned, 10_000_000).unwrap()
        });
        render_profiles_json(&profiles, "nibble")
    };
    assert_eq!(render(1), render(8));

    let options = HybridOptions { coverages: vec![0.0, 0.5, 1.0], ..HybridOptions::default() };
    let sweep = |jobs: usize| {
        codense_core::parallel::set_jobs(jobs);
        let results = hybrid_sweep(&options).unwrap();
        codense_core::parallel::set_jobs(0);
        render_bench_json(&results, "nibble", &options.cost)
    };
    assert_eq!(sweep(1), sweep(8));
}
