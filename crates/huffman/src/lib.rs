#![warn(missing_docs)]

//! Canonical byte-oriented Huffman coding.
//!
//! Substrate for the CCRP baseline (Wolfe & Chanin's compressed-cache-line
//! processor, §2.3 of the reproduced paper), and the reference point for the
//! paper's statistical-vs-dictionary compression discussion (§2.1).
//!
//! The implementation builds a canonical code from byte frequencies, encodes
//! to an MSB-first bit stream, and decodes with a per-length table. Codes
//! are canonical, so only the per-symbol lengths need to be stored alongside
//! compressed data (256 bytes of model).
//!
//! # Example
//!
//! ```
//! use codense_huffman::{HuffmanCode, encode, decode};
//!
//! let data = b"abracadabra abracadabra";
//! let code = HuffmanCode::from_frequencies(&codense_huffman::byte_frequencies(data));
//! let bits = encode(&code, data);
//! assert_eq!(decode(&code, &bits, data.len()).unwrap(), data);
//! ```

use std::collections::BinaryHeap;

/// Maximum codeword length in bits. Codes are stored in `u32` and the
/// decoder's accumulator is 32 bits, so [`HuffmanCode::from_frequencies`]
/// length-limits the code to this bound (pathological — e.g. Fibonacci —
/// frequency distributions otherwise produce code lengths up to
/// `symbols - 1`, which would overflow the code storage).
pub const MAX_CODE_LEN: u8 = 32;

/// Counts byte frequencies over a buffer.
pub fn byte_frequencies(data: &[u8]) -> [u64; 256] {
    let mut f = [0u64; 256];
    for &b in data {
        f[b as usize] += 1;
    }
    f
}

/// Builds length-limited Huffman code lengths for an **arbitrary** symbol
/// alphabet (not just bytes): `freqs[s]` is the weight of symbol `s`, and the
/// result gives each symbol's code length in bits (0 = symbol absent), with
/// no length exceeding `max_len`.
///
/// This is the same construction [`HuffmanCode::from_frequencies`] uses —
/// deterministic min-heap merge with insertion-order tie-breaks, followed by
/// the zlib-style Kraft repair when any raw tree depth exceeds the limit —
/// generalized so dictionary-compression codeword alphabets (thousands of
/// ranks) can reuse it. `max_len` is clamped to `1..=`[`MAX_CODE_LEN`].
///
/// The returned lengths always satisfy the Kraft inequality, so feeding them
/// to a canonical code constructor yields a valid prefix code. A `max_len`
/// too small to give every present symbol a code (fewer than
/// `2^max_len` codewords available) is raised to `ceil(log2(symbols))` —
/// every symbol always gets a code.
pub fn code_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let mut lengths = vec![0u8; freqs.len()];
    let coded: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    // Bits needed so a full tree can hold every coded symbol.
    let needed = (usize::BITS - coded.len().saturating_sub(1).leading_zeros()) as usize;
    let max = (max_len.clamp(1, MAX_CODE_LEN) as usize).max(needed).min(MAX_CODE_LEN as usize);
    match coded.len() {
        0 => {}
        1 => lengths[coded[0]] = 1,
        _ => {
            // Min-heap merge over (weight, insertion id) with parent links
            // instead of boxed trees, so depth extraction is iterative and
            // alphabet size is unbounded.
            #[derive(PartialEq, Eq)]
            struct Item {
                weight: u64,
                id: u32,
                node: usize,
            }
            impl Ord for Item {
                fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                    // Reversed for a min-heap.
                    o.weight.cmp(&self.weight).then(o.id.cmp(&self.id))
                }
            }
            impl PartialOrd for Item {
                fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(o))
                }
            }
            let mut parent: Vec<usize> = vec![usize::MAX; coded.len()];
            let mut heap: BinaryHeap<Item> = coded
                .iter()
                .enumerate()
                .map(|(node, &s)| Item { weight: freqs[s], id: node as u32, node })
                .collect();
            let mut next_id = coded.len() as u32;
            while heap.len() > 1 {
                let a = heap.pop().expect("len > 1");
                let b = heap.pop().expect("len > 1");
                let node = parent.len();
                parent.push(usize::MAX);
                parent[a.node] = node;
                parent[b.node] = node;
                heap.push(Item { weight: a.weight + b.weight, id: next_id, node });
                next_id += 1;
            }
            // Parents always have larger indices than their children, so a
            // single reverse sweep resolves every depth.
            let mut depth = vec![0u32; parent.len()];
            for i in (0..parent.len()).rev() {
                if parent[i] != usize::MAX {
                    depth[i] = depth[parent[i]] + 1;
                }
            }
            // Histogram with everything deeper than the limit clamped into
            // the deepest bucket, then the same one-step Kraft repair as
            // `limit_lengths`.
            let mut num = vec![0u64; max + 1];
            for node in 0..coded.len() {
                num[(depth[node].max(1) as usize).min(max)] += 1;
            }
            let mut total: u128 = (1..=max).map(|i| (num[i] as u128) << (max - i)).sum();
            while total > 1u128 << max {
                num[max] -= 1;
                for i in (1..max).rev() {
                    if num[i] > 0 {
                        num[i] -= 1;
                        num[i + 1] += 2;
                        break;
                    }
                }
                total -= 1;
            }
            // Assign repaired lengths shortest-first to symbols ordered by
            // raw depth (ties by symbol value) — identical policy to the
            // byte-alphabet path, so determinism carries over.
            let mut order: Vec<usize> = (0..coded.len()).collect();
            order.sort_by_key(|&node| (depth[node], coded[node]));
            let mut it = order.into_iter();
            for (l, &n) in num.iter().enumerate().skip(1) {
                for _ in 0..n {
                    let node = it.next().expect("histogram covers every coded symbol");
                    lengths[coded[node]] = l as u8;
                }
            }
        }
    }
    lengths
}

/// A canonical Huffman code over the byte alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length in bits per symbol (0 = symbol absent).
    lengths: [u8; 256],
    /// Canonical codeword per symbol (low `lengths[s]` bits, MSB-first).
    codes: [u32; 256],
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies. Symbols with zero frequency
    /// get no code. If only one distinct symbol occurs it receives a 1-bit
    /// code.
    pub fn from_frequencies(freq: &[u64; 256]) -> HuffmanCode {
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            /// Tie-break for determinism.
            id: u32,
            kind: NodeKind,
        }
        #[derive(PartialEq, Eq)]
        enum NodeKind {
            Leaf(u8),
            Internal(Box<Node>, Box<Node>),
        }
        impl Ord for Node {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // Reversed for a min-heap.
                o.weight.cmp(&self.weight).then(o.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut next_id = 0u32;
        for (s, &w) in freq.iter().enumerate() {
            if w > 0 {
                heap.push(Node { weight: w, id: next_id, kind: NodeKind::Leaf(s as u8) });
                next_id += 1;
            }
        }
        let mut lengths = [0u8; 256];
        match heap.len() {
            0 => {}
            1 => {
                if let NodeKind::Leaf(s) = heap.pop().expect("len 1").kind {
                    lengths[s as usize] = 1;
                }
            }
            _ => {
                while heap.len() > 1 {
                    let a = heap.pop().expect("len > 1");
                    let b = heap.pop().expect("len > 1");
                    heap.push(Node {
                        weight: a.weight + b.weight,
                        id: next_id,
                        kind: NodeKind::Internal(Box::new(a), Box::new(b)),
                    });
                    next_id += 1;
                }
                // Tree depth can reach `symbols - 1` (255) on pathological
                // weight distributions, so raw depths are tracked in u16 and
                // length-limited to [`MAX_CODE_LEN`] afterwards.
                fn walk(n: &Node, depth: u16, lengths: &mut [u16; 256]) {
                    match &n.kind {
                        NodeKind::Leaf(s) => lengths[*s as usize] = depth.max(1),
                        NodeKind::Internal(a, b) => {
                            walk(a, depth + 1, lengths);
                            walk(b, depth + 1, lengths);
                        }
                    }
                }
                let mut deep = [0u16; 256];
                walk(&heap.pop().expect("root"), 0, &mut deep);
                limit_lengths(&deep, &mut lengths);
            }
        }
        HuffmanCode::from_lengths(lengths)
    }

    /// Builds the canonical code table from per-symbol lengths.
    ///
    /// Lengths above [`MAX_CODE_LEN`] are clamped to it — codewords are
    /// stored in `u32`, so longer lengths cannot be represented. A correct
    /// prefix code results only when the (clamped) lengths satisfy the
    /// Kraft inequality, as every length set produced by
    /// [`HuffmanCode::from_frequencies`] does; arbitrary lengths never
    /// cause a panic or overflow, merely a code that may not be decodable.
    pub fn from_lengths(mut lengths: [u8; 256]) -> HuffmanCode {
        for l in lengths.iter_mut() {
            *l = (*l).min(MAX_CODE_LEN);
        }
        let mut symbols: Vec<u8> = (0u16..256).map(|s| s as u8).collect();
        symbols.retain(|&s| lengths[s as usize] > 0);
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = [0u32; 256];
        // u64 accumulator: the canonical construction shifts by up to
        // MAX_CODE_LEN, which a u32 could not absorb at the top length.
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &s in &symbols {
            let l = lengths[s as usize];
            code <<= l - prev_len;
            codes[s as usize] = code as u32;
            code += 1;
            prev_len = l;
        }
        HuffmanCode { lengths, codes }
    }

    /// Code length for a symbol (0 if absent).
    pub fn length(&self, symbol: u8) -> u8 {
        self.lengths[symbol as usize]
    }

    /// Canonical codeword bits for a symbol.
    pub fn code(&self, symbol: u8) -> u32 {
        self.codes[symbol as usize]
    }

    /// The per-symbol lengths (the transmissible model).
    pub fn lengths(&self) -> &[u8; 256] {
        &self.lengths
    }

    /// Exact compressed size in bits for the given data under this code.
    ///
    /// # Panics
    ///
    /// Panics if the data contains a symbol with no code.
    pub fn encoded_bits(&self, data: &[u8]) -> u64 {
        data.iter()
            .map(|&b| {
                let l = self.lengths[b as usize];
                assert!(l > 0, "symbol {b:#04x} has no code");
                l as u64
            })
            .sum()
    }
}

/// Converts raw Huffman-tree depths into final code lengths, limiting them
/// to [`MAX_CODE_LEN`] bits (zlib/miniz-style Kraft repair).
///
/// When no depth exceeds the limit — every realistic frequency
/// distribution — the depths pass through unchanged, so length-limiting
/// never perturbs the codes existing snapshots were built from. Only
/// pathological (e.g. Fibonacci) weight sets take the repair path.
fn limit_lengths(deep: &[u16; 256], out: &mut [u8; 256]) {
    const MAX: usize = MAX_CODE_LEN as usize;
    if deep.iter().all(|&d| d <= MAX as u16) {
        for (o, &d) in out.iter_mut().zip(deep.iter()) {
            *o = d as u8;
        }
        return;
    }
    // Histogram of code lengths with everything deeper than the limit
    // clamped into the deepest bucket.
    let mut num = [0u32; MAX + 1];
    for &d in deep.iter().filter(|&&d| d > 0) {
        num[(d as usize).min(MAX)] += 1;
    }
    // Clamping overfills the code space: a full tree has
    // sum(2^(MAX - len)) == 2^MAX, and shortening a code only inflates its
    // term. Repair by repeatedly retiring one deepest-bucket code and
    // splitting a shallower code into two one bit longer — each step
    // shrinks the sum by exactly one until the lengths again describe a
    // full prefix tree.
    let mut total: u64 = (1..=MAX).map(|i| (num[i] as u64) << (MAX - i)).sum();
    while total > 1u64 << MAX {
        num[MAX] -= 1;
        for i in (1..MAX).rev() {
            if num[i] > 0 {
                num[i] -= 1;
                num[i + 1] += 2;
                break;
            }
        }
        total -= 1;
    }
    // Hand the repaired lengths back out shortest-first to symbols ordered
    // by original depth (ties by symbol value), preserving the relative
    // code-length order of the unlimited tree.
    let mut symbols: Vec<u8> = (0u16..256).map(|s| s as u8).collect();
    symbols.retain(|&s| deep[s as usize] > 0);
    symbols.sort_by_key(|&s| (deep[s as usize], s));
    let mut it = symbols.into_iter();
    for (l, &n) in num.iter().enumerate().skip(1) {
        for _ in 0..n {
            let s = it.next().expect("histogram covers every coded symbol");
            out[s as usize] = l as u8;
        }
    }
}

/// Encodes data to an MSB-first bit stream.
///
/// # Panics
///
/// Panics if the data contains a symbol the code does not cover.
pub fn encode(code: &HuffmanCode, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &b in data {
        let l = code.length(b);
        assert!(l > 0, "symbol {b:#04x} has no code");
        acc = (acc << l) | code.code(b) as u64;
        nbits += l as u32;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        out.push(((acc << (8 - nbits)) & 0xff) as u8);
    }
    out
}

/// Typed failure modes from [`decode_checked`]: what exactly a hostile or
/// damaged bit stream did wrong. All variants are cheap values — decoding
/// never panics and never allocates proportionally to attacker-claimed
/// lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The claimed symbol count cannot fit in the supplied bits: every
    /// codeword is at least one bit, so `count` symbols need at least
    /// `count` bits. Rejected *before* any output allocation, so a forged
    /// count cannot drive an OOM-sized `Vec::with_capacity`.
    CountExceedsBitSupply {
        /// Symbols the caller asked for.
        count: usize,
        /// Bits actually present in the stream.
        bits_available: usize,
    },
    /// The stream ended mid-codeword (or before `count` symbols appeared).
    Truncated {
        /// Symbols successfully decoded before the supply ran out.
        decoded: usize,
    },
    /// 32 bits accumulated without matching any codeword — the stream
    /// contains a pattern the (possibly non-full) code does not cover.
    InvalidCode {
        /// Bit offset where the unmatched codeword started.
        at_bit: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::CountExceedsBitSupply { count, bits_available } => {
                write!(f, "claimed {count} symbols but only {bits_available} bits supplied")
            }
            DecodeError::Truncated { decoded } => {
                write!(f, "bit stream truncated after {decoded} symbols")
            }
            DecodeError::InvalidCode { at_bit } => {
                write!(f, "no codeword matches the bits starting at bit {at_bit}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes `count` symbols from an MSB-first bit stream.
///
/// Returns `None` if the stream is truncated or contains an invalid code.
/// Thin wrapper over [`decode_checked`] for callers that don't need the
/// failure detail.
pub fn decode(code: &HuffmanCode, bits: &[u8], count: usize) -> Option<Vec<u8>> {
    decode_checked(code, bits, count).ok()
}

/// Decodes `count` symbols from an MSB-first bit stream, reporting *why*
/// decoding failed as a typed [`DecodeError`].
///
/// Hostile-input hardened: a claimed `count` larger than the bit supply is
/// rejected up front (no allocation), truncation and uncovered codewords are
/// typed errors, and nothing panics.
///
/// # Errors
///
/// [`DecodeError::CountExceedsBitSupply`] when `count` symbols cannot fit in
/// `bits`, [`DecodeError::Truncated`] when the stream ends early, and
/// [`DecodeError::InvalidCode`] when no codeword matches.
pub fn decode_checked(
    code: &HuffmanCode,
    bits: &[u8],
    count: usize,
) -> Result<Vec<u8>, DecodeError> {
    // Every codeword is ≥ 1 bit, so `count` symbols need ≥ `count` bits.
    // Checking first bounds the output allocation by the actual bit supply
    // rather than an attacker-controlled header field.
    let bits_available = bits.len().saturating_mul(8);
    if count > bits_available {
        return Err(DecodeError::CountExceedsBitSupply { count, bits_available });
    }
    // (length, canonical code) → symbol, grouped by length.
    let mut by_len: Vec<Vec<(u32, u8)>> = vec![Vec::new(); 33];
    for s in 0u16..256 {
        let l = code.length(s as u8);
        if l > 0 {
            by_len[l as usize].push((code.code(s as u8), s as u8));
        }
    }
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u32;
    let mut len = 0u8;
    let mut pos = 0usize;
    while out.len() < count {
        let Some(&byte) = bits.get(pos / 8) else {
            return Err(DecodeError::Truncated { decoded: out.len() });
        };
        let bit = (byte >> (7 - pos % 8)) & 1;
        pos += 1;
        acc = (acc << 1) | bit as u32;
        len += 1;
        if len > 32 {
            return Err(DecodeError::InvalidCode { at_bit: pos - len as usize });
        }
        if let Some(&(_, sym)) = by_len[len as usize].iter().find(|&&(c, _)| c == acc) {
            out.push(sym);
            acc = 0;
            len = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let code = HuffmanCode::from_frequencies(&byte_frequencies(data));
        let bits = encode(&code, data);
        assert_eq!(decode(&code, &bits, data.len()).unwrap(), data);
        assert_eq!(code.encoded_bits(data).div_ceil(8), bits.len() as u64);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"hello world");
        roundtrip(b"aaaaaaaaaaaaaaaab");
        roundtrip(&[0u8; 100]);
        let mixed: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn empty_input() {
        let code = HuffmanCode::from_frequencies(&[0; 256]);
        assert_eq!(encode(&code, &[]), Vec::<u8>::new());
        assert_eq!(decode(&code, &[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let data = vec![7u8; 64];
        let code = HuffmanCode::from_frequencies(&byte_frequencies(&data));
        assert_eq!(code.length(7), 1);
        let bits = encode(&code, &data);
        assert_eq!(bits.len(), 8); // 64 bits
        assert_eq!(decode(&code, &bits, 64).unwrap(), data);
    }

    #[test]
    fn skewed_frequencies_give_shorter_codes() {
        let mut data = vec![b'a'; 1000];
        data.extend_from_slice(b"bcdefgh");
        let code = HuffmanCode::from_frequencies(&byte_frequencies(&data));
        assert!(code.length(b'a') < code.length(b'b'));
    }

    #[test]
    fn compression_beats_raw_on_skewed_data() {
        let mut data = vec![0u8; 4000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = if i % 10 == 0 { (i % 50) as u8 } else { 0 };
        }
        let code = HuffmanCode::from_frequencies(&byte_frequencies(&data));
        let bits = encode(&code, &data);
        assert!(bits.len() < data.len() / 2);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let code = HuffmanCode::from_frequencies(&byte_frequencies(data));
        let symbols: Vec<u8> =
            (0u16..256).map(|s| s as u8).filter(|&s| code.length(s) > 0).collect();
        for &a in &symbols {
            for &b in &symbols {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.length(a), code.length(b));
                if la <= lb {
                    let prefix = code.code(b) >> (lb - la);
                    assert!(prefix != code.code(a), "{a:?} is a prefix of {b:?}");
                }
            }
        }
    }

    fn assert_prefix_free(code: &HuffmanCode) {
        let symbols: Vec<u8> =
            (0u16..256).map(|s| s as u8).filter(|&s| code.length(s) > 0).collect();
        for &a in &symbols {
            for &b in &symbols {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.length(a), code.length(b));
                if la <= lb {
                    let prefix = code.code(b) >> (lb - la);
                    assert!(prefix != code.code(a), "{a:?} is a prefix of {b:?}");
                }
            }
        }
    }

    #[test]
    fn fibonacci_weights_are_length_limited() {
        // Fibonacci weights maximize Huffman tree depth: with n symbols the
        // rarest gets an (n-1)-bit code, so 64 symbols would demand 63-bit
        // codes — far past the u32 code storage. Regression for the
        // shift-overflow this used to trigger in `from_lengths`.
        let mut freq = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freq.iter_mut().take(64) {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let code = HuffmanCode::from_frequencies(&freq);
        let mut kraft = 0u64;
        for s in 0u16..256 {
            let l = code.length(s as u8);
            assert!(l <= MAX_CODE_LEN, "symbol {s} got {l}-bit code");
            if s < 64 {
                assert!(l > 0, "coded symbol {s} lost its code");
                kraft += 1u64 << (MAX_CODE_LEN - l);
            } else {
                assert_eq!(l, 0);
            }
        }
        // The limited lengths must still describe a *full* prefix tree.
        assert_eq!(kraft, 1u64 << MAX_CODE_LEN);
        assert_prefix_free(&code);

        // Round-trip data touching every coded symbol, and check the
        // encoded_bits accounting matches the materialized stream.
        let mut data = Vec::new();
        for s in 0..64u8 {
            for _ in 0..=(s % 5) {
                data.push(s);
            }
        }
        let bits = encode(&code, &data);
        assert_eq!(decode(&code, &bits, data.len()).unwrap(), data);
        assert_eq!(code.encoded_bits(&data).div_ceil(8), bits.len() as u64);
    }

    #[test]
    fn moderate_depths_are_untouched_by_length_limiting() {
        // A 20-symbol Fibonacci set peaks at 19-bit codes — deep, but within
        // the limit. The repair path must not fire: lengths equal raw tree
        // depths (rarest two symbols share the maximum length).
        let mut freq = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freq.iter_mut().take(20) {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let code = HuffmanCode::from_frequencies(&freq);
        assert_eq!(code.length(0), 19);
        assert_eq!(code.length(1), 19);
        assert_eq!(code.length(19), 1);
        assert_prefix_free(&code);
    }

    #[test]
    fn from_lengths_clamps_hostile_lengths() {
        // `from_lengths` is public; arbitrary length tables must never
        // panic or shift-overflow, merely clamp.
        let mut lengths = [0u8; 256];
        lengths[0] = 255;
        lengths[1] = 40;
        lengths[2] = 2;
        let code = HuffmanCode::from_lengths(lengths);
        assert_eq!(code.length(0), MAX_CODE_LEN);
        assert_eq!(code.length(1), MAX_CODE_LEN);
        assert_eq!(code.length(2), 2);
    }

    #[test]
    fn truncated_stream_returns_none() {
        let data = b"abcabcabc";
        let code = HuffmanCode::from_frequencies(&byte_frequencies(data));
        let bits = encode(&code, data);
        assert_eq!(decode(&code, &bits[..bits.len() - 1], data.len()), None);
    }

    #[test]
    fn code_lengths_matches_byte_construction() {
        // On a byte-sized alphabet the generalized constructor must produce
        // exactly the lengths `from_frequencies` assigns.
        let data = b"the quick brown fox jumps over the lazy dog";
        let freq = byte_frequencies(data);
        let code = HuffmanCode::from_frequencies(&freq);
        let general = code_lengths(&freq, MAX_CODE_LEN);
        for (s, &len) in general.iter().enumerate() {
            assert_eq!(len, code.length(s as u8), "symbol {s}");
        }
    }

    #[test]
    fn code_lengths_large_alphabet_satisfies_kraft() {
        // A few thousand symbols with a Zipf-ish skew — the dictionary-rank
        // use case. Lengths must respect the cap and the Kraft inequality.
        let freqs: Vec<u64> = (0..4000u64).map(|s| 4000 - s).collect();
        for cap in [12u8, 16, 32] {
            let lengths = code_lengths(&freqs, cap);
            let mut kraft = 0u128;
            for (s, &l) in lengths.iter().enumerate() {
                assert!(l >= 1 && l <= cap, "symbol {s} got length {l} under cap {cap}");
                kraft += 1u128 << (cap - l);
            }
            assert!(kraft <= 1u128 << cap, "Kraft violated under cap {cap}");
        }
    }

    #[test]
    fn code_lengths_infeasible_cap_is_raised() {
        // 100 equal-weight symbols cannot fit in 2^4 codewords; the cap is
        // raised to ceil(log2(100)) = 7 and every symbol still gets a code.
        let freqs = vec![1u64; 100];
        let lengths = code_lengths(&freqs, 4);
        let mut kraft = 0u128;
        for &l in &lengths {
            assert!((1..=7).contains(&l), "length {l} outside raised cap");
            kraft += 1u128 << (7 - l);
        }
        assert!(kraft <= 1u128 << 7);
    }

    #[test]
    fn code_lengths_pathological_weights_are_limited() {
        // Fibonacci weights force raw depths past any practical cap.
        let mut freqs = vec![0u64; 80];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let lengths = code_lengths(&freqs, 16);
        let mut kraft = 0u128;
        for &l in &lengths {
            assert!((1..=16).contains(&l));
            kraft += 1u128 << (16 - l);
        }
        // The repair terminates exactly at a full tree.
        assert_eq!(kraft, 1u128 << 16);
    }

    #[test]
    fn code_lengths_degenerate_alphabets() {
        assert_eq!(code_lengths(&[], 8), Vec::<u8>::new());
        assert_eq!(code_lengths(&[0, 0, 0], 8), vec![0, 0, 0]);
        assert_eq!(code_lengths(&[0, 7, 0], 8), vec![0, 1, 0]);
        // Two symbols: one bit each regardless of skew.
        assert_eq!(code_lengths(&[1, 1_000_000], 8), vec![1, 1]);
    }

    #[test]
    fn decode_checked_rejects_forged_count_without_allocating() {
        // A 4-byte stream claiming a billion symbols must fail fast with a
        // typed error, not reserve a billion-entry vector.
        let data = b"aaab";
        let code = HuffmanCode::from_frequencies(&byte_frequencies(data));
        let bits = encode(&code, data);
        assert_eq!(
            decode_checked(&code, &bits, 1_000_000_000),
            Err(DecodeError::CountExceedsBitSupply {
                count: 1_000_000_000,
                bits_available: bits.len() * 8,
            })
        );
    }

    #[test]
    fn decode_checked_types_truncation() {
        let data = b"abcdefgh abcdefgh abcdefgh";
        let code = HuffmanCode::from_frequencies(&byte_frequencies(data));
        let bits = encode(&code, data);
        let cut = &bits[..bits.len() / 2];
        match decode_checked(&code, cut, (cut.len() * 8).min(data.len())) {
            Err(DecodeError::Truncated { decoded }) => assert!(decoded < data.len()),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn decode_checked_types_invalid_codes() {
        // A sparse, non-full code: all-ones bit patterns match nothing.
        let mut lengths = [0u8; 256];
        lengths[0] = 2; // code 00
        lengths[1] = 2; // code 01
        let code = HuffmanCode::from_lengths(lengths);
        let hostile = [0xffu8; 8];
        match decode_checked(&code, &hostile, 4) {
            Err(DecodeError::InvalidCode { at_bit }) => assert_eq!(at_bit, 0),
            other => panic!("expected InvalidCode, got {other:?}"),
        }
    }
}
