//! End-to-end tests for the batch-compression server: byte identity with
//! in-process compression, BUSY backpressure, graceful drain, and the
//! malformed-frame battery (reusing the fuzz crate's corruption patterns).

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use codense_core::{container, Compressor, EncodingKind, SelectorKind};
use codense_service::protocol::{decode_error, read_frame, write_frame, FrameError, MAX_FRAME};
use codense_service::{serve, Client, CompressRequest, ErrorCode, Op, RequestError, ServeOptions};

const ALL: [EncodingKind; 4] = [
    EncodingKind::Baseline,
    EncodingKind::OneByte,
    EncodingKind::NibbleAligned,
    EncodingKind::Huffman,
];

fn request_for(module: &codense_obj::ObjectModule, encoding: EncodingKind) -> CompressRequest {
    CompressRequest {
        encoding,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0, // the encoding's full codeword space
        module: codense_obj::serialize(module),
    }
}

/// The in-process reference result the served bytes must match exactly.
fn expected_container(module: &codense_obj::ObjectModule, req: &CompressRequest) -> Vec<u8> {
    let compressed = Compressor::new(req.config()).compress(module).expect("compresses");
    container::serialize(&compressed)
}

/// A small module with enough repetition to produce a non-trivial
/// dictionary, cheap enough to compress hundreds of times in a test.
fn small_module() -> codense_obj::ObjectModule {
    let mut m = codense_obj::ObjectModule::new("serve-test");
    let mut code = Vec::new();
    for i in 0..16u32 {
        for _ in 0..3 {
            code.push(0x3860_0000 | i); // li r3, i
            code.push(0x3880_0100 | i); // li r4, 256+i
        }
    }
    m.code = code;
    m
}

#[test]
fn served_results_are_byte_identical_to_in_process_compression() {
    let handle = serve(&ServeOptions { jobs: 2, ..Default::default() }).unwrap();
    let addr = handle.addr().to_string();

    for bench in ["compress", "li"] {
        let module = codense_codegen::benchmark(bench).expect("known benchmark");
        for encoding in ALL {
            let req = request_for(&module, encoding);
            let expected = expected_container(&module, &req);
            let mut client = Client::connect(addr.as_str(), 60_000).unwrap();
            let served = client
                .compress(&req)
                .unwrap_or_else(|e| panic!("{bench}/{encoding:?}: request failed: {e}"));
            assert_eq!(served, expected, "{bench}/{encoding:?}: served bytes differ");
        }
    }
    drop(handle);
}

#[test]
fn one_connection_serves_many_sequential_requests() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let module = small_module();
    let req = request_for(&module, EncodingKind::NibbleAligned);
    let expected = expected_container(&module, &req);

    let mut client = Client::connect(handle.addr(), 30_000).unwrap();
    client.ping().unwrap();
    for _ in 0..10 {
        assert_eq!(client.compress(&req).unwrap(), expected);
    }
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("\"schema\": 1"), "metrics is not schema-1 JSON:\n{metrics}");
    for key in [
        "serve.bytes_in",
        "serve.bytes_out",
        "serve.cache.bytes_high_water",
        "serve.cache.evictions",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.conns_accepted",
        "serve.frames_bad",
        "serve.pipeline_high_water",
        "serve.queue_high_water",
        "serve.requests_accepted",
        "serve.requests_busy",
        "serve.requests_failed",
        "serve.requests_ok",
    ] {
        assert!(metrics.contains(key), "metrics is missing {key}");
    }
    drop(handle);
}

#[test]
fn full_queue_answers_busy_and_never_drops_a_request() {
    // One worker, queue depth one: with 6 simultaneous heavyweight requests
    // at most two are admitted (one in flight + one queued); the rest must
    // get an immediate BUSY, and every admitted request must still return
    // the byte-exact container.
    let handle =
        serve(&ServeOptions { jobs: 1, queue_depth: 1, timeout_ms: 60_000, ..Default::default() })
            .unwrap();
    let addr = handle.addr().to_string();
    let module = codense_codegen::benchmark("compress").unwrap();
    let req = request_for(&module, EncodingKind::NibbleAligned);
    let expected = expected_container(&module, &req);

    let busy = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    for round in 0..10 {
        let barrier = Barrier::new(6);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    let mut client = Client::connect(addr.as_str(), 60_000).unwrap();
                    barrier.wait();
                    match client.compress(&req) {
                        Ok(bytes) => {
                            assert_eq!(bytes, expected, "admitted request returned wrong bytes");
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RequestError::Rejected(ErrorCode::Busy, _)) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected outcome: {e}"),
                    }
                });
            }
        });
        if busy.load(Ordering::Relaxed) > 0 && round >= 1 {
            break;
        }
    }
    assert!(ok.load(Ordering::Relaxed) > 0, "no request was ever admitted");
    assert!(
        busy.load(Ordering::Relaxed) > 0,
        "queue depth 1 with 6 simultaneous senders never reported BUSY"
    );
    drop(handle);
}

#[test]
fn graceful_drain_completes_in_flight_work_then_refuses_connections() {
    let handle = serve(&ServeOptions { jobs: 1, ..Default::default() }).unwrap();
    let addr = handle.addr();
    let module = codense_codegen::benchmark("compress").unwrap();
    let req = request_for(&module, EncodingKind::NibbleAligned);
    let expected = expected_container(&module, &req);

    let in_flight = std::thread::spawn({
        let req = req.clone();
        move || Client::connect(addr, 60_000).unwrap().compress(&req)
    });
    // Let the request reach the worker, then ask the server to drain.
    std::thread::sleep(Duration::from_millis(200));
    Client::connect(addr, 10_000).unwrap().shutdown().unwrap();
    handle.join();

    let served = in_flight.join().unwrap().expect("in-flight request must complete during drain");
    assert_eq!(served, expected, "drained request returned wrong bytes");

    // The listener is gone: new connections are refused outright.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "server still accepting after drain"
    );
}

#[test]
fn malformed_frames_get_typed_errors_and_never_kill_the_server() {
    // Short server timeout so truncated frames expire quickly.
    let handle = serve(&ServeOptions { jobs: 1, timeout_ms: 150, ..Default::default() }).unwrap();
    let addr = handle.addr();
    let module = small_module();
    let req = request_for(&module, EncodingKind::NibbleAligned);

    // The pristine frame the corruption battery mutates.
    let mut pristine = Vec::new();
    write_frame(&mut pristine, Op::ReqCompress, 1, &req.encode()).unwrap();

    let mut rng = codense_codegen::Rng::new(0x5e7e_c0de);
    for round in 0..150 {
        let corrupted = codense_fuzz::corrupt(&pristine, &mut rng);
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(1000))
            .unwrap_or_else(|e| panic!("round {round}: server stopped accepting: {e}"));
        stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        stream.set_write_timeout(Some(Duration::from_millis(1000))).unwrap();
        let mut stream = stream;
        // The server may close mid-write on garbage; that is a valid outcome.
        let _ = stream.write_all(&corrupted);
        let _ = stream.flush();
        // Whatever comes back must be either nothing (timeout / clean close)
        // or a well-formed frame; a server-side panic or hang would surface
        // as the liveness check below failing.
        match read_frame(&mut &stream) {
            Ok(None) | Err(FrameError::Io(_)) => {}
            Ok(Some((frame, _))) if frame.op == Op::RespErr => {
                let (code, _) = decode_error(&frame.payload)
                    .unwrap_or_else(|| panic!("round {round}: undecodable error frame"));
                assert!(
                    matches!(
                        code,
                        ErrorCode::BadFrame
                            | ErrorCode::BadModule
                            | ErrorCode::CompressFailed
                            | ErrorCode::TooLarge
                            | ErrorCode::Deadline
                            | ErrorCode::Busy
                    ),
                    "round {round}: unexpected error code {code}"
                );
            }
            // A mutation can leave a prefix that is still a valid request
            // (e.g. a CRC-repaired payload flip); any well-formed response
            // is acceptable.
            Ok(Some(_)) => {}
            Err(e) => panic!("round {round}: server sent a corrupt frame: {e}"),
        }
    }

    // Liveness: after 150 rounds of garbage the server still answers, and
    // compression still returns byte-exact results.
    let mut client = Client::connect(addr, 30_000).unwrap();
    client.ping().expect("server must survive the malformed-frame battery");
    let expected = expected_container(&module, &req);
    assert_eq!(client.compress(&req).unwrap(), expected);
    drop(handle);
}

#[test]
fn oversized_length_prefix_is_rejected_with_too_large() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let mut stream =
        TcpStream::connect_timeout(&handle.addr(), Duration::from_millis(1000)).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
    stream.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
    let (frame, _) = read_frame(&mut &stream).unwrap().expect("a typed response");
    assert_eq!(frame.op, Op::RespErr);
    assert_eq!(decode_error(&frame.payload).unwrap().0, ErrorCode::TooLarge);
    drop(handle);
}

#[test]
fn response_op_sent_to_server_is_a_bad_frame() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let mut stream =
        TcpStream::connect_timeout(&handle.addr(), Duration::from_millis(1000)).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
    write_frame(&mut stream, Op::RespOk, 7, b"not a request").unwrap();
    let (frame, _) = read_frame(&mut &stream).unwrap().expect("a typed response");
    assert_eq!(frame.op, Op::RespErr);
    assert_eq!(frame.request_id, 7, "the violation echoes the offending id");
    assert_eq!(decode_error(&frame.payload).unwrap().0, ErrorCode::BadFrame);
    drop(handle);
}

#[test]
fn bad_module_bytes_get_a_typed_error_not_a_panic() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(handle.addr(), 10_000).unwrap();
    let req = CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: b"definitely not a .cdm module".to_vec(),
    };
    match client.compress(&req) {
        Err(RequestError::Rejected(ErrorCode::BadModule, _)) => {}
        other => panic!("expected BAD_MODULE, got {other:?}"),
    }
    // The connection survives a rejected request.
    client.ping().unwrap();
    drop(handle);
}
