//! Concurrency and pipelining stress tests: many connections × many
//! pipelined requests, adversarial byte-by-byte writes, out-of-order
//! completion, and graceful drain under pipelined load.

use std::collections::HashMap;
use std::io::Write;
use std::time::Duration;

use codense_core::{container, Compressor, EncodingKind, SelectorKind};
use codense_service::{
    serve, Client, CompressRequest, ErrorCode, Op, PipelinedClient, ServeOptions,
};

/// A distinct small module per (connection, request) pair: base repetition
/// plus a differentiating instruction, so every request has its own cache
/// key and its own expected container.
fn module_for(tag: u32) -> codense_obj::ObjectModule {
    let mut m = codense_obj::ObjectModule::new("concurrency-test");
    let mut code = Vec::new();
    for i in 0..12u32 {
        for _ in 0..3 {
            code.push(0x3860_0000 | i); // li r3, i
            code.push(0x3880_0100 | i); // li r4, 256+i
        }
    }
    code.push(0x3860_0000 | (tag & 0xffff)); // li r3, tag
    m.code = code;
    m
}

fn request_for(module: &codense_obj::ObjectModule) -> CompressRequest {
    CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: codense_obj::serialize(module),
    }
}

fn expected_container(module: &codense_obj::ObjectModule, req: &CompressRequest) -> Vec<u8> {
    let compressed = Compressor::new(req.config()).compress(module).expect("compresses");
    container::serialize(&compressed)
}

/// N connections × M pipelined requests each, written to the socket in
/// tiny adversarial chunks: every response must arrive, be matched by
/// request id (completion order is not request order), and byte-match the
/// in-process compression of that id's module.
#[test]
fn pipelined_requests_across_connections_all_complete_and_byte_match() {
    const CONNS: u32 = 8;
    const PER_CONN: u32 = 16;
    let handle = serve(&ServeOptions {
        jobs: 4,
        queue_depth: (CONNS * PER_CONN) as usize,
        timeout_ms: 60_000,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..CONNS {
            scope.spawn(move || {
                // Distinct module (and expected bytes) per request id.
                let mut expect: HashMap<u32, Vec<u8>> = HashMap::new();
                let mut wire = Vec::new();
                let mut sender = PipelinedClient::connect(addr, 60_000).unwrap();
                for r in 0..PER_CONN {
                    let id = r + 1;
                    let module = module_for(c * 1000 + r);
                    let req = request_for(&module);
                    expect.insert(id, expected_container(&module, &req));
                    wire.extend_from_slice(&codense_service::protocol::encode_frame(
                        Op::ReqCompress,
                        id,
                        &req.encode(),
                    ));
                }

                let mut receiver = sender.try_clone().unwrap();
                let reader = scope.spawn(move || {
                    let mut got: HashMap<u32, Vec<u8>> = HashMap::new();
                    while got.len() < PER_CONN as usize {
                        let frame = receiver
                            .recv()
                            .expect("well-formed response")
                            .expect("server must answer every pipelined request");
                        assert_eq!(frame.op, Op::RespOk, "conn {c}: id {}", frame.request_id);
                        let prev = got.insert(frame.request_id, frame.payload);
                        assert!(prev.is_none(), "conn {c}: id {} answered twice", frame.request_id);
                    }
                    got
                });

                // Byte-by-byte writes: frame boundaries never align with
                // socket writes, so the server's incremental parser sees
                // every possible split.
                for chunk in wire.chunks(1) {
                    sender.stream_write_all(chunk);
                }
                let got = reader.join().unwrap();
                for (id, expected) in &expect {
                    assert_eq!(
                        got.get(id),
                        Some(expected),
                        "conn {c}: id {id} bytes differ from in-process compression"
                    );
                }
            });
        }
    });
    drop(handle);
}

/// Graceful drain with pipelined work in flight: every already-sent
/// request is answered (completed or refused as SHUTTING_DOWN, never
/// dropped), and the server then exits.
#[test]
fn graceful_drain_answers_every_pipelined_request() {
    const PER_CONN: u32 = 4;
    let handle =
        serve(&ServeOptions { jobs: 1, timeout_ms: 60_000, ..Default::default() }).unwrap();
    let addr = handle.addr();

    let module = codense_codegen::benchmark("compress").unwrap();
    let req = request_for(&module);
    let expected = expected_container(&module, &req);

    let conns: Vec<_> = (0..2)
        .map(|_| {
            let mut sender = PipelinedClient::connect(addr, 60_000).unwrap();
            for id in 1..=PER_CONN {
                sender.send_compress(id, &req).unwrap();
            }
            sender
        })
        .collect();

    // Let the frames reach the reactor, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    Client::connect(addr, 10_000).unwrap().shutdown().unwrap();

    for (c, mut conn) in conns.into_iter().enumerate() {
        let mut answered = 0;
        while let Some(frame) = conn.recv().expect("well-formed response") {
            answered += 1;
            match frame.op {
                Op::RespOk => assert_eq!(frame.payload, expected, "conn {c}"),
                Op::RespErr => {
                    let (code, _) = codense_service::protocol::decode_error(&frame.payload)
                        .expect("decodable error");
                    assert_eq!(code, ErrorCode::ShuttingDown, "conn {c}");
                }
                other => panic!("conn {c}: unexpected response {other:?}"),
            }
        }
        assert_eq!(answered, PER_CONN, "conn {c}: every pipelined request is answered");
    }
    handle.join();
}

/// One pipelined connection mixing inline ops and compressions: pings
/// answer immediately (ahead of slower compressions sent before them),
/// which is the out-of-order completion contract in its simplest form.
#[test]
fn inline_ops_overtake_in_flight_compressions() {
    let handle = serve(&ServeOptions { jobs: 1, ..Default::default() }).unwrap();
    let module = codense_codegen::benchmark("compress").unwrap();
    let req = request_for(&module);
    let expected = expected_container(&module, &req);

    let mut conn = PipelinedClient::connect(handle.addr(), 60_000).unwrap();
    conn.send_compress(1, &req).unwrap();
    conn.send(Op::ReqPing, 2, b"").unwrap();

    let first = conn.recv().unwrap().expect("a response");
    assert_eq!(
        (first.op, first.request_id),
        (Op::RespPong, 2),
        "the ping must not wait behind the in-flight compression"
    );
    let second = conn.recv().unwrap().expect("the compression completes");
    assert_eq!((second.op, second.request_id), (Op::RespOk, 1));
    assert_eq!(second.payload, expected);
    drop(handle);
}

/// Helper extension: write a raw chunk through the pipelined client's
/// socket (the stress test writes sub-frame chunks directly).
trait RawWrite {
    fn stream_write_all(&mut self, chunk: &[u8]);
}

impl RawWrite for PipelinedClient {
    fn stream_write_all(&mut self, chunk: &[u8]) {
        self.raw_stream().write_all(chunk).unwrap();
    }
}
