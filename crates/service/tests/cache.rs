//! Cache property tests: a seeded random-operation battery against a
//! naive reference model (hit results, LRU eviction order, byte-budget
//! bound), server-level hit/fresh byte identity, and the counter
//! commutativity contract (`serve.*` counter deltas are byte-identical at
//! any worker count for sequential traffic).

use std::sync::Mutex;

use codense_core::telemetry;
use codense_core::{container, Compressor, EncodingKind};
use codense_service::{serve, CacheKey, Client, CompressRequest, ResultCache, ServeOptions};

/// Serializes the tests that read the process-global `serve.*` counters —
/// a concurrently running server test would pollute the deltas.
static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn key(n: u32) -> CacheKey {
    CacheKey::new(0, 0, 4, 0, &n.to_be_bytes())
}

/// The obviously-correct reference: a vector ordered MRU-first.
#[derive(Default)]
struct ModelCache {
    entries: Vec<(CacheKey, Vec<u8>)>,
    budget: usize,
}

impl ModelCache {
    fn new(budget: usize) -> ModelCache {
        ModelCache { entries: Vec::new(), budget }
    }

    fn bytes(&self) -> usize {
        self.entries.iter().map(|(_, v)| v.len()).sum()
    }

    fn get(&mut self, k: &CacheKey) -> Option<Vec<u8>> {
        let at = self.entries.iter().position(|(ek, _)| ek == k)?;
        let entry = self.entries.remove(at);
        let value = entry.1.clone();
        self.entries.insert(0, entry);
        Some(value)
    }

    fn insert(&mut self, k: CacheKey, v: Vec<u8>) {
        if let Some(at) = self.entries.iter().position(|(ek, _)| ek == &k) {
            self.entries.remove(at);
        }
        if self.budget == 0 || v.len() > self.budget {
            return;
        }
        while self.bytes() + v.len() > self.budget {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }

    fn order(&self) -> Vec<CacheKey> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }
}

/// Seeded random insert/lookup battery: the slab-and-list cache must agree
/// with the naive model on every hit, every miss, the full recency order,
/// and the byte total — and never exceed its budget.
#[test]
fn random_op_battery_matches_reference_model() {
    for seed in [1u64, 0xC0DE, 0xDEAD_BEEF, 7, 99] {
        let mut rng = codense_codegen::Rng::new(seed);
        let budget = 64 + rng.below(512);
        let mut cache = ResultCache::new(budget);
        let mut model = ModelCache::new(budget);

        for step in 0..2000 {
            let k = key(rng.below(24) as u32);
            if rng.chance(0.4) {
                let got = cache.get(&k).map(<[u8]>::to_vec);
                let want = model.get(&k);
                assert_eq!(got, want, "seed {seed} step {step}: get({k:?}) diverged");
            } else {
                let v = vec![rng.below(256) as u8; rng.below(96)];
                cache.insert(k, v.clone());
                model.insert(k, v);
            }
            assert_eq!(cache.bytes(), model.bytes(), "seed {seed} step {step}: byte totals");
            assert!(cache.bytes() <= budget, "seed {seed} step {step}: budget exceeded");
            assert_eq!(
                cache.recency_order(),
                model.order(),
                "seed {seed} step {step}: LRU order diverged"
            );
        }
        assert!(!cache.is_empty(), "seed {seed}: battery never left anything cached");
    }
}

fn small_module(tag: u32) -> codense_obj::ObjectModule {
    let mut m = codense_obj::ObjectModule::new("cache-test");
    let mut code = Vec::new();
    for i in 0..12u32 {
        for _ in 0..3 {
            code.push(0x3860_0000 | i); // li r3, i
            code.push(0x3880_0100 | i); // li r4, 256+i
        }
    }
    code.push(0x3860_0000 | (tag & 0xffff)); // li r3, tag
    m.code = code;
    m
}

fn request_for(module: &codense_obj::ObjectModule) -> CompressRequest {
    CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: codense_core::SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: codense_obj::serialize(module),
    }
}

fn expected_container(module: &codense_obj::ObjectModule, req: &CompressRequest) -> Vec<u8> {
    let compressed = Compressor::new(req.config()).compress(module).expect("compresses");
    container::serialize(&compressed)
}

fn serve_counters() -> Vec<(&'static str, u64)> {
    telemetry::counter_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("serve."))
        .collect()
}

/// A cache hit must be byte-identical to a fresh compression, and the
/// server's own hit/miss counters must account for every lookup.
#[test]
fn server_cache_hit_is_byte_identical_to_fresh_compression() {
    let _guard = SERVER_LOCK.lock().unwrap();
    let before = serve_counters();
    let mut handle = serve(&ServeOptions { jobs: 1, ..Default::default() }).unwrap();
    let module = small_module(0xA);
    let req = request_for(&module);
    let expected = expected_container(&module, &req);

    let mut client = Client::connect(handle.addr(), 30_000).unwrap();
    let miss = client.compress(&req).unwrap();
    let hit = client.compress(&req).unwrap();
    assert_eq!(miss, expected, "fresh compression differs from in-process result");
    assert_eq!(hit, expected, "cache hit differs from fresh compression");
    drop(client);
    handle.shutdown();

    let delta: Vec<(&str, u64)> = serve_counters()
        .into_iter()
        .zip(&before)
        .map(|((name, now), &(_, was))| (name, now - was))
        .collect();
    let get = |n: &str| delta.iter().find(|(name, _)| *name == n).unwrap().1;
    assert_eq!(get("serve.cache.misses"), 1, "{delta:?}");
    assert_eq!(get("serve.cache.hits"), 1, "{delta:?}");
    assert_eq!(get("serve.requests_ok"), 2, "{delta:?}");
}

/// A byte budget far below the working set forces evictions; results stay
/// byte-exact and the eviction counter moves.
#[test]
fn tiny_budget_evicts_but_stays_byte_exact() {
    let _guard = SERVER_LOCK.lock().unwrap();
    let items: Vec<_> = (0..3)
        .map(|t| {
            let module = small_module(t);
            let req = request_for(&module);
            let expected = expected_container(&module, &req);
            (req, expected)
        })
        .collect();
    // Budget fits exactly one compressed container, so cycling three
    // distinct modules keeps evicting.
    let budget = items.iter().map(|(_, e)| e.len()).max().unwrap() + 8;
    let before = serve_counters();
    let mut handle =
        serve(&ServeOptions { jobs: 1, cache_bytes: budget, ..Default::default() }).unwrap();

    let mut client = Client::connect(handle.addr(), 30_000).unwrap();
    for round in 0..4 {
        for (i, (req, expected)) in items.iter().enumerate() {
            let got = client.compress(req).unwrap();
            assert_eq!(&got, expected, "round {round} item {i}");
        }
    }
    drop(client);
    handle.shutdown();

    let delta: Vec<(&str, u64)> = serve_counters()
        .into_iter()
        .zip(&before)
        .map(|((name, now), &(_, was))| (name, now - was))
        .collect();
    let get = |n: &str| delta.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(get("serve.cache.evictions") > 0, "a 600-byte budget must evict: {delta:?}");
    assert_eq!(get("serve.requests_failed"), 0, "{delta:?}");
}

/// Counter commutativity: the same sequential traffic against a 1-worker
/// and an 8-worker server produces byte-identical `serve.*` counter
/// deltas — the determinism contract behind the verify.sh metrics gate.
#[test]
fn counter_deltas_are_identical_at_jobs_1_and_8() {
    let _guard = SERVER_LOCK.lock().unwrap();
    // Repeat-heavy sequence over three distinct modules: misses, hits, and
    // an eviction-free cache, all in deterministic arrival order.
    let items: Vec<_> = (0..3)
        .map(|t| {
            let module = small_module(100 + t);
            let req = request_for(&module);
            let expected = expected_container(&module, &req);
            (req, expected)
        })
        .collect();
    let sequence = [0usize, 1, 0, 0, 2, 1, 0, 2, 2, 0, 1, 0];

    let run = |jobs: usize| -> Vec<(&'static str, u64)> {
        let before = serve_counters();
        let mut handle = serve(&ServeOptions { jobs, ..Default::default() }).unwrap();
        let mut client = Client::connect(handle.addr(), 30_000).unwrap();
        client.ping().unwrap();
        for &i in &sequence {
            let (req, expected) = &items[i];
            assert_eq!(&client.compress(req).unwrap(), expected);
        }
        drop(client);
        handle.shutdown();
        serve_counters()
            .into_iter()
            .zip(&before)
            .map(|((name, now), &(_, was))| (name, now - was))
            // High-water marks are `record_max` on process-global state:
            // monotone across runs in one process, so their *deltas* are
            // not comparable here. (The verify.sh gate compares them
            // across separate server processes, where both start at 0.)
            .filter(|(name, _)| !name.contains("high_water"))
            .collect()
    };

    let d1 = run(1);
    let d8 = run(8);
    assert_eq!(d1, d8, "serve.* counter deltas must not depend on worker count");
    let get = |n: &str| d1.iter().find(|(name, _)| *name == n).unwrap().1;
    assert_eq!(get("serve.cache.misses"), 3, "{d1:?}");
    assert_eq!(get("serve.cache.hits"), sequence.len() as u64 - 3, "{d1:?}");
}
