//! Protocol-conformance suite: the full op × corruption matrix against a
//! live server. Every malformed frame must produce the documented typed
//! `RESP_ERR` — and the connection must survive every error whose frame
//! boundary is still known (only an untrustworthy length prefix or EOF
//! inside a frame closes it).

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use codense_core::{container::crc32, EncodingKind, SelectorKind};
use codense_service::protocol::{
    decode_error, encode_frame, read_frame, Frame, FrameError, MAX_FRAME,
};
use codense_service::{serve, Client, CompressRequest, ErrorCode, Op, RequestError, ServeOptions};

fn small_module() -> codense_obj::ObjectModule {
    let mut m = codense_obj::ObjectModule::new("protocol-test");
    let mut code = Vec::new();
    for i in 0..16u32 {
        for _ in 0..3 {
            code.push(0x3860_0000 | i); // li r3, i
            code.push(0x3880_0100 | i); // li r4, 256+i
        }
    }
    m.code = code;
    m
}

fn compress_request() -> CompressRequest {
    CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: codense_obj::serialize(&small_module()),
    }
}

fn connect(addr: &std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect_timeout(addr, Duration::from_millis(2000)).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(5000))).unwrap();
    stream.set_write_timeout(Some(Duration::from_millis(5000))).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

fn recv(stream: &TcpStream) -> Option<Frame> {
    match read_frame(&mut &*stream) {
        Ok(frame) => frame.map(|(f, _)| f),
        Err(e) => panic!("server sent a corrupt frame: {e}"),
    }
}

fn expect_err(frame: &Frame, code: ErrorCode) -> String {
    assert_eq!(frame.op, Op::RespErr, "expected RESP_ERR, got {:?}", frame.op);
    let (got, msg) = decode_error(&frame.payload).expect("decodable error payload");
    assert_eq!(got, code, "wrong error code ({msg})");
    msg
}

/// A well-formed frame with an op byte outside the registry.
fn unknown_op_frame(op: u8, request_id: u32, payload: &[u8]) -> Vec<u8> {
    let len = 1 + 4 + payload.len() + 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(op);
    frame.extend_from_slice(&request_id.to_be_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[4..]);
    frame.extend_from_slice(&crc.to_be_bytes());
    frame
}

/// Truncating any request frame at every field boundary yields the typed
/// `BAD_FRAME` "closed inside a frame" error with request id 0 (the id is
/// unrecoverable from a cut-off frame), then a close — for every REQ op.
#[test]
fn truncation_at_every_field_boundary_is_a_typed_error() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let addr = handle.addr();
    let req_payload = compress_request().encode();

    let frames: Vec<(Op, Vec<u8>)> = vec![
        (Op::ReqPing, encode_frame(Op::ReqPing, 5, b"")),
        (Op::ReqMetrics, encode_frame(Op::ReqMetrics, 5, b"")),
        (Op::ReqShutdown, encode_frame(Op::ReqShutdown, 5, b"")),
        (Op::ReqCompress, encode_frame(Op::ReqCompress, 5, &req_payload)),
    ];
    for (op, pristine) in frames {
        // Field boundaries: inside the length prefix, after it, after the
        // op byte, after the request id, inside the payload/CRC, and one
        // byte short of complete.
        let cuts = [1, 4, 5, 9, pristine.len() / 2, pristine.len() - 1];
        for cut in cuts {
            assert!(cut < pristine.len(), "{op:?}: cut {cut} is not a truncation");
            let stream = connect(&addr);
            (&stream).write_all(&pristine[..cut]).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let frame = recv(&stream)
                .unwrap_or_else(|| panic!("{op:?} cut at {cut}: no typed error came back"));
            expect_err(&frame, ErrorCode::BadFrame);
            assert_eq!(frame.request_id, 0, "{op:?} cut at {cut}: truncated frames echo id 0");
            assert!(recv(&stream).is_none(), "{op:?} cut at {cut}: connection must close");
        }
    }
    // A truncated SHUTDOWN never parsed, so the server must still be alive.
    Client::connect(addr, 5000).unwrap().ping().expect("server alive after truncation battery");
    drop(handle);
}

/// A CRC-damaged frame answers `BAD_FRAME` and the connection survives:
/// the length prefix still delimits the frame, so the stream resyncs.
#[test]
fn bad_crc_is_answered_and_survived_for_every_op() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let addr = handle.addr();
    let req_payload = compress_request().encode();

    for (op, payload) in [
        (Op::ReqPing, &b""[..]),
        (Op::ReqMetrics, &b""[..]),
        (Op::ReqShutdown, &b""[..]),
        (Op::ReqCompress, &req_payload[..]),
    ] {
        let mut frame = encode_frame(op, 9, payload);
        *frame.last_mut().unwrap() ^= 0xff;
        let stream = connect(&addr);
        (&stream).write_all(&frame).unwrap();
        let resp = recv(&stream).unwrap_or_else(|| panic!("{op:?}: no error frame"));
        expect_err(&resp, ErrorCode::BadFrame);
        // The op/id fields were undamaged, so the id echo is best-effort 9.
        assert_eq!(resp.request_id, 9, "{op:?}: intact id field must be echoed");

        // Same connection, follow-up request: must work. (A damaged
        // SHUTDOWN must not have drained the server either.)
        (&stream).write_all(&encode_frame(Op::ReqPing, 10, b"")).unwrap();
        let pong = recv(&stream).expect("connection survives a bad CRC");
        assert_eq!((pong.op, pong.request_id), (Op::RespPong, 10), "{op:?}");
    }
    drop(handle);
}

/// An op byte outside the registry (with a valid CRC) answers `BAD_FRAME`
/// and the connection survives.
#[test]
fn unknown_op_is_answered_and_survived() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let stream = connect(&handle.addr());
    (&stream).write_all(&unknown_op_frame(0x55, 3, b"payload")).unwrap();
    let resp = recv(&stream).expect("a typed response");
    expect_err(&resp, ErrorCode::BadFrame);
    assert_eq!(resp.request_id, 3, "valid-CRC unknown op echoes its id");

    (&stream).write_all(&encode_frame(Op::ReqPing, 4, b"")).unwrap();
    let pong = recv(&stream).expect("connection survives an unknown op");
    assert_eq!((pong.op, pong.request_id), (Op::RespPong, 4));
    drop(handle);
}

/// A length field below the frame minimum answers `BAD_FRAME`, skips the
/// declared bytes, and the connection survives.
#[test]
fn undersized_length_is_answered_and_survived() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let stream = connect(&handle.addr());
    // Length 3 declares a 3-byte body (below op+id+crc = 9); the 3 junk
    // bytes are skipped as the declared body.
    let mut bytes = 3u32.to_be_bytes().to_vec();
    bytes.extend_from_slice(b"junk"[..3].as_ref());
    (&stream).write_all(&bytes).unwrap();
    let resp = recv(&stream).expect("a typed response");
    expect_err(&resp, ErrorCode::BadFrame);
    assert_eq!(resp.request_id, 0, "no id is recoverable from a short frame");

    (&stream).write_all(&encode_frame(Op::ReqPing, 6, b"")).unwrap();
    let pong = recv(&stream).expect("connection survives an undersized length");
    assert_eq!((pong.op, pong.request_id), (Op::RespPong, 6));
    drop(handle);
}

/// A length prefix over `MAX_FRAME` is the one *fatal* corruption: the
/// typed `TOO_LARGE` error is answered, then the connection closes (the
/// stream offset can no longer be trusted).
#[test]
fn oversized_length_is_answered_then_closed() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let stream = connect(&handle.addr());
    (&stream).write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
    let resp = recv(&stream).expect("a typed response");
    expect_err(&resp, ErrorCode::TooLarge);
    assert!(recv(&stream).is_none(), "connection must close after an oversized length");
    drop(handle);
}

/// A zero-length module is a well-formed frame carrying an empty module:
/// `BAD_MODULE`, and the connection survives.
#[test]
fn zero_length_module_is_bad_module_not_a_hang() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(handle.addr(), 10_000).unwrap();
    let req = CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: Vec::new(),
    };
    match client.compress(&req) {
        Err(RequestError::Rejected(ErrorCode::BadModule, _)) => {}
        other => panic!("expected BAD_MODULE, got {other:?}"),
    }
    client.ping().expect("connection survives an empty module");
    drop(handle);
}

/// A request id already in flight on the connection answers
/// `DUPLICATE_ID` (and the original request still completes).
#[test]
fn duplicate_request_id_in_flight_is_rejected() {
    let handle = serve(&ServeOptions { jobs: 1, ..Default::default() }).unwrap();
    // A heavyweight module keeps the first request in flight long enough
    // that the duplicate (sent in the same TCP segment) always lands while
    // it is outstanding.
    let module = codense_codegen::benchmark("compress").unwrap();
    let req = CompressRequest {
        encoding: EncodingKind::NibbleAligned,
        selector: SelectorKind::Greedy,
        max_entry_len: 4,
        max_codewords: 0,
        module: codense_obj::serialize(&module),
    };
    let payload = req.encode();
    let mut two = encode_frame(Op::ReqCompress, 42, &payload);
    two.extend_from_slice(&encode_frame(Op::ReqCompress, 42, &payload));

    let stream = connect(&handle.addr());
    stream.set_read_timeout(Some(Duration::from_millis(60_000))).unwrap();
    (&stream).write_all(&two).unwrap();

    // The duplicate is rejected immediately; the original completes later.
    let first = recv(&stream).expect("a response");
    expect_err(&first, ErrorCode::DuplicateId);
    assert_eq!(first.request_id, 42);
    let second = recv(&stream).expect("the original request still completes");
    assert_eq!((second.op, second.request_id), (Op::RespOk, 42));
    drop(handle);
}

/// Pipelining across damage: good frame, bad-CRC frame, good frame in one
/// write. The responses come back in order — pong, typed error, pong —
/// because inline ops and resync errors answer in arrival order.
#[test]
fn malformed_frame_between_two_good_frames_answers_all_three_in_order() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let mut bad = encode_frame(Op::ReqPing, 2, b"");
    *bad.last_mut().unwrap() ^= 0xff;
    let mut wire = encode_frame(Op::ReqPing, 1, b"");
    wire.extend_from_slice(&bad);
    wire.extend_from_slice(&encode_frame(Op::ReqPing, 3, b""));

    let stream = connect(&handle.addr());
    (&stream).write_all(&wire).unwrap();
    let first = recv(&stream).expect("first response");
    assert_eq!((first.op, first.request_id), (Op::RespPong, 1));
    let second = recv(&stream).expect("second response");
    expect_err(&second, ErrorCode::BadFrame);
    let third = recv(&stream).expect("third response");
    assert_eq!((third.op, third.request_id), (Op::RespPong, 3));
    drop(handle);
}

/// The lzw codec is registered but not servable (no random access): a
/// compress request carrying its tag gets `COMPRESS_FAILED`, not
/// `BAD_FRAME`, and the connection survives.
#[test]
fn unservable_codec_tag_is_compress_failed() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let module = codense_obj::serialize(&small_module());
    // Build the compress payload by hand: tag 4 (lzw) has no encoding.
    let mut payload = vec![4u8, 0u8];
    payload.extend_from_slice(&4u16.to_be_bytes());
    payload.extend_from_slice(&0u32.to_be_bytes());
    payload.extend_from_slice(&module);

    let stream = connect(&handle.addr());
    (&stream).write_all(&encode_frame(Op::ReqCompress, 11, &payload)).unwrap();
    let resp = recv(&stream).expect("a typed response");
    expect_err(&resp, ErrorCode::CompressFailed);
    assert_eq!(resp.request_id, 11);

    (&stream).write_all(&encode_frame(Op::ReqPing, 12, b"")).unwrap();
    let pong = recv(&stream).expect("connection survives an unservable codec");
    assert_eq!((pong.op, pong.request_id), (Op::RespPong, 12));
    drop(handle);
}

/// A codec tag outside the registry is a malformed request: `BAD_FRAME`.
#[test]
fn unregistered_codec_tag_is_bad_frame() {
    let handle = serve(&ServeOptions::default()).unwrap();
    let module = codense_obj::serialize(&small_module());
    let mut payload = vec![99u8, 0u8];
    payload.extend_from_slice(&4u16.to_be_bytes());
    payload.extend_from_slice(&0u32.to_be_bytes());
    payload.extend_from_slice(&module);

    let stream = connect(&handle.addr());
    (&stream).write_all(&encode_frame(Op::ReqCompress, 13, &payload)).unwrap();
    let resp = recv(&stream).expect("a typed response");
    expect_err(&resp, ErrorCode::BadFrame);
    assert_eq!(resp.request_id, 13);
    drop(handle);
}

/// The `FrameError::response_code` contract: every recoverable parse error
/// maps to `BAD_FRAME`, the fatal one to `TOO_LARGE`, socket errors to
/// nothing.
#[test]
fn frame_error_response_codes_are_documented() {
    assert_eq!(FrameError::TooLarge(MAX_FRAME + 1).response_code(), Some(ErrorCode::TooLarge));
    assert_eq!(FrameError::TooShort(3).response_code(), Some(ErrorCode::BadFrame));
    assert_eq!(FrameError::BadCrc { got: 1, want: 2 }.response_code(), Some(ErrorCode::BadFrame));
    assert_eq!(FrameError::UnknownOp(0x55).response_code(), Some(ErrorCode::BadFrame));
    assert_eq!(FrameError::Io(std::io::ErrorKind::TimedOut.into()).response_code(), None);
}
