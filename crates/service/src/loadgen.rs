//! Load generation against a serve instance: N concurrent connections, a
//! fixed request count, and a throughput + latency-quantile report.
//!
//! Every response is compared byte-for-byte against the expected container
//! (the caller computes it once, in process), so the benchmark doubles as a
//! correctness check: a served result that differs from the in-process
//! compression counts as `failed`, not `ok`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::client::{Client, RequestError};
use crate::protocol::{CompressRequest, ErrorCode};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address.
    pub addr: String,
    /// Total requests to issue across all connections.
    pub requests: usize,
    /// Concurrent connections, each on its own thread.
    pub connections: usize,
    /// Client-side socket timeout per request.
    pub timeout_ms: u64,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: "127.0.0.1:0".into(),
            requests: 32,
            connections: 1,
            timeout_ms: 30_000,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Responses byte-identical to the expected container.
    pub ok: u64,
    /// `BUSY` backpressure rejections (not retried, not failures).
    pub busy: u64,
    /// Everything else: typed errors, wire errors, byte mismatches.
    pub failed: u64,
    /// Wall-clock for the whole run, microseconds.
    pub wall_us: u64,
    /// Per-`ok`-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadgenReport {
    /// The `p`-th latency percentile (0 < p <= 100) in microseconds; 0 when
    /// no request succeeded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1]
    }

    /// Mean `ok` latency in microseconds.
    pub fn mean_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64
    }

    /// Completed (`ok`) requests per second of wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.ok as f64 / (self.wall_us as f64 / 1e6)
    }
}

/// Static facts about a run, recorded alongside the measurements in
/// `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Benchmark (module) name the requests compress.
    pub bench: String,
    /// Encoding name (`baseline`/`onebyte`/`nibble`).
    pub encoding: String,
    /// Server worker threads.
    pub jobs: usize,
    /// Server queue depth.
    pub queue_depth: usize,
}

/// Drives `opts.requests` compression requests over `opts.connections`
/// concurrent connections, checking each response against `expected`.
pub fn run_loadgen(
    opts: &LoadgenOptions,
    request: &CompressRequest,
    expected: &[u8],
) -> std::io::Result<LoadgenReport> {
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(opts.requests));
    let connect_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.connections.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(opts.addr.as_str(), opts.timeout_ms) {
                    Ok(c) => c,
                    Err(e) => {
                        connect_error.lock().unwrap().get_or_insert(e);
                        return;
                    }
                };
                let mut mine = Vec::new();
                while next.fetch_add(1, Ordering::Relaxed) < opts.requests {
                    let t0 = Instant::now();
                    match client.compress(request) {
                        Ok(bytes) if bytes == expected => {
                            mine.push(t0.elapsed().as_micros() as u64);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RequestError::Rejected(ErrorCode::Busy, _)) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    if let Some(e) = connect_error.into_inner().unwrap() {
        return Err(e);
    }

    let mut latencies_us = latencies.into_inner().unwrap();
    latencies_us.sort_unstable();
    Ok(LoadgenReport {
        ok: ok.into_inner(),
        busy: busy.into_inner(),
        failed: failed.into_inner(),
        wall_us: start.elapsed().as_micros() as u64,
        latencies_us,
    })
}

/// Renders the `BENCH_serve.json` report (sorted keys, stable shape;
/// schema 1 — documented in `EXPERIMENTS.md`).
pub fn render_bench_json(
    report: &LoadgenReport,
    opts: &LoadgenOptions,
    meta: &BenchMeta,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", meta.bench));
    out.push_str(&format!("  \"busy\": {},\n", report.busy));
    out.push_str(&format!("  \"connections\": {},\n", opts.connections));
    out.push_str(&format!("  \"encoding\": \"{}\",\n", meta.encoding));
    out.push_str(&format!("  \"failed\": {},\n", report.failed));
    out.push_str(&format!("  \"jobs\": {},\n", meta.jobs));
    out.push_str("  \"latency_us\": {\n");
    out.push_str(&format!("    \"max\": {},\n", report.latencies_us.last().copied().unwrap_or(0)));
    out.push_str(&format!("    \"mean\": {},\n", report.mean_us()));
    out.push_str(&format!("    \"p50\": {},\n", report.percentile_us(50.0)));
    out.push_str(&format!("    \"p95\": {},\n", report.percentile_us(95.0)));
    out.push_str(&format!("    \"p99\": {}\n", report.percentile_us(99.0)));
    out.push_str("  },\n");
    out.push_str(&format!("  \"ok\": {},\n", report.ok));
    out.push_str(&format!("  \"queue_depth\": {},\n", meta.queue_depth));
    out.push_str(&format!("  \"requests\": {},\n", opts.requests));
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"throughput_rps\": {:.2},\n", report.throughput_rps()));
    out.push_str(&format!("  \"wall_us\": {}\n", report.wall_us));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let r = LoadgenReport {
            ok: 100,
            latencies_us: (1..=100).collect(),
            wall_us: 1_000_000,
            ..Default::default()
        };
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 95);
        assert_eq!(r.percentile_us(99.0), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert_eq!(r.mean_us(), 50);
        assert!((r.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = LoadgenReport::default();
        assert_eq!(r.percentile_us(99.0), 0);
        assert_eq!(r.mean_us(), 0);
        assert_eq!(r.throughput_rps(), 0.0);
    }
}
