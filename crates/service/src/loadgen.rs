//! Load generation against a serve instance, in two disciplines:
//!
//! * **closed loop** ([`run_loadgen`]) — N connections, each issuing its
//!   next request as soon as the previous one answers. Measures best-case
//!   service latency and saturation throughput.
//! * **open loop** ([`run_open_loop`]) — requests arrive on a deterministic
//!   Poisson-like schedule (seeded exponential inter-arrivals) regardless
//!   of how fast the server answers, pipelined over a fixed set of
//!   connections. Latency is measured from each request's *scheduled*
//!   arrival, so a backed-up server cannot hide queueing delay by slowing
//!   the generator down (the coordinated-omission trap).
//!
//! Every response is compared byte-for-byte against the expected container
//! (the caller computes it once, in process), so the benchmark doubles as a
//! correctness check: a served result that differs from the in-process
//! compression counts as `failed`, not `ok`. The cache sweep
//! ([`run_cache_point`]) cycles a window of distinct modules through one
//! sequential connection and reads the server's own `serve.cache.*`
//! counters to report the achieved hit ratio.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use codense_codegen::Rng;

use crate::client::{Client, PipelinedClient, RequestError};
use crate::protocol::{decode_error, CompressRequest, ErrorCode, Op};

/// Load-generation parameters (closed loop).
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address.
    pub addr: String,
    /// Total requests to issue across all connections.
    pub requests: usize,
    /// Concurrent connections, each on its own thread.
    pub connections: usize,
    /// Client-side socket timeout per request.
    pub timeout_ms: u64,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: "127.0.0.1:0".into(),
            requests: 32,
            connections: 1,
            timeout_ms: 30_000,
        }
    }
}

/// Outcome of one load-generation run (either discipline).
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Responses byte-identical to the expected container.
    pub ok: u64,
    /// `BUSY` backpressure rejections (not retried, not failures).
    pub busy: u64,
    /// Everything else: typed errors, wire errors, byte mismatches.
    pub failed: u64,
    /// Wall-clock for the whole run, microseconds.
    pub wall_us: u64,
    /// Per-`ok`-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadgenReport {
    /// The `p`-th latency percentile (0 < p <= 100) in microseconds by the
    /// ceil-rank rule over the merged, sorted sample vector; 0 when no
    /// request succeeded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1]
    }

    /// Mean `ok` latency in microseconds.
    pub fn mean_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64
    }

    /// Completed (`ok`) requests per second of wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.ok as f64 / (self.wall_us as f64 / 1e6)
    }
}

/// Static facts about a run, recorded alongside the measurements in
/// `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Benchmark (module) name the requests compress.
    pub bench: String,
    /// Encoding name (`baseline`/`onebyte`/`nibble`).
    pub encoding: String,
    /// Server worker threads.
    pub jobs: usize,
    /// Server queue depth.
    pub queue_depth: usize,
}

/// One request/response pair the generator cycles through: the encoded
/// request plus the container bytes an in-process compression produces.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The request to send.
    pub request: CompressRequest,
    /// The expected `.cdns` container bytes.
    pub expected: Vec<u8>,
}

/// Drives `opts.requests` compression requests over `opts.connections`
/// concurrent connections, checking each response against `expected`.
pub fn run_loadgen(
    opts: &LoadgenOptions,
    request: &CompressRequest,
    expected: &[u8],
) -> std::io::Result<LoadgenReport> {
    let item = WorkItem { request: request.clone(), expected: expected.to_vec() };
    run_loadgen_multi(opts, std::slice::from_ref(&item))
}

/// Closed-loop run over a set of work items, assigned round-robin by
/// global request index (request `k` sends `items[k % items.len()]`).
pub fn run_loadgen_multi(
    opts: &LoadgenOptions,
    items: &[WorkItem],
) -> std::io::Result<LoadgenReport> {
    assert!(!items.is_empty(), "loadgen needs at least one work item");
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(opts.requests));
    let connect_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.connections.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(opts.addr.as_str(), opts.timeout_ms) {
                    Ok(c) => c,
                    Err(e) => {
                        connect_error.lock().unwrap().get_or_insert(e);
                        return;
                    }
                };
                let mut mine = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= opts.requests {
                        break;
                    }
                    let item = &items[k % items.len()];
                    let t0 = Instant::now();
                    match client.compress(&item.request) {
                        Ok(bytes) if bytes == item.expected => {
                            mine.push(t0.elapsed().as_micros() as u64);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RequestError::Rejected(ErrorCode::Busy, _)) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    if let Some(e) = connect_error.into_inner().unwrap() {
        return Err(e);
    }

    let mut latencies_us = latencies.into_inner().unwrap();
    latencies_us.sort_unstable();
    Ok(LoadgenReport {
        ok: ok.into_inner(),
        busy: busy.into_inner(),
        failed: failed.into_inner(),
        wall_us: start.elapsed().as_micros() as u64,
        latencies_us,
    })
}

/// Open-loop parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopOptions {
    /// Server address.
    pub addr: String,
    /// Offered load: mean request arrivals per second.
    pub rate_rps: f64,
    /// Total requests in the run.
    pub requests: usize,
    /// Connections the arrivals are striped over (request `k` rides
    /// connection `k % connections`, pipelined).
    pub connections: usize,
    /// Client-side socket timeout.
    pub timeout_ms: u64,
    /// Seed of the arrival schedule (same seed = same schedule).
    pub seed: u64,
}

impl Default for OpenLoopOptions {
    fn default() -> OpenLoopOptions {
        OpenLoopOptions {
            addr: "127.0.0.1:0".into(),
            rate_rps: 100.0,
            requests: 64,
            connections: 4,
            timeout_ms: 30_000,
            seed: 0xC0DE,
        }
    }
}

/// The deterministic arrival schedule: cumulative microsecond offsets of
/// `requests` exponential inter-arrival gaps at `rate_rps` (a Poisson
/// process, reproducible from the seed).
pub fn arrival_schedule_us(rate_rps: f64, requests: usize, seed: u64) -> Vec<u64> {
    let rate = rate_rps.max(1e-6);
    let mut rng = Rng::new(seed);
    let mut t = 0.0f64;
    (0..requests)
        .map(|_| {
            // 53 uniform mantissa bits in [0, 1); ln(1-u) is then finite.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            t += -(1.0 - u).ln() / rate;
            (t * 1e6) as u64
        })
        .collect()
}

/// Runs an open-loop sweep point: requests fire at their scheduled arrival
/// times over pipelined connections, and latency for request `k` is
/// measured from `schedule[k]` — not from the send — so server queueing is
/// fully charged to the request.
pub fn run_open_loop(opts: &OpenLoopOptions, items: &[WorkItem]) -> std::io::Result<LoadgenReport> {
    assert!(!items.is_empty(), "loadgen needs at least one work item");
    let schedule = arrival_schedule_us(opts.rate_rps, opts.requests, opts.seed);
    let conns = opts.connections.max(1);

    // Connect everything before the clock starts.
    let mut pairs = Vec::with_capacity(conns);
    for _ in 0..conns {
        let sender = PipelinedClient::connect(opts.addr.as_str(), opts.timeout_ms)?;
        let receiver = sender.try_clone()?;
        pairs.push((sender, receiver));
    }

    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(opts.requests));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (c, (mut sender, mut receiver)) in pairs.into_iter().enumerate() {
            let assigned: Vec<usize> = (0..opts.requests).filter(|k| k % conns == c).collect();
            let expected_responses = assigned.len();
            let (schedule, items) = (&schedule, items);
            let (ok, busy, failed, latencies) = (&ok, &busy, &failed, &latencies);

            let sent = assigned.clone();
            scope.spawn(move || {
                for &k in &sent {
                    let target = Duration::from_micros(schedule[k]);
                    let now = start.elapsed();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let item = &items[k % items.len()];
                    if sender.send_compress(k as u32 + 1, &item.request).is_err() {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Half-close: the server answers what it got, then closes,
                // which is what ends the receiver loop below.
                let _ = sender.finish_sending();
            });

            scope.spawn(move || {
                let mut mine = Vec::new();
                let mut got = 0usize;
                while got < expected_responses {
                    let frame = match receiver.recv() {
                        Ok(Some(frame)) => frame,
                        Ok(None) | Err(_) => break,
                    };
                    got += 1;
                    let k = frame.request_id.wrapping_sub(1) as usize;
                    if k >= opts.requests {
                        failed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let item = &items[k % items.len()];
                    match frame.op {
                        Op::RespOk if frame.payload == item.expected => {
                            let now_us = start.elapsed().as_micros() as u64;
                            mine.push(now_us.saturating_sub(schedule[k]));
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Op::RespErr
                            if matches!(
                                decode_error(&frame.payload),
                                Some((ErrorCode::Busy, _))
                            ) =>
                        {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });

    let wall_us = start.elapsed().as_micros() as u64;
    let mut latencies_us = latencies.into_inner().unwrap();
    latencies_us.sort_unstable();
    let (ok, busy, mut failed) = (ok.into_inner(), busy.into_inner(), failed.into_inner());
    // Responses that never arrived (connection died early) are failures.
    failed += (opts.requests as u64).saturating_sub(ok + busy + failed);
    Ok(LoadgenReport { ok, busy, failed, wall_us, latencies_us })
}

/// One point of the latency-vs-offered-load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// The measured open-loop report at that rate.
    pub report: LoadgenReport,
}

/// One point of the cache-hit-ratio sweep.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Distinct modules cycled through.
    pub distinct: usize,
    /// Requests issued.
    pub requests: usize,
    /// Server-side `serve.cache.hits` delta across the point.
    pub hits: u64,
    /// Server-side `serve.cache.misses` delta across the point.
    pub misses: u64,
    /// `hits / (hits + misses)` (0 when the cache saw no lookups).
    pub hit_ratio: f64,
    /// Completed requests per second of wall-clock.
    pub throughput_rps: f64,
}

/// Extracts one counter value from a schema-1 metrics JSON report.
pub fn counter_value(metrics_json: &str, name: &str) -> Option<u64> {
    let at = metrics_json.find(&format!("\"{name}\":"))?;
    let rest = &metrics_json[at..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn request_failed(e: RequestError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Runs one cache sweep point: `requests` sequential requests cycling
/// through `items` (whose modules must be distinct), reporting the
/// server-observed hit/miss deltas. Any response that is not byte-identical
/// to its expected container is an error.
pub fn run_cache_point(
    addr: &str,
    timeout_ms: u64,
    requests: usize,
    items: &[WorkItem],
) -> std::io::Result<CachePoint> {
    assert!(!items.is_empty(), "cache point needs at least one work item");
    let mut client = Client::connect(addr, timeout_ms)?;
    let before = client.metrics().map_err(request_failed)?;
    let hits0 = counter_value(&before, "serve.cache.hits").unwrap_or(0);
    let misses0 = counter_value(&before, "serve.cache.misses").unwrap_or(0);

    let start = Instant::now();
    for k in 0..requests {
        let item = &items[k % items.len()];
        let bytes = client.compress(&item.request).map_err(request_failed)?;
        if bytes != item.expected {
            return Err(std::io::Error::other("served container differs from in-process result"));
        }
    }
    let wall_us = start.elapsed().as_micros().max(1) as u64;

    let after = client.metrics().map_err(request_failed)?;
    let hits = counter_value(&after, "serve.cache.hits").unwrap_or(0).saturating_sub(hits0);
    let misses = counter_value(&after, "serve.cache.misses").unwrap_or(0).saturating_sub(misses0);
    let lookups = hits + misses;
    Ok(CachePoint {
        distinct: items.len(),
        requests,
        hits,
        misses,
        hit_ratio: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        throughput_rps: requests as f64 / (wall_us as f64 / 1e6),
    })
}

/// Renders the `BENCH_serve.json` report (sorted keys, stable shape;
/// schema 1 — documented in `EXPERIMENTS.md`).
pub fn render_bench_json(
    report: &LoadgenReport,
    opts: &LoadgenOptions,
    meta: &BenchMeta,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", meta.bench));
    out.push_str(&format!("  \"busy\": {},\n", report.busy));
    out.push_str(&format!("  \"connections\": {},\n", opts.connections));
    out.push_str(&format!("  \"encoding\": \"{}\",\n", meta.encoding));
    out.push_str(&format!("  \"failed\": {},\n", report.failed));
    out.push_str(&format!("  \"jobs\": {},\n", meta.jobs));
    out.push_str("  \"latency_us\": {\n");
    out.push_str(&format!("    \"max\": {},\n", report.latencies_us.last().copied().unwrap_or(0)));
    out.push_str(&format!("    \"mean\": {},\n", report.mean_us()));
    out.push_str(&format!("    \"p50\": {},\n", report.percentile_us(50.0)));
    out.push_str(&format!("    \"p95\": {},\n", report.percentile_us(95.0)));
    out.push_str(&format!("    \"p99\": {}\n", report.percentile_us(99.0)));
    out.push_str("  },\n");
    out.push_str(&format!("  \"ok\": {},\n", report.ok));
    out.push_str(&format!("  \"queue_depth\": {},\n", meta.queue_depth));
    out.push_str(&format!("  \"requests\": {},\n", opts.requests));
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"throughput_rps\": {:.2},\n", report.throughput_rps()));
    out.push_str(&format!("  \"wall_us\": {}\n", report.wall_us));
    out.push_str("}\n");
    out
}

/// Renders the `BENCH_load.json` report: the latency-vs-offered-load curve
/// plus the cache-hit-ratio sweep (sorted keys, stable shape; schema 1 —
/// documented in `EXPERIMENTS.md`).
pub fn render_load_json(
    bench: &str,
    encoding: &str,
    connections: usize,
    seed: u64,
    load_sweep: &[LoadPoint],
    cache_sweep: &[CachePoint],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"cache_sweep\": [\n");
    for (i, p) in cache_sweep.iter().enumerate() {
        let comma = if i + 1 < cache_sweep.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"distinct\": {}, \"hit_ratio\": {:.4}, \"hits\": {}, \"misses\": {}, \
             \"requests\": {}, \"throughput_rps\": {:.2} }}{comma}\n",
            p.distinct, p.hit_ratio, p.hits, p.misses, p.requests, p.throughput_rps
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"connections\": {connections},\n"));
    out.push_str(&format!("  \"encoding\": \"{encoding}\",\n"));
    out.push_str("  \"load_sweep\": [\n");
    for (i, p) in load_sweep.iter().enumerate() {
        let comma = if i + 1 < load_sweep.len() { "," } else { "" };
        let r = &p.report;
        out.push_str(&format!(
            "    {{ \"busy\": {}, \"failed\": {}, \"latency_us\": {{ \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {} }}, \"offered_rps\": {:.2}, \"ok\": {}, \
             \"throughput_rps\": {:.2}, \"wall_us\": {} }}{comma}\n",
            r.busy,
            r.failed,
            r.latencies_us.last().copied().unwrap_or(0),
            r.mean_us(),
            r.percentile_us(50.0),
            r.percentile_us(95.0),
            r.percentile_us(99.0),
            p.offered_rps,
            r.ok,
            r.throughput_rps(),
            r.wall_us
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let r = LoadgenReport {
            ok: 100,
            latencies_us: (1..=100).collect(),
            wall_us: 1_000_000,
            ..Default::default()
        };
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 95);
        assert_eq!(r.percentile_us(99.0), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert_eq!(r.mean_us(), 50);
        assert!((r.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_known_ten_sample_distribution() {
        // The ceil-rank rule on n=10: p50 → rank 5, p95 and p99 → rank 10.
        let r = LoadgenReport {
            ok: 10,
            latencies_us: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            wall_us: 1,
            ..Default::default()
        };
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 100);
        assert_eq!(r.percentile_us(99.0), 100);
        assert_eq!(r.percentile_us(10.0), 10);
        assert_eq!(r.percentile_us(0.1), 10, "tiny p clamps to the first sample");
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = LoadgenReport::default();
        assert_eq!(r.percentile_us(99.0), 0);
        assert_eq!(r.mean_us(), 0);
        assert_eq!(r.throughput_rps(), 0.0);
    }

    #[test]
    fn arrival_schedule_is_deterministic_and_rate_shaped() {
        let a = arrival_schedule_us(100.0, 256, 42);
        let b = arrival_schedule_us(100.0, 256, 42);
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_schedule_us(100.0, 256, 43);
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets are cumulative");
        // 256 arrivals at 100 rps take ~2.56s in expectation; allow wide
        // slack (the variance of an exponential sum is substantial).
        let last = *a.last().unwrap();
        assert!((1_000_000..6_000_000).contains(&last), "last offset {last}");
    }

    #[test]
    fn counter_value_parses_metrics_json() {
        let json = "{\n  \"counters\": {\n    \"serve.cache.hits\": 12,\n    \
                    \"serve.cache.misses\": 3\n  }\n}\n";
        assert_eq!(counter_value(json, "serve.cache.hits"), Some(12));
        assert_eq!(counter_value(json, "serve.cache.misses"), Some(3));
        assert_eq!(counter_value(json, "serve.cache.evictions"), None);
    }
}
