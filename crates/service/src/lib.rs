#![warn(missing_docs)]

//! `codense serve` — a long-lived TCP batch-compression service.
//!
//! The paper's compressor is a one-shot post-compilation tool; this crate
//! puts the same pipeline behind a concurrent, fault-tolerant front end so
//! its robustness and latency become measurable. The server
//! ([`server::serve`]) is a `poll(2)`-based reactor ([`sys`]) driving
//! per-connection state machines: it accepts length-prefixed, CRC-checked
//! binary frames ([`protocol`]) carrying a request id, a codec tag
//! ([`codec`]) and a serialized `ObjectModule`, compresses on a bounded
//! worker pool behind a completion queue, and answers with the `.cdns`
//! container bytes — **byte-identical** to an in-process
//! [`Compressor::compress`](codense_core::Compressor) + `container::serialize`
//! of the same module, pinned by the integration tests.
//!
//! Robustness and performance contract:
//!
//! * **Pipelining** — a connection may keep many requests in flight;
//!   responses carry the request id they answer and may arrive out of
//!   order (cache hits and inline ops answer immediately, compressions
//!   answer in completion order).
//! * **Result cache** — compressed containers are cached content-addressed
//!   ([`cache`]): FNV-1a of the module bytes plus every output-affecting
//!   parameter, bounded by a byte budget with LRU eviction. A hit is
//!   byte-identical to a fresh compression.
//! * **Backpressure** — the work queue is bounded (`--queue-depth`); when it
//!   is full the server answers `BUSY` immediately instead of queueing
//!   without bound.
//! * **Deadlines** — a per-request completion deadline (`--timeout-ms`); an
//!   expired request answers `DEADLINE`.
//! * **Malformed input** — any corrupt frame (bad CRC, truncation, bogus
//!   length, unknown op) yields a typed error frame, never a panic or hang,
//!   and the connection survives every error whose frame boundary is known;
//!   the protocol-conformance suite pins the full op × corruption matrix.
//! * **Graceful drain** — shutdown closes the listener, lets in-flight
//!   requests complete, and refuses new work with `SHUTTING_DOWN`.
//!
//! Everything is observable through the `serve.*` telemetry counters and a
//! `METRICS` request op returning the schema-1 JSON report. The
//! [`loadgen`] module is the matching measurement client: a closed-loop
//! throughput/latency benchmark (`BENCH_serve.json`) and an open-loop
//! latency-vs-offered-load + cache-hit-ratio sweep (`BENCH_load.json`).

pub mod cache;
pub mod client;
pub mod codec;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod sys;

pub use cache::{CacheKey, InsertOutcome, ResultCache};
pub use client::{Client, PipelinedClient, RequestError};
pub use codec::{by_kind, by_name, by_tag, Codec, CODECS};
pub use loadgen::{
    arrival_schedule_us, counter_value, render_bench_json, render_load_json, run_cache_point,
    run_loadgen, run_loadgen_multi, run_open_loop, BenchMeta, CachePoint, LoadPoint,
    LoadgenOptions, LoadgenReport, OpenLoopOptions, WorkItem,
};
pub use protocol::{CompressRequest, ErrorCode, Frame, FrameError, Op, ParseOutcome};
pub use server::{serve, ServeOptions, ServerHandle};
