#![warn(missing_docs)]

//! `codense serve` — a long-lived TCP batch-compression service.
//!
//! The paper's compressor is a one-shot post-compilation tool; this crate
//! puts the same pipeline behind a concurrent, fault-tolerant front end so
//! its robustness and latency become measurable. A server
//! ([`server::serve`]) accepts length-prefixed, CRC-checked binary frames
//! ([`protocol`]) carrying a serialized `ObjectModule` plus compression
//! parameters, compresses on a bounded worker pool, and answers with the
//! `.cdns` container bytes — **byte-identical** to an in-process
//! [`Compressor::compress`](codense_core::Compressor) + `container::serialize`
//! of the same module, pinned by the integration tests.
//!
//! Robustness contract:
//!
//! * **Backpressure** — the work queue is bounded (`--queue-depth`); when it
//!   is full the server answers `BUSY` immediately instead of queueing
//!   without bound.
//! * **Deadlines** — per-connection socket read/write timeouts and a
//!   per-request completion deadline (`--timeout-ms`); an expired request
//!   answers `DEADLINE`.
//! * **Malformed input** — any corrupt frame (bad CRC, truncation, bogus
//!   length, unknown op) yields a typed error frame, never a panic or hang;
//!   the malformed-frame battery reuses the fuzz crate's corruption
//!   patterns.
//! * **Graceful drain** — shutdown lets in-flight requests complete while
//!   new work is refused with `SHUTTING_DOWN`.
//!
//! Everything is observable through the `serve.*` telemetry counters and a
//! `METRICS` request op returning the schema-1 JSON report. The
//! [`loadgen`] module is the matching measurement client: N concurrent
//! connections, a fixed request count, and a throughput + latency-quantile
//! report (`BENCH_serve.json`).

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, RequestError};
pub use loadgen::{render_bench_json, run_loadgen, BenchMeta, LoadgenOptions, LoadgenReport};
pub use protocol::{CompressRequest, ErrorCode, FrameError, Op};
pub use server::{serve, ServeOptions, ServerHandle};
