//! The content-addressed result cache: module bytes + compression
//! parameters → compressed container, bounded by a byte budget with LRU
//! eviction.
//!
//! Repeat-heavy serve traffic (the access-pattern skew the embedded-
//! compression literature leans on) makes the same modules arrive over and
//! over; a hit turns a multi-millisecond compression into a hash lookup.
//! Keys are *content-addressed*: an FNV-1a 64 hash of the raw module bytes
//! plus every parameter that changes the output (codec tag, entry-length
//! cap, codeword cap) and the module length as a cheap second check. The
//! cached value is the exact `.cdns` container a fresh compression would
//! produce, so a hit is byte-identical to a miss — the cache property
//! suite pins this against in-process compression.
//!
//! All cache operations happen on the reactor thread, which is what makes
//! the `serve.cache.{hits,misses,evictions}` counters deterministic for a
//! sequential client at any worker count: lookup order is arrival order,
//! never worker-scheduling order. The methods therefore take `&mut self`
//! and stay lock-free; they return what happened and the *caller* bumps
//! the global counters.

use std::collections::HashMap;

/// FNV-1a 64-bit over a byte slice — the content half of a [`CacheKey`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What a compression result is addressed by: the content hash plus every
/// request parameter that changes the output bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a 64 of the serialized module bytes.
    pub content: u64,
    /// Length of the module bytes (cheap collision backstop).
    pub len: u32,
    /// Codec registry tag.
    pub codec: u8,
    /// Selector wire byte (0 greedy, 1 refine) — the two produce different
    /// containers for the same module, so they must not share an entry.
    pub selector: u8,
    /// Maximum instructions per dictionary entry.
    pub max_entry_len: u16,
    /// Dictionary size cap (0 = the encoding's full space).
    pub max_codewords: u32,
}

impl CacheKey {
    /// Builds the key for one request.
    pub fn new(
        codec: u8,
        selector: u8,
        max_entry_len: u16,
        max_codewords: u32,
        module: &[u8],
    ) -> CacheKey {
        CacheKey {
            content: fnv1a(module),
            len: module.len() as u32,
            codec,
            selector,
            max_entry_len,
            max_codewords,
        }
    }
}

/// What [`ResultCache::insert`] did, for the caller's telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Entries evicted to make room (0 when none).
    pub evicted: usize,
    /// Whether the value was stored (false: larger than the whole budget,
    /// or the budget is 0 — the cache is disabled).
    pub stored: bool,
}

const NONE: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: CacheKey,
    data: Vec<u8>,
    prev: usize,
    next: usize,
}

/// A bounded-byte LRU map from [`CacheKey`] to compressed container bytes.
///
/// Implemented as a slab of entries threaded on an intrusive doubly-linked
/// recency list (head = most recent) plus a `HashMap` index, so lookup,
/// touch, insert, and evict are all O(1). The byte budget counts cached
/// *values* only; an over-budget insert evicts from the tail until it
/// fits, and a value bigger than the entire budget is simply not cached.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    budget: usize,
}

impl ResultCache {
    /// An empty cache with the given byte budget (0 disables caching).
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            bytes: 0,
            budget,
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of cached values currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Looks up a key; a hit moves the entry to the front of the recency
    /// list and returns the cached container bytes.
    pub fn get(&mut self, key: &CacheKey) -> Option<&[u8]> {
        let &slot = self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(&self.slab[slot].data)
    }

    /// Inserts (or refreshes) a key. Evicts least-recently-used entries
    /// until the value fits the budget; a value larger than the whole
    /// budget is not cached at all.
    pub fn insert(&mut self, key: CacheKey, data: Vec<u8>) -> InsertOutcome {
        let mut evicted = 0;
        // Refresh: drop the old value first so its bytes don't count
        // against the budget while making room for the new one.
        if let Some(&slot) = self.map.get(&key) {
            self.remove_slot(slot);
        }
        if self.budget == 0 || data.len() > self.budget {
            return InsertOutcome { evicted, stored: false };
        }
        while self.bytes + data.len() > self.budget {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE, "bytes > 0 implies a tail entry");
            self.remove_slot(lru);
            evicted += 1;
        }
        self.bytes += data.len();
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry { key, data, prev: NONE, next: NONE };
                slot
            }
            None => {
                self.slab.push(Entry { key, data, prev: NONE, next: NONE });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        InsertOutcome { evicted, stored: true }
    }

    /// Keys from most- to least-recently used (test observability).
    pub fn recency_order(&self) -> Vec<CacheKey> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NONE {
            out.push(self.slab[at].key);
            at = self.slab[at].next;
        }
        out
    }

    fn remove_slot(&mut self, slot: usize) {
        self.unlink(slot);
        let entry = &mut self.slab[slot];
        self.bytes -= entry.data.len();
        entry.data = Vec::new();
        self.map.remove(&entry.key);
        self.free.push(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = NONE;
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> CacheKey {
        CacheKey::new(0, 0, 4, 0, &[n])
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_inserted_bytes() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(&key(1)).is_none());
        assert!(c.insert(key(1), vec![1, 2, 3]).stored);
        assert_eq!(c.get(&key(1)), Some(&[1, 2, 3][..]));
        assert_eq!(c.bytes(), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_first_and_get_refreshes() {
        let mut c = ResultCache::new(30);
        for n in 0..3 {
            c.insert(key(n), vec![0; 10]);
        }
        // Touch key 0 so key 1 becomes LRU.
        assert!(c.get(&key(0)).is_some());
        let out = c.insert(key(3), vec![0; 10]);
        assert_eq!(out.evicted, 1);
        assert!(c.get(&key(1)).is_none(), "key 1 was LRU and must be gone");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert!(c.bytes() <= 30);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let mut c = ResultCache::new(8);
        let out = c.insert(key(1), vec![0; 9]);
        assert!(!out.stored);
        assert_eq!(out.evicted, 0);
        assert!(c.is_empty());
        // A zero-budget cache stores nothing (cache disabled), even
        // zero-length values.
        let mut off = ResultCache::new(0);
        assert!(!off.insert(key(1), vec![]).stored);
        assert!(off.get(&key(1)).is_none());
    }

    #[test]
    fn refresh_replaces_value_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(key(1), vec![0; 40]);
        c.insert(key(2), vec![0; 40]);
        // Refreshing key 1 with a bigger value must not evict key 2:
        // 60 + 40 = 100 fits once key 1's old 40 bytes are released.
        let out = c.insert(key(1), vec![1; 60]);
        assert_eq!(out.evicted, 0);
        assert_eq!(c.bytes(), 100);
        assert_eq!(c.get(&key(1)), Some(&vec![1; 60][..]));
        assert!(c.get(&key(2)).is_some());
    }

    #[test]
    fn recency_order_is_mru_first() {
        let mut c = ResultCache::new(1024);
        for n in 0..4 {
            c.insert(key(n), vec![n]);
        }
        c.get(&key(1));
        let order = c.recency_order();
        assert_eq!(order[0], key(1));
        assert_eq!(order.last(), Some(&key(0)));
    }
}
