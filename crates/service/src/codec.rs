//! The per-request codec registry.
//!
//! Frame headers select compression by a one-byte codec tag; the registry
//! maps tags to servable encodings the way ClickHouse's
//! `CompressionCodecFactory` maps codec names to implementations. The
//! registry is deliberately wider than what is servable today: `lzw` holds
//! tag 4 with no [`EncodingKind`] behind it (the Unix Compress comparison
//! model is not randomly accessible, so it may never be), keeping the
//! registered-but-unservable error taxonomy and its conformance tests live.
//! `huffman` rode the same slot discipline at tag 3 until Huffman-coded
//! codewords landed; flipping it servable needed no protocol bump.

use codense_core::{container, Compressor, EncodingKind};
use codense_obj::ObjectModule;

use crate::protocol::{CompressRequest, ErrorCode};

/// One registry entry: a wire tag plus the encoding it routes to (when
/// servable).
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    /// The wire tag carried in a `REQ_COMPRESS` header.
    pub tag: u8,
    /// Stable registry name (CLI `--encoding` values match these).
    pub name: &'static str,
    /// The encoding behind the tag; `None` = registered, not yet servable.
    pub kind: Option<EncodingKind>,
}

/// The closed registry, indexed by tag.
pub const CODECS: [Codec; 5] = [
    Codec { tag: 0, name: "baseline", kind: Some(EncodingKind::Baseline) },
    Codec { tag: 1, name: "onebyte", kind: Some(EncodingKind::OneByte) },
    Codec { tag: 2, name: "nibble", kind: Some(EncodingKind::NibbleAligned) },
    Codec { tag: 3, name: "huffman", kind: Some(EncodingKind::Huffman) },
    Codec { tag: 4, name: "lzw", kind: None },
];

/// Resolves a wire tag; `None` for tags outside the registry.
pub fn by_tag(tag: u8) -> Option<&'static Codec> {
    CODECS.iter().find(|c| c.tag == tag)
}

/// Resolves a registry name; `None` for unknown names.
pub fn by_name(name: &str) -> Option<&'static Codec> {
    CODECS.iter().find(|c| c.name == name)
}

/// The registry entry serving an encoding (every [`EncodingKind`] has one).
pub fn by_kind(kind: EncodingKind) -> &'static Codec {
    CODECS.iter().find(|c| c.kind == Some(kind)).expect("every encoding is registered")
}

/// Runs one decoded request through its codec: deserialize → validate →
/// compress → serialize, every failure a typed error code plus message.
/// This is the worker-side entry point; the reactor never compresses.
pub fn process(req: &CompressRequest) -> Result<Vec<u8>, (ErrorCode, String)> {
    let module =
        codense_obj::deserialize(&req.module).map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    module.validate().map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    compress_with(by_kind(req.encoding), &module, req)
}

fn compress_with(
    codec: &Codec,
    module: &ObjectModule,
    req: &CompressRequest,
) -> Result<Vec<u8>, (ErrorCode, String)> {
    // Decode already rejects unservable tags, but a registry edit or a new
    // call path must hit a hard typed error here, not undefined behaviour
    // in release builds (this was a `debug_assert!`).
    if codec.kind.is_none() {
        return Err((
            ErrorCode::CompressFailed,
            format!("codec `{}` is registered but not servable", codec.name),
        ));
    }
    let compressed = Compressor::new(req.config())
        .with_selector(req.selector)
        .compress(module)
        .map_err(|e| (ErrorCode::CompressFailed, e.to_string()))?;
    Ok(container::serialize(&compressed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tags_are_dense_and_names_unique() {
        for (i, c) in CODECS.iter().enumerate() {
            assert_eq!(c.tag as usize, i, "tags are the array index");
            assert_eq!(by_tag(c.tag).unwrap().name, c.name);
            assert_eq!(by_name(c.name).unwrap().tag, c.tag);
        }
        assert!(by_tag(99).is_none());
        assert!(by_name("arith").is_none());
    }

    #[test]
    fn every_encoding_has_a_codec() {
        for kind in [
            EncodingKind::Baseline,
            EncodingKind::OneByte,
            EncodingKind::NibbleAligned,
            EncodingKind::Huffman,
        ] {
            assert_eq!(by_kind(kind).kind, Some(kind));
        }
    }

    #[test]
    fn huffman_is_servable() {
        let c = by_name("huffman").unwrap();
        assert_eq!(c.tag, 3);
        assert_eq!(c.kind, Some(EncodingKind::Huffman));
    }

    #[test]
    fn unservable_codec_is_a_hard_typed_error() {
        let lzw = by_name("lzw").unwrap();
        assert!(lzw.kind.is_none());
        let module = ObjectModule::new("t");
        let req = CompressRequest {
            encoding: EncodingKind::Baseline, // ignored: the codec gates first
            selector: codense_core::SelectorKind::Greedy,
            max_entry_len: 4,
            max_codewords: 0,
            module: codense_obj::serialize(&module),
        };
        let (code, msg) = compress_with(lzw, &module, &req).unwrap_err();
        assert_eq!(code, ErrorCode::CompressFailed);
        assert!(msg.contains("not servable"), "{msg}");
    }
}
