//! The per-request codec registry.
//!
//! Frame headers select compression by a one-byte codec tag; the registry
//! maps tags to servable encodings the way ClickHouse's
//! `CompressionCodecFactory` maps codec names to implementations. The
//! registry is deliberately wider than what is servable today: `huffman`
//! holds tag 3 with no [`EncodingKind`] behind it yet, so the wire format,
//! the error taxonomy, and the conformance tests are already in place when
//! Huffman-coded codewords land (a `RESP_ERR COMPRESS_FAILED` today, a
//! container tomorrow — no protocol bump).

use codense_core::{container, Compressor, EncodingKind};
use codense_obj::ObjectModule;

use crate::protocol::{CompressRequest, ErrorCode};

/// One registry entry: a wire tag plus the encoding it routes to (when
/// servable).
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    /// The wire tag carried in a `REQ_COMPRESS` header.
    pub tag: u8,
    /// Stable registry name (CLI `--encoding` values match these).
    pub name: &'static str,
    /// The encoding behind the tag; `None` = registered, not yet servable.
    pub kind: Option<EncodingKind>,
}

/// The closed registry, indexed by tag.
pub const CODECS: [Codec; 4] = [
    Codec { tag: 0, name: "baseline", kind: Some(EncodingKind::Baseline) },
    Codec { tag: 1, name: "onebyte", kind: Some(EncodingKind::OneByte) },
    Codec { tag: 2, name: "nibble", kind: Some(EncodingKind::NibbleAligned) },
    Codec { tag: 3, name: "huffman", kind: None },
];

/// Resolves a wire tag; `None` for tags outside the registry.
pub fn by_tag(tag: u8) -> Option<&'static Codec> {
    CODECS.iter().find(|c| c.tag == tag)
}

/// Resolves a registry name; `None` for unknown names.
pub fn by_name(name: &str) -> Option<&'static Codec> {
    CODECS.iter().find(|c| c.name == name)
}

/// The registry entry serving an encoding (every [`EncodingKind`] has one).
pub fn by_kind(kind: EncodingKind) -> &'static Codec {
    CODECS.iter().find(|c| c.kind == Some(kind)).expect("every encoding is registered")
}

/// Runs one decoded request through its codec: deserialize → validate →
/// compress → serialize, every failure a typed error code plus message.
/// This is the worker-side entry point; the reactor never compresses.
pub fn process(req: &CompressRequest) -> Result<Vec<u8>, (ErrorCode, String)> {
    let module =
        codense_obj::deserialize(&req.module).map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    module.validate().map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    compress_with(by_kind(req.encoding), &module, req)
}

fn compress_with(
    codec: &Codec,
    module: &ObjectModule,
    req: &CompressRequest,
) -> Result<Vec<u8>, (ErrorCode, String)> {
    debug_assert!(codec.kind.is_some(), "unservable codecs are rejected at decode time");
    let compressed = Compressor::new(req.config())
        .compress(module)
        .map_err(|e| (ErrorCode::CompressFailed, e.to_string()))?;
    Ok(container::serialize(&compressed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tags_are_dense_and_names_unique() {
        for (i, c) in CODECS.iter().enumerate() {
            assert_eq!(c.tag as usize, i, "tags are the array index");
            assert_eq!(by_tag(c.tag).unwrap().name, c.name);
            assert_eq!(by_name(c.name).unwrap().tag, c.tag);
        }
        assert!(by_tag(99).is_none());
        assert!(by_name("lzw").is_none());
    }

    #[test]
    fn every_encoding_has_a_codec() {
        for kind in [EncodingKind::Baseline, EncodingKind::OneByte, EncodingKind::NibbleAligned] {
            assert_eq!(by_kind(kind).kind, Some(kind));
        }
    }

    #[test]
    fn huffman_is_registered_without_an_encoding() {
        let c = by_name("huffman").unwrap();
        assert_eq!(c.tag, 3);
        assert!(c.kind.is_none());
    }
}
