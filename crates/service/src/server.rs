//! The batch-compression server: bounded work queue, worker pool, and
//! per-connection frame loop.
//!
//! Threading model:
//!
//! * one **acceptor** thread owns the listener and spawns a thread per
//!   connection;
//! * `jobs` **worker** threads share a bounded [`sync_channel`] of
//!   compression jobs — the queue depth is the backpressure bound, and a
//!   full queue answers `BUSY` instead of blocking;
//! * each **connection** thread reads frames under a socket read timeout,
//!   serves `PING`/`METRICS`/`SHUTDOWN` inline, and for `COMPRESS` enqueues
//!   a job and waits for its result with a completion deadline.
//!
//! Graceful drain: shutdown flips a flag and wakes the acceptor with a
//! self-connection. The acceptor stops accepting, joins every connection
//! thread (each finishes its in-flight request, then refuses new work with
//! `SHUTTING_DOWN`; idle connections expire with their read timeout), then
//! drops the job channel so the workers drain the queue and exit.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use codense_core::telemetry;
use codense_core::{container, Compressor};

use crate::protocol::{encode_error, read_frame, write_frame, CompressRequest, ErrorCode, Op};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Compression worker threads.
    pub jobs: usize,
    /// Bounded work-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Socket read/write timeout and per-request completion deadline.
    pub timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { addr: "127.0.0.1:0".into(), jobs: 1, queue_depth: 32, timeout_ms: 10_000 }
    }
}

/// One queued compression request; the result travels back over a oneshot
/// channel to the connection that enqueued it.
struct Job {
    payload: Vec<u8>,
    resp: SyncSender<Result<Vec<u8>, (ErrorCode, String)>>,
}

#[derive(Debug)]
struct Shared {
    shutting_down: AtomicBool,
    /// Jobs currently sitting in the queue (not yet dequeued by a worker).
    depth: AtomicU64,
}

impl Shared {
    /// Flips the shutdown flag and wakes the acceptor (blocked in
    /// `accept`) with a throwaway self-connection.
    fn begin_shutdown(&self, addr: SocketAddr) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        }
    }
}

/// A running server. Dropping the handle shuts it down gracefully.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain and blocks until every in-flight request
    /// has completed and all threads have exited.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown(self.addr);
        self.join_threads();
    }

    /// Blocks until the server shuts down (via a `SHUTDOWN` frame or
    /// [`ServerHandle::shutdown`] from another thread), then drains.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown(self.addr);
        self.join_threads();
    }
}

/// Binds the listener and starts the acceptor and worker threads. Returns
/// once the server is accepting connections.
pub fn serve(opts: &ServeOptions) -> std::io::Result<ServerHandle> {
    let listener =
        TcpListener::bind(opts.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::other(format!("unresolvable address {}", opts.addr))
        })?)?;
    let addr = listener.local_addr()?;
    let shared =
        Arc::new(Shared { shutting_down: AtomicBool::new(false), depth: AtomicU64::new(0) });

    let (tx, rx) = sync_channel::<Job>(opts.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..opts.jobs.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("codense-worker-{i}"))
                .spawn(move || worker_loop(&rx, &shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        let timeout = Duration::from_millis(opts.timeout_ms.max(1));
        std::thread::Builder::new()
            .name("codense-acceptor".into())
            .spawn(move || acceptor_loop(&listener, addr, &shared, &tx, timeout))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle { addr, shared, acceptor: Some(acceptor), workers })
}

fn acceptor_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    shared: &Arc<Shared>,
    tx: &SyncSender<Job>,
    timeout: Duration,
) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let tx = tx.clone();
        let shared = Arc::clone(shared);
        let conn = std::thread::Builder::new()
            .name("codense-conn".into())
            .spawn(move || handle_connection(stream, addr, &shared, &tx, timeout))
            .expect("spawn connection thread");
        conns.push(conn);
        conns.retain(|h| !h.is_finished());
    }
    // Drain: every connection finishes its in-flight request (idle ones
    // expire with their read timeout), then the workers see the channel
    // close and exit after emptying the queue.
    for conn in conns {
        let _ = conn.join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Holding the lock only while blocked on `recv` serializes dequeue,
        // not processing: the lock drops as soon as a job is claimed.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drained
        };
        shared.depth.fetch_sub(1, Ordering::SeqCst);
        // The library's no-panic policy is pinned by the fuzz crate;
        // catch_unwind is defense in depth so one bad request can never
        // take the worker (and with it the whole pool) down.
        let result = catch_unwind(AssertUnwindSafe(|| process(&job.payload)))
            .unwrap_or_else(|_| Err((ErrorCode::CompressFailed, "internal panic".into())));
        let _ = job.resp.send(result); // requester may have hit its deadline
    }
}

/// Decode → validate → compress → serialize; every failure is a typed
/// error code plus message.
fn process(payload: &[u8]) -> Result<Vec<u8>, (ErrorCode, String)> {
    let req = CompressRequest::decode(payload).map_err(|e| (ErrorCode::BadFrame, e))?;
    let module =
        codense_obj::deserialize(&req.module).map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    module.validate().map_err(|e| (ErrorCode::BadModule, e.to_string()))?;
    let compressed = Compressor::new(req.config())
        .compress(&module)
        .map_err(|e| (ErrorCode::CompressFailed, e.to_string()))?;
    Ok(container::serialize(&compressed))
}

/// Writes a frame, counting the bytes it puts on the wire.
///
/// The counter is bumped *before* the write: a client that has read this
/// response — and then snapshots METRICS over another connection — must
/// already observe it in `serve.bytes_out`, or the counters section loses
/// its determinism under a sequential client.
fn send(stream: &mut impl Write, op: Op, payload: &[u8]) -> std::io::Result<()> {
    telemetry::SERVE_BYTES_OUT.add(4 + 1 + payload.len() as u64 + 4);
    write_frame(stream, op, payload).map(|_| ())
}

fn send_err(stream: &mut impl Write, code: ErrorCode, msg: &str) -> std::io::Result<()> {
    send(stream, Op::RespErr, &encode_error(code, msg))
}

fn handle_connection(
    stream: TcpStream,
    addr: SocketAddr,
    shared: &Shared,
    tx: &SyncSender<Job>,
    timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        let (op, payload, nbytes) = match read_frame(&mut &stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close
            Err(e) => {
                // A malformed frame gets a typed error; the connection then
                // closes (resynchronizing an arbitrary byte stream is not
                // worth guessing at). Socket errors — including the read
                // timeout that bounds idle connections — just close.
                if let Some(code) = e.response_code() {
                    telemetry::SERVE_FRAMES_BAD.inc();
                    let _ = send_err(&mut stream, code, &e.to_string());
                }
                return;
            }
        };
        telemetry::SERVE_BYTES_IN.add(nbytes);
        let result = match op {
            Op::ReqPing => send(&mut stream, Op::RespPong, b""),
            Op::ReqMetrics => {
                send(&mut stream, Op::RespMetrics, telemetry::metrics_json("serve").as_bytes())
            }
            Op::ReqShutdown => {
                let _ = send(&mut stream, Op::RespPong, b"");
                shared.begin_shutdown(addr);
                return;
            }
            Op::ReqCompress => handle_compress(&mut stream, shared, tx, payload, timeout),
            // A response op arriving at the server is a protocol violation.
            Op::RespOk | Op::RespMetrics | Op::RespPong | Op::RespErr => {
                telemetry::SERVE_FRAMES_BAD.inc();
                let _ = send_err(&mut stream, ErrorCode::BadFrame, "response op sent to server");
                return;
            }
        };
        if result.is_err() {
            return; // write failed or timed out: drop the connection
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            return; // in-flight request done; drain closes the connection
        }
    }
}

fn handle_compress(
    stream: &mut TcpStream,
    shared: &Shared,
    tx: &SyncSender<Job>,
    payload: Vec<u8>,
    timeout: Duration,
) -> std::io::Result<()> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return send_err(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let (rtx, rrx) = sync_channel(1);
    // Reserve the depth slot *before* the send: the worker's decrement at
    // dequeue must always observe the increment, or the gauge underflows.
    let depth = shared.depth.fetch_add(1, Ordering::SeqCst) + 1;
    match tx.try_send(Job { payload, resp: rtx }) {
        Ok(()) => {
            telemetry::SERVE_REQUESTS_ACCEPTED.inc();
            telemetry::SERVE_QUEUE_HIGH_WATER.record_max(depth);
            match rrx.recv_timeout(timeout) {
                Ok(Ok(container)) => {
                    telemetry::SERVE_REQUESTS_OK.inc();
                    send(stream, Op::RespOk, &container)
                }
                Ok(Err((code, msg))) => {
                    telemetry::SERVE_REQUESTS_FAILED.inc();
                    send_err(stream, code, &msg)
                }
                Err(_) => {
                    telemetry::SERVE_REQUESTS_FAILED.inc();
                    send_err(stream, ErrorCode::Deadline, "request missed its deadline")
                }
            }
        }
        Err(TrySendError::Full(_)) => {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            telemetry::SERVE_REQUESTS_BUSY.inc();
            send_err(stream, ErrorCode::Busy, "work queue is full")
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            send_err(stream, ErrorCode::ShuttingDown, "server is draining")
        }
    }
}
