//! The event-driven batch-compression server: a `poll(2)` reactor with
//! per-connection state machines, request pipelining, a content-addressed
//! result cache, and a worker pool behind a completion queue.
//!
//! Threading model:
//!
//! * one **reactor** thread owns the (nonblocking) listener and every
//!   connection. Connections are plain state machines — read-accumulate →
//!   parse frame → dispatch → write-drain — so thousands of idle
//!   connections cost a few pollfd entries each, no threads;
//! * `jobs` **worker** threads share a bounded [`sync_channel`] of
//!   compression jobs (the queue depth is the backpressure bound; a full
//!   queue answers `BUSY`). A finished job goes onto a completion queue and
//!   the worker wakes the reactor through a **self-pipe** — the reactor is
//!   never blocked on anything but `poll`.
//!
//! Requests are **pipelined**: a connection may have many compressions in
//! flight, identified by the frame's request id; responses are written in
//! completion order, which may differ from request order. Inline ops
//! (`PING`, `METRICS`, cache hits) are answered in arrival order.
//!
//! The **result cache** ([`crate::cache`]) is owned by the reactor thread,
//! so every lookup and insert happens in deterministic arrival order —
//! worker scheduling can never change the `serve.cache.*` counters seen by
//! a sequential client.
//!
//! Graceful drain: a `SHUTDOWN` frame (or [`ServerHandle::shutdown`]) flips
//! a flag and wakes the reactor; the listener closes, new compressions are
//! refused with `SHUTTING_DOWN`, in-flight work completes and flushes, and
//! each connection closes as soon as it quiesces. When the last connection
//! is gone the reactor drops the job channel so the workers drain and exit.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use codense_core::telemetry;
use codense_core::SelectorKind;

use crate::cache::{CacheKey, ResultCache};
use crate::codec;
use crate::protocol::{
    encode_error, encode_frame, parse_frame, CompressRequest, DecodeError, ErrorCode, Frame, Op,
    ParseOutcome,
};
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Compression worker threads.
    pub jobs: usize,
    /// Bounded work-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Per-request completion deadline in milliseconds.
    pub timeout_ms: u64,
    /// Result-cache byte budget; 0 disables the cache.
    pub cache_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            jobs: 1,
            queue_depth: 32,
            timeout_ms: 10_000,
            cache_bytes: 64 << 20,
        }
    }
}

/// One queued compression job, already decoded by the reactor.
struct Job {
    token: usize,
    gen: u64,
    request_id: u32,
    request: CompressRequest,
    key: CacheKey,
}

/// A finished job traveling back to the reactor.
struct Completion {
    token: usize,
    gen: u64,
    request_id: u32,
    key: CacheKey,
    result: Result<Vec<u8>, (ErrorCode, String)>,
}

struct Shared {
    shutting_down: AtomicBool,
    /// Jobs currently sitting in the queue (not yet dequeued by a worker).
    depth: AtomicU64,
    /// The self-pipe write end: one byte = "reactor, look around".
    wake: Mutex<std::io::PipeWriter>,
}

impl Shared {
    fn wake(&self) {
        // The reader can only be gone during teardown; a failed wake is
        // then irrelevant.
        let _ = self.wake.lock().unwrap().write(&[1]);
    }

    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            self.wake();
        }
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shutting_down", &self.shutting_down)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// A running server. Dropping the handle shuts it down gracefully.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain and blocks until every in-flight request
    /// has completed and all threads have exited.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down (via a `SHUTDOWN` frame or
    /// [`ServerHandle::shutdown`] from another thread), then drains.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

/// Binds the listener and starts the reactor and worker threads. Returns
/// once the server is accepting connections.
pub fn serve(opts: &ServeOptions) -> std::io::Result<ServerHandle> {
    let listener =
        TcpListener::bind(opts.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::other(format!("unresolvable address {}", opts.addr))
        })?)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let (pipe_r, pipe_w) = std::io::pipe()?;
    let shared = Arc::new(Shared {
        shutting_down: AtomicBool::new(false),
        depth: AtomicU64::new(0),
        wake: Mutex::new(pipe_w),
    });
    let completions = Arc::new(Mutex::new(VecDeque::new()));

    let (tx, rx) = sync_channel::<Job>(opts.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..opts.jobs.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name(format!("codense-worker-{i}"))
                .spawn(move || worker_loop(&rx, &shared, &completions))
                .expect("spawn worker")
        })
        .collect();

    let reactor = {
        let shared = Arc::clone(&shared);
        let reactor = Reactor {
            listener: Some(listener),
            pipe: pipe_r,
            shared,
            completions,
            tx,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            cache: ResultCache::new(opts.cache_bytes),
            timeout: Duration::from_millis(opts.timeout_ms.max(1)),
        };
        std::thread::Builder::new()
            .name("codense-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor")
    };

    Ok(ServerHandle { addr, shared, reactor: Some(reactor), workers })
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    shared: &Shared,
    completions: &Mutex<VecDeque<Completion>>,
) {
    loop {
        // Holding the lock only while blocked on `recv` serializes dequeue,
        // not processing: the lock drops as soon as a job is claimed.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drained
        };
        shared.depth.fetch_sub(1, Ordering::SeqCst);
        // The library's no-panic policy is pinned by the fuzz crate;
        // catch_unwind is defense in depth so one bad request can never
        // take the worker (and with it the whole pool) down.
        let result = catch_unwind(AssertUnwindSafe(|| codec::process(&job.request)))
            .unwrap_or_else(|_| Err((ErrorCode::CompressFailed, "internal panic".into())));
        completions.lock().unwrap().push_back(Completion {
            token: job.token,
            gen: job.gen,
            request_id: job.request_id,
            key: job.key,
            result,
        });
        shared.wake();
    }
}

/// A connection's write buffer may not grow past this before the server
/// gives up on the peer (it is not reading its responses).
const MAX_WRITE_BACKLOG: usize = 128 << 20;

/// At most this many bytes are read from one connection per reactor
/// iteration, so a firehose peer cannot starve the others.
const READ_QUANTUM: usize = 256 << 10;

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// In-flight compressions: request id → dispatch time.
    in_flight: HashMap<u32, Instant>,
    /// Peer EOF seen (or fatal protocol error): no more reads.
    read_closed: bool,
    /// Close as soon as responses are flushed and in-flight work is done.
    close_after_flush: bool,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// Appends a response frame to the connection's write buffer, counting the
/// bytes toward `serve.bytes_out` at queue time (before any write reaches
/// the wire — a client that has *read* a response must already observe it
/// in a later METRICS snapshot).
fn respond(conn: &mut Conn, op: Op, request_id: u32, payload: &[u8]) {
    let frame = encode_frame(op, request_id, payload);
    telemetry::SERVE_BYTES_OUT.add(frame.len() as u64);
    conn.wbuf.extend_from_slice(&frame);
}

fn respond_err(conn: &mut Conn, request_id: u32, code: ErrorCode, msg: &str) {
    respond(conn, Op::RespErr, request_id, &encode_error(code, msg));
}

enum Token {
    Pipe,
    Listener,
    Conn(usize),
}

struct Reactor {
    listener: Option<TcpListener>,
    pipe: std::io::PipeReader,
    shared: Arc<Shared>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    tx: SyncSender<Job>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    cache: ResultCache,
    timeout: Duration,
}

impl Reactor {
    fn run(mut self) {
        let mut scratch = vec![0u8; 64 << 10];
        loop {
            let draining = self.shared.shutting_down.load(Ordering::SeqCst);
            if draining && self.listener.is_some() {
                // Closing the listener is what makes new connections be
                // *refused*, not merely ignored.
                self.listener = None;
            }

            let (mut fds, tokens) = self.build_poll_set(draining);
            let timeout = self.poll_timeout(draining);
            if let Err(e) = poll_fds(&mut fds, timeout) {
                // Unreachable in practice (EINTR is retried inside); avoid
                // a hot error loop if it ever happens.
                debug_assert!(false, "poll failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }

            // Self-pipe first: consume wake bytes, then the completions
            // they announce. Completions are drained unconditionally — a
            // missed wake byte must never strand a finished job.
            for (fd, token) in fds.iter().zip(&tokens) {
                if matches!(token, Token::Pipe) && fd.readable() {
                    let _ = self.pipe.read(&mut scratch);
                }
            }
            self.apply_completions();

            for (fd, token) in fds.iter().zip(&tokens) {
                match token {
                    Token::Listener if fd.readable() => self.accept_ready(),
                    Token::Conn(i) if fd.readable() => {
                        self.conn_read(*i, &mut scratch);
                    }
                    _ => {}
                }
            }

            // Opportunistic flush of every connection with queued output
            // (cache hits and inline responses usually fit the socket
            // buffer, saving a poll round-trip).
            for i in 0..self.conns.len() {
                self.conn_flush(i);
            }

            self.expire_deadlines();
            self.sweep_closes(draining);

            if draining && self.conns.iter().all(Option::is_none) {
                // Dropping the reactor drops `tx`; the workers then drain
                // the queue and exit. Jobs from already-closed connections
                // complete harmlessly (their completions have no one to
                // read them).
                return;
            }
        }
    }

    fn build_poll_set(&self, _draining: bool) -> (Vec<PollFd>, Vec<Token>) {
        let mut fds = Vec::with_capacity(2 + self.conns.len());
        let mut tokens = Vec::with_capacity(fds.capacity());
        fds.push(PollFd::new(&self.pipe, POLLIN));
        tokens.push(Token::Pipe);
        if let Some(listener) = &self.listener {
            fds.push(PollFd::new(listener, POLLIN));
            tokens.push(Token::Listener);
        }
        for (i, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut events = 0;
            if !conn.read_closed {
                events |= POLLIN;
            }
            if conn.pending_write() > 0 {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(&conn.stream, events));
                tokens.push(Token::Conn(i));
            }
        }
        (fds, tokens)
    }

    fn poll_timeout(&self, draining: bool) -> i32 {
        let busy = self
            .conns
            .iter()
            .flatten()
            .any(|c| !c.in_flight.is_empty() || c.pending_write() > 0 || c.read_closed);
        if draining || busy {
            // Ticks bound deadline detection and drain progress checks.
            50
        } else {
            500
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.as_ref().map(|l| l.accept()) {
                Some(Ok((stream, _peer))) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    telemetry::SERVE_CONNS_ACCEPTED.inc();
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        gen: self.next_gen,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        in_flight: HashMap::new(),
                        read_closed: false,
                        close_after_flush: false,
                    };
                    match self.free.pop() {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Some(Err(ref e)) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Some(Err(_)) | None => return,
            }
        }
    }

    /// Reads what the socket has (up to the fairness quantum), then parses
    /// and dispatches every complete frame in the buffer.
    fn conn_read(&mut self, i: usize, scratch: &mut [u8]) {
        let Some(conn) = self.conns[i].as_mut() else { return };
        let mut read = 0;
        while read < READ_QUANTUM {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    read += n;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(i);
                    return;
                }
            }
        }
        self.parse_and_dispatch(i);
    }

    fn parse_and_dispatch(&mut self, i: usize) {
        loop {
            let Some(conn) = self.conns[i].as_mut() else { return };
            match parse_frame(&conn.rbuf) {
                ParseOutcome::Incomplete => break,
                ParseOutcome::Frame { frame, consumed } => {
                    telemetry::SERVE_BYTES_IN.add(consumed as u64);
                    conn.rbuf.drain(..consumed);
                    self.dispatch(i, frame);
                }
                ParseOutcome::Bad { err, request_id, consumed } => {
                    // The frame boundary is known: answer, skip, continue.
                    telemetry::SERVE_BYTES_IN.add(consumed as u64);
                    telemetry::SERVE_FRAMES_BAD.inc();
                    conn.rbuf.drain(..consumed);
                    let code = err.response_code().unwrap_or(ErrorCode::BadFrame);
                    respond_err(conn, request_id, code, &err.to_string());
                }
                ParseOutcome::Fatal { err } => {
                    // The framing is untrustworthy: answer and close.
                    telemetry::SERVE_FRAMES_BAD.inc();
                    let code = err.response_code().unwrap_or(ErrorCode::BadFrame);
                    respond_err(conn, 0, code, &err.to_string());
                    conn.rbuf.clear();
                    conn.read_closed = true;
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        let Some(conn) = self.conns[i].as_mut() else { return };
        if conn.read_closed && !conn.rbuf.is_empty() {
            // EOF in the middle of a frame: the peer half-closed after a
            // truncated send. Answer the typed error (the peer may still
            // be reading), then close once flushed.
            telemetry::SERVE_FRAMES_BAD.inc();
            respond_err(conn, 0, ErrorCode::BadFrame, "connection closed inside a frame");
            conn.rbuf.clear();
            conn.close_after_flush = true;
        }
    }

    fn dispatch(&mut self, i: usize, frame: Frame) {
        let draining = self.shared.shutting_down.load(Ordering::SeqCst);
        match frame.op {
            Op::ReqPing => {
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond(conn, Op::RespPong, frame.request_id, b"");
            }
            Op::ReqMetrics => {
                // Render before queueing so the reported `serve.bytes_out`
                // excludes this response's own bytes (a sequential client
                // then sees a deterministic value).
                let json = telemetry::metrics_json("serve");
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond(conn, Op::RespMetrics, frame.request_id, json.as_bytes());
            }
            Op::ReqShutdown => {
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond(conn, Op::RespPong, frame.request_id, b"");
                self.shared.begin_shutdown();
            }
            Op::ReqCompress => self.dispatch_compress(i, frame.request_id, frame.payload, draining),
            // A response op arriving at the server is a protocol violation;
            // the frame was well-formed, so the connection survives.
            Op::RespOk | Op::RespMetrics | Op::RespPong | Op::RespErr => {
                telemetry::SERVE_FRAMES_BAD.inc();
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond_err(
                    conn,
                    frame.request_id,
                    ErrorCode::BadFrame,
                    "response op sent to server",
                );
            }
        }
    }

    fn dispatch_compress(&mut self, i: usize, request_id: u32, payload: Vec<u8>, draining: bool) {
        let Some(conn) = self.conns[i].as_mut() else { return };
        if draining {
            respond_err(conn, request_id, ErrorCode::ShuttingDown, "server is draining");
            return;
        }
        let request = match CompressRequest::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                let code = match e {
                    DecodeError::Malformed(_) => ErrorCode::BadFrame,
                    DecodeError::Unsupported(_) => ErrorCode::CompressFailed,
                };
                telemetry::SERVE_REQUESTS_FAILED.inc();
                respond_err(conn, request_id, code, &e.to_string());
                return;
            }
        };
        if conn.in_flight.contains_key(&request_id) {
            telemetry::SERVE_REQUESTS_FAILED.inc();
            respond_err(
                conn,
                request_id,
                ErrorCode::DuplicateId,
                "request id is already in flight on this connection",
            );
            return;
        }
        let key = CacheKey::new(
            codec::by_kind(request.encoding).tag,
            match request.selector {
                SelectorKind::Greedy => 0,
                SelectorKind::Refine => 1,
            },
            request.max_entry_len,
            request.max_codewords,
            &request.module,
        );
        if let Some(bytes) = self.cache.get(&key) {
            let bytes = bytes.to_vec();
            telemetry::SERVE_CACHE_HITS.inc();
            telemetry::SERVE_REQUESTS_ACCEPTED.inc();
            telemetry::SERVE_REQUESTS_OK.inc();
            let Some(conn) = self.conns[i].as_mut() else { return };
            respond(conn, Op::RespOk, request_id, &bytes);
            return;
        }
        telemetry::SERVE_CACHE_MISSES.inc();
        // Reserve the depth slot *before* the send: the worker's decrement
        // at dequeue must always observe the increment, or the gauge
        // underflows.
        let depth = self.shared.depth.fetch_add(1, Ordering::SeqCst) + 1;
        let gen = conn.gen;
        match self.tx.try_send(Job { token: i, gen, request_id, request, key }) {
            Ok(()) => {
                telemetry::SERVE_REQUESTS_ACCEPTED.inc();
                telemetry::SERVE_QUEUE_HIGH_WATER.record_max(depth);
                let Some(conn) = self.conns[i].as_mut() else { return };
                conn.in_flight.insert(request_id, Instant::now());
                telemetry::SERVE_PIPELINE_HIGH_WATER.record_max(conn.in_flight.len() as u64);
            }
            Err(TrySendError::Full(_)) => {
                self.shared.depth.fetch_sub(1, Ordering::SeqCst);
                telemetry::SERVE_REQUESTS_BUSY.inc();
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond_err(conn, request_id, ErrorCode::Busy, "work queue is full");
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.depth.fetch_sub(1, Ordering::SeqCst);
                let Some(conn) = self.conns[i].as_mut() else { return };
                respond_err(conn, request_id, ErrorCode::ShuttingDown, "server is draining");
            }
        }
    }

    fn apply_completions(&mut self) {
        let drained: Vec<Completion> = {
            let mut q = self.completions.lock().unwrap();
            q.drain(..).collect()
        };
        for done in drained {
            // Cache the result even when the requester is gone (deadline,
            // closed connection): the compression already happened; let
            // the next identical request profit from it.
            if let Ok(bytes) = &done.result {
                let outcome = self.cache.insert(done.key, bytes.clone());
                if outcome.stored {
                    telemetry::SERVE_CACHE_EVICTIONS.add(outcome.evicted as u64);
                    telemetry::SERVE_CACHE_BYTES_HIGH_WATER.record_max(self.cache.bytes() as u64);
                }
            }
            let Some(conn) = self.conns.get_mut(done.token).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != done.gen || conn.in_flight.remove(&done.request_id).is_none() {
                continue; // stale slot reuse, or already answered (deadline)
            }
            match done.result {
                Ok(bytes) => {
                    telemetry::SERVE_REQUESTS_OK.inc();
                    respond(conn, Op::RespOk, done.request_id, &bytes);
                }
                Err((code, msg)) => {
                    telemetry::SERVE_REQUESTS_FAILED.inc();
                    respond_err(conn, done.request_id, code, &msg);
                }
            }
        }
    }

    fn conn_flush(&mut self, i: usize) {
        let Some(conn) = self.conns[i].as_mut() else { return };
        while conn.pending_write() > 0 {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close_conn(i);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(i);
                    return;
                }
            }
        }
        if conn.pending_write() == 0 && !conn.wbuf.is_empty() {
            conn.wbuf.clear();
            conn.wpos = 0;
        } else if conn.pending_write() > MAX_WRITE_BACKLOG {
            // The peer is not reading its responses; give up on it.
            self.close_conn(i);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for i in 0..self.conns.len() {
            let Some(conn) = self.conns[i].as_mut() else { continue };
            let expired: Vec<u32> = conn
                .in_flight
                .iter()
                .filter(|(_, &t)| now.duration_since(t) > self.timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                conn.in_flight.remove(&id);
                telemetry::SERVE_REQUESTS_FAILED.inc();
                respond_err(conn, id, ErrorCode::Deadline, "request missed its deadline");
            }
        }
    }

    fn sweep_closes(&mut self, draining: bool) {
        for i in 0..self.conns.len() {
            let Some(conn) = self.conns[i].as_ref() else { continue };
            let quiesced = conn.in_flight.is_empty() && conn.pending_write() == 0;
            if quiesced && (conn.close_after_flush || conn.read_closed || draining) {
                self.close_conn(i);
            }
        }
    }

    fn close_conn(&mut self, i: usize) {
        if self.conns[i].take().is_some() {
            self.free.push(i);
        }
    }
}
