//! Thin `poll(2)` shim — the one OS interface the reactor needs that std
//! does not expose.
//!
//! The workspace builds with zero external crates, so there is no `libc` to
//! lean on; the binding is declared directly against the C ABI here, typed
//! through [`std::os::fd`] so ownership of every descriptor stays with the
//! safe wrappers (`TcpListener`, `TcpStream`, `PipeReader`) that std already
//! manages. Linux and the BSDs agree on the `struct pollfd` layout and on
//! the event-bit values used below; `nfds_t` is `unsigned long` on all of
//! them.

use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// Data is available to read (requestable and returnable).
pub const POLLIN: i16 = 0x001;
/// Writing will not block (requestable and returnable).
pub const POLLOUT: i16 = 0x004;
/// Error condition (returned only; never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (returned only; never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid (returned only; never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set, ABI-compatible with C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a bitwise-or of [`POLLIN`] /
    /// [`POLLOUT`]). The caller keeps ownership of the descriptor and must
    /// keep it open across the [`poll_fds`] call — the reactor guarantees
    /// this by borrowing from live std objects in the same scope.
    pub fn new(fd: &impl AsRawFd, events: i16) -> PollFd {
        PollFd { fd: fd.as_raw_fd(), events, revents: 0 }
    }

    /// The returned event bits of the last [`poll_fds`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Reading will make progress: data, EOF, or an error to collect.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Writing will make progress (or fail fast, which also counts).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

// `nfds_t` — `unsigned long` on Linux and the BSDs.
type Nfds = std::os::raw::c_ulong;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
}

/// Blocks until at least one entry in `fds` has a ready event or
/// `timeout_ms` elapses (`-1` = no timeout). Returns the number of entries
/// with non-zero `revents`; `EINTR` is retried internally so callers never
/// see spurious interrupts.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd entries, and every fd in it is kept open by
        // the caller for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let (reader, _writer) = std::io::pipe().unwrap();
        let mut fds = [PollFd::new(&reader, POLLIN)];
        let ready = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn poll_sees_pipe_data() {
        let (reader, mut writer) = std::io::pipe().unwrap();
        writer.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(&reader, POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable());
    }

    #[test]
    fn poll_reports_writable_pipe() {
        let (_reader, writer) = std::io::pipe().unwrap();
        let mut fds = [PollFd::new(&writer, POLLOUT)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].writable());
    }
}
