//! The serve frame protocol: length-prefixed, CRC-checked binary frames
//! with per-request correlation ids (protocol version 2).
//!
//! Wire layout of one frame (all integers big-endian, matching the `.cdm` /
//! `.cdns` formats):
//!
//! ```text
//! u32  length      covers everything after this field: op + id + payload + crc
//! u8   op          frame type (see [`Op`])
//! u32  request_id  client-chosen correlation id, echoed by the response
//! ...  payload     op-specific body
//! u32  crc         CRC-32 (IEEE) over op + request_id + payload
//! ```
//!
//! The request id is what makes pipelining work: a connection may have many
//! requests in flight, and responses — which may complete **out of order**
//! — carry the id of the request they answer. Ids must be unique among a
//! connection's in-flight requests (a reuse is answered with the typed
//! `DUPLICATE_ID` error); id `0` is legal but is also what the server
//! echoes for errors it cannot attribute to a parsed request, so clients
//! that want unambiguous attribution should start at 1.
//!
//! A `REQ_COMPRESS` payload is:
//!
//! ```text
//! u8   codec          registry tag: 0 baseline, 1 onebyte, 2 nibble, 3 huffman
//! u8   selector       0 greedy, 1 refine; other values are malformed
//! u16  max_entry_len  maximum instructions per dictionary entry
//! u32  max_codewords  0 = the encoding's full codeword space
//! ...  module         a serialized `.cdm` ObjectModule
//! ```
//!
//! (The selector byte was the must-be-zero reserved byte of early v2
//! frames; greedy = 0 keeps those frames decoding identically.)
//!
//! and the matching `RESP_OK` payload is the serialized `.cdns` container.
//! A `RESP_ERR` payload is `u8 code | u16 msg_len | msg` (see
//! [`ErrorCode`]).
//!
//! **Resynchronization contract.** The length prefix frames the stream, so
//! most malformed frames do not cost the connection: as long as the length
//! field itself is trustworthy (`<=` [`MAX_FRAME`]), the server can skip
//! exactly the bad frame's bytes, answer a typed `RESP_ERR`, and keep
//! parsing at the next frame boundary. Only an oversized length field (the
//! framing can no longer be trusted) or an EOF in the middle of a frame is
//! terminal for the connection. [`parse_frame`] encodes this contract in
//! its return type; the protocol-conformance suite pins it case by case.

use std::fmt;
use std::io::{self, Read, Write};

use codense_core::container::crc32;
use codense_core::{CompressionConfig, EncodingKind, SelectorKind};

use crate::codec;

/// Largest accepted frame (length field bound): 64 MiB.
pub const MAX_FRAME: u32 = 64 << 20;

/// Smallest well-formed length field: op + request id + CRC.
pub const MIN_FRAME: u32 = 1 + 4 + 4;

/// Frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Compress a module (request).
    ReqCompress = 0x01,
    /// Fetch the schema-1 telemetry JSON (request).
    ReqMetrics = 0x02,
    /// Liveness probe (request).
    ReqPing = 0x03,
    /// Begin graceful shutdown (request).
    ReqShutdown = 0x04,
    /// Compression succeeded; payload is the `.cdns` container (response).
    RespOk = 0x81,
    /// Payload is the schema-1 telemetry JSON (response).
    RespMetrics = 0x82,
    /// Liveness / shutdown acknowledgement (response).
    RespPong = 0x83,
    /// Typed failure; payload is `code | msg_len | msg` (response).
    RespErr = 0x7f,
}

impl Op {
    /// Decodes a wire op byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        match b {
            0x01 => Some(Op::ReqCompress),
            0x02 => Some(Op::ReqMetrics),
            0x03 => Some(Op::ReqPing),
            0x04 => Some(Op::ReqShutdown),
            0x81 => Some(Op::RespOk),
            0x82 => Some(Op::RespMetrics),
            0x83 => Some(Op::RespPong),
            0x7f => Some(Op::RespErr),
            _ => None,
        }
    }
}

/// Typed request-failure codes carried by [`Op::RespErr`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame failed to parse (bad CRC, truncation, unknown op, short
    /// payload), or a request body's fixed header was malformed.
    BadFrame = 1,
    /// The `.cdm` module bytes failed to deserialize or validate.
    BadModule = 2,
    /// Compression returned a typed `CompressError`, or the requested
    /// codec is registered but not yet servable.
    CompressFailed = 3,
    /// The bounded work queue is full; retry later.
    Busy = 4,
    /// The request missed its completion deadline.
    Deadline = 5,
    /// The frame length exceeds [`MAX_FRAME`].
    TooLarge = 6,
    /// The server is draining; no new work is accepted.
    ShuttingDown = 7,
    /// The request id is already in flight on this connection.
    DuplicateId = 8,
}

impl ErrorCode {
    /// Decodes a wire error-code byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::BadModule),
            3 => Some(ErrorCode::CompressFailed),
            4 => Some(ErrorCode::Busy),
            5 => Some(ErrorCode::Deadline),
            6 => Some(ErrorCode::TooLarge),
            7 => Some(ErrorCode::ShuttingDown),
            8 => Some(ErrorCode::DuplicateId),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "BAD_FRAME",
            ErrorCode::BadModule => "BAD_MODULE",
            ErrorCode::CompressFailed => "COMPRESS_FAILED",
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::TooLarge => "TOO_LARGE",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::DuplicateId => "DUPLICATE_ID",
        };
        f.write_str(s)
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including read/write timeouts and an
    /// EOF in the middle of a frame).
    Io(io::Error),
    /// The length field exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The length field is shorter than op + request id + CRC.
    TooShort(u32),
    /// The trailing CRC-32 does not match the frame body.
    BadCrc {
        /// CRC carried by the frame.
        got: u32,
        /// CRC computed over the received body.
        want: u32,
    },
    /// The op byte is not a known frame type.
    UnknownOp(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::TooShort(n) => write!(f, "frame length {n} below minimum {MIN_FRAME}"),
            FrameError::BadCrc { got, want } => {
                write!(f, "frame crc {got:#010x}, computed {want:#010x}")
            }
            FrameError::UnknownOp(b) => write!(f, "unknown frame op {b:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The error frame the server answers with for this parse failure, or
    /// `None` when the connection is beyond answering (socket error).
    pub fn response_code(&self) -> Option<ErrorCode> {
        match self {
            FrameError::Io(_) => None,
            FrameError::TooLarge(_) => Some(ErrorCode::TooLarge),
            FrameError::TooShort(_) | FrameError::BadCrc { .. } | FrameError::UnknownOp(_) => {
                Some(ErrorCode::BadFrame)
            }
        }
    }
}

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type.
    pub op: Op,
    /// The correlation id this frame carries (echoed on responses).
    pub request_id: u32,
    /// Op-specific body.
    pub payload: Vec<u8>,
}

/// Encodes one frame into a standalone byte vector.
pub fn encode_frame(op: Op, request_id: u32, payload: &[u8]) -> Vec<u8> {
    let len = 1 + 4 + payload.len() + 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(op as u8);
    frame.extend_from_slice(&request_id.to_be_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[4..]);
    frame.extend_from_slice(&crc.to_be_bytes());
    frame
}

/// Writes one frame. Returns the total bytes put on the wire.
pub fn write_frame(w: &mut impl Write, op: Op, request_id: u32, payload: &[u8]) -> io::Result<u64> {
    let frame = encode_frame(op, request_id, payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len() as u64)
}

/// Outcome of attempting to parse one frame from the front of a buffer.
///
/// This is the reactor's incremental interface: bytes accumulate in a
/// per-connection buffer and are offered to [`parse_frame`] until it
/// reports [`ParseOutcome::Incomplete`].
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a whole frame; read more bytes.
    Incomplete,
    /// A well-formed frame; `consumed` bytes were used from the buffer.
    Frame {
        /// The parsed frame.
        frame: Frame,
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// A malformed frame whose length field is still trustworthy. The
    /// caller answers with the typed error (echoing `request_id` when one
    /// survived the damage, 0 otherwise), skips `consumed` bytes, and keeps
    /// the connection: the next frame boundary is known.
    Bad {
        /// What was wrong with the frame.
        err: FrameError,
        /// Best-effort id recovered from the bad frame (0 when none).
        request_id: u32,
        /// Bytes to skip to resynchronize on the next frame boundary.
        consumed: usize,
    },
    /// The framing itself is untrustworthy (length field over
    /// [`MAX_FRAME`]): answer the typed error, then close the connection.
    Fatal {
        /// What was wrong with the stream.
        err: FrameError,
    },
}

/// Attempts to parse one frame from the front of `buf`. Never blocks and
/// never consumes implicitly — the caller drains `consumed` bytes itself.
pub fn parse_frame(buf: &[u8]) -> ParseOutcome {
    if buf.len() < 4 {
        return ParseOutcome::Incomplete;
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return ParseOutcome::Fatal { err: FrameError::TooLarge(len) };
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }
    if len < MIN_FRAME {
        // The declared (tiny) body is still skippable: resynchronize past it.
        return ParseOutcome::Bad {
            err: FrameError::TooShort(len),
            request_id: 0,
            consumed: total,
        };
    }
    let body = &buf[4..total];
    let crc_at = body.len() - 4;
    let request_id = u32::from_be_bytes(body[1..5].try_into().expect("4 bytes"));
    let got = u32::from_be_bytes(body[crc_at..].try_into().expect("4 bytes"));
    let want = crc32(&body[..crc_at]);
    if got != want {
        // `request_id` is best-effort here: the damage may have hit it.
        return ParseOutcome::Bad {
            err: FrameError::BadCrc { got, want },
            request_id,
            consumed: total,
        };
    }
    let Some(op) = Op::from_u8(body[0]) else {
        return ParseOutcome::Bad {
            err: FrameError::UnknownOp(body[0]),
            request_id,
            consumed: total,
        };
    };
    let payload = body[5..crc_at].to_vec();
    ParseOutcome::Frame { frame: Frame { op, request_id, payload }, consumed: total }
}

/// Reads one frame from a blocking stream. `Ok(None)` is a clean end of
/// stream (the peer closed between frames); any partial or corrupt frame is
/// a typed [`FrameError`]. The second tuple field is the total bytes
/// consumed from the wire.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Frame, u64)>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf).map_err(FrameError::Io)? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                let n = r.read(&mut len_buf[got..]).map_err(FrameError::Io)?;
                if n == 0 {
                    return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                got += n;
            }
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if len < MIN_FRAME {
        return Err(FrameError::TooShort(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let crc_at = body.len() - 4;
    let got = u32::from_be_bytes(body[crc_at..].try_into().expect("4 bytes"));
    let want = crc32(&body[..crc_at]);
    if got != want {
        return Err(FrameError::BadCrc { got, want });
    }
    let op = Op::from_u8(body[0]).ok_or(FrameError::UnknownOp(body[0]))?;
    let request_id = u32::from_be_bytes(body[1..5].try_into().expect("4 bytes"));
    body.truncate(crc_at);
    body.drain(..5);
    Ok(Some((Frame { op, request_id, payload: body }, 4 + len as u64)))
}

/// Encodes an [`Op::RespErr`] payload.
pub fn encode_error(code: ErrorCode, msg: &str) -> Vec<u8> {
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(3 + msg.len());
    out.push(code as u8);
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decodes an [`Op::RespErr`] payload.
pub fn decode_error(payload: &[u8]) -> Option<(ErrorCode, String)> {
    if payload.len() < 3 {
        return None;
    }
    let code = ErrorCode::from_u8(payload[0])?;
    let len = u16::from_be_bytes([payload[1], payload[2]]) as usize;
    let msg = payload.get(3..3 + len)?;
    Some((code, String::from_utf8_lossy(msg).into_owned()))
}

/// Why a `REQ_COMPRESS` body could not be turned into work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The fixed header was malformed (answered as `BAD_FRAME`).
    Malformed(String),
    /// The codec tag names a registered codec with no servable encoding
    /// yet (answered as `COMPRESS_FAILED`).
    Unsupported(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Malformed(msg) => f.write_str(msg),
            DecodeError::Unsupported(name) => {
                write!(f, "codec `{name}` is registered but not yet servable")
            }
        }
    }
}

/// A parsed `REQ_COMPRESS` body: compression parameters plus the serialized
/// module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressRequest {
    /// Codeword encoding to compress under.
    pub encoding: EncodingKind,
    /// Dictionary selection strategy (wire byte: 0 greedy, 1 refine).
    pub selector: SelectorKind,
    /// Maximum instructions per dictionary entry.
    pub max_entry_len: u16,
    /// Dictionary size cap; 0 selects the encoding's full codeword space.
    pub max_codewords: u32,
    /// The serialized `.cdm` module.
    pub module: Vec<u8>,
}

impl CompressRequest {
    /// Encodes the request into a `REQ_COMPRESS` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let tag = codec::by_kind(self.encoding).tag;
        let mut out = Vec::with_capacity(8 + self.module.len());
        out.push(tag);
        out.push(match self.selector {
            SelectorKind::Greedy => 0,
            SelectorKind::Refine => 1,
        });
        out.extend_from_slice(&self.max_entry_len.to_be_bytes());
        out.extend_from_slice(&self.max_codewords.to_be_bytes());
        out.extend_from_slice(&self.module);
        out
    }

    /// Decodes a `REQ_COMPRESS` frame payload. Codec tags resolve through
    /// the [`codec`] registry, so a registered-but-not-servable codec (e.g.
    /// `huffman`) is distinguished from an unknown tag.
    pub fn decode(payload: &[u8]) -> Result<CompressRequest, DecodeError> {
        if payload.len() < 8 {
            return Err(DecodeError::Malformed(format!(
                "compress request header needs 8 bytes, got {}",
                payload.len()
            )));
        }
        let codec = codec::by_tag(payload[0])
            .ok_or_else(|| DecodeError::Malformed(format!("unknown codec tag {}", payload[0])))?;
        let encoding = codec.kind.ok_or(DecodeError::Unsupported(codec.name))?;
        let selector = match payload[1] {
            0 => SelectorKind::Greedy,
            1 => SelectorKind::Refine,
            other => {
                return Err(DecodeError::Malformed(format!(
                    "selector byte must be 0 (greedy) or 1 (refine), got {other}"
                )));
            }
        };
        let max_entry_len = u16::from_be_bytes([payload[2], payload[3]]);
        if max_entry_len == 0 {
            return Err(DecodeError::Malformed("max_entry_len must be >= 1".into()));
        }
        let max_codewords = u32::from_be_bytes(payload[4..8].try_into().expect("4 bytes"));
        Ok(CompressRequest {
            encoding,
            selector,
            max_entry_len,
            max_codewords,
            module: payload[8..].to_vec(),
        })
    }

    /// The [`CompressionConfig`] this request selects (0 codewords = the
    /// encoding's full space; the compressor clamps oversized values).
    pub fn config(&self) -> CompressionConfig {
        CompressionConfig {
            max_entry_len: self.max_entry_len as usize,
            max_codewords: if self.max_codewords == 0 {
                self.encoding.capacity()
            } else {
                self.max_codewords as usize
            },
            encoding: self.encoding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        let wrote = write_frame(&mut wire, Op::ReqCompress, 7, b"payload").unwrap();
        assert_eq!(wrote, wire.len() as u64);
        let mut r = &wire[..];
        let (frame, read) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame.op, Op::ReqCompress);
        assert_eq!(frame.request_id, 7);
        assert_eq!(frame.payload, b"payload");
        assert_eq!(read, wrote);
        // Stream is exactly consumed: next read is a clean EOF.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_agrees_with_blocking_reader() {
        let wire = encode_frame(Op::ReqPing, 42, b"abc");
        // Every strict prefix is Incomplete.
        for cut in 0..wire.len() {
            assert!(
                matches!(parse_frame(&wire[..cut]), ParseOutcome::Incomplete),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        match parse_frame(&wire) {
            ParseOutcome::Frame { frame, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(frame.op, Op::ReqPing);
                assert_eq!(frame.request_id, 42);
                assert_eq!(frame.payload, b"abc");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn parser_resynchronizes_past_a_bad_crc() {
        let mut wire = encode_frame(Op::ReqPing, 1, b"");
        let bad_at = wire.len() - 1;
        wire[bad_at] ^= 0xff; // corrupt the CRC
        let good = encode_frame(Op::ReqPing, 2, b"");
        wire.extend_from_slice(&good);
        let (bad_consumed, id) = match parse_frame(&wire) {
            ParseOutcome::Bad { err: FrameError::BadCrc { .. }, request_id, consumed } => {
                (consumed, request_id)
            }
            other => panic!("expected BadCrc, got {other:?}"),
        };
        assert_eq!(id, 1, "id is recoverable when the damage missed it");
        match parse_frame(&wire[bad_consumed..]) {
            ParseOutcome::Frame { frame, .. } => assert_eq!(frame.request_id, 2),
            other => panic!("expected the good frame after resync, got {other:?}"),
        }
    }

    #[test]
    fn parser_treats_oversized_length_as_fatal() {
        let mut wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0; 16]);
        assert!(matches!(parse_frame(&wire), ParseOutcome::Fatal { err: FrameError::TooLarge(_) }));
    }

    #[test]
    fn parser_skips_short_length_frames() {
        // length 3 < MIN_FRAME but the 3 declared bytes are skippable.
        let mut wire = 3u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[9, 9, 9]);
        let good = encode_frame(Op::ReqPing, 5, b"");
        wire.extend_from_slice(&good);
        match parse_frame(&wire) {
            ParseOutcome::Bad { err: FrameError::TooShort(3), request_id: 0, consumed } => {
                assert_eq!(consumed, 7);
                match parse_frame(&wire[consumed..]) {
                    ParseOutcome::Frame { frame, .. } => assert_eq!(frame.request_id, 5),
                    other => panic!("expected resync, got {other:?}"),
                }
            }
            other => panic!("expected TooShort, got {other:?}"),
        }
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Op::ReqPing, 3, b"").unwrap();
        for bit in 0..8 {
            for i in 4..wire.len() {
                let mut bad = wire.clone();
                bad[i] ^= 1 << bit;
                let err = read_frame(&mut &bad[..]).unwrap_err();
                assert!(
                    matches!(err, FrameError::BadCrc { .. } | FrameError::UnknownOp(_)),
                    "flip at {i}.{bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn hostile_lengths_are_typed_errors() {
        let too_large = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(read_frame(&mut &too_large[..]), Err(FrameError::TooLarge(_))));
        let too_short = 2u32.to_be_bytes();
        assert!(matches!(read_frame(&mut &too_short[..]), Err(FrameError::TooShort(2))));
        let truncated = [0, 0, 0, 64, 1, 2, 3];
        assert!(matches!(read_frame(&mut &truncated[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn compress_request_roundtrips() {
        for (encoding, selector) in [
            (EncodingKind::NibbleAligned, SelectorKind::Greedy),
            (EncodingKind::Huffman, SelectorKind::Refine),
        ] {
            let req = CompressRequest {
                encoding,
                selector,
                max_entry_len: 4,
                max_codewords: 0,
                module: vec![1, 2, 3, 4, 5],
            };
            assert_eq!(CompressRequest::decode(&req.encode()).unwrap(), req);
            assert_eq!(req.config().max_codewords, encoding.capacity());
            assert_eq!(req.config().max_entry_len, 4);
        }
    }

    #[test]
    fn lzw_tag_is_registered_but_unsupported() {
        let mut payload = vec![4u8, 0, 0, 4, 0, 0, 0, 0];
        payload.extend_from_slice(b"module");
        match CompressRequest::decode(&payload) {
            Err(DecodeError::Unsupported("lzw")) => {}
            other => panic!("expected Unsupported(lzw), got {other:?}"),
        }
        // A tag past the registry is malformed, not unsupported.
        assert!(matches!(
            CompressRequest::decode(&[99, 0, 0, 4, 0, 0, 0, 0]),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn huffman_tag_is_servable_on_the_wire() {
        let mut payload = vec![3u8, 0, 0, 4, 0, 0, 0, 0];
        payload.extend_from_slice(b"module");
        let req = CompressRequest::decode(&payload).unwrap();
        assert_eq!(req.encoding, EncodingKind::Huffman);
        assert_eq!(req.selector, SelectorKind::Greedy);
    }

    #[test]
    fn selector_byte_out_of_range_is_malformed() {
        // Byte 1 was the must-be-zero reserved byte; 0 and 1 now select,
        // anything else stays a typed BAD_FRAME.
        assert!(matches!(
            CompressRequest::decode(&[2, 2, 0, 4, 0, 0, 0, 0]),
            Err(DecodeError::Malformed(_))
        ));
        let refined = CompressRequest::decode(&[2, 1, 0, 4, 0, 0, 0, 0]).unwrap();
        assert_eq!(refined.selector, SelectorKind::Refine);
    }

    #[test]
    fn error_payloads_roundtrip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadModule,
            ErrorCode::CompressFailed,
            ErrorCode::Busy,
            ErrorCode::Deadline,
            ErrorCode::TooLarge,
            ErrorCode::ShuttingDown,
            ErrorCode::DuplicateId,
        ] {
            let payload = encode_error(code, "why it failed");
            assert_eq!(decode_error(&payload), Some((code, "why it failed".to_owned())));
        }
        assert_eq!(decode_error(&[]), None);
        assert_eq!(decode_error(&[99, 0, 0]), None, "unknown code");
    }
}
