//! The serve frame protocol: length-prefixed, CRC-checked binary frames.
//!
//! Wire layout of one frame (all integers big-endian, matching the `.cdm` /
//! `.cdns` formats):
//!
//! ```text
//! u32  length     covers everything after this field: op + payload + crc
//! u8   op         frame type (see [`Op`])
//! ...  payload    op-specific body
//! u32  crc        CRC-32 (IEEE) over op + payload
//! ```
//!
//! A `REQ_COMPRESS` payload is:
//!
//! ```text
//! u8   encoding       0 = baseline, 1 = onebyte, 2 = nibble
//! u8   reserved       must be 0
//! u16  max_entry_len  maximum instructions per dictionary entry
//! u32  max_codewords  0 = the encoding's full codeword space
//! ...  module         a serialized `.cdm` ObjectModule
//! ```
//!
//! and the matching `RESP_OK` payload is the serialized `.cdns` container.
//! An `RESP_ERR` payload is `u8 code | u16 msg_len | msg` (see
//! [`ErrorCode`]). Every malformed frame — bad magic length, oversized
//! length, CRC mismatch, short payload, unknown op — maps to a typed
//! [`FrameError`]; the server answers with an error frame and closes, it
//! never panics or hangs.

use std::fmt;
use std::io::{self, Read, Write};

use codense_core::container::crc32;
use codense_core::{CompressionConfig, EncodingKind};

/// Largest accepted frame (length field bound): 64 MiB.
pub const MAX_FRAME: u32 = 64 << 20;

/// Frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Compress a module (request).
    ReqCompress = 0x01,
    /// Fetch the schema-1 telemetry JSON (request).
    ReqMetrics = 0x02,
    /// Liveness probe (request).
    ReqPing = 0x03,
    /// Begin graceful shutdown (request).
    ReqShutdown = 0x04,
    /// Compression succeeded; payload is the `.cdns` container (response).
    RespOk = 0x81,
    /// Payload is the schema-1 telemetry JSON (response).
    RespMetrics = 0x82,
    /// Liveness / shutdown acknowledgement (response).
    RespPong = 0x83,
    /// Typed failure; payload is `code | msg_len | msg` (response).
    RespErr = 0x7f,
}

impl Op {
    /// Decodes a wire op byte.
    pub fn from_u8(b: u8) -> Option<Op> {
        match b {
            0x01 => Some(Op::ReqCompress),
            0x02 => Some(Op::ReqMetrics),
            0x03 => Some(Op::ReqPing),
            0x04 => Some(Op::ReqShutdown),
            0x81 => Some(Op::RespOk),
            0x82 => Some(Op::RespMetrics),
            0x83 => Some(Op::RespPong),
            0x7f => Some(Op::RespErr),
            _ => None,
        }
    }
}

/// Typed request-failure codes carried by [`Op::RespErr`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame failed to parse (bad CRC, truncation, unknown op, short
    /// payload).
    BadFrame = 1,
    /// The `.cdm` module bytes failed to deserialize or validate.
    BadModule = 2,
    /// Compression returned a typed `CompressError`.
    CompressFailed = 3,
    /// The bounded work queue is full; retry later.
    Busy = 4,
    /// The request missed its completion deadline.
    Deadline = 5,
    /// The frame length exceeds [`MAX_FRAME`].
    TooLarge = 6,
    /// The server is draining; no new work is accepted.
    ShuttingDown = 7,
}

impl ErrorCode {
    /// Decodes a wire error-code byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadFrame),
            2 => Some(ErrorCode::BadModule),
            3 => Some(ErrorCode::CompressFailed),
            4 => Some(ErrorCode::Busy),
            5 => Some(ErrorCode::Deadline),
            6 => Some(ErrorCode::TooLarge),
            7 => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "BAD_FRAME",
            ErrorCode::BadModule => "BAD_MODULE",
            ErrorCode::CompressFailed => "COMPRESS_FAILED",
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::TooLarge => "TOO_LARGE",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
        };
        f.write_str(s)
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including read/write timeouts).
    Io(io::Error),
    /// The length field exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The length field is shorter than op + CRC.
    TooShort(u32),
    /// The trailing CRC-32 does not match the frame body.
    BadCrc {
        /// CRC carried by the frame.
        got: u32,
        /// CRC computed over the received body.
        want: u32,
    },
    /// The op byte is not a known frame type.
    UnknownOp(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::TooShort(n) => write!(f, "frame length {n} below minimum 5"),
            FrameError::BadCrc { got, want } => {
                write!(f, "frame crc {got:#010x}, computed {want:#010x}")
            }
            FrameError::UnknownOp(b) => write!(f, "unknown frame op {b:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The error frame the server answers with for this parse failure, or
    /// `None` when the connection is beyond answering (socket error).
    pub fn response_code(&self) -> Option<ErrorCode> {
        match self {
            FrameError::Io(_) => None,
            FrameError::TooLarge(_) => Some(ErrorCode::TooLarge),
            FrameError::TooShort(_) | FrameError::BadCrc { .. } | FrameError::UnknownOp(_) => {
                Some(ErrorCode::BadFrame)
            }
        }
    }
}

/// Writes one frame. Returns the total bytes put on the wire.
pub fn write_frame(w: &mut impl Write, op: Op, payload: &[u8]) -> io::Result<u64> {
    let len = 1 + payload.len() + 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(op as u8);
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[4..]);
    frame.extend_from_slice(&crc.to_be_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len() as u64)
}

/// Reads one frame. `Ok(None)` is a clean end of stream (the peer closed
/// between frames); any partial or corrupt frame is a typed [`FrameError`].
/// The second tuple field is the total bytes consumed from the wire.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Op, Vec<u8>, u64)>, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf).map_err(FrameError::Io)? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                let n = r.read(&mut len_buf[got..]).map_err(FrameError::Io)?;
                if n == 0 {
                    return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                got += n;
            }
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if len < 5 {
        return Err(FrameError::TooShort(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let crc_at = body.len() - 4;
    let got = u32::from_be_bytes(body[crc_at..].try_into().expect("4 bytes"));
    let want = crc32(&body[..crc_at]);
    if got != want {
        return Err(FrameError::BadCrc { got, want });
    }
    let op = Op::from_u8(body[0]).ok_or(FrameError::UnknownOp(body[0]))?;
    body.truncate(crc_at);
    body.remove(0);
    Ok(Some((op, body, 4 + len as u64)))
}

/// Encodes an [`Op::RespErr`] payload.
pub fn encode_error(code: ErrorCode, msg: &str) -> Vec<u8> {
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(3 + msg.len());
    out.push(code as u8);
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decodes an [`Op::RespErr`] payload.
pub fn decode_error(payload: &[u8]) -> Option<(ErrorCode, String)> {
    if payload.len() < 3 {
        return None;
    }
    let code = ErrorCode::from_u8(payload[0])?;
    let len = u16::from_be_bytes([payload[1], payload[2]]) as usize;
    let msg = payload.get(3..3 + len)?;
    Some((code, String::from_utf8_lossy(msg).into_owned()))
}

/// A parsed `REQ_COMPRESS` body: compression parameters plus the serialized
/// module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressRequest {
    /// Codeword encoding to compress under.
    pub encoding: EncodingKind,
    /// Maximum instructions per dictionary entry.
    pub max_entry_len: u16,
    /// Dictionary size cap; 0 selects the encoding's full codeword space.
    pub max_codewords: u32,
    /// The serialized `.cdm` module.
    pub module: Vec<u8>,
}

impl CompressRequest {
    /// Encodes the request into a `REQ_COMPRESS` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let tag = match self.encoding {
            EncodingKind::Baseline => 0u8,
            EncodingKind::OneByte => 1,
            EncodingKind::NibbleAligned => 2,
        };
        let mut out = Vec::with_capacity(8 + self.module.len());
        out.push(tag);
        out.push(0); // reserved
        out.extend_from_slice(&self.max_entry_len.to_be_bytes());
        out.extend_from_slice(&self.max_codewords.to_be_bytes());
        out.extend_from_slice(&self.module);
        out
    }

    /// Decodes a `REQ_COMPRESS` frame payload.
    pub fn decode(payload: &[u8]) -> Result<CompressRequest, String> {
        if payload.len() < 8 {
            return Err(format!("compress request header needs 8 bytes, got {}", payload.len()));
        }
        let encoding = match payload[0] {
            0 => EncodingKind::Baseline,
            1 => EncodingKind::OneByte,
            2 => EncodingKind::NibbleAligned,
            other => return Err(format!("unknown encoding tag {other}")),
        };
        if payload[1] != 0 {
            return Err(format!("reserved byte must be 0, got {}", payload[1]));
        }
        let max_entry_len = u16::from_be_bytes([payload[2], payload[3]]);
        if max_entry_len == 0 {
            return Err("max_entry_len must be >= 1".into());
        }
        let max_codewords = u32::from_be_bytes(payload[4..8].try_into().expect("4 bytes"));
        Ok(CompressRequest {
            encoding,
            max_entry_len,
            max_codewords,
            module: payload[8..].to_vec(),
        })
    }

    /// The [`CompressionConfig`] this request selects (0 codewords = the
    /// encoding's full space; the compressor clamps oversized values).
    pub fn config(&self) -> CompressionConfig {
        CompressionConfig {
            max_entry_len: self.max_entry_len as usize,
            max_codewords: if self.max_codewords == 0 {
                self.encoding.capacity()
            } else {
                self.max_codewords as usize
            },
            encoding: self.encoding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        let wrote = write_frame(&mut wire, Op::ReqCompress, b"payload").unwrap();
        assert_eq!(wrote, wire.len() as u64);
        let mut r = &wire[..];
        let (op, payload, read) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(op, Op::ReqCompress);
        assert_eq!(payload, b"payload");
        assert_eq!(read, wrote);
        // Stream is exactly consumed: next read is a clean EOF.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Op::ReqPing, b"").unwrap();
        for bit in 0..8 {
            for i in 4..wire.len() {
                let mut bad = wire.clone();
                bad[i] ^= 1 << bit;
                let err = read_frame(&mut &bad[..]).unwrap_err();
                assert!(
                    matches!(err, FrameError::BadCrc { .. } | FrameError::UnknownOp(_)),
                    "flip at {i}.{bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn hostile_lengths_are_typed_errors() {
        let too_large = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(read_frame(&mut &too_large[..]), Err(FrameError::TooLarge(_))));
        let too_short = 2u32.to_be_bytes();
        assert!(matches!(read_frame(&mut &too_short[..]), Err(FrameError::TooShort(2))));
        let truncated = [0, 0, 0, 64, 1, 2, 3];
        assert!(matches!(read_frame(&mut &truncated[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn compress_request_roundtrips() {
        let req = CompressRequest {
            encoding: EncodingKind::NibbleAligned,
            max_entry_len: 4,
            max_codewords: 0,
            module: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(CompressRequest::decode(&req.encode()).unwrap(), req);
        assert_eq!(req.config().max_codewords, EncodingKind::NibbleAligned.capacity());
        assert_eq!(req.config().max_entry_len, 4);
    }

    #[test]
    fn error_payloads_roundtrip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadModule,
            ErrorCode::CompressFailed,
            ErrorCode::Busy,
            ErrorCode::Deadline,
            ErrorCode::TooLarge,
            ErrorCode::ShuttingDown,
        ] {
            let payload = encode_error(code, "why it failed");
            assert_eq!(decode_error(&payload), Some((code, "why it failed".to_owned())));
        }
        assert_eq!(decode_error(&[]), None);
        assert_eq!(decode_error(&[99, 0, 0]), None, "unknown code");
    }
}
