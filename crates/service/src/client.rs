//! Blocking client for the serve frame protocol.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_error, read_frame, write_frame, CompressRequest, ErrorCode, FrameError, Op,
};

/// Why a request got no usable answer.
#[derive(Debug)]
pub enum RequestError {
    /// The wire failed: socket error, malformed response frame, or the
    /// server closed without answering.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Rejected(ErrorCode, String),
    /// The server answered with a frame type the request cannot accept.
    Unexpected(Op),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Frame(e) => write!(f, "{e}"),
            RequestError::Rejected(code, msg) => {
                write!(f, "server rejected request: {code}: {msg}")
            }
            RequestError::Unexpected(op) => write!(f, "unexpected response frame {op:?}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<FrameError> for RequestError {
    fn from(e: FrameError) -> RequestError {
        RequestError::Frame(e)
    }
}

/// One connection to a serve instance. Requests are issued synchronously,
/// one at a time, under the configured socket timeout.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and applies `timeout_ms` as the read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout_ms: u64) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("unresolvable address"))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(timeout_ms.max(1)))?;
        let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, op: Op, payload: &[u8]) -> Result<(Op, Vec<u8>), RequestError> {
        write_frame(&mut self.stream, op, payload).map_err(FrameError::Io)?;
        match read_frame(&mut &self.stream)? {
            Some((op, payload, _)) => Ok((op, payload)),
            None => {
                Err(RequestError::Frame(FrameError::Io(std::io::ErrorKind::UnexpectedEof.into())))
            }
        }
    }

    fn expect(&mut self, req: Op, payload: &[u8], want: Op) -> Result<Vec<u8>, RequestError> {
        match self.roundtrip(req, payload)? {
            (op, payload) if op == want => Ok(payload),
            (Op::RespErr, payload) => {
                let (code, msg) = decode_error(&payload)
                    .ok_or(RequestError::Frame(FrameError::UnknownOp(Op::RespErr as u8)))?;
                Err(RequestError::Rejected(code, msg))
            }
            (op, _) => Err(RequestError::Unexpected(op)),
        }
    }

    /// Compresses a module remotely; the `Ok` bytes are the serialized
    /// `.cdns` container, byte-identical to an in-process compression.
    pub fn compress(&mut self, req: &CompressRequest) -> Result<Vec<u8>, RequestError> {
        self.expect(Op::ReqCompress, &req.encode(), Op::RespOk)
    }

    /// Fetches the server's schema-1 telemetry JSON.
    pub fn metrics(&mut self) -> Result<String, RequestError> {
        let payload = self.expect(Op::ReqMetrics, b"", Op::RespMetrics)?;
        String::from_utf8(payload)
            .map_err(|_| RequestError::Frame(FrameError::UnknownOp(Op::RespMetrics as u8)))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RequestError> {
        self.expect(Op::ReqPing, b"", Op::RespPong).map(|_| ())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), RequestError> {
        self.expect(Op::ReqShutdown, b"", Op::RespPong).map(|_| ())
    }
}
