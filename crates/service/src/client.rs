//! Clients for the serve frame protocol: a sequential [`Client`] that
//! issues one request at a time, and a [`PipelinedClient`] that decouples
//! sending from receiving so many requests can be in flight per
//! connection, matched back up by request id.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_error, read_frame, write_frame, CompressRequest, ErrorCode, Frame, FrameError, Op,
};

/// Why a request got no usable answer.
#[derive(Debug)]
pub enum RequestError {
    /// The wire failed: socket error, malformed response frame, or the
    /// server closed without answering.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Rejected(ErrorCode, String),
    /// The server answered with a frame type the request cannot accept.
    Unexpected(Op),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Frame(e) => write!(f, "{e}"),
            RequestError::Rejected(code, msg) => {
                write!(f, "server rejected request: {code}: {msg}")
            }
            RequestError::Unexpected(op) => write!(f, "unexpected response frame {op:?}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<FrameError> for RequestError {
    fn from(e: FrameError) -> RequestError {
        RequestError::Frame(e)
    }
}

fn connect_stream(addr: impl ToSocketAddrs, timeout_ms: u64) -> std::io::Result<TcpStream> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other("unresolvable address"))?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(timeout_ms.max(1)))?;
    let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One connection to a serve instance. Requests are issued synchronously,
/// one at a time, under the configured socket timeout; ids are assigned
/// internally and each response is checked against the id it answers.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u32,
}

impl Client {
    /// Connects and applies `timeout_ms` as the read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout_ms: u64) -> std::io::Result<Client> {
        Ok(Client { stream: connect_stream(addr, timeout_ms)?, next_id: 1 })
    }

    fn roundtrip(&mut self, op: Op, payload: &[u8]) -> Result<(Op, Vec<u8>), RequestError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        write_frame(&mut self.stream, op, id, payload).map_err(FrameError::Io)?;
        match read_frame(&mut &self.stream)? {
            Some((frame, _)) => {
                // A sequential client has exactly one request outstanding;
                // any other id in the answer is a server bug.
                if frame.request_id != id {
                    return Err(RequestError::Frame(FrameError::UnknownOp(frame.op as u8)));
                }
                Ok((frame.op, frame.payload))
            }
            None => {
                Err(RequestError::Frame(FrameError::Io(std::io::ErrorKind::UnexpectedEof.into())))
            }
        }
    }

    fn expect(&mut self, req: Op, payload: &[u8], want: Op) -> Result<Vec<u8>, RequestError> {
        match self.roundtrip(req, payload)? {
            (op, payload) if op == want => Ok(payload),
            (Op::RespErr, payload) => {
                let (code, msg) = decode_error(&payload)
                    .ok_or(RequestError::Frame(FrameError::UnknownOp(Op::RespErr as u8)))?;
                Err(RequestError::Rejected(code, msg))
            }
            (op, _) => Err(RequestError::Unexpected(op)),
        }
    }

    /// Compresses a module remotely; the `Ok` bytes are the serialized
    /// `.cdns` container, byte-identical to an in-process compression.
    pub fn compress(&mut self, req: &CompressRequest) -> Result<Vec<u8>, RequestError> {
        self.expect(Op::ReqCompress, &req.encode(), Op::RespOk)
    }

    /// Fetches the server's schema-1 telemetry JSON.
    pub fn metrics(&mut self) -> Result<String, RequestError> {
        let payload = self.expect(Op::ReqMetrics, b"", Op::RespMetrics)?;
        String::from_utf8(payload)
            .map_err(|_| RequestError::Frame(FrameError::UnknownOp(Op::RespMetrics as u8)))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), RequestError> {
        self.expect(Op::ReqPing, b"", Op::RespPong).map(|_| ())
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), RequestError> {
        self.expect(Op::ReqShutdown, b"", Op::RespPong).map(|_| ())
    }
}

/// A pipelining connection: the caller chooses request ids, may send many
/// frames before reading anything, and receives responses in whatever
/// order the server completes them. [`PipelinedClient::try_clone`] splits
/// the connection into an independent sender and receiver half (both halves
/// share the one socket), which is how the open-loop load generator runs a
/// send thread and a receive thread per connection.
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
}

impl PipelinedClient {
    /// Connects and applies `timeout_ms` as the read/write timeout.
    pub fn connect(addr: impl ToSocketAddrs, timeout_ms: u64) -> std::io::Result<PipelinedClient> {
        Ok(PipelinedClient { stream: connect_stream(addr, timeout_ms)? })
    }

    /// A second handle to the same connection (shared socket).
    pub fn try_clone(&self) -> std::io::Result<PipelinedClient> {
        Ok(PipelinedClient { stream: self.stream.try_clone()? })
    }

    /// Sends one frame without waiting for any response.
    pub fn send(&mut self, op: Op, request_id: u32, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.stream, op, request_id, payload).map(|_| ())
    }

    /// Sends one compression request without waiting for its response.
    pub fn send_compress(&mut self, request_id: u32, req: &CompressRequest) -> std::io::Result<()> {
        self.send(Op::ReqCompress, request_id, &req.encode())
    }

    /// Receives the next response frame, whichever request it answers.
    /// `Ok(None)` means the server closed the connection cleanly.
    pub fn recv(&mut self) -> Result<Option<Frame>, FrameError> {
        Ok(read_frame(&mut &self.stream)?.map(|(frame, _)| frame))
    }

    /// Half-closes the write side (the server sees EOF after the bytes
    /// already sent; responses still flow back).
    pub fn finish_sending(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Direct access to the underlying socket, for tests that need to
    /// write adversarial byte sequences (sub-frame chunks, torn frames).
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
