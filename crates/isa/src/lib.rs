//! The ISA abstraction the rest of `codense` is written against.
//!
//! The paper's dictionary-compression scheme (Lefurgy et al., 1997) is
//! ISA-agnostic: it needs a fixed-width 32-bit RISC with identifiable
//! PC-relative branches (never compressed, patched after layout), a set of
//! reserved escape byte patterns no legal instruction starts with, and a way
//! to synthesize an indirect-jump trampoline for branches whose displacement
//! field overflows at the compressed granularity. This crate captures exactly
//! that contract as the object-safe [`Isa`] trait, plus the [`Core`]
//! execution trait the VM's fetch/step loop drives, so `codense-core` and
//! `codense-vm` work with any backend (`codense-ppc`, `codense-mips`, …).
//!
//! Every backend targets a fixed 4-byte instruction word ([`INSN_BYTES`]);
//! branch *offsets* are exchanged in bytes, fetch-domain *addresses* in
//! nibbles (see `codense-vm`). DESIGN.md §13 spells out the full contract.

#![warn(missing_docs)]

use std::fmt;

/// Instruction width in bytes. Every [`Isa`] backend is a fixed-32-bit RISC;
/// the compressor's layout arithmetic relies on this being uniform.
pub const INSN_BYTES: u32 = 4;

/// High halfword of the overflow jump table's base address: trampolines load
/// their target from `(OVERFLOW_TABLE_HI << 16) + 4 * slot`.
pub const OVERFLOW_TABLE_HI: i16 = 0x0060;

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A load or store touched memory outside the configured size.
    MemoryFault {
        /// The faulting byte address.
        addr: u32,
    },
    /// Instruction fetch failed (bad PC or truncated stream).
    FetchFault {
        /// The faulting fetch-domain (nibble) address.
        pc: u64,
    },
    /// A trap condition fired (the kernels use it for assertions).
    Trap,
    /// An instruction outside the executable subset was fetched.
    IllegalInstruction {
        /// The raw word.
        word: u32,
    },
    /// The step budget ran out before the halt instruction.
    StepLimit,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::MemoryFault { addr } => write!(f, "memory fault at {addr:#010x}"),
            MachineError::FetchFault { pc } => write!(f, "fetch fault at nibble {pc:#x}"),
            MachineError::Trap => write!(f, "trap instruction fired"),
            MachineError::IllegalInstruction { word } => {
                write!(f, "illegal instruction {word:#010x}")
            }
            MachineError::StepLimit => write!(f, "step limit exhausted"),
        }
    }
}

impl std::error::Error for MachineError {}

/// What an executed instruction asks the fetch engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fall through to the next instruction.
    Next,
    /// Transfer control to the given fetch-domain (nibble) address.
    Branch(u64),
    /// The program executed its halt instruction; the exit code is in the
    /// ISA's return register ([`Core::exit_code`]).
    Halt,
}

/// A decoded PC-relative branch, ISA-neutral.
///
/// `kind` is a backend-defined discriminant (stable per backend) that keys
/// [`Isa::branch_field_bits`] / [`Isa::patch_offset_units`]; the compressor
/// treats it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelBranch {
    /// Backend-defined branch-form discriminant.
    pub kind: u8,
    /// Byte displacement from the branch's own address (multiple of
    /// [`INSN_BYTES`] in an uncompressed program).
    pub offset: i32,
    /// Whether the branch records a return address (a call).
    pub lk: bool,
}

/// Returns `true` if `value` fits a signed two's-complement field of
/// `bits` bits.
pub const fn fits_signed(value: i64, bits: u32) -> bool {
    let half = 1i64 << (bits - 1);
    value >= -half && value < half
}

/// Architectural state driven by the VM's fetch/step loop.
///
/// Cores are PC-less: the program counter lives in the fetch engine, because
/// a compressed-program processor's PC is nibble-granular. All code addresses
/// a core sees (return registers, branch targets) are fetch-domain nibble
/// addresses.
pub trait Core {
    /// Executes one instruction word.
    ///
    /// `cur_pc`/`next_pc` are the instruction's own and successor addresses
    /// in the fetch domain; `granule` is the fetch domain's branch-offset
    /// unit in nibbles (8 uncompressed, 4/2/1 compressed). Branch offset
    /// fields are interpreted as raw units scaled by `granule`, exactly as
    /// the paper's modified control unit does (§3.2.2).
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on faults; the core state reflects the
    /// partial execution (registers already written stay written).
    fn step_word(
        &mut self,
        word: u32,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError>;

    /// Reads general-purpose register `r`.
    fn gpr(&self, r: usize) -> u32;

    /// Writes general-purpose register `r`.
    fn set_gpr(&mut self, r: usize, v: u32);

    /// Writes a 32-bit word to data memory (big-endian).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemoryFault`] past the end of memory.
    fn write32(&mut self, addr: u32, v: u32) -> Result<(), MachineError>;

    /// The full data memory, for state comparison.
    fn mem_bytes(&self) -> &[u8];

    /// The exit code after [`Outcome::Halt`]: the ISA's return-value
    /// register (`r3` on PowerPC, `$v0` on MIPS).
    fn exit_code(&self) -> u32;

    /// Condition/carry state packed into one word for lockstep comparison.
    /// Backends without architected flags return 0.
    fn flags(&self) -> u64;
}

/// A [`Core`] whose decode stage can be hoisted out of the execution loop.
///
/// [`Core::step_word`] re-decodes its instruction word on every step; a
/// predecoded execution loop (see `codense-vm`'s `run_predecoded`) decodes
/// each distinct fetched item once, caches the backend's decoded form, and
/// replays it — so the per-step cost is dispatch + execute only. Not object
/// safe (the decoded type is backend-specific); the loop is monomorphized
/// per backend.
pub trait PredecodeCore: Core {
    /// The backend's decoded-instruction representation.
    type Insn;

    /// Decodes a raw word. Pure and state-independent: decoding never
    /// faults (illegal words decode to a form whose execution faults), so
    /// caching decoded instructions cannot change program behaviour.
    fn predecode(word: u32) -> Self::Insn;

    /// Executes one already-decoded instruction. Must be observably
    /// identical to [`Core::step_word`] on the word `insn` was decoded
    /// from — same state changes, same [`Outcome`], same errors.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] on faults, exactly as
    /// [`Core::step_word`] would.
    fn step_insn(
        &mut self,
        insn: &Self::Insn,
        cur_pc: u64,
        next_pc: u64,
        granule: u32,
    ) -> Result<Outcome, MachineError>;
}

/// The backend contract: everything the compressor, verifier, basic-block
/// builder, and VM need to know about an instruction set.
///
/// Implementations must be stateless (methods take `&self` and are pure);
/// a backend exposes one `static` instance referenced through [`IsaRef`].
pub trait Isa: Sync {
    /// Short lowercase name (`"ppc"`, `"mips"`), used in reports and CLI
    /// `--isa` selection.
    fn name(&self) -> &'static str;

    /// Extracts PC-relative branch information from a word, or `None` if the
    /// word is not a PC-relative branch (absolute and indirect branches and
    /// non-branches are all `None` — they need no displacement patching and
    /// are therefore compressible).
    fn rel_branch_info(&self, word: u32) -> Option<RelBranch>;

    /// Width in bits of the signed displacement field of branch form `kind`
    /// (sign bit included).
    fn branch_field_bits(&self, kind: u8) -> u32;

    /// Rewrites the displacement field of a relative branch with a new raw
    /// field value (already divided down to the target granularity). All
    /// other fields are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not a branch of form `kind` or `units` does not
    /// fit the field.
    fn patch_offset_units(&self, word: u32, kind: u8, units: i32) -> u32;

    /// Reads back the raw displacement field of a patched branch,
    /// sign-extended, in field units (the inverse of
    /// [`patch_offset_units`](Isa::patch_offset_units)).
    fn read_offset_units(&self, word: u32, kind: u8) -> i32;

    /// The escape bytes reserved for codewords: byte values no legal
    /// instruction's most-significant byte can take (§4.1 of the paper).
    /// Must contain at least 32 distinct values; index order is the fixed
    /// escape numbering the encoder and decoder share.
    fn escape_bytes(&self) -> &'static [u8];

    /// Position of `byte` in [`escape_bytes`](Isa::escape_bytes), or `None`
    /// if it is not an escape byte. The default is a linear scan.
    fn escape_index(&self, byte: u8) -> Option<u32> {
        self.escape_bytes().iter().position(|&b| b == byte).map(|i| i as u32)
    }

    /// Returns `true` if `word` ends a basic block (any control transfer or
    /// the halt instruction).
    fn ends_block(&self, word: u32) -> bool;

    /// Synthesizes the overflow-trampoline expansion for a relative branch
    /// whose displacement no longer fits at the compressed granularity
    /// (§3.2.2): an optional inverted-condition skip over the trampoline,
    /// then an indirect jump through slot `slot` of the overflow table at
    /// `(OVERFLOW_TABLE_HI << 16) + 4 * slot`.
    ///
    /// `granule_nibbles`/`insn_nibbles` describe the encoding the expansion
    /// will be laid out in (the skip branch's displacement is patched in
    /// granule units). Returns `None` if the branch's condition cannot be
    /// inverted (e.g. PowerPC CTR-decrementing forms), which the compressor
    /// reports as an unsupported overflow branch.
    fn overflow_expansion(
        &self,
        word: u32,
        slot: u32,
        granule_nibbles: u32,
        insn_nibbles: u32,
    ) -> Option<Vec<u32>>;

    /// Disassembles a word located at byte address `addr` to the backend's
    /// assembly syntax.
    fn disassemble(&self, word: u32, addr: u32) -> String;

    /// Creates a fresh execution core with `mem_bytes` of data memory.
    fn new_core(&self, mem_bytes: usize) -> Box<dyn Core>;

    /// Can a displacement of `offset_nibbles` (4-bit units) be expressed by
    /// branch form `kind` when the field is interpreted in `granule_nibbles`
    /// units? The uncompressed ISA uses `granule_nibbles = 8` (4-byte
    /// units); the paper's schemes use 4, 2 and 1.
    fn offset_expressible(&self, kind: u8, offset_nibbles: i64, granule_nibbles: u32) -> bool {
        debug_assert!(granule_nibbles > 0);
        let g = granule_nibbles as i64;
        offset_nibbles % g == 0 && fits_signed(offset_nibbles / g, self.branch_field_bits(kind))
    }
}

/// A copyable handle to a backend's `static` [`Isa`] instance.
///
/// Compared by [`Isa::name`], so two handles to the same backend are equal.
#[derive(Clone, Copy)]
pub struct IsaRef(pub &'static dyn Isa);

impl IsaRef {
    /// The backend's short name.
    pub fn name(self) -> &'static str {
        self.0.name()
    }
}

impl std::ops::Deref for IsaRef {
    type Target = dyn Isa;

    fn deref(&self) -> &Self::Target {
        self.0
    }
}

impl fmt::Debug for IsaRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IsaRef({})", self.0.name())
    }
}

impl PartialEq for IsaRef {
    fn eq(&self, other: &IsaRef) -> bool {
        self.0.name() == other.0.name()
    }
}

impl Eq for IsaRef {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_signed_bounds() {
        assert!(fits_signed(8191, 14));
        assert!(!fits_signed(8192, 14));
        assert!(fits_signed(-8192, 14));
        assert!(!fits_signed(-8193, 14));
        assert!(fits_signed(0, 1));
        assert!(fits_signed(-1, 1));
        assert!(!fits_signed(1, 1));
    }

    #[test]
    fn machine_error_messages_are_stable() {
        assert_eq!(
            MachineError::MemoryFault { addr: 0x100 }.to_string(),
            "memory fault at 0x00000100"
        );
        assert_eq!(MachineError::FetchFault { pc: 0x20 }.to_string(), "fetch fault at nibble 0x20");
        assert_eq!(MachineError::Trap.to_string(), "trap instruction fired");
        assert_eq!(
            MachineError::IllegalInstruction { word: 0x0400_0000 }.to_string(),
            "illegal instruction 0x04000000"
        );
        assert_eq!(MachineError::StepLimit.to_string(), "step limit exhausted");
    }
}
